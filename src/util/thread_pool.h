// Minimal fixed-size thread pool and ParallelFor helpers.
//
// A *single* query stays single-threaded on each shard to keep the cost
// model's alpha/beta constants meaningful (the paper's per-query CPU-time
// measurements). Parallelism lives one level up: table construction within
// an index, shard builds and shard fan-out in engine/sharded_engine.h, and
// batch execution in core/batch_query.h — all of which reuse one persistent
// ThreadPool via ParallelForOn instead of spawning threads per call.

#ifndef HYBRIDLSH_UTIL_THREAD_POOL_H_
#define HYBRIDLSH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hybridlsh {
namespace util {

/// Fixed-size pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet started (approximate; for rate limiting and
  /// observability, not synchronization).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Counts a related set of tasks on a shared pool and lets the submitter
/// wait for exactly those tasks — pool->Wait() would also wait on unrelated
/// callers' work. The engine uses one long-lived group per concern (e.g.
/// background segment maintenance) and Wait() as its drain barrier before
/// snapshots and shutdown; ParallelForOn uses a short-lived group as its
/// completion latch.
///
/// Submit may race with tasks finishing; Wait blocks until the count of
/// submitted-but-unfinished tasks reaches zero. The destructor waits.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool, tracked by this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Submitted-but-unfinished task count (approximate).
  size_t outstanding() const;

 private:
  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable done_;
  size_t outstanding_ = 0;
};

/// Runs fn(i) for i in [begin, end) across up to `num_threads` threads in
/// contiguous chunks. Blocks until all iterations complete. If num_threads
/// <= 1 or the range is tiny, runs inline. Spawns fresh threads; prefer
/// ParallelForOn with a long-lived pool on repeated call sites.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor, but executes on an existing pool: the range is split
/// into one contiguous chunk per pool worker and submitted as tasks. Blocks
/// until *these* chunks complete (other tasks queued on the pool are not
/// waited for). `fn` must not itself call ParallelForOn on the same pool
/// (the nested wait could deadlock once every worker is occupied).
void ParallelForOn(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_THREAD_POOL_H_
