// Deterministic, seedable pseudo-random number generation.
//
// The library never uses std::rand or global state: every randomized
// component (LSH function sampling, synthetic data generation, HLL hashing
// tests) takes an explicit 64-bit seed so that index builds and experiments
// are exactly reproducible.
//
// Generators:
//   * SplitMix64  — stateless-ish stream used for seeding, per Vigna.
//   * Xoshiro256ss — xoshiro256** 1.0, the main generator (fast, 256-bit
//     state, passes BigCrush), UniformRandomBitGenerator-compatible.
//   * Rng — convenience facade with the distributions the library needs:
//     uniforms, Gaussian (for 2-stable projections / SimHash), Cauchy (for
//     1-stable projections), Geometric(1/2) (HyperLogLog register updates).

#ifndef HYBRIDLSH_UTIL_RANDOM_H_
#define HYBRIDLSH_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.h"

namespace hybridlsh {
namespace util {

/// SplitMix64 generator (Vigna, 2015). Primarily used to expand one user
/// seed into many independent sub-seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256ss {
 public:
  using result_type = uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64, as
  /// recommended by the authors.
  explicit Xoshiro256ss(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; use to derive non-overlapping
  /// parallel streams from one seed.
  void Jump();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Convenience facade bundling the distributions used across the library.
/// Not thread-safe; create one Rng per thread (use Xoshiro256ss::Jump or
/// distinct seeds to decorrelate).
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform 64-bit value.
  uint64_t NextU64() { return gen_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>(gen_() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Marsaglia polar method with cached spare).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Standard Cauchy deviate (the 1-stable distribution used by L1 LSH).
  double Cauchy();

  /// Cauchy deviate with the given location and scale.
  double Cauchy(double location, double scale) {
    return location + scale * Cauchy();
  }

  /// Geometric(1/2) value >= 1: the number of fair coin flips up to and
  /// including the first head. This is exactly the HyperLogLog register
  /// update distribution. Computed as (leading zeros of a uniform word) + 1,
  /// capped at 65.
  uint32_t GeometricHalf();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Returns k distinct indices drawn uniformly from [0, n). Requires
  /// 0 <= k <= n. O(n) time, O(n) scratch (partial Fisher-Yates).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Access to the raw bit generator (for <random> interop in tests).
  Xoshiro256ss& bit_generator() { return gen_; }

 private:
  Xoshiro256ss gen_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_RANDOM_H_
