// Row-major dense float matrix — the in-memory layout for real-valued
// point sets (one point per row).
//
// The layout is deliberately flat (single contiguous buffer) so that
// linear scans stream sequentially and LSH projections can hand rows to
// dot-product kernels without indirection.
//
// Storage is a util::PublishedArray so the serving engine can append rows
// from one writer thread while query threads read already-published rows
// lock-free: a row's floats are immutable once the row count covering it
// has been release-published, and growth retires the old buffer instead of
// freeing it under readers. Plain mutation (MutableRow/Set/mutable_data)
// remains build-time only.

#ifndef HYBRIDLSH_UTIL_MATRIX_H_
#define HYBRIDLSH_UTIL_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/published_array.h"
#include "util/status.h"

namespace hybridlsh {
namespace util {

/// Dense row-major matrix of 32-bit floats.
class FloatMatrix {
 public:
  FloatMatrix() = default;

  /// Creates a rows x cols matrix of zeros.
  FloatMatrix(size_t rows, size_t cols) : cols_(cols) {
    data_.GrowTo(rows * cols, 0.0f);
    rows_.store(rows, std::memory_order_relaxed);
  }

  /// Creates a matrix adopting `data` (size must equal rows*cols).
  FloatMatrix(size_t rows, size_t cols, std::vector<float> data) : cols_(cols) {
    HLSH_CHECK(data.size() == rows * cols);
    data_.Assign(data);
    rows_.store(rows, std::memory_order_relaxed);
  }

  // Copies and moves are build/load-time operations (not safe concurrently
  // with any access to either operand).
  FloatMatrix(const FloatMatrix& other)
      : cols_(other.cols_), data_(other.data_) {
    rows_.store(other.rows(), std::memory_order_relaxed);
  }
  FloatMatrix& operator=(const FloatMatrix& other) {
    if (this != &other) {
      cols_ = other.cols_;
      data_ = other.data_;
      rows_.store(other.rows(), std::memory_order_relaxed);
    }
    return *this;
  }
  FloatMatrix(FloatMatrix&& other) noexcept
      : cols_(other.cols_), data_(std::move(other.data_)) {
    rows_.store(other.rows(), std::memory_order_relaxed);
    other.rows_.store(0, std::memory_order_relaxed);
    other.cols_ = 0;
  }
  FloatMatrix& operator=(FloatMatrix&& other) noexcept {
    if (this != &other) {
      cols_ = other.cols_;
      data_ = std::move(other.data_);
      rows_.store(other.rows(), std::memory_order_relaxed);
      other.rows_.store(0, std::memory_order_relaxed);
      other.cols_ = 0;
    }
    return *this;
  }

  /// Row count. Monotone under one appending writer; safe from any thread.
  size_t rows() const { return rows_.load(std::memory_order_relaxed); }
  /// Row count with acquire ordering: rows below the result are fully
  /// written and safe to read on this thread.
  size_t rows_acquire() const {
    return rows_.load(std::memory_order_acquire);
  }
  size_t cols() const { return cols_; }
  bool empty() const { return rows() == 0; }

  /// Pointer to the start of row i. Safe for rows below a bound obtained
  /// via rows_acquire() or an epoch-published view.
  const float* Row(size_t i) const {
    HLSH_DCHECK(i < rows());
    return data_.data() + i * cols_;
  }
  float* MutableRow(size_t i) {
    HLSH_DCHECK(i < rows());
    return data_.mutable_data() + i * cols_;
  }

  /// Row i as a span of cols() floats.
  std::span<const float> RowSpan(size_t i) const { return {Row(i), cols_}; }

  /// Element (i, j).
  float At(size_t i, size_t j) const {
    HLSH_DCHECK(j < cols_);
    return Row(i)[j];
  }
  void Set(size_t i, size_t j, float value) {
    HLSH_DCHECK(j < cols_);
    MutableRow(i)[j] = value;
  }

  /// Flat storage (rows*cols floats, row-major).
  std::span<const float> data() const { return data_.span(); }

  /// Pre-allocates capacity for `rows` rows so appends up to that count
  /// never reallocate (and thus never retire a buffer).
  void Reserve(size_t rows) { data_.Reserve(rows * cols_); }

  /// Heap bytes of the float storage, retired growth buffers included.
  size_t MemoryBytes() const { return data_.MemoryBytes(); }

  /// Appends one row (span size must equal cols(); sets cols on first row).
  /// Single-writer: safe concurrently with readers of published rows.
  void AppendRow(std::span<const float> row);

 private:
  std::atomic<size_t> rows_{0};
  size_t cols_ = 0;
  PublishedArray<float> data_;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_MATRIX_H_
