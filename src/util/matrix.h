// Row-major dense float matrix — the in-memory layout for real-valued
// point sets (one point per row).
//
// The layout is deliberately flat (single contiguous vector<float>) so that
// linear scans stream sequentially and LSH projections can hand rows to
// dot-product kernels without indirection.

#ifndef HYBRIDLSH_UTIL_MATRIX_H_
#define HYBRIDLSH_UTIL_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace hybridlsh {
namespace util {

/// Dense row-major matrix of 32-bit floats.
class FloatMatrix {
 public:
  FloatMatrix() = default;

  /// Creates a rows x cols matrix of zeros.
  FloatMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Creates a matrix adopting `data` (size must equal rows*cols).
  FloatMatrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    HLSH_CHECK(data_.size() == rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Pointer to the start of row i.
  const float* Row(size_t i) const {
    HLSH_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }
  float* MutableRow(size_t i) {
    HLSH_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }

  /// Row i as a span of cols() floats.
  std::span<const float> RowSpan(size_t i) const { return {Row(i), cols_}; }

  /// Element (i, j).
  float At(size_t i, size_t j) const {
    HLSH_DCHECK(j < cols_);
    return Row(i)[j];
  }
  void Set(size_t i, size_t j, float value) {
    HLSH_DCHECK(j < cols_);
    MutableRow(i)[j] = value;
  }

  /// Flat storage (rows*cols floats, row-major).
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

  /// Appends one row (span size must equal cols(); sets cols on first row).
  void AppendRow(std::span<const float> row);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_MATRIX_H_
