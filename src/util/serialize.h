// Little-endian binary serialization primitives.
//
// ByteWriter appends fixed-width scalars and blobs to a growable buffer;
// ByteReader consumes them with bounds checking, returning DataLoss on
// truncated or oversized input instead of aborting — index files may come
// from untrusted disks (failure-injection tests corrupt them on purpose).

#ifndef HYBRIDLSH_UTIL_SERIALIZE_H_
#define HYBRIDLSH_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace hybridlsh {
namespace util {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void WriteU8(uint8_t value) { buffer_.push_back(value); }

  void WriteU32(uint32_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteU64(uint64_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteI32(int32_t value) { WriteRaw(&value, sizeof(value)); }
  void WriteF32(float value) { WriteRaw(&value, sizeof(value)); }
  void WriteF64(double value) { WriteRaw(&value, sizeof(value)); }

  /// Length-prefixed byte blob.
  void WriteBlob(std::span<const uint8_t> bytes) {
    WriteU64(bytes.size());
    WriteRaw(bytes.data(), bytes.size());
  }

  /// Fixed-width array (no length prefix; caller writes the count).
  template <typename T>
  void WriteArray(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(values.data(), values.size() * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t>&& TakeBytes() && { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  // GCC 12's -Wstringop-overflow mis-sizes the freshly allocated vector
  // buffer when this insert of a fixed-width scalar is fully inlined into
  // a large caller (e.g. LshIndex::Save) — a documented false positive on
  // vector<uint8_t> range inserts, and sensitive to unrelated inlining
  // changes, so silence it at the source.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
  void WriteRaw(const void* data, size_t size) {
    const auto* begin = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), begin, begin + size);
  }
#pragma GCC diagnostic pop

  std::vector<uint8_t> buffer_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  util::Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  util::Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  util::Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  util::Status ReadI32(int32_t* out) { return ReadRaw(out, sizeof(*out)); }
  util::Status ReadF32(float* out) { return ReadRaw(out, sizeof(*out)); }
  util::Status ReadF64(double* out) { return ReadRaw(out, sizeof(*out)); }

  /// Reads a length-prefixed blob written by WriteBlob.
  util::Status ReadBlob(std::vector<uint8_t>* out) {
    uint64_t size = 0;
    HLSH_RETURN_IF_ERROR(ReadU64(&size));
    if (size > remaining()) {
      return util::Status::DataLoss("blob length exceeds buffer");
    }
    out->resize(size);
    return ReadRaw(out->data(), size);
  }

  /// Reads `count` fixed-width values into out (resized).
  template <typename T>
  util::Status ReadArray(size_t count, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > remaining() / sizeof(T)) {
      return util::Status::DataLoss("array length exceeds buffer");
    }
    out->resize(count);
    return ReadRaw(out->data(), count * sizeof(T));
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - offset_; }

  /// OK iff every byte was consumed (catches trailing garbage).
  util::Status ExpectEnd() const {
    if (remaining() != 0) {
      return util::Status::DataLoss("trailing bytes after payload");
    }
    return util::Status::Ok();
  }

 private:
  util::Status ReadRaw(void* out, size_t size) {
    if (size > remaining()) {
      return util::Status::DataLoss("buffer truncated");
    }
    std::memcpy(out, bytes_.data() + offset_, size);
    offset_ += size;
    return util::Status::Ok();
  }

  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

/// Writes a whole buffer to a file.
util::Status WriteFileBytes(const std::string& path,
                            std::span<const uint8_t> bytes);

/// Crash-safe variant of WriteFileBytes: writes to `path + ".tmp"`, fsyncs,
/// then renames over `path` (and fsyncs the parent directory so the rename
/// itself is durable). A crash at any point leaves either the previous file
/// intact or a stray .tmp — never a truncated `path`. This is the write
/// path for every persistent artifact (index files, snapshot files).
/// `trailer` (optional) is appended after `bytes` in the same atomic write —
/// lets callers frame a payload with a checksum without concatenating into a
/// second buffer.
util::Status AtomicWriteFileBytes(const std::string& path,
                                  std::span<const uint8_t> bytes,
                                  std::span<const uint8_t> trailer = {});

/// Reads a whole file.
util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_SERIALIZE_H_
