// Single-writer append-only array with lock-free readers.
//
// The concurrent serving core (engine/sharded_engine.h) lets queries run
// while one writer appends points, norms, tombstone words, and CSR rows.
// std::vector cannot back any of that: resize() frees the old buffer while
// a reader may still be walking it, and the (data, size) pair is updated
// non-atomically. PublishedArray is the minimal replacement:
//
//   - Element storage is append-only: slots in [0, size) are immutable once
//     the size covering them has been published (the writer fills a slot,
//     then release-stores the new size).
//   - Growth never invalidates readers: a larger buffer is allocated, the
//     live prefix is memcpy'd, the read pointer is swapped, and the old
//     buffer is *retired* (kept alive until destruction) so a reader that
//     loaded the old pointer keeps dereferencing valid memory. Doubling
//     bounds total retired memory by the size of the current buffer.
//   - Readers pair size_acquire() with data(): the acquire load of the size
//     orders the element reads after the writer's fills, and the acquire
//     load of the pointer orders them after the grow-time copy (a reader
//     can observe a buffer swapped after its last size acquire). A reader
//     whose index bound arrives through some *other* release/acquire edge
//     (an epoch-published segment view) may load size() relaxed; the edge
//     already makes the covering elements visible.
//
// Exactly one thread may call writer methods at a time (the engine holds a
// writer mutex); reader methods are safe from any thread concurrently with
// the writer. T must be trivially copyable.

#ifndef HYBRIDLSH_UTIL_PUBLISHED_ARRAY_H_
#define HYBRIDLSH_UTIL_PUBLISHED_ARRAY_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace hybridlsh {
namespace util {

template <typename T>
class PublishedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PublishedArray elements are grown with memcpy");

 public:
  PublishedArray() = default;

  /// Creates an array of `n` copies of `fill`.
  explicit PublishedArray(size_t n, T fill = T{}) {
    Reserve(n);
    for (size_t i = 0; i < n; ++i) buf_[i] = fill;
    Publish(n);
  }

  // Copies and moves are build/load-time operations: they must not run
  // concurrently with any access to either operand. Copies drop the
  // retired buffers (no reader can hold them by precondition).
  PublishedArray(const PublishedArray& other) { CopyFrom(other); }
  PublishedArray& operator=(const PublishedArray& other) {
    if (this != &other) {
      retired_.clear();
      CopyFrom(other);
    }
    return *this;
  }
  PublishedArray(PublishedArray&& other) noexcept { MoveFrom(&other); }
  PublishedArray& operator=(PublishedArray&& other) noexcept {
    if (this != &other) {
      retired_.clear();
      MoveFrom(&other);
    }
    return *this;
  }

  // --- Reader surface (any thread). ----------------------------------------

  /// Current storage. Valid for indexes below a size obtained with
  /// size_acquire(), or below a bound that reached this thread through a
  /// release/acquire edge published after the covering writer calls.
  ///
  /// The load is acquire, pairing with the release store in GrowCapacity:
  /// a reader may observe a buffer swapped *after* its last size/epoch
  /// acquire (the pointer is re-read on every call), and only the acquire
  /// orders that reader's element loads after the writer's grow-time copy
  /// of the published prefix. Free on x86; cheap everywhere.
  const T* data() const { return data_.load(std::memory_order_acquire); }

  /// Published element count (no ordering; monotone under one writer).
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Published element count; orders subsequent data()/element reads after
  /// the writer's fills of slots [0, result).
  size_t size_acquire() const { return size_.load(std::memory_order_acquire); }

  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const {
    HLSH_DCHECK(i < size());
    return data()[i];
  }

  /// The published prefix as a span (acquire-ordered size).
  std::span<const T> span() const {
    const size_t n = size_acquire();
    return {data(), n};
  }

  /// Heap bytes currently allocated, including retired buffers. Safe to
  /// read concurrently with the writer (memory accounting).
  size_t MemoryBytes() const {
    return alloc_bytes_.load(std::memory_order_relaxed);
  }

  // --- Writer surface (one thread, serialized externally). ------------------

  /// Ensures capacity for at least `n` elements without publishing them.
  /// Growth past the current capacity retires the old buffer.
  void Reserve(size_t n) {
    if (n > cap_) GrowCapacity(n);
  }

  size_t capacity() const { return cap_; }

  /// Appends one element and publishes the new size (release).
  void PushBack(const T& value) {
    const size_t n = size_.load(std::memory_order_relaxed);
    Reserve(n + 1);
    buf_[n] = value;
    Publish(n + 1);
  }

  /// Appends `count` elements and publishes once (release).
  void Append(const T* src, size_t count) {
    const size_t n = size_.load(std::memory_order_relaxed);
    Reserve(n + count);
    if (count > 0) std::memcpy(buf_.get() + n, src, count * sizeof(T));
    Publish(n + count);
  }

  /// Extends to `n` elements filled with `fill`; no-op if already that
  /// large. Publishes once (release).
  void GrowTo(size_t n, T fill = T{}) {
    const size_t old = size_.load(std::memory_order_relaxed);
    if (n <= old) return;
    Reserve(n);
    for (size_t i = old; i < n; ++i) buf_[i] = fill;
    Publish(n);
  }

  /// Replaces the contents wholesale. Only valid while no reader is active
  /// (build and snapshot-load paths): the size may shrink, and published
  /// slots are overwritten in place.
  void Assign(std::span<const T> values) {
    Reserve(values.size());
    if (!values.empty()) {
      std::memcpy(buf_.get(), values.data(), values.size() * sizeof(T));
    }
    Publish(values.size());
  }

  /// Direct writable storage. In-place writes to slots that are already
  /// published are NOT safe under concurrent readers; this is for
  /// thread-private scratch (util::VisitedSet) and build-time fills.
  T* mutable_data() { return buf_.get(); }

 private:
  void Publish(size_t n) { size_.store(n, std::memory_order_release); }

  void GrowCapacity(size_t need) {
    size_t cap = cap_ < 8 ? 8 : cap_;
    while (cap < need) cap *= 2;
    std::unique_ptr<T[]> grown(new T[cap]);
    const size_t n = size_.load(std::memory_order_relaxed);
    if (n > 0) std::memcpy(grown.get(), buf_.get(), n * sizeof(T));
    if (buf_ != nullptr) retired_.push_back(std::move(buf_));
    buf_ = std::move(grown);
    cap_ = cap;
    // Pointer swap before any size publication that depends on the new
    // capacity; readers reach the new pointer through the same
    // release/acquire edge that publishes the larger size.
    data_.store(buf_.get(), std::memory_order_release);
    alloc_bytes_.store(alloc_bytes_.load(std::memory_order_relaxed) +
                           cap * sizeof(T),
                       std::memory_order_relaxed);
  }

  void CopyFrom(const PublishedArray& other) {
    const size_t n = other.size();
    cap_ = 0;
    buf_.reset();
    alloc_bytes_.store(0, std::memory_order_relaxed);
    data_.store(nullptr, std::memory_order_relaxed);
    size_.store(0, std::memory_order_relaxed);
    if (n > 0) {
      GrowCapacity(n);
      std::memcpy(buf_.get(), other.data(), n * sizeof(T));
    }
    Publish(n);
  }

  void MoveFrom(PublishedArray* other) {
    buf_ = std::move(other->buf_);
    cap_ = other->cap_;
    retired_ = std::move(other->retired_);
    data_.store(other->data_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    size_.store(other->size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    alloc_bytes_.store(other->alloc_bytes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    other->cap_ = 0;
    other->data_.store(nullptr, std::memory_order_relaxed);
    other->size_.store(0, std::memory_order_relaxed);
    other->alloc_bytes_.store(0, std::memory_order_relaxed);
  }

  std::unique_ptr<T[]> buf_;  // writer's current buffer
  size_t cap_ = 0;
  // Buffers superseded by growth; freed only at destruction so stale
  // readers stay valid. Doubling keeps their total below cap_ * sizeof(T).
  std::vector<std::unique_ptr<T[]>> retired_;
  std::atomic<const T*> data_{nullptr};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> alloc_bytes_{0};
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_PUBLISHED_ARRAY_H_
