#include "util/matrix.h"

namespace hybridlsh {
namespace util {

void FloatMatrix::AppendRow(std::span<const float> row) {
  const size_t n = rows();
  if (n == 0 && cols_ == 0) cols_ = row.size();
  HLSH_CHECK(row.size() == cols_);
  // Fill the floats first (PublishedArray release-publishes the element
  // count), then release-publish the row count readers key off.
  data_.Append(row.data(), row.size());
  rows_.store(n + 1, std::memory_order_release);
}

}  // namespace util
}  // namespace hybridlsh
