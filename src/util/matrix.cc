#include "util/matrix.h"

namespace hybridlsh {
namespace util {

void FloatMatrix::AppendRow(std::span<const float> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  HLSH_CHECK(row.size() == cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

}  // namespace util
}  // namespace hybridlsh
