// Runtime SIMD tier detection and the vectorized HyperLogLog register ops.
//
// The repo's hot loops (distance verification, HLL merge/estimate) are
// dispatched over instruction-set tiers resolved ONCE per process:
//
//   kAvx2   256-bit integer + float + gather paths
//   kSse2   128-bit paths (baseline on x86-64)
//   kScalar portable reference, also the only tier off x86
//
// Resolution order: the HLSH_SIMD environment variable ("scalar", "sse2",
// "avx2", or "auto"/unset) clamped to what CPUID reports. Every consumer —
// core/kernels.cc's distance table, hll::HyperLogLog's merge/estimate, and
// through them every shard and segment of the serving engine — reads the
// same resolved tier, so one process never mixes tiers.
//
// Determinism contract: for a given input, every tier of every kernel in
// this file and in core/kernels.cc returns the SAME bits. Integer kernels
// (byte max, popcount) are exact in any order; float/double reductions all
// follow one canonical accumulation order — eight virtual lanes, element
// i of a full 8-block feeding lane (i mod 8), lanes reduced pairwise as
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then the tail added in index
// order — which each tier implements exactly (AVX2: one 8-wide register;
// SSE2: two 4-wide registers; scalar: eight named accumulators). That is
// what makes scalar-forced and vectorized query results bit-identical
// (tests/test_kernels.cc).

#ifndef HYBRIDLSH_UTIL_SIMD_H_
#define HYBRIDLSH_UTIL_SIMD_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define HLSH_SIMD_X86 1
#include <immintrin.h>
#endif

namespace hybridlsh {
namespace util {
namespace simd {

/// Instruction-set tiers, ordered so that std::min clamps requests to what
/// the CPU supports.
enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Stable display name ("scalar" / "sse2" / "avx2").
inline std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

/// Parses a tier name. Returns false for "auto", empty, or unknown names
/// (callers then use the detected maximum).
inline bool ParseTier(const char* name, Tier* out) {
  if (name == nullptr || name[0] == '\0') return false;
  const std::string_view s(name);
  if (s == "scalar") {
    *out = Tier::kScalar;
    return true;
  }
  if (s == "sse2") {
    *out = Tier::kSse2;
    return true;
  }
  if (s == "avx2") {
    *out = Tier::kAvx2;
    return true;
  }
  if (s != "auto") {
    std::fprintf(stderr,
                 "hybridlsh: unknown HLSH_SIMD value \"%s\" "
                 "(want scalar|sse2|avx2|auto); using auto\n",
                 name);
  }
  return false;
}

namespace detail {
/// Raw CPUID probe. Callers go through MaxSupportedTier(), which caches
/// the answer process-wide.
inline Tier ProbeMaxSupportedTier() {
#if defined(HLSH_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
#endif
  return Tier::kScalar;
}
}  // namespace detail

/// Best tier this CPU can execute, probed once per process (inline
/// function static shared by every translation unit).
inline Tier MaxSupportedTier() {
  static const Tier tier = detail::ProbeMaxSupportedTier();
  return tier;
}

/// Every tier this CPU can execute, ascending ({kScalar, ...}). The one
/// list tests and benches iterate when forcing each dispatch path.
inline std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  const Tier max = MaxSupportedTier();
  for (int t = 0; t <= static_cast<int>(max); ++t) {
    tiers.push_back(static_cast<Tier>(t));
  }
  return tiers;
}

namespace detail {
/// The process-wide resolved tier. One instance per program (inline
/// function static), shared by every translation unit.
inline Tier& MutableResolvedTier() {
  static Tier tier = [] {
    const Tier supported = MaxSupportedTier();
    Tier requested;
    if (ParseTier(std::getenv("HLSH_SIMD"), &requested)) {
      return std::min(requested, supported);
    }
    return supported;
  }();
  return tier;
}
}  // namespace detail

/// The tier every kernel dispatches on, resolved once from HLSH_SIMD and
/// CPUID on first use.
inline Tier ResolvedTier() { return detail::MutableResolvedTier(); }

/// Re-points the resolved tier (clamped to CPU support) so one test
/// process can exercise every dispatch path. Not thread-safe; tests only.
inline void SetResolvedTierForTest(Tier tier) {
  detail::MutableResolvedTier() = std::min(tier, MaxSupportedTier());
}

// --- Shared canonical-order scalar kernels. ---------------------------------

/// Dot product in the canonical 8-lane order — the scalar reference every
/// vector tier reproduces bit-for-bit. Lives here (not core/kernels.cc) so
/// data/ can use it too: DenseDataset::PrecomputeNorms builds its cosine
/// norm cache from this exact function, which makes the cached-norm
/// verification path round identically to the fused cosine kernel.
inline float DotF32Scalar(const float* a, const float* b, size_t d) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
              ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

// --- HyperLogLog register kernels. -----------------------------------------
// These live here (not core/kernels.h) so hll/ can use them without
// depending on core/; the kernel table in core/kernels.cc points at the
// same functions.

/// 2^-r for r = 0..255 (register values never exceed 64, but a full table
/// keeps the sum branch-free even on corrupt-but-validated input).
inline const double* Pow2NegTable() {
  static const struct Table {
    double values[256];
    Table() {
      for (int i = 0; i < 256; ++i) values[i] = std::ldexp(1.0, -i);
    }
  } table;
  return table.values;
}

/// Canonical-order fused register sum: returns sum_j 2^-M[j] and counts
/// zero registers in one pass. Reference tier — every other tier must
/// reproduce these bits exactly.
inline double HllRegisterSumScalar(const uint8_t* regs, size_t m,
                                   size_t* zeros_out) {
  const double* table = Pow2NegTable();
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t zeros = 0;
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const uint8_t reg = regs[i + l];
      lanes[l] += table[reg];
      zeros += (reg == 0);
    }
  }
  double sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
               ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < m; ++i) {
    sum += table[regs[i]];
    zeros += (regs[i] == 0);
  }
  *zeros_out = zeros;
  return sum;
}

#if defined(HLSH_SIMD_X86)
// GCC 12's _mm256_i32gather_pd expands through _mm256_undefined_pd, whose
// deliberately-uninitialized local trips -Wmaybe-uninitialized; the mask
// gather overwrites every lane, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx2"))) inline double HllRegisterSumAvx2(
    const uint8_t* regs, size_t m, size_t* zeros_out) {
  const double* table = Pow2NegTable();
  __m256d acc_lo = _mm256_setzero_pd();  // virtual lanes 0-3
  __m256d acc_hi = _mm256_setzero_pd();  // virtual lanes 4-7
  const __m128i byte_zero = _mm_setzero_si128();
  size_t zeros = 0;
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(regs + i));
    const unsigned eq_mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(bytes, byte_zero)));
    zeros += static_cast<size_t>(std::popcount(eq_mask & 0xFFu));
    const __m256i idx = _mm256_cvtepu8_epi32(bytes);
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_i32gather_pd(table, _mm256_castsi256_si128(idx), 8));
    acc_hi = _mm256_add_pd(
        acc_hi, _mm256_i32gather_pd(table, _mm256_extracti128_si256(idx, 1), 8));
  }
  // Canonical reduction: [l0+l4, l1+l5, l2+l6, l3+l7] -> (s0+s2)+(s1+s3).
  const __m256d s = _mm256_add_pd(acc_lo, acc_hi);
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(s),
                                  _mm256_extractf128_pd(s, 1));
  double sum = _mm_cvtsd_f64(pair) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < m; ++i) {
    sum += table[regs[i]];
    zeros += (regs[i] == 0);
  }
  *zeros_out = zeros;
  return sum;
}
#pragma GCC diagnostic pop
#endif  // HLSH_SIMD_X86

/// Dispatched fused register sum. The SSE2 tier reuses the scalar loop:
/// without a gather instruction the sum is table-lookup-bound, so there is
/// no 128-bit win to take (and sharing the code keeps the bits identical
/// by construction).
inline double HllRegisterSum(const uint8_t* regs, size_t m,
                             size_t* zeros_out) {
#if defined(HLSH_SIMD_X86)
  if (ResolvedTier() == Tier::kAvx2) {
    return HllRegisterSumAvx2(regs, m, zeros_out);
  }
#endif
  return HllRegisterSumScalar(regs, m, zeros_out);
}

/// Register-wise max merge (HLL union): dst[j] = max(dst[j], src[j]).
inline void HllMergeMaxScalar(uint8_t* dst, const uint8_t* src, size_t m) {
  for (size_t j = 0; j < m; ++j) {
    if (src[j] > dst[j]) dst[j] = src[j];
  }
}

#if defined(HLSH_SIMD_X86)
__attribute__((target("sse2"))) inline void HllMergeMaxSse2(
    uint8_t* dst, const uint8_t* src, size_t m) {
  size_t j = 0;
  for (; j + 16 <= m; j += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + j));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                     _mm_max_epu8(a, b));
  }
  for (; j < m; ++j) {
    if (src[j] > dst[j]) dst[j] = src[j];
  }
}

__attribute__((target("avx2"))) inline void HllMergeMaxAvx2(
    uint8_t* dst, const uint8_t* src, size_t m) {
  size_t j = 0;
  for (; j + 32 <= m; j += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + j));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j),
                        _mm256_max_epu8(a, b));
  }
  for (; j + 16 <= m; j += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + j));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                     _mm_max_epu8(a, b));
  }
  for (; j < m; ++j) {
    if (src[j] > dst[j]) dst[j] = src[j];
  }
}
#endif  // HLSH_SIMD_X86

/// Dispatched register-wise max merge.
inline void HllMergeMax(uint8_t* dst, const uint8_t* src, size_t m) {
#if defined(HLSH_SIMD_X86)
  switch (ResolvedTier()) {
    case Tier::kAvx2:
      HllMergeMaxAvx2(dst, src, m);
      return;
    case Tier::kSse2:
      HllMergeMaxSse2(dst, src, m);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  HllMergeMaxScalar(dst, src, m);
}

}  // namespace simd

/// The process-wide SIMD tier, resolved once from HLSH_SIMD + CPUID. This
/// is the single entry point every dispatch table keys on — the float
/// kernel table, the int8 screen table, and the HLL register kernels all
/// read this same cached value, and EngineStats surfaces its name once
/// per engine. (Alias of simd::ResolvedTier() at the util:: level so
/// consumers outside the simd details can name it without reaching into
/// the sub-namespace.)
inline simd::Tier ResolvedSimdTier() { return simd::ResolvedTier(); }

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_SIMD_H_
