#include "util/random.h"

#include <bit>
#include <cmath>
#include <numbers>

namespace hybridlsh {
namespace util {

void Xoshiro256ss::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HLSH_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Debiased modulo (Lemire-style rejection).
  const uint64_t threshold = (-range) % range;
  uint64_t value;
  do {
    value = NextU64();
  } while (value < threshold);
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Cauchy() {
  // Inverse CDF: tan(pi * (u - 1/2)). Draw u in (0, 1) to avoid the poles.
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return std::tan(std::numbers::pi * (u - 0.5));
}

uint32_t Rng::GeometricHalf() {
  const uint64_t word = NextU64();
  if (word == 0) return 65;  // all 64 flips were tails
  return static_cast<uint32_t>(std::countl_zero(word)) + 1;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  HLSH_CHECK(k <= n);
  std::vector<uint32_t> pool(n);
  for (uint32_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<uint32_t> out(k);
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j =
        static_cast<uint32_t>(UniformInt(i, static_cast<int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
    out[i] = pool[i];
  }
  return out;
}

}  // namespace util
}  // namespace hybridlsh
