#include "util/thread_pool.h"

#include <algorithm>

#include "util/status.h"

namespace hybridlsh {
namespace util {

ThreadPool::ThreadPool(size_t num_threads) {
  HLSH_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_.size();
}

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  HLSH_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    std::unique_lock<std::mutex> lock(mu_);
    if (--outstanding_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return outstanding_ == 0; });
}

size_t TaskGroup::outstanding() const {
  std::unique_lock<std::mutex> lock(mu_);
  return outstanding_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t count = end - begin;
  const size_t threads = std::min(num_threads, count);
  if (threads <= 1 || count < 2) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (count + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& worker : workers) worker.join();
}

void ParallelForOn(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<void(size_t)>& fn) {
  HLSH_CHECK(pool != nullptr);
  if (begin >= end) return;
  const size_t count = end - begin;
  const size_t chunks = std::min(pool->num_threads(), count);
  if (chunks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Private completion latch: pool->Wait() would also wait on unrelated
  // tasks from other callers sharing the pool.
  TaskGroup group(pool);
  const size_t chunk = (count + chunks - 1) / chunks;
  for (size_t t = 0; t < chunks; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

}  // namespace util
}  // namespace hybridlsh
