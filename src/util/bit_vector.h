// Dense bit vector and the duplicate-elimination set used on the LSH query
// hot path.
//
// Step S2 of LSH-based search (paper §3.1) merges the L query buckets while
// removing duplicates. The per-collision cost of that merge is the alpha
// constant in the cost model, so the structure must be O(1) per probe with
// a tiny constant: VisitedSet is a bit vector plus a touched-id list so that
// clearing between queries is O(#touched), not O(n).
//
// BitVector doubles as the engine-wide tombstone bitmap, which is read by
// concurrent query threads while one writer marks deletes and grows the
// vector under live ingest. Two access families coexist:
//
//   - Plain ops (Set/Clear/TestAndSet/ClearAll/Resize): thread-private
//     scratch and build-time fills. Not safe under concurrent readers.
//   - Concurrent ops (SetConcurrent/TestAcquire/Get): word-atomic. Between
//     compactions the shared bitmap is monotone set-only, so a stale read
//     can only under-report a delete — semantically "the point was live at
//     some point during the query", never a wrong result. Grow() is
//     publication-safe: within Reserve()d capacity it touches only words
//     past the published prefix; past capacity it allocate-copy-swaps and
//     retires the old buffer so in-flight readers never dangle.

#ifndef HYBRIDLSH_UTIL_BIT_VECTOR_H_
#define HYBRIDLSH_UTIL_BIT_VECTOR_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/published_array.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace util {

/// Dense bit vector (see file comment for the concurrency contract).
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(size_t size) { Resize(size); }

  BitVector(const BitVector& other)
      : size_(other.size()), words_(other.words_) {}
  BitVector& operator=(const BitVector& other) {
    if (this != &other) {
      size_.store(other.size(), std::memory_order_relaxed);
      words_ = other.words_;
    }
    return *this;
  }
  BitVector(BitVector&& other) noexcept
      : size_(other.size()), words_(std::move(other.words_)) {
    other.size_.store(0, std::memory_order_relaxed);
  }
  BitVector& operator=(BitVector&& other) noexcept {
    if (this != &other) {
      size_.store(other.size(), std::memory_order_relaxed);
      words_ = std::move(other.words_);
      other.size_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Number of bits. Monotone under one writer; safe from any thread.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Returns bit i. Word-atomic (relaxed): safe concurrently with
  /// SetConcurrent, but carries no ordering — use TestAcquire when the
  /// caller needs to observe writes published before its epoch.
  bool Get(size_t i) const {
    HLSH_DCHECK(i < size());
    return (LoadWord(i >> 6, std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  /// Returns bit i with acquire ordering: a set that happens-before the
  /// caller's synchronization point (epoch acquire, clock handshake) is
  /// guaranteed visible. The tombstone read on the query path.
  bool TestAcquire(size_t i) const {
    HLSH_DCHECK(i < size());
    return (LoadWord(i >> 6, std::memory_order_acquire) >> (i & 63)) & 1;
  }

  /// Sets bit i to one. Plain read-modify-write: single-thread use only.
  void Set(size_t i) {
    HLSH_DCHECK(i < size());
    words_.mutable_data()[i >> 6] |= uint64_t{1} << (i & 63);
  }

  /// Sets bit i to one with a release-ordered atomic RMW: safe while other
  /// threads Get/TestAcquire concurrently.
  void SetConcurrent(size_t i) {
    HLSH_DCHECK(i < size());
    std::atomic_ref<uint64_t> word(words_.mutable_data()[i >> 6]);
    word.fetch_or(uint64_t{1} << (i & 63), std::memory_order_release);
  }

  /// Sets bit i to zero. Plain RMW: single-thread use only.
  void Clear(size_t i) {
    HLSH_DCHECK(i < size());
    words_.mutable_data()[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Prefetches the word holding bit i (bulk random-probe loops issue this
  /// a few ids ahead of the matching Get/Set/TestAndSet). Pass
  /// for_write=true only when the probe will modify the word: a
  /// write-intent prefetch requests exclusive cache-line ownership, which
  /// would make a read-shared bitmap (e.g. the engine-wide tombstones)
  /// ping-pong between concurrently querying cores.
  void PrefetchWord(size_t i, bool for_write = false) const {
    const uint64_t* word = words_.data() + (i >> 6);
    if (for_write) {
      __builtin_prefetch(word, /*rw=*/1, /*locality=*/1);
    } else {
      __builtin_prefetch(word, /*rw=*/0, /*locality=*/1);
    }
  }

  /// Sets bit i and returns its previous value (plain single word RMW;
  /// thread-private scratch only).
  bool TestAndSet(size_t i) {
    HLSH_DCHECK(i < size());
    uint64_t& word = words_.mutable_data()[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    const bool was_set = (word & mask) != 0;
    word |= mask;
    return was_set;
  }

  /// Zeroes every bit. O(size/64). Single-thread use only.
  void ClearAll() {
    uint64_t* words = words_.mutable_data();
    const size_t n = words_.size();
    for (size_t w = 0; w < n; ++w) words[w] = 0;
  }

  /// Number of one bits. O(size/64).
  size_t Count() const;

  /// Word-wise this &= other. Bits of *this at positions >= other.size()
  /// are cleared (a bit the operand cannot vouch for does not survive an
  /// intersection). *this must be thread-private; `other` may be shared
  /// with concurrent SetConcurrent writers — its words are loaded with
  /// acquire ordering, so sets published before the caller's
  /// synchronization point are honored, and a torn view is impossible
  /// (loads are word-atomic).
  void AndWith(const BitVector& other);

  /// Word-wise this |= other over the common prefix; bits of `other` at
  /// positions >= size() are ignored (the final word is re-masked, so the
  /// "no bits past size()" invariant Count/Grow rely on holds even when
  /// `other` is longer). Same sharing contract as AndWith.
  void OrWith(const BitVector& other);

  /// Word-wise this &= ~other over the common prefix. Bits of *this past
  /// other.size() are left unchanged — when `other` is a tombstone bitmap
  /// that has not grown to cover an id yet, that id cannot be dead. This
  /// is the filter∧¬tombstone composition of the predicate-pushdown query
  /// path. Same sharing contract as AndWith.
  void AndWithNot(const BitVector& other);

  /// popcount(*this & other) over the common prefix, without modifying
  /// either side. Same sharing contract as AndWith (both operands may be
  /// concurrently written; each word is read once, atomically).
  size_t CountAnd(const BitVector& other) const;

  /// Calls fn(i) for every set bit i in [begin, min(end, size())), in
  /// ascending order. Word-skipping: O(range/64 + #set bits in range), so
  /// enumerating the survivors of a selective filter costs far less than
  /// testing every id. *this must be quiescent (thread-private scratch or
  /// externally synchronized) for the duration of the walk.
  template <typename Fn>
  void ForEachSetBitInRange(size_t begin, size_t end, Fn&& fn) const {
    const size_t n = size();
    if (end > n) end = n;
    if (begin >= end) return;
    const uint64_t* words = words_.data();
    const size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    for (size_t w = first_word; w <= last_word; ++w) {
      uint64_t word = words[w];
      if (w == first_word && (begin & 63) != 0) {
        word &= ~uint64_t{0} << (begin & 63);
      }
      if (w == last_word && (end & 63) != 0) {
        word &= ~uint64_t{0} >> (64 - (end & 63));
      }
      while (word != 0) {
        const size_t bit = static_cast<size_t>(__builtin_ctzll(word));
        fn((w << 6) + bit);
        word &= word - 1;
      }
    }
  }

  /// Heap bytes of the word storage, retired growth buffers included.
  size_t MemoryBytes() const { return words_.MemoryBytes(); }

  /// Pre-allocates capacity for `size` bits so that subsequent Grow calls
  /// up to that size extend in place (no buffer swap, no retired copy).
  void Reserve(size_t size) { words_.Reserve((size + 63) / 64); }

  /// Resizes to `size` bits, zeroing everything. Single-thread use only.
  void Resize(size_t size) {
    const size_t num_words = (size + 63) / 64;
    words_.Reserve(num_words);
    words_.GrowTo(num_words, 0);
    ClearAll();
    size_.store(size, std::memory_order_relaxed);
  }

  /// Extends to `size` bits, preserving existing bits; new bits are zero.
  /// No-op when already at least `size` bits. Publication-safe: concurrent
  /// readers of bits below their own published bound stay valid (new words
  /// are zero-filled before the size is release-published, and growth past
  /// capacity retires the old word buffer instead of freeing it).
  void Grow(size_t size) {
    if (size <= this->size()) return;
    words_.GrowTo((size + 63) / 64, 0);
    size_.store(size, std::memory_order_release);
  }

  /// Appends [size:u64][words] to the writer (snapshot persistence of the
  /// engine tombstone bitmap).
  void Serialize(ByteWriter* writer) const;

  /// Parses a vector written by Serialize; DataLoss on truncation, a word
  /// count that mismatches the bit count, or set bits past `size`.
  static util::StatusOr<BitVector> Deserialize(ByteReader* reader);

 private:
  uint64_t LoadWord(size_t w, std::memory_order order) const {
    // atomic_ref<const T> is not available until C++26; the const_cast is
    // sound because only load() is performed.
    std::atomic_ref<uint64_t> word(
        const_cast<uint64_t*>(words_.data())[w]);
    return word.load(order);
  }

  std::atomic<size_t> size_{0};
  PublishedArray<uint64_t> words_;
};

/// Duplicate-elimination set over ids [0, capacity).
///
/// Insert() is the alpha-cost operation of the cost model: one bit probe
/// plus, for first occurrences, a push onto the touched list. Reset() undoes
/// only the touched bits, so a VisitedSet can be reused across queries with
/// cost proportional to the previous candidate set, not to n. A VisitedSet
/// is thread-private scratch; only the tombstone argument of
/// InsertSpanFiltered may be shared with concurrent writers.
class VisitedSet {
 public:
  VisitedSet() = default;

  /// Creates a set over ids [0, capacity).
  explicit VisitedSet(size_t capacity) : bits_(capacity) {
    touched_.reserve(64);
  }

  /// Capacity (exclusive upper bound on ids).
  size_t capacity() const { return bits_.size(); }

  /// Inserts id; returns true if it was newly inserted (first occurrence).
  bool Insert(uint32_t id) {
    if (bits_.TestAndSet(id)) return false;
    touched_.push_back(id);
    return true;
  }

  /// Bulk insert of one bucket's ids: equivalent to Insert() on each id in
  /// order, with the bit words prefetched a few probes ahead (bucket ids
  /// land on random words, so every probe is otherwise a cold cache miss).
  void InsertSpan(std::span<const uint32_t> ids) {
    constexpr size_t kPrefetchAhead = 8;
    const size_t n = ids.size();
    for (size_t j = 0; j < n; ++j) {
      if (j + kPrefetchAhead < n) {
        bits_.PrefetchWord(ids[j + kPrefetchAhead], /*for_write=*/true);
      }
      Insert(ids[j]);
    }
  }

  /// Like InsertSpan, but skips ids whose `tombstones` bit is set (the
  /// mutable-index probe path); the tombstone word and the dedup word are
  /// both prefetched ahead of the probe. The tombstone reads are
  /// acquire-ordered, so deletes published before this query's epoch are
  /// always honored even while a writer marks new ones.
  void InsertSpanFiltered(std::span<const uint32_t> ids,
                          const BitVector& tombstones) {
    constexpr size_t kPrefetchAhead = 8;
    const size_t n = ids.size();
    for (size_t j = 0; j < n; ++j) {
      if (j + kPrefetchAhead < n) {
        const uint32_t ahead = ids[j + kPrefetchAhead];
        tombstones.PrefetchWord(ahead);  // read-shared across query threads
        bits_.PrefetchWord(ahead, /*for_write=*/true);
      }
      if (!tombstones.TestAcquire(ids[j])) Insert(ids[j]);
    }
  }

  /// Whether id has been inserted since the last Reset().
  bool Contains(uint32_t id) const { return bits_.Get(id); }

  /// Ids inserted since the last Reset(), in first-occurrence order. This
  /// is the flat candidate buffer the LSH query path hands to the
  /// block-batched verifier (core/kernels.h VerifyCandidates).
  const std::vector<uint32_t>& touched() const { return touched_; }

  /// Number of distinct ids inserted since the last Reset().
  size_t size() const { return touched_.size(); }

  /// Clears only the bits touched since the last Reset(). O(size()).
  void Reset() {
    for (uint32_t id : touched_) bits_.Clear(id);
    touched_.clear();
  }

  /// Re-targets the set to a new capacity and clears it fully.
  void Resize(size_t capacity) {
    bits_.Resize(capacity);
    touched_.clear();
  }

 private:
  BitVector bits_;
  std::vector<uint32_t> touched_;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_BIT_VECTOR_H_
