// Dense bit vector and the duplicate-elimination set used on the LSH query
// hot path.
//
// Step S2 of LSH-based search (paper §3.1) merges the L query buckets while
// removing duplicates. The per-collision cost of that merge is the alpha
// constant in the cost model, so the structure must be O(1) per probe with
// a tiny constant: VisitedSet is a bit vector plus a touched-id list so that
// clearing between queries is O(#touched), not O(n).

#ifndef HYBRIDLSH_UTIL_BIT_VECTOR_H_
#define HYBRIDLSH_UTIL_BIT_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace util {

/// Fixed-size dense bit vector.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return size_; }

  /// Returns bit i.
  bool Get(size_t i) const {
    HLSH_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets bit i to one.
  void Set(size_t i) {
    HLSH_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  /// Sets bit i to zero.
  void Clear(size_t i) {
    HLSH_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Prefetches the word holding bit i (bulk random-probe loops issue this
  /// a few ids ahead of the matching Get/Set/TestAndSet). Pass
  /// for_write=true only when the probe will modify the word: a
  /// write-intent prefetch requests exclusive cache-line ownership, which
  /// would make a read-shared bitmap (e.g. the engine-wide tombstones)
  /// ping-pong between concurrently querying cores.
  void PrefetchWord(size_t i, bool for_write = false) const {
    const uint64_t* word = words_.data() + (i >> 6);
    if (for_write) {
      __builtin_prefetch(word, /*rw=*/1, /*locality=*/1);
    } else {
      __builtin_prefetch(word, /*rw=*/0, /*locality=*/1);
    }
  }

  /// Sets bit i and returns its previous value (single word access).
  bool TestAndSet(size_t i) {
    HLSH_DCHECK(i < size_);
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    const bool was_set = (word & mask) != 0;
    word |= mask;
    return was_set;
  }

  /// Zeroes every bit. O(size/64).
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of one bits. O(size/64).
  size_t Count() const;

  /// Heap bytes of the word storage (memory accounting).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Resizes to `size` bits; new bits are zero.
  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  /// Extends to `size` bits, preserving existing bits; new bits are zero.
  /// No-op when already at least `size` bits.
  void Grow(size_t size) {
    if (size <= size_) return;
    size_ = size;
    words_.resize((size + 63) / 64, 0);
  }

  /// Appends [size:u64][words] to the writer (snapshot persistence of the
  /// engine tombstone bitmap).
  void Serialize(ByteWriter* writer) const;

  /// Parses a vector written by Serialize; DataLoss on truncation, a word
  /// count that mismatches the bit count, or set bits past `size`.
  static util::StatusOr<BitVector> Deserialize(ByteReader* reader);

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Duplicate-elimination set over ids [0, capacity).
///
/// Insert() is the alpha-cost operation of the cost model: one bit probe
/// plus, for first occurrences, a push onto the touched list. Reset() undoes
/// only the touched bits, so a VisitedSet can be reused across queries with
/// cost proportional to the previous candidate set, not to n.
class VisitedSet {
 public:
  VisitedSet() = default;

  /// Creates a set over ids [0, capacity).
  explicit VisitedSet(size_t capacity) : bits_(capacity) {
    touched_.reserve(64);
  }

  /// Capacity (exclusive upper bound on ids).
  size_t capacity() const { return bits_.size(); }

  /// Inserts id; returns true if it was newly inserted (first occurrence).
  bool Insert(uint32_t id) {
    if (bits_.TestAndSet(id)) return false;
    touched_.push_back(id);
    return true;
  }

  /// Bulk insert of one bucket's ids: equivalent to Insert() on each id in
  /// order, with the bit words prefetched a few probes ahead (bucket ids
  /// land on random words, so every probe is otherwise a cold cache miss).
  void InsertSpan(std::span<const uint32_t> ids) {
    constexpr size_t kPrefetchAhead = 8;
    const size_t n = ids.size();
    for (size_t j = 0; j < n; ++j) {
      if (j + kPrefetchAhead < n) {
        bits_.PrefetchWord(ids[j + kPrefetchAhead], /*for_write=*/true);
      }
      Insert(ids[j]);
    }
  }

  /// Like InsertSpan, but skips ids whose `tombstones` bit is set (the
  /// mutable-index probe path); the tombstone word and the dedup word are
  /// both prefetched ahead of the probe.
  void InsertSpanFiltered(std::span<const uint32_t> ids,
                          const BitVector& tombstones) {
    constexpr size_t kPrefetchAhead = 8;
    const size_t n = ids.size();
    for (size_t j = 0; j < n; ++j) {
      if (j + kPrefetchAhead < n) {
        const uint32_t ahead = ids[j + kPrefetchAhead];
        tombstones.PrefetchWord(ahead);  // read-shared across query threads
        bits_.PrefetchWord(ahead, /*for_write=*/true);
      }
      if (!tombstones.Get(ids[j])) Insert(ids[j]);
    }
  }

  /// Whether id has been inserted since the last Reset().
  bool Contains(uint32_t id) const { return bits_.Get(id); }

  /// Ids inserted since the last Reset(), in first-occurrence order. This
  /// is the flat candidate buffer the LSH query path hands to the
  /// block-batched verifier (core/kernels.h VerifyCandidates).
  const std::vector<uint32_t>& touched() const { return touched_; }

  /// Number of distinct ids inserted since the last Reset().
  size_t size() const { return touched_.size(); }

  /// Clears only the bits touched since the last Reset(). O(size()).
  void Reset() {
    for (uint32_t id : touched_) bits_.Clear(id);
    touched_.clear();
  }

  /// Re-targets the set to a new capacity and clears it fully.
  void Resize(size_t capacity) {
    bits_.Resize(capacity);
    touched_.clear();
  }

 private:
  BitVector bits_;
  std::vector<uint32_t> touched_;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_BIT_VECTOR_H_
