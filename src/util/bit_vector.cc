#include "util/bit_vector.h"

#include <algorithm>
#include <bit>

namespace hybridlsh {
namespace util {

size_t BitVector::Count() const {
  size_t total = 0;
  for (uint64_t word : words_.span()) {
    total += static_cast<size_t>(std::popcount(word));
  }
  return total;
}

namespace {

// Number of 64-bit words holding `bits` bits.
size_t WordCount(size_t bits) { return (bits + 63) / 64; }

// Mask keeping only the bits of a word that lie below bit index `bits`
// (all ones when `bits` is a multiple of 64).
uint64_t TailMask(size_t bits) {
  return (bits & 63) == 0 ? ~uint64_t{0} : ~uint64_t{0} >> (64 - (bits & 63));
}

}  // namespace

void BitVector::AndWith(const BitVector& other) {
  uint64_t* words = words_.mutable_data();
  const size_t my_words = WordCount(size());
  const size_t common = std::min(my_words, WordCount(other.size()));
  for (size_t w = 0; w < common; ++w) {
    words[w] &= other.LoadWord(w, std::memory_order_acquire);
  }
  // Positions >= other.size() intersect with an implicit zero. Within the
  // last common word, other's own tail invariant (no bits past its size)
  // already clears them; whole words past other's storage go to zero here.
  for (size_t w = common; w < my_words; ++w) words[w] = 0;
}

void BitVector::OrWith(const BitVector& other) {
  uint64_t* words = words_.mutable_data();
  const size_t my_words = WordCount(size());
  const size_t common = std::min(my_words, WordCount(other.size()));
  for (size_t w = 0; w < common; ++w) {
    words[w] |= other.LoadWord(w, std::memory_order_acquire);
  }
  // A longer `other` may have set bits in our last word past size(); re-mask
  // so the "no bits past size()" invariant survives.
  if (my_words > 0 && common == my_words) {
    words[my_words - 1] &= TailMask(size());
  }
}

void BitVector::AndWithNot(const BitVector& other) {
  uint64_t* words = words_.mutable_data();
  const size_t common =
      std::min(WordCount(size()), WordCount(other.size()));
  for (size_t w = 0; w < common; ++w) {
    words[w] &= ~other.LoadWord(w, std::memory_order_acquire);
  }
  // Words past other's coverage are untouched: a bit the operand never
  // covered (e.g. an id inserted after the tombstone map was snapshotted)
  // cannot be marked dead.
}

size_t BitVector::CountAnd(const BitVector& other) const {
  const size_t common =
      std::min(WordCount(size()), WordCount(other.size()));
  size_t total = 0;
  for (size_t w = 0; w < common; ++w) {
    total += static_cast<size_t>(
        std::popcount(LoadWord(w, std::memory_order_acquire) &
                      other.LoadWord(w, std::memory_order_acquire)));
  }
  return total;
}

void BitVector::Serialize(ByteWriter* writer) const {
  writer->WriteU64(size());
  writer->WriteArray<uint64_t>(words_.span());
}

util::StatusOr<BitVector> BitVector::Deserialize(ByteReader* reader) {
  uint64_t size = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&size));
  // size / 64 (not (size + 63) / 64): the latter wraps for sizes near
  // 2^64, accepting a huge bit count backed by zero words.
  const uint64_t num_words = size / 64 + (size % 64 != 0 ? 1 : 0);
  std::vector<uint64_t> words;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(num_words, &words));
  // Bits past `size` must be zero — Grow and Count both assume it.
  if (size % 64 != 0 && !words.empty() &&
      (words.back() >> (size % 64)) != 0) {
    return util::Status::DataLoss("bit vector has set bits past its size");
  }
  BitVector bits;
  bits.words_.Assign(words);
  bits.size_.store(static_cast<size_t>(size), std::memory_order_relaxed);
  return bits;
}

}  // namespace util
}  // namespace hybridlsh
