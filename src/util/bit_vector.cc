#include "util/bit_vector.h"

#include <bit>

namespace hybridlsh {
namespace util {

size_t BitVector::Count() const {
  size_t total = 0;
  for (uint64_t word : words_.span()) {
    total += static_cast<size_t>(std::popcount(word));
  }
  return total;
}

void BitVector::Serialize(ByteWriter* writer) const {
  writer->WriteU64(size());
  writer->WriteArray<uint64_t>(words_.span());
}

util::StatusOr<BitVector> BitVector::Deserialize(ByteReader* reader) {
  uint64_t size = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&size));
  // size / 64 (not (size + 63) / 64): the latter wraps for sizes near
  // 2^64, accepting a huge bit count backed by zero words.
  const uint64_t num_words = size / 64 + (size % 64 != 0 ? 1 : 0);
  std::vector<uint64_t> words;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(num_words, &words));
  // Bits past `size` must be zero — Grow and Count both assume it.
  if (size % 64 != 0 && !words.empty() &&
      (words.back() >> (size % 64)) != 0) {
    return util::Status::DataLoss("bit vector has set bits past its size");
  }
  BitVector bits;
  bits.words_.Assign(words);
  bits.size_.store(static_cast<size_t>(size), std::memory_order_relaxed);
  return bits;
}

}  // namespace util
}  // namespace hybridlsh
