#include "util/bit_vector.h"

#include <bit>

namespace hybridlsh {
namespace util {

size_t BitVector::Count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += static_cast<size_t>(std::popcount(word));
  return total;
}

}  // namespace util
}  // namespace hybridlsh
