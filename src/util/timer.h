// Timing utilities for the benchmark harness and the cost-model calibrator.
//
// WallTimer measures wall-clock time (steady_clock); CpuTimer measures
// process CPU time (CLOCK_PROCESS_CPUTIME_ID), matching the paper's
// "CPU Time (s)" axis in Figure 2. Query execution is single-threaded, so
// the two agree up to scheduler noise; benches report CPU time.

#ifndef HYBRIDLSH_UTIL_TIMER_H_
#define HYBRIDLSH_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace hybridlsh {
namespace util {

/// Wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-CPU-time stopwatch. Starts on construction.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Now(); }

  /// CPU seconds consumed by the process since construction / Restart().
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

  double start_;
};

/// Adds the scope's wall-clock duration to *sink on destruction.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(double* sink) : sink_(sink) {}
  ~ScopedWallTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_TIMER_H_
