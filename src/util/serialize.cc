#include "util/serialize.h"

#include <fstream>

namespace hybridlsh {
namespace util {

util::Status WriteFileBytes(const std::string& path,
                            std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::NotFound("cannot open file: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return util::Status::DataLoss("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::NotFound("cannot open file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return util::Status::DataLoss("short read: " + path);
  }
  return bytes;
}

}  // namespace util
}  // namespace hybridlsh
