#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace hybridlsh {
namespace util {

namespace {

/// fsyncs the directory holding `path` so a rename into it is durable.
util::Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return util::Status::NotFound("cannot open directory for sync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return util::Status::Internal("fsync failed on directory: " + dir);
  }
  return util::Status::Ok();
}

}  // namespace

util::Status WriteFileBytes(const std::string& path,
                            std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::NotFound("cannot open file: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return util::Status::DataLoss("short write: " + path);
  return util::Status::Ok();
}

util::Status AtomicWriteFileBytes(const std::string& path,
                                  std::span<const uint8_t> bytes,
                                  std::span<const uint8_t> trailer) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::NotFound("cannot open file for write: " + tmp);
  }
  for (const std::span<const uint8_t> chunk : {bytes, trailer}) {
    size_t written = 0;
    while (written < chunk.size()) {
      const ssize_t n =
          ::write(fd, chunk.data() + written, chunk.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        std::remove(tmp.c_str());
        return util::Status::DataLoss("short write: " + tmp);
      }
      written += static_cast<size_t>(n);
    }
  }
  // The data must be on disk BEFORE the rename publishes it: rename is
  // atomic in the namespace, but without this fsync a crash could leave the
  // new name pointing at unwritten blocks.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return util::Status::Internal("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return util::Status::Internal("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return SyncParentDirectory(path);
}

util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::NotFound("cannot open file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return util::Status::DataLoss("short read: " + path);
  }
  return bytes;
}

}  // namespace util
}  // namespace hybridlsh
