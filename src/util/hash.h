// Non-cryptographic 64-bit hashing.
//
// Used for (a) HyperLogLog element hashing — point ids must map to uniform
// 64-bit values, (b) reducing concatenated LSH signatures to bucket keys,
// and (c) hash-combining in containers. All functions are pure and
// deterministic across platforms (no seeds from global state).

#ifndef HYBRIDLSH_UTIL_HASH_H_
#define HYBRIDLSH_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace hybridlsh {
namespace util {

/// MurmurHash3's 64-bit finalizer ("fmix64"). A fast bijective mixer whose
/// output bits are uniform for sequential inputs — exactly what HLL needs
/// when hashing point ids 0..n-1.
inline uint64_t Fmix64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

/// Hashes a 64-bit value under a seed. Distinct seeds give effectively
/// independent hash functions (used to decorrelate HLL streams in tests).
inline uint64_t HashU64(uint64_t value, uint64_t seed = 0) {
  return Fmix64(value + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Combines two 64-bit hashes (boost::hash_combine's 64-bit variant).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (Fmix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

/// MurmurHash64A (Appleby) over a byte buffer. Used for hashing string keys
/// and serialized LSH signatures that exceed one word.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_HASH_H_
