#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hybridlsh {
namespace util {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary Summary::Of(const std::vector<double>& values) {
  Summary s;
  RunningStat stat;
  for (double v : values) stat.Add(v);
  s.count = stat.count();
  if (s.count == 0) return s;
  s.mean = stat.mean();
  s.stddev = stat.stddev();
  s.min = stat.min();
  s.max = stat.max();
  s.p50 = Percentile(values, 0.5);
  s.p90 = Percentile(values, 0.9);
  return s;
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6g sd=%.6g min=%.6g p50=%.6g p90=%.6g max=%.6g",
                static_cast<unsigned long long>(count), mean, stddev, min, p50,
                p90, max);
  return std::string(buf);
}

}  // namespace util
}  // namespace hybridlsh
