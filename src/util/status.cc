#include "util/status.h"

namespace hybridlsh {
namespace util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace util
}  // namespace hybridlsh
