#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace hybridlsh {
namespace util {

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

util::StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::NotFound("cannot open file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::Internal("fstat failed: " + path);
  }
  MappedFile file;
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      return util::Status::Internal("mmap failed: " + path);
    }
    file.data_ = static_cast<const uint8_t*>(mapping);
    file.size_ = size;
  }
  ::close(fd);  // the mapping keeps its own reference
  return file;
}

}  // namespace util
}  // namespace hybridlsh
