// Read-only memory-mapped file.
//
// The snapshot loader's --mmap path (engine/snapshot.h) maps each snapshot
// file instead of reading it into a heap buffer: parsing then runs straight
// over the page cache, the kernel pages data in on first touch, and large
// payload arrays (dataset rows, CSR ids) are copied exactly once — from the
// mapping into their final structure — instead of twice.

#ifndef HYBRIDLSH_UTIL_MMAP_FILE_H_
#define HYBRIDLSH_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace hybridlsh {
namespace util {

/// RAII read-only mapping of a whole file. Movable, not copyable.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. An empty file maps to an empty span (no mapping
  /// is created; mmap of length 0 is invalid).
  static util::StatusOr<MappedFile> Open(const std::string& path);

  /// The mapped bytes. Valid while this object lives.
  std::span<const uint8_t> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }
  bool is_mapped() const { return data_ != nullptr; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_MMAP_FILE_H_
