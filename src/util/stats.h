// Streaming and batch descriptive statistics for experiment reporting.
//
// RunningStat implements Welford's online algorithm (numerically stable
// mean/variance in one pass); Summary renders the avg/max/min rows the
// paper's tables and Figure 3 report.

#ifndef HYBRIDLSH_UTIL_STATS_H_
#define HYBRIDLSH_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hybridlsh {
namespace util {

/// One-pass mean/variance/min/max accumulator (Welford).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Mean of the observations (0 if empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than two observations).
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Smallest observation (+inf if empty).
  double min() const { return min_; }
  /// Largest observation (-inf if empty).
  double max() const { return max_; }
  /// Sum of the observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

  /// Resets to the empty state.
  void Reset() { *this = RunningStat(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300 * 1e300;    // +inf without <limits> in a header
  double max_ = -(1e300 * 1e300);  // -inf
};

/// Returns the p-quantile (0 <= p <= 1) of `values` by linear interpolation.
/// Sorts a copy; O(n log n). Returns 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Fixed-format descriptive summary of a sample.
struct Summary {
  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;

  /// Computes all fields from a sample.
  static Summary Of(const std::vector<double>& values);

  /// Renders "n=… mean=… sd=… min=… p50=… p90=… max=…".
  std::string ToString() const;
};

}  // namespace util
}  // namespace hybridlsh

#endif  // HYBRIDLSH_UTIL_STATS_H_
