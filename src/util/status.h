// Lightweight error-handling primitives for the hybridlsh library.
//
// Library code does not throw exceptions (Google C++ style). Fallible
// operations return Status or StatusOr<T>; programming errors are caught by
// HLSH_CHECK / HLSH_DCHECK, which abort with a diagnostic.

#ifndef HYBRIDLSH_UTIL_STATUS_H_
#define HYBRIDLSH_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hybridlsh {
namespace util {

/// Canonical error space, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kDataLoss,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail without a payload.
///
/// A Status is either OK (no message) or an error code plus a message that
/// describes what went wrong. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code must
  /// not carry a message.
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of an operation that produces a T or fails with a Status.
///
/// Accessing the value of a non-OK StatusOr aborts; check ok() first or use
/// HLSH_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK StatusOr needs
  /// a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      std::fprintf(stderr, "StatusOr constructed from OK status without value\n");
      std::abort();
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr access on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace hybridlsh

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes;
/// use for invariants whose violation would corrupt results.
#define HLSH_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HLSH_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like HLSH_CHECK but compiled out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define HLSH_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define HLSH_DCHECK(cond) HLSH_CHECK(cond)
#endif

/// Propagates an error Status from the current function.
#define HLSH_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::hybridlsh::util::Status _hlsh_status = (expr); \
    if (!_hlsh_status.ok()) return _hlsh_status;    \
  } while (0)

#endif  // HYBRIDLSH_UTIL_STATUS_H_
