#include "util/hash.h"

#include <cstring>

namespace hybridlsh {
namespace util {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // MurmurHash64A, Austin Appleby, public domain.
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;

  uint64_t h = seed ^ (len * kMul);

  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  const size_t num_blocks = len / 8;
  for (size_t i = 0; i < num_blocks; ++i) {
    uint64_t k;
    std::memcpy(&k, bytes + i * 8, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }

  const unsigned char* tail = bytes + num_blocks * 8;
  switch (len & 7) {
    case 7:
      h ^= static_cast<uint64_t>(tail[6]) << 48;
      [[fallthrough]];
    case 6:
      h ^= static_cast<uint64_t>(tail[5]) << 40;
      [[fallthrough]];
    case 5:
      h ^= static_cast<uint64_t>(tail[4]) << 32;
      [[fallthrough]];
    case 4:
      h ^= static_cast<uint64_t>(tail[3]) << 24;
      [[fallthrough]];
    case 3:
      h ^= static_cast<uint64_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      h ^= static_cast<uint64_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      h ^= static_cast<uint64_t>(tail[0]);
      h *= kMul;
  }

  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

}  // namespace util
}  // namespace hybridlsh
