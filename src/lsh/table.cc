#include "lsh/table.h"

#include <algorithm>
#include <numeric>

namespace hybridlsh {
namespace lsh {

void LshTable::Build(std::span<const uint64_t> keys, const Options& options) {
  // Kept separate from BuildFromEntries: here ids are the contiguous range
  // id_base + i, so the sort can tie-break on the order index directly and
  // no id array needs materializing — this is the hot per-table path of
  // every static index build.
  bucket_index_.clear();
  offsets_.clear();
  ids_.clear();
  sketch_of_bucket_.clear();
  sketches_.clear();
  max_bucket_size_ = 0;

  const size_t n = keys.size();
  HLSH_CHECK(static_cast<uint64_t>(options.id_base) + n <=
             static_cast<uint64_t>(UINT32_MAX) + 1);
  const size_t m = static_cast<size_t>(1) << options.hll_precision;
  const size_t threshold = options.small_bucket_threshold == kThresholdAuto
                               ? m
                               : options.small_bucket_threshold;

  // Sort point ids by bucket key to group buckets contiguously.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&keys](uint32_t a, uint32_t b) {
    return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
  });

  ids_.reserve(n);
  offsets_.push_back(0);
  size_t i = 0;
  while (i < n) {
    const uint64_t key = keys[order[i]];
    const size_t begin = i;
    while (i < n && keys[order[i]] == key) ++i;
    const size_t bucket_size = i - begin;

    const uint32_t ordinal = static_cast<uint32_t>(offsets_.size() - 1);
    bucket_index_.emplace(key, ordinal);
    for (size_t j = begin; j < i; ++j)
      ids_.push_back(options.id_base + order[j]);
    offsets_.push_back(ids_.size());
    max_bucket_size_ = std::max(max_bucket_size_, bucket_size);

    // Materialize a sketch only for large buckets (paper §3.2 trick).
    if (bucket_size >= threshold) {
      hll::HyperLogLog sketch(options.hll_precision);
      for (size_t j = begin; j < i; ++j)
        sketch.AddPoint(options.id_base + order[j]);
      sketch_of_bucket_.push_back(static_cast<int32_t>(sketches_.size()));
      sketches_.push_back(std::move(sketch));
    } else {
      sketch_of_bucket_.push_back(-1);
    }
  }
}

void LshTable::BuildFromEntries(std::span<const uint64_t> keys,
                                std::span<const uint32_t> ids,
                                const Options& options) {
  HLSH_CHECK(keys.size() == ids.size());
  bucket_index_.clear();
  offsets_.clear();
  ids_.clear();
  sketch_of_bucket_.clear();
  sketches_.clear();
  max_bucket_size_ = 0;

  const size_t n = keys.size();
  const size_t m = static_cast<size_t>(1) << options.hll_precision;
  const size_t threshold = options.small_bucket_threshold == kThresholdAuto
                               ? m
                               : options.small_bucket_threshold;

  // Sort entries by bucket key to group buckets contiguously; break ties by
  // id so the layout is independent of the input entry order.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&keys, &ids](uint32_t a, uint32_t b) {
    return keys[a] < keys[b] || (keys[a] == keys[b] && ids[a] < ids[b]);
  });

  ids_.reserve(n);
  offsets_.push_back(0);
  size_t i = 0;
  while (i < n) {
    const uint64_t key = keys[order[i]];
    const size_t begin = i;
    while (i < n && keys[order[i]] == key) ++i;
    const size_t bucket_size = i - begin;

    const uint32_t ordinal = static_cast<uint32_t>(offsets_.size() - 1);
    bucket_index_.emplace(key, ordinal);
    for (size_t j = begin; j < i; ++j) ids_.push_back(ids[order[j]]);
    offsets_.push_back(ids_.size());
    max_bucket_size_ = std::max(max_bucket_size_, bucket_size);

    // Materialize a sketch only for large buckets (paper §3.2 trick).
    if (bucket_size >= threshold) {
      hll::HyperLogLog sketch(options.hll_precision);
      for (size_t j = begin; j < i; ++j) sketch.AddPoint(ids[order[j]]);
      sketch_of_bucket_.push_back(static_cast<int32_t>(sketches_.size()));
      sketches_.push_back(std::move(sketch));
    } else {
      sketch_of_bucket_.push_back(-1);
    }
  }
}

void LshTable::ExportEntries(std::vector<uint64_t>* keys,
                             std::vector<uint32_t>* ids,
                             const util::BitVector* tombstones) const {
  const size_t num_buckets = offsets_.empty() ? 0 : offsets_.size() - 1;
  std::vector<uint64_t> key_of_ordinal(num_buckets, 0);
  for (const auto& [key, ordinal] : bucket_index_) key_of_ordinal[ordinal] = key;
  for (size_t b = 0; b < num_buckets; ++b) {
    for (size_t j = offsets_[b]; j < offsets_[b + 1]; ++j) {
      const uint32_t id = ids_[j];
      if (tombstones != nullptr && id < tombstones->size() &&
          tombstones->Get(id)) {
        continue;
      }
      keys->push_back(key_of_ordinal[b]);
      ids->push_back(id);
    }
  }
}

LshTable::BucketView LshTable::Lookup(uint64_t key) const {
  const auto it = bucket_index_.find(key);
  if (it == bucket_index_.end()) return BucketView{};
  const uint32_t ordinal = it->second;
  BucketView view;
  view.ids = {ids_.data() + offsets_[ordinal],
              offsets_[ordinal + 1] - offsets_[ordinal]};
  const int32_t sketch_idx = sketch_of_bucket_[ordinal];
  view.sketch = sketch_idx >= 0 ? &sketches_[static_cast<size_t>(sketch_idx)]
                                : nullptr;
  return view;
}

size_t LshTable::MemoryBytes() const {
  size_t total = ids_.size() * sizeof(uint32_t) +
                 offsets_.size() * sizeof(size_t) +
                 sketch_of_bucket_.size() * sizeof(int32_t) +
                 bucket_index_.size() *
                     (sizeof(uint64_t) + sizeof(uint32_t) + sizeof(void*));
  total += SketchBytes();
  return total;
}

size_t LshTable::SketchBytes() const {
  size_t total = 0;
  for (const auto& sketch : sketches_) total += sketch.MemoryBytes();
  return total;
}

void LshTable::Serialize(util::ByteWriter* writer) const {
  const size_t num_buckets = offsets_.empty() ? 0 : offsets_.size() - 1;
  writer->WriteU64(num_buckets);
  writer->WriteU64(ids_.size());
  writer->WriteU64(max_bucket_size_);

  // Bucket keys in ordinal order (inverted from the lookup map).
  std::vector<uint64_t> keys(num_buckets, 0);
  for (const auto& [key, ordinal] : bucket_index_) keys[ordinal] = key;
  writer->WriteArray<uint64_t>(keys);
  if (offsets_.empty()) {
    // Never-built table: normalize to the canonical empty CSR.
    writer->WriteArray<size_t>(std::vector<size_t>{0});
  } else {
    writer->WriteArray<size_t>(offsets_);
  }
  writer->WriteArray<uint32_t>(ids_);
  writer->WriteArray<int32_t>(sketch_of_bucket_);

  writer->WriteU64(sketches_.size());
  for (const auto& sketch : sketches_) {
    writer->WriteBlob(sketch.Serialize());
  }
}

util::StatusOr<LshTable> LshTable::Deserialize(util::ByteReader* reader) {
  LshTable table;
  uint64_t num_buckets = 0, num_ids = 0, max_bucket = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_buckets));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_ids));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&max_bucket));
  table.max_bucket_size_ = max_bucket;

  std::vector<uint64_t> keys;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(num_buckets, &keys));
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<size_t>(num_buckets == 0 ? 1 : num_buckets + 1,
                                &table.offsets_));
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint32_t>(num_ids, &table.ids_));
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<int32_t>(num_buckets, &table.sketch_of_bucket_));

  // Validate CSR structure.
  if (table.offsets_.front() != 0 || table.offsets_.back() != num_ids) {
    return util::Status::DataLoss("table offsets do not bracket the ids");
  }
  for (size_t b = 1; b < table.offsets_.size(); ++b) {
    if (table.offsets_[b] < table.offsets_[b - 1]) {
      return util::Status::DataLoss("table offsets are not monotone");
    }
  }

  uint64_t num_sketches = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_sketches));
  table.sketches_.reserve(num_sketches);
  std::vector<uint8_t> blob;
  for (uint64_t s = 0; s < num_sketches; ++s) {
    HLSH_RETURN_IF_ERROR(reader->ReadBlob(&blob));
    auto sketch = hll::HyperLogLog::Deserialize(blob);
    if (!sketch.ok()) return sketch.status();
    table.sketches_.push_back(std::move(*sketch));
  }
  for (int32_t index : table.sketch_of_bucket_) {
    if (index >= 0 && static_cast<uint64_t>(index) >= num_sketches) {
      return util::Status::DataLoss("sketch index out of range");
    }
  }

  table.bucket_index_.reserve(num_buckets);
  for (uint64_t b = 0; b < num_buckets; ++b) {
    if (!table.bucket_index_.emplace(keys[b], static_cast<uint32_t>(b)).second) {
      return util::Status::DataLoss("duplicate bucket key");
    }
  }
  return table;
}

void DynamicLshTable::ExportEntries(std::vector<uint64_t>* keys,
                                    std::vector<uint32_t>* ids,
                                    const util::BitVector* tombstones) const {
  for (const auto& [key, bucket] : buckets_) {
    for (const uint32_t id : bucket) {
      if (tombstones != nullptr && id < tombstones->size() &&
          tombstones->Get(id)) {
        continue;
      }
      keys->push_back(key);
      ids->push_back(id);
    }
  }
}

size_t DynamicLshTable::MemoryBytes() const {
  size_t total = buckets_.size() *
                 (sizeof(uint64_t) + sizeof(std::vector<uint32_t>) +
                  sizeof(void*));
  for (const auto& [key, bucket] : buckets_) {
    total += bucket.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace lsh
}  // namespace hybridlsh
