#include "lsh/params.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace hybridlsh {
namespace lsh {
namespace {

// Standard normal CDF at x.
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

}  // namespace

double GaussianCollisionProbability(double dist, double w) {
  HLSH_CHECK(w > 0);
  if (dist <= 0) return 1.0;
  const double t = w / dist;
  const double p = 1.0 - 2.0 * NormalCdf(-t) -
                   2.0 / (std::sqrt(2.0 * std::numbers::pi) * t) *
                       (1.0 - std::exp(-t * t / 2.0));
  return std::clamp(p, 0.0, 1.0);
}

double CauchyCollisionProbability(double dist, double w) {
  HLSH_CHECK(w > 0);
  if (dist <= 0) return 1.0;
  const double t = w / dist;
  const double p = 2.0 * std::atan(t) / std::numbers::pi -
                   std::log(1.0 + t * t) / (std::numbers::pi * t);
  return std::clamp(p, 0.0, 1.0);
}

double SimHashCollisionProbability(double cosine_dist) {
  const double cos_sim = std::clamp(1.0 - cosine_dist, -1.0, 1.0);
  return 1.0 - std::acos(cos_sim) / std::numbers::pi;
}

double BitSamplingCollisionProbability(double hamming_dist, double width_bits) {
  HLSH_CHECK(width_bits > 0);
  return std::clamp(1.0 - hamming_dist / width_bits, 0.0, 1.0);
}

double MinHashCollisionProbability(double jaccard_dist) {
  return std::clamp(1.0 - jaccard_dist, 0.0, 1.0);
}

util::StatusOr<int> AutoK(double p1, int num_tables, double delta) {
  if (num_tables < 1) {
    return util::Status::InvalidArgument("num_tables must be >= 1");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (p1 <= 0.0) {
    return util::Status::InvalidArgument(
        "collision probability at radius is zero; no k can satisfy delta");
  }
  if (p1 >= 1.0) return 1;  // colliding surely; one hash suffices
  // target: p1^k >= 1 - delta^(1/L)  <=>  k <= log(1 - delta^(1/L)) / log p1.
  const double target =
      1.0 - std::pow(delta, 1.0 / static_cast<double>(num_tables));
  const double k = std::log(target) / std::log(p1);
  // The paper (and E2LSH) rounds up; guard against k < 1.
  return std::max(1, static_cast<int>(std::ceil(k - 1e-9)));
}

double RecallLowerBound(int k, int num_tables, double p1) {
  p1 = std::clamp(p1, 0.0, 1.0);
  const double per_table = std::pow(p1, k);
  return 1.0 - std::pow(1.0 - per_table, num_tables);
}

}  // namespace lsh
}  // namespace hybridlsh
