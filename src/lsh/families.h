// The LSH families the paper evaluates, plus MinHash as an extension.
//
// Every family models the same compile-time interface consumed by
// LshIndex<Family> (see lsh/index.h):
//
//   using Point = ...;                  // the point handle it hashes
//   struct Functions { ... };          // k sampled atomic hash functions
//   Functions Sample(size_t k, util::Rng* rng) const;
//   void Signature(const Functions&, Point, std::span<int32_t> slots) const;
//   double CollisionProbability(double dist) const;   // p(dist), one function
//   double Distance(Point a, Point b) const;          // the paired metric
//   data::Metric metric() const;
//   ProbeKind probe_kind() / SignatureWithProbeCosts(...)  // multi-probe
//
// Paper §4 pairs: SimHash <-> cosine (Webspam), bit sampling <-> Hamming on
// 64-bit fingerprints (MNIST), Cauchy projections <-> L1 (CoverType),
// Gaussian projections <-> L2 (Corel), MinHash <-> Jaccard (extension).

#ifndef HYBRIDLSH_LSH_FAMILIES_H_
#define HYBRIDLSH_LSH_FAMILIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// How a family supports multi-probe perturbations.
enum class ProbeKind {
  /// Integer slots from floored projections: each slot can move -1 or +1,
  /// with query-directed costs (Lv et al.).
  kTwoSided,
  /// Binary slots: a perturbation flips a slot; cost is the hash margin
  /// (SimHash) or uniform (bit sampling).
  kFlip,
  /// No meaningful perturbation (MinHash).
  kNone,
};

/// SimHash / random-hyperplane LSH for cosine distance (Charikar 2002).
/// h(x) = sign(<a, x>), a ~ N(0, I).
class SimHashFamily {
 public:
  using Point = const float*;

  explicit SimHashFamily(size_t dim) : dim_(dim) { HLSH_CHECK(dim > 0); }

  /// k random hyperplanes (k x dim Gaussian matrix).
  struct Functions {
    util::FloatMatrix hyperplanes;
  };

  Functions Sample(size_t k, util::Rng* rng) const;

  /// slots[i] = 1 if <a_i, x> >= 0 else 0. Runs on the dispatched
  /// projection kernels (core/kernels.h), canonical 8-lane accumulation.
  void Signature(const Functions& fns, Point point,
                 std::span<int32_t> slots) const;

  /// Like Signature, also reporting |<a_i, x>| as the flip cost: the closer
  /// the point is to hyperplane i, the cheaper probing the flipped bucket.
  void SignatureWithProbeCosts(const Functions& fns, Point point,
                               std::span<int32_t> slots,
                               std::span<double> flip_costs) const;

  // Raw-projection split, used by the hash-once batch plan path
  // (lsh/index.h FunctionSet::ComputePlans): ProjectBatch pushes many
  // queries through the blocked matvec kernel at once, then the
  // *FromProjections finishers derive each query's slots/costs. Signature
  // == Project + SignatureFromProjections bit-exactly.

  /// proj[q*k + i] = <a_i, points[q]> for `count` queries (blocked kernel).
  void ProjectBatch(const Functions& fns, const Point* points, size_t count,
                    std::span<float> proj) const;
  void SignatureFromProjections(const Functions& fns,
                                std::span<const float> proj,
                                std::span<int32_t> slots) const;
  void SignatureWithProbeCostsFromProjections(
      const Functions& fns, std::span<const float> proj,
      std::span<int32_t> slots, std::span<double> flip_costs) const;

  double CollisionProbability(double cosine_dist) const;
  double Distance(Point a, Point b) const {
    return data::CosineDistance(a, b, dim_);
  }
  data::Metric metric() const { return data::Metric::kCosine; }
  ProbeKind probe_kind() const { return ProbeKind::kFlip; }
  size_t dim() const { return dim_; }

  /// Index-file tag and (de)serialization hooks (see lsh/index.h Save).
  static constexpr uint32_t kFamilyTag = 0x53494d48;  // "SIMH"
  void SaveFamily(util::ByteWriter* writer) const;
  static util::StatusOr<SimHashFamily> LoadFamily(util::ByteReader* reader);
  void SaveFunctions(const Functions& fns, util::ByteWriter* writer) const;
  util::StatusOr<Functions> LoadFunctions(util::ByteReader* reader) const;

 private:
  size_t dim_;
};

/// Which p-stable distribution drives a projection family.
enum class StableKind {
  kGaussian,  // 2-stable, L2 distance
  kCauchy,    // 1-stable, L1 distance
};

/// p-stable random projection LSH (Datar, Immorlica, Indyk, Mirrokni 2004).
/// h(x) = floor((<a, x> + b) / w), a ~ stable dist, b ~ U[0, w).
class PStableFamily {
 public:
  using Point = const float*;

  /// `w` is the quantization window. The paper ties w to the radius:
  /// w = 4r with k = 8 for L1, w = 2r with k = 7 for L2 (§4.1).
  PStableFamily(StableKind kind, size_t dim, double w)
      : kind_(kind), dim_(dim), w_(w) {
    HLSH_CHECK(dim > 0);
    HLSH_CHECK(w > 0);
  }

  /// Convenience constructors matching the paper's two uses.
  static PStableFamily L2(size_t dim, double w) {
    return PStableFamily(StableKind::kGaussian, dim, w);
  }
  static PStableFamily L1(size_t dim, double w) {
    return PStableFamily(StableKind::kCauchy, dim, w);
  }

  /// k projections (k x dim stable matrix) plus k offsets in [0, w).
  struct Functions {
    util::FloatMatrix projections;
    std::vector<float> offsets;
  };

  Functions Sample(size_t k, util::Rng* rng) const;

  /// slots[i] = floor((<a_i, x> + b_i) / w). Runs on the dispatched
  /// projection kernels (core/kernels.h), canonical 8-lane accumulation.
  void Signature(const Functions& fns, Point point,
                 std::span<int32_t> slots) const;

  /// Like Signature, also reporting the fractional position in the window:
  /// cost of moving slot i down is frac, up is 1 - frac (in window units).
  void SignatureWithProbeCosts(const Functions& fns, Point point,
                               std::span<int32_t> slots,
                               std::span<double> down_costs,
                               std::span<double> up_costs) const;

  // Raw-projection split for the batch plan path (see SimHashFamily).

  /// proj[q*k + i] = <a_i, points[q]> for `count` queries (blocked kernel).
  void ProjectBatch(const Functions& fns, const Point* points, size_t count,
                    std::span<float> proj) const;
  void SignatureFromProjections(const Functions& fns,
                                std::span<const float> proj,
                                std::span<int32_t> slots) const;
  void SignatureWithProbeCostsFromProjections(const Functions& fns,
                                              std::span<const float> proj,
                                              std::span<int32_t> slots,
                                              std::span<double> down_costs,
                                              std::span<double> up_costs) const;

  double CollisionProbability(double dist) const;
  double Distance(Point a, Point b) const {
    return kind_ == StableKind::kGaussian ? data::L2Distance(a, b, dim_)
                                          : data::L1Distance(a, b, dim_);
  }
  data::Metric metric() const {
    return kind_ == StableKind::kGaussian ? data::Metric::kL2
                                          : data::Metric::kL1;
  }
  ProbeKind probe_kind() const { return ProbeKind::kTwoSided; }
  size_t dim() const { return dim_; }
  double w() const { return w_; }
  StableKind kind() const { return kind_; }

  /// Index-file tag and (de)serialization hooks (see lsh/index.h Save).
  static constexpr uint32_t kFamilyTag = 0x50535442;  // "PSTB"
  void SaveFamily(util::ByteWriter* writer) const;
  static util::StatusOr<PStableFamily> LoadFamily(util::ByteReader* reader);
  void SaveFunctions(const Functions& fns, util::ByteWriter* writer) const;
  util::StatusOr<Functions> LoadFunctions(util::ByteReader* reader) const;

 private:
  StableKind kind_;
  size_t dim_;
  double w_;
};

/// Bit-sampling LSH for Hamming distance (Indyk & Motwani 1998).
/// h(x) = x[position] for a uniformly random bit position.
class BitSamplingFamily {
 public:
  using Point = const uint64_t*;

  /// `width_bits` is the code width D (e.g., 64 for the paper's MNIST
  /// SimHash fingerprints).
  explicit BitSamplingFamily(size_t width_bits)
      : width_bits_(width_bits), words_((width_bits + 63) / 64) {
    HLSH_CHECK(width_bits > 0);
  }

  /// k sampled bit positions (with replacement, as in the classic scheme).
  struct Functions {
    std::vector<uint32_t> positions;
  };

  Functions Sample(size_t k, util::Rng* rng) const;

  /// slots[i] = bit positions[i] of the code.
  void Signature(const Functions& fns, Point code,
                 std::span<int32_t> slots) const;

  /// Flip costs are uniform (a sampled bit carries no soft information).
  void SignatureWithProbeCosts(const Functions& fns, Point code,
                               std::span<int32_t> slots,
                               std::span<double> flip_costs) const;

  double CollisionProbability(double hamming_dist) const;
  double Distance(Point a, Point b) const {
    return data::HammingDistance(a, b, words_);
  }
  data::Metric metric() const { return data::Metric::kHamming; }
  ProbeKind probe_kind() const { return ProbeKind::kFlip; }
  size_t width_bits() const { return width_bits_; }
  size_t words_per_code() const { return words_; }

  /// Index-file tag and (de)serialization hooks (see lsh/index.h Save).
  static constexpr uint32_t kFamilyTag = 0x42495453;  // "BITS"
  void SaveFamily(util::ByteWriter* writer) const;
  static util::StatusOr<BitSamplingFamily> LoadFamily(util::ByteReader* reader);
  void SaveFunctions(const Functions& fns, util::ByteWriter* writer) const;
  util::StatusOr<Functions> LoadFunctions(util::ByteReader* reader) const;

 private:
  size_t width_bits_;
  size_t words_;
};

/// MinHash LSH for Jaccard distance (Broder et al. 1998), implemented with
/// seeded 64-bit hash functions instead of explicit permutations.
/// h(A) = min_{e in A} hash_seed(e).
class MinHashFamily {
 public:
  using Point = data::SparseDataset::Point;

  MinHashFamily() = default;

  /// k independent hash seeds.
  struct Functions {
    std::vector<uint64_t> seeds;
  };

  Functions Sample(size_t k, util::Rng* rng) const;

  /// slots[i] = low 32 bits of min hash under seed i (INT32_MAX sentinel for
  /// the empty set, which therefore collides only with other empty sets).
  void Signature(const Functions& fns, Point set,
                 std::span<int32_t> slots) const;

  double CollisionProbability(double jaccard_dist) const;
  double Distance(Point a, Point b) const {
    return data::JaccardDistance(a, b);
  }
  data::Metric metric() const { return data::Metric::kJaccard; }
  ProbeKind probe_kind() const { return ProbeKind::kNone; }

  /// Index-file tag and (de)serialization hooks (see lsh/index.h Save).
  static constexpr uint32_t kFamilyTag = 0x4d494e48;  // "MINH"
  void SaveFamily(util::ByteWriter* writer) const;
  static util::StatusOr<MinHashFamily> LoadFamily(util::ByteReader* reader);
  void SaveFunctions(const Functions& fns, util::ByteWriter* writer) const;
  util::StatusOr<Functions> LoadFunctions(util::ByteReader* reader) const;
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_FAMILIES_H_
