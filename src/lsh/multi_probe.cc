#include "lsh/multi_probe.h"

#include <algorithm>
#include <queue>

#include "util/status.h"

namespace hybridlsh {
namespace lsh {
namespace {

// A perturbation set as sorted indices into the cost-sorted atom array.
struct HeapEntry {
  double total_cost;
  std::vector<uint32_t> indices;  // strictly increasing

  bool operator>(const HeapEntry& other) const {
    return total_cost > other.total_cost;
  }
};

bool HasSlotConflict(const std::vector<uint32_t>& indices,
                     std::span<const ProbeAtom> sorted_atoms) {
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      if (sorted_atoms[indices[i]].slot == sorted_atoms[indices[j]].slot) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<ProbeSet> GenerateProbeSets(std::span<const ProbeAtom> atoms,
                                        size_t max_sets) {
  std::vector<ProbeSet> result;
  if (atoms.empty() || max_sets == 0) return result;

  // Sort atoms by cost ascending (Lv et al.'s pi ordering).
  std::vector<ProbeAtom> sorted(atoms.begin(), atoms.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ProbeAtom& a, const ProbeAtom& b) { return a.cost < b.cost; });
  const uint32_t pool = static_cast<uint32_t>(sorted.size());

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push(HeapEntry{sorted[0].cost, {0}});

  while (!heap.empty() && result.size() < max_sets) {
    HeapEntry top = heap.top();
    heap.pop();

    const uint32_t last = top.indices.back();
    // Shift: replace the max index by its successor.
    if (last + 1 < pool) {
      HeapEntry shifted = top;
      shifted.total_cost += sorted[last + 1].cost - sorted[last].cost;
      shifted.indices.back() = last + 1;
      heap.push(std::move(shifted));
    }
    // Expand: append the successor of the max index.
    if (last + 1 < pool) {
      HeapEntry expanded = top;
      expanded.total_cost += sorted[last + 1].cost;
      expanded.indices.push_back(last + 1);
      heap.push(std::move(expanded));
    }

    if (HasSlotConflict(top.indices, sorted)) continue;
    ProbeSet set;
    set.reserve(top.indices.size());
    for (uint32_t idx : top.indices) set.push_back(sorted[idx]);
    result.push_back(std::move(set));
  }
  return result;
}

}  // namespace lsh
}  // namespace hybridlsh
