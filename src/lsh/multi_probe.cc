#include "lsh/multi_probe.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace hybridlsh {
namespace lsh {
namespace {

using internal::ProbeHeapEntry;

// Min-heap comparator for std::push_heap / std::pop_heap (which build a
// max-heap under the comparator, so "greater" yields cheapest-first). Ties
// break exactly as std::priority_queue<_, _, std::greater<>> used to, since
// the standard heap algorithms are what priority_queue runs on.
struct CostGreater {
  bool operator()(const ProbeHeapEntry& a, const ProbeHeapEntry& b) const {
    return a.total_cost > b.total_cost;
  }
};

bool HasSlotConflict(const std::vector<uint32_t>& indices,
                     std::span<const ProbeAtom> sorted_atoms) {
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      if (sorted_atoms[indices[i]].slot == sorted_atoms[indices[j]].slot) {
        return true;
      }
    }
  }
  return false;
}

// Hands back a cleared index vector, reusing a recycled one when available.
std::vector<uint32_t> AcquireIndices(ProbeGenScratch* scratch) {
  if (scratch->free_indices.empty()) return {};
  std::vector<uint32_t> v = std::move(scratch->free_indices.back());
  scratch->free_indices.pop_back();
  v.clear();
  return v;
}

}  // namespace

size_t GenerateProbeSetsInto(std::span<const ProbeAtom> atoms, size_t max_sets,
                             ProbeGenScratch* scratch,
                             std::vector<ProbeSet>* out) {
  size_t count = 0;
  if (atoms.empty() || max_sets == 0) {
    out->clear();
    return 0;
  }

  // Sort atoms by cost ascending (Lv et al.'s pi ordering).
  std::vector<ProbeAtom>& sorted = scratch->sorted;
  sorted.assign(atoms.begin(), atoms.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ProbeAtom& a, const ProbeAtom& b) { return a.cost < b.cost; });
  const uint32_t pool = static_cast<uint32_t>(sorted.size());

  std::vector<ProbeHeapEntry>& heap = scratch->heap;
  for (ProbeHeapEntry& entry : heap) {
    scratch->free_indices.push_back(std::move(entry.indices));
  }
  heap.clear();

  {
    ProbeHeapEntry first;
    first.total_cost = sorted[0].cost;
    first.indices = AcquireIndices(scratch);
    first.indices.push_back(0);
    heap.push_back(std::move(first));
  }
  const CostGreater cmp;

  while (!heap.empty() && count < max_sets) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    ProbeHeapEntry top = std::move(heap.back());
    heap.pop_back();

    const uint32_t last = top.indices.back();
    if (last + 1 < pool) {
      // Shift: replace the max index by its successor.
      ProbeHeapEntry shifted;
      shifted.total_cost =
          top.total_cost + sorted[last + 1].cost - sorted[last].cost;
      shifted.indices = AcquireIndices(scratch);
      shifted.indices.assign(top.indices.begin(), top.indices.end());
      shifted.indices.back() = last + 1;
      heap.push_back(std::move(shifted));
      std::push_heap(heap.begin(), heap.end(), cmp);
      // Expand: append the successor of the max index.
      ProbeHeapEntry expanded;
      expanded.total_cost = top.total_cost + sorted[last + 1].cost;
      expanded.indices = AcquireIndices(scratch);
      expanded.indices.assign(top.indices.begin(), top.indices.end());
      expanded.indices.push_back(last + 1);
      heap.push_back(std::move(expanded));
      std::push_heap(heap.begin(), heap.end(), cmp);
    }

    if (!HasSlotConflict(top.indices, sorted)) {
      if (count == out->size()) out->emplace_back();
      ProbeSet& set = (*out)[count];
      set.clear();
      set.reserve(top.indices.size());
      for (uint32_t idx : top.indices) set.push_back(sorted[idx]);
      ++count;
    }
    scratch->free_indices.push_back(std::move(top.indices));
  }
  if (out->size() > count) out->resize(count);
  return count;
}

std::vector<ProbeSet> GenerateProbeSets(std::span<const ProbeAtom> atoms,
                                        size_t max_sets) {
  ProbeGenScratch scratch;
  std::vector<ProbeSet> out;
  GenerateProbeSetsInto(atoms, max_sets, &scratch, &out);
  return out;
}

}  // namespace lsh
}  // namespace hybridlsh
