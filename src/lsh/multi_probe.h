// Query-directed probing sequences (Lv, Josephson, Wang, Charikar, Li 2007).
//
// Multi-probe LSH examines several "close" buckets per table instead of
// only the home bucket, trading probes for tables. The paper names
// multi-probe schemes as the natural host for its hybrid strategy (§1, §5):
// more probed buckets mean more collisions and more duplicates, so the
// HLL-based candSize estimate matters even more. LshIndex merges bucket
// sketches across probes exactly as it does across tables.
//
// This file implements the probing-sequence core: given perturbation
// "atoms" (move slot s by delta at cost c), emit perturbation sets in
// non-decreasing total-cost order using the heap algorithm of Lv et al.
// (shift/expand over cost-sorted atoms). For projection families the atom
// costs are the query's distances to the window boundaries; for SimHash
// they are the hyperplane margins; for bit sampling they are uniform.

#ifndef HYBRIDLSH_LSH_MULTI_PROBE_H_
#define HYBRIDLSH_LSH_MULTI_PROBE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hybridlsh {
namespace lsh {

/// One candidate perturbation: move `slot` by `delta` at cost `cost`.
struct ProbeAtom {
  uint32_t slot = 0;
  int8_t delta = 0;  // +1 / -1 for projections; +1 = flip for binary slots
  double cost = 0.0;
};

/// A perturbation set: atoms applied together to form one probe.
using ProbeSet = std::vector<ProbeAtom>;

namespace internal {
/// Heap node of the Lv et al. generator: a candidate set as strictly
/// increasing indices into the cost-sorted atom array. Exposed only so
/// ProbeGenScratch can recycle the nodes; not part of the public API.
struct ProbeHeapEntry {
  double total_cost = 0.0;
  std::vector<uint32_t> indices;
};
}  // namespace internal

/// Reusable allocations for GenerateProbeSetsInto. One instance per scratch
/// context (per query worker); carrying it across tables and queries makes
/// probe-sequence generation allocation-free in steady state.
struct ProbeGenScratch {
  std::vector<ProbeAtom> sorted;                    // cost-sorted atom copy
  std::vector<internal::ProbeHeapEntry> heap;       // binary min-heap storage
  std::vector<std::vector<uint32_t>> free_indices;  // recycled index vectors
};

/// Emits up to `max_sets` perturbation sets in non-decreasing total cost.
/// Sets never contain two atoms for the same slot (a slot cannot move both
/// ways at once). The empty set (home bucket) is NOT emitted; callers probe
/// the home bucket first. Returns fewer sets when the atom pool is
/// exhausted.
std::vector<ProbeSet> GenerateProbeSets(std::span<const ProbeAtom> atoms,
                                        size_t max_sets);

/// Scratch-reusing form of GenerateProbeSets: fills `*out` with the same
/// sets in the same order and returns how many were emitted. `*out` is
/// resized to the result; its inner vectors (and everything in `*scratch`)
/// keep their capacity across calls, so repeated invocations allocate
/// nothing once warm.
size_t GenerateProbeSetsInto(std::span<const ProbeAtom> atoms, size_t max_sets,
                             ProbeGenScratch* scratch,
                             std::vector<ProbeSet>* out);

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_MULTI_PROBE_H_
