// The classic multi-table LSH index with HLL-augmented buckets.
//
// LshIndex<Family> realizes the paper's Algorithm 1: L tables, each keyed
// by a concatenation of k atomic hashes from `Family`, every bucket
// carrying a HyperLogLog sketch of its ids. The query side exposes the
// three LSH steps separately so that the hybrid layer (core/) can run the
// cost estimate before deciding to execute:
//
//   S1  QueryKeys / QueryKeysMultiProbe — hash the query into bucket keys;
//   (estimate)  EstimateProbe — #collisions exactly + candSize via merged
//       HLLs (paper Alg. 2 lines 1-2), in O(mL) plus small-bucket folding;
//   S2  CollectCandidates — dedup bucket contents into a VisitedSet;
//   S3  (caller) verify candidate distances and report.
//
// The sampled hash functions and the probe arithmetic are factored into
// FunctionSet<Family> so that several table sets can share one draw of
// functions: LshIndex owns one FunctionSet and one set of L tables, while
// engine::SegmentedIndex owns one FunctionSet and *many* table sets (the
// sealed and active segments of its LSM-style lifecycle). The estimate and
// collect steps are likewise free functions over any table range
// (AccumulateProbe / CollectProbedIds) so segments of either table kind sum
// into one decision.
//
// The template parameter Family supplies the point type, the atomic hash
// sampler, the paired metric, and multi-probe costs (see lsh/families.h).

#ifndef HYBRIDLSH_LSH_INDEX_H_
#define HYBRIDLSH_LSH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "hll/hyperloglog.h"
#include "lsh/families.h"
#include "lsh/multi_probe.h"
#include "lsh/params.h"
#include "lsh/table.h"
#include "util/bit_vector.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hybridlsh {
namespace lsh {

/// Result of the query-time cost estimation (paper Alg. 2, lines 1-2).
struct ProbeEstimate {
  uint64_t collisions = 0;     // exact: sum of probed bucket sizes
  double cand_estimate = 0.0;  // candSize estimate from merged HLLs
};

/// A query's complete S1 product, computed ONCE and then replayed against
/// any number of table ranges (shards, segments): the unique probe keys of
/// every table, in probe order, in CSR layout. Deduplication happens at
/// plan-build time — exhausted perturbation pools simply contribute fewer
/// keys instead of home-key padding — so probe walks never rescan for
/// repeated probes and collision counts stay exact by construction.
struct ProbePlan {
  std::vector<uint64_t> keys;           // unique probe keys, grouped by table
  std::vector<uint32_t> table_offsets;  // CSR offsets, num_tables() + 1 long

  size_t num_tables() const {
    return table_offsets.empty() ? 0 : table_offsets.size() - 1;
  }
  std::span<const uint64_t> TableKeys(size_t t) const {
    return std::span<const uint64_t>(keys.data() + table_offsets[t],
                                     table_offsets[t + 1] - table_offsets[t]);
  }
  void Clear() {
    keys.clear();
    table_offsets.clear();
  }
};

/// Reusable workspace for FunctionSet::ComputePlan / ComputePlanBatch. One
/// instance per query worker; every member keeps its capacity across
/// queries, so steady-state plan computation allocates nothing.
struct PlanScratch {
  std::vector<int32_t> slots;      // home signature of the current table
  std::vector<int32_t> perturbed;  // slots with one probe set applied
  std::vector<double> down, up;    // per-slot perturbation costs
  std::vector<ProbeAtom> atoms;    // candidate perturbations of one table
  ProbeGenScratch probe_gen;       // heap scratch for GenerateProbeSetsInto
  std::vector<ProbeSet> sets;      // emitted probe sets of one table
  std::vector<float> projections;  // batch path: raw L x count x k dots
};

// --- Hash-evaluation instrumentation (tests and benches only). -------------
// Counts k-wise signature computations (one per point-table pair) across
// every FunctionSet. The snapshot tests use it to prove that restoring an
// engine evaluates ZERO hash functions — the whole point of persistence.
// Disabled by default; the enabled check is one relaxed load of a
// read-mostly flag, which is noise next to the k x dim signature itself.

namespace internal {
inline std::atomic<bool>& HashEvalCountingEnabled() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
inline std::atomic<uint64_t>& HashEvalCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}
inline void NoteHashEvals(uint64_t n) {
  if (HashEvalCountingEnabled().load(std::memory_order_relaxed)) {
    HashEvalCount().fetch_add(n, std::memory_order_relaxed);
  }
}
}  // namespace internal

/// Turns signature counting on/off; returns the current count. Counting is
/// process-wide, so tests that use it must not run concurrent builds they
/// don't mean to measure.
inline void SetHashEvalCounting(bool enabled) {
  internal::HashEvalCountingEnabled().store(enabled,
                                            std::memory_order_relaxed);
}
inline uint64_t HashEvalCountForTest() {
  return internal::HashEvalCount().load(std::memory_order_relaxed);
}

/// One draw of the L k-wise hash functions plus the per-table bucket-key
/// seeds — everything S1 needs, independent of any table contents. Two
/// holders sampled with the same (family, num_tables, k, seed) hash every
/// point identically, which is the invariant both the sharded engine and
/// the segmented lifecycle build on: a point collides with a query in table
/// t no matter which shard or segment currently stores it.
template <typename Family>
class FunctionSet {
 public:
  using Point = typename Family::Point;

  /// Parameters derived by the paper's AutoK rule (zero when k was given
  /// explicitly).
  struct DerivedParams {
    double p1_at_radius = 0.0;
    double recall_lower_bound = 0.0;
  };

  /// Samples the k-wise functions of `num_tables` tables from decorrelated
  /// streams. k == 0 derives k from (radius, delta) via AutoK.
  static util::StatusOr<FunctionSet> Sample(Family family, int num_tables,
                                            int k, double delta, double radius,
                                            uint64_t seed) {
    if (num_tables < 1) {
      return util::Status::InvalidArgument("num_tables must be >= 1");
    }
    FunctionSet set(std::move(family));
    if (k == 0) {
      if (radius <= 0.0) {
        return util::Status::InvalidArgument(
            "k == 0 (auto) requires a positive radius");
      }
      const double p1 = set.family_.CollisionProbability(radius);
      auto auto_k = AutoK(p1, num_tables, delta);
      if (!auto_k.ok()) return auto_k.status();
      k = *auto_k;
      set.derived_.p1_at_radius = p1;
      set.derived_.recall_lower_bound = RecallLowerBound(k, num_tables, p1);
    } else if (k < 0) {
      return util::Status::InvalidArgument("k must be >= 0");
    }
    set.k_ = k;

    const size_t L = static_cast<size_t>(num_tables);
    set.functions_.reserve(L);
    set.table_seeds_.reserve(L);
    for (size_t t = 0; t < L; ++t) {
      util::Rng rng(util::HashU64(seed, t));
      set.functions_.push_back(
          set.family_.Sample(static_cast<size_t>(k), &rng));
      set.table_seeds_.push_back(util::HashU64(seed ^ 0x5bd1e995, t));
    }
    return set;
  }

  /// The bucket key of `point` in table t. `slots` is caller scratch.
  uint64_t SignatureKey(Point point, size_t t,
                        std::vector<int32_t>* slots) const {
    internal::NoteHashEvals(1);
    slots->resize(static_cast<size_t>(k_));
    family_.Signature(functions_[t], point, *slots);
    return KeyOf(*slots, t);
  }

  /// S1: the L home-bucket keys of a query.
  void QueryKeys(Point query, std::vector<uint64_t>* keys) const {
    const size_t L = functions_.size();
    internal::NoteHashEvals(L);
    keys->resize(L);
    std::vector<int32_t> slots(static_cast<size_t>(k_));
    for (size_t t = 0; t < L; ++t) {
      family_.Signature(functions_[t], query, slots);
      (*keys)[t] = KeyOf(slots, t);
    }
  }

  /// S1 with multi-probing: `probes_per_table` keys per table (home bucket
  /// first, then perturbed buckets in increasing cost). The output holds
  /// num_tables() * probes_per_table keys grouped by table; a table that
  /// runs out of perturbations repeats its home key (harmless duplicates —
  /// same bucket, same sketch). Unsupported for ProbeKind::kNone families.
  util::Status QueryKeysMultiProbe(Point query, size_t probes_per_table,
                                   std::vector<uint64_t>* keys) const {
    if (probes_per_table == 0) {
      return util::Status::InvalidArgument("probes_per_table must be >= 1");
    }
    if (family_.probe_kind() == ProbeKind::kNone) {
      return util::Status::Unimplemented(
          "multi-probe is not defined for this family");
    }
    const size_t L = functions_.size();
    internal::NoteHashEvals(L);
    const size_t k = static_cast<size_t>(k_);
    keys->assign(L * probes_per_table, 0);
    std::vector<int32_t> slots(k);
    std::vector<int32_t> perturbed(k);
    std::vector<ProbeAtom> atoms;
    std::vector<double> down(k), up(k);
    for (size_t t = 0; t < L; ++t) {
      atoms.clear();
      if constexpr (HasTwoSidedCosts<Family>) {
        if (family_.probe_kind() == ProbeKind::kTwoSided) {
          family_.SignatureWithProbeCosts(functions_[t], query, slots, down, up);
          for (uint32_t i = 0; i < k; ++i) {
            atoms.push_back(ProbeAtom{i, -1, down[i]});
            atoms.push_back(ProbeAtom{i, +1, up[i]});
          }
        }
      }
      if constexpr (HasFlipCosts<Family>) {
        if (family_.probe_kind() == ProbeKind::kFlip) {
          family_.SignatureWithProbeCosts(functions_[t], query, slots, down);
          for (uint32_t i = 0; i < k; ++i) {
            atoms.push_back(ProbeAtom{i, +1, down[i]});
          }
        }
      }
      uint64_t* out = keys->data() + t * probes_per_table;
      out[0] = KeyOf(slots, t);
      const auto sets = GenerateProbeSets(atoms, probes_per_table - 1);
      for (size_t p = 0; p < probes_per_table - 1; ++p) {
        if (p < sets.size()) {
          perturbed.assign(slots.begin(), slots.end());
          for (const ProbeAtom& atom : sets[p]) {
            if (family_.probe_kind() == ProbeKind::kFlip) {
              perturbed[atom.slot] ^= 1;
            } else {
              perturbed[atom.slot] += atom.delta;
            }
          }
          out[1 + p] = KeyOf(perturbed, t);
        } else {
          out[1 + p] = out[0];
        }
      }
    }
    return util::Status::Ok();
  }

  /// S1, hash-once form: computes the query's full probe plan — the unique
  /// probe keys of every table, home bucket first then perturbed buckets in
  /// increasing cost (see ProbePlan). probes_per_table == 1 plans only the
  /// home buckets and works for every family; larger values require a
  /// multi-probe family, exactly like QueryKeysMultiProbe. The plan replays
  /// against any table range sharing this function set, so an engine with S
  /// shards evaluates L hash signatures per query instead of S * L.
  util::Status ComputePlan(Point query, size_t probes_per_table,
                           PlanScratch* scratch, ProbePlan* plan) const {
    HLSH_RETURN_IF_ERROR(ValidatePlanRequest(probes_per_table));
    const size_t L = functions_.size();
    const size_t k = static_cast<size_t>(k_);
    internal::NoteHashEvals(L);
    ResetPlan(L, probes_per_table, plan);
    scratch->slots.resize(k);
    for (size_t t = 0; t < L; ++t) {
      if (probes_per_table == 1) {
        family_.Signature(functions_[t], query, scratch->slots);
        scratch->atoms.clear();
      } else {
        SignatureAndAtoms(t, query, scratch);
      }
      AppendTablePlan(t, probes_per_table, scratch, plan);
    }
    return util::Status::Ok();
  }

  /// ComputePlan for a whole batch of queries. Dense projection families
  /// push all count x k dot products of each table through the blocked
  /// (GEMM-shaped) projection kernel in one call — bit-identical to the
  /// per-query form — before finishing each query's slots and probe sets;
  /// other families fall back to a per-query loop. plans must hold `count`
  /// entries.
  util::Status ComputePlanBatch(const Point* queries, size_t count,
                                size_t probes_per_table, PlanScratch* scratch,
                                ProbePlan* plans) const {
    if constexpr (HasBatchProjection<Family>) {
      HLSH_RETURN_IF_ERROR(ValidatePlanRequest(probes_per_table));
      if (count == 0) return util::Status::Ok();
      const size_t L = functions_.size();
      const size_t k = static_cast<size_t>(k_);
      internal::NoteHashEvals(L * count);
      scratch->projections.resize(L * count * k);
      for (size_t t = 0; t < L; ++t) {
        family_.ProjectBatch(
            functions_[t], queries, count,
            std::span<float>(scratch->projections.data() + t * count * k,
                             count * k));
      }
      scratch->slots.resize(k);
      for (size_t q = 0; q < count; ++q) {
        ProbePlan* plan = plans + q;
        ResetPlan(L, probes_per_table, plan);
        for (size_t t = 0; t < L; ++t) {
          const std::span<const float> proj(
              scratch->projections.data() + (t * count + q) * k, k);
          if (probes_per_table == 1) {
            family_.SignatureFromProjections(functions_[t], proj,
                                             scratch->slots);
            scratch->atoms.clear();
          } else {
            SignatureAndAtomsFromProjections(t, proj, scratch);
          }
          AppendTablePlan(t, probes_per_table, scratch, plan);
        }
      }
      return util::Status::Ok();
    } else {
      for (size_t q = 0; q < count; ++q) {
        HLSH_RETURN_IF_ERROR(
            ComputePlan(queries[q], probes_per_table, scratch, plans + q));
      }
      return util::Status::Ok();
    }
  }

  const Family& family() const { return family_; }
  int k() const { return k_; }
  size_t num_tables() const { return functions_.size(); }
  const DerivedParams& derived() const { return derived_; }

  /// Serialization hooks used by LshIndex::Save / Load: functions are
  /// written per table, interleaved with the tables.
  void SaveFunctions(size_t t, util::ByteWriter* writer) const {
    family_.SaveFunctions(functions_[t], writer);
  }
  const std::vector<uint64_t>& table_seeds() const { return table_seeds_; }
  static FunctionSet ForLoad(Family family, int k,
                             std::vector<uint64_t> table_seeds) {
    FunctionSet set(std::move(family));
    set.k_ = k;
    set.table_seeds_ = std::move(table_seeds);
    set.functions_.reserve(set.table_seeds_.size());
    return set;
  }
  util::Status LoadAppendFunctions(util::ByteReader* reader) {
    auto functions = family_.LoadFunctions(reader);
    if (!functions.ok()) return functions.status();
    functions_.push_back(std::move(*functions));
    return util::Status::Ok();
  }

  /// Persists the whole set — family parameters, k, table seeds, and every
  /// table's sampled functions — as one self-contained block. This is the
  /// snapshot path (engine/snapshot.h): one FunctionSet block per engine,
  /// shared by all shards and segments, instead of LshIndex::Save's
  /// per-table interleaving.
  void Save(util::ByteWriter* writer) const {
    writer->WriteU32(Family::kFamilyTag);
    family_.SaveFamily(writer);
    writer->WriteU32(static_cast<uint32_t>(k_));
    writer->WriteU64(functions_.size());
    writer->WriteArray<uint64_t>(table_seeds_);
    for (size_t t = 0; t < functions_.size(); ++t) {
      family_.SaveFunctions(functions_[t], writer);
    }
  }

  /// Parses a block written by Save. Rejects wrong-family payloads with
  /// InvalidArgument and malformed ones with DataLoss. No hash function is
  /// evaluated — the sampled functions are reloaded, not re-drawn.
  static util::StatusOr<FunctionSet> Load(util::ByteReader* reader) {
    uint32_t family_tag = 0;
    HLSH_RETURN_IF_ERROR(reader->ReadU32(&family_tag));
    if (family_tag != Family::kFamilyTag) {
      return util::Status::InvalidArgument(
          "function set was sampled from a different LSH family");
    }
    auto family = Family::LoadFamily(reader);
    if (!family.ok()) return family.status();
    uint32_t k = 0;
    uint64_t num_tables = 0;
    HLSH_RETURN_IF_ERROR(reader->ReadU32(&k));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_tables));
    if (num_tables == 0 || num_tables > (uint64_t{1} << 20) ||
        k > (uint32_t{1} << 20)) {
      return util::Status::DataLoss("function set header is invalid");
    }
    std::vector<uint64_t> table_seeds;
    HLSH_RETURN_IF_ERROR(
        reader->ReadArray<uint64_t>(num_tables, &table_seeds));
    FunctionSet set = ForLoad(std::move(*family), static_cast<int>(k),
                              std::move(table_seeds));
    for (uint64_t t = 0; t < num_tables; ++t) {
      HLSH_RETURN_IF_ERROR(set.LoadAppendFunctions(reader));
    }
    return set;
  }

 private:
  explicit FunctionSet(Family family) : family_(std::move(family)) {}

  // Concept probes for the two probe-cost signatures.
  template <typename F>
  static constexpr bool HasTwoSidedCosts = requires(
      const F& f, const typename F::Functions& fns, typename F::Point p,
      std::span<int32_t> s, std::span<double> c) {
    f.SignatureWithProbeCosts(fns, p, s, c, c);
  };
  template <typename F>
  static constexpr bool HasFlipCosts = requires(
      const F& f, const typename F::Functions& fns, typename F::Point p,
      std::span<int32_t> s, std::span<double> c) {
    f.SignatureWithProbeCosts(fns, p, s, c);
  };

  // The raw-projection split of dense families (lsh/families.h), which is
  // what lets ComputePlanBatch run one blocked kernel per table.
  template <typename F>
  static constexpr bool HasBatchProjection = requires(
      const F& f, const typename F::Functions& fns,
      const typename F::Point* pts, std::span<float> proj,
      std::span<const float> cproj, std::span<int32_t> s) {
    f.ProjectBatch(fns, pts, size_t{1}, proj);
    f.SignatureFromProjections(fns, cproj, s);
  };
  template <typename F>
  static constexpr bool HasTwoSidedCostsFromProj = requires(
      const F& f, const typename F::Functions& fns,
      std::span<const float> proj, std::span<int32_t> s, std::span<double> c) {
    f.SignatureWithProbeCostsFromProjections(fns, proj, s, c, c);
  };
  template <typename F>
  static constexpr bool HasFlipCostsFromProj = requires(
      const F& f, const typename F::Functions& fns,
      std::span<const float> proj, std::span<int32_t> s, std::span<double> c) {
    f.SignatureWithProbeCostsFromProjections(fns, proj, s, c);
  };

  util::Status ValidatePlanRequest(size_t probes_per_table) const {
    if (probes_per_table == 0) {
      return util::Status::InvalidArgument("probes_per_table must be >= 1");
    }
    if (probes_per_table > 1 && family_.probe_kind() == ProbeKind::kNone) {
      return util::Status::Unimplemented(
          "multi-probe is not defined for this family");
    }
    return util::Status::Ok();
  }

  static void ResetPlan(size_t num_tables, size_t probes_per_table,
                        ProbePlan* plan) {
    plan->keys.clear();
    plan->keys.reserve(num_tables * probes_per_table);
    plan->table_offsets.clear();
    plan->table_offsets.reserve(num_tables + 1);
    plan->table_offsets.push_back(0);
  }

  /// Fills scratch->slots and scratch->atoms for table t by hashing the
  /// query with probe costs (multi-probe path of ComputePlan).
  void SignatureAndAtoms(size_t t, Point query, PlanScratch* scratch) const {
    const size_t k = static_cast<size_t>(k_);
    scratch->atoms.clear();
    if constexpr (HasTwoSidedCosts<Family>) {
      if (family_.probe_kind() == ProbeKind::kTwoSided) {
        scratch->down.resize(k);
        scratch->up.resize(k);
        family_.SignatureWithProbeCosts(functions_[t], query, scratch->slots,
                                        scratch->down, scratch->up);
        BuildAtomsFromCosts(scratch);
        return;
      }
    }
    if constexpr (HasFlipCosts<Family>) {
      if (family_.probe_kind() == ProbeKind::kFlip) {
        scratch->down.resize(k);
        family_.SignatureWithProbeCosts(functions_[t], query, scratch->slots,
                                        scratch->down);
        BuildAtomsFromCosts(scratch);
        return;
      }
    }
  }

  /// SignatureAndAtoms from precomputed raw projections (batch path).
  void SignatureAndAtomsFromProjections(size_t t, std::span<const float> proj,
                                        PlanScratch* scratch) const {
    const size_t k = static_cast<size_t>(k_);
    scratch->atoms.clear();
    if constexpr (HasTwoSidedCostsFromProj<Family>) {
      if (family_.probe_kind() == ProbeKind::kTwoSided) {
        scratch->down.resize(k);
        scratch->up.resize(k);
        family_.SignatureWithProbeCostsFromProjections(
            functions_[t], proj, scratch->slots, scratch->down, scratch->up);
        BuildAtomsFromCosts(scratch);
        return;
      }
    }
    if constexpr (HasFlipCostsFromProj<Family>) {
      if (family_.probe_kind() == ProbeKind::kFlip) {
        scratch->down.resize(k);
        family_.SignatureWithProbeCostsFromProjections(
            functions_[t], proj, scratch->slots, scratch->down);
        BuildAtomsFromCosts(scratch);
        return;
      }
    }
  }

  /// Turns the costs in scratch->down / scratch->up into probe atoms,
  /// matching QueryKeysMultiProbe's atom construction exactly.
  void BuildAtomsFromCosts(PlanScratch* scratch) const {
    const uint32_t k = static_cast<uint32_t>(k_);
    if (family_.probe_kind() == ProbeKind::kTwoSided) {
      for (uint32_t i = 0; i < k; ++i) {
        scratch->atoms.push_back(ProbeAtom{i, -1, scratch->down[i]});
        scratch->atoms.push_back(ProbeAtom{i, +1, scratch->up[i]});
      }
    } else {
      for (uint32_t i = 0; i < k; ++i) {
        scratch->atoms.push_back(ProbeAtom{i, +1, scratch->down[i]});
      }
    }
  }

  /// Appends table t's unique probe keys (home bucket first, then perturbed
  /// buckets in increasing cost) and closes the table's CSR range. Expects
  /// scratch->slots / scratch->atoms already filled for table t. The dedup
  /// scan runs over at most probes_per_table emitted keys, once per query —
  /// not once per shard walk as IsRepeatedProbe used to.
  void AppendTablePlan(size_t t, size_t probes_per_table, PlanScratch* scratch,
                       ProbePlan* plan) const {
    const size_t table_begin = plan->keys.size();
    plan->keys.push_back(KeyOf(scratch->slots, t));
    if (probes_per_table > 1) {
      const size_t num_sets =
          GenerateProbeSetsInto(scratch->atoms, probes_per_table - 1,
                                &scratch->probe_gen, &scratch->sets);
      std::vector<int32_t>& perturbed = scratch->perturbed;
      for (size_t p = 0; p < num_sets; ++p) {
        perturbed.assign(scratch->slots.begin(), scratch->slots.end());
        for (const ProbeAtom& atom : scratch->sets[p]) {
          if (family_.probe_kind() == ProbeKind::kFlip) {
            perturbed[atom.slot] ^= 1;
          } else {
            perturbed[atom.slot] += atom.delta;
          }
        }
        const uint64_t key = KeyOf(perturbed, t);
        bool duplicate = false;
        for (size_t j = table_begin; j < plan->keys.size(); ++j) {
          if (plan->keys[j] == key) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) plan->keys.push_back(key);
      }
    }
    plan->table_offsets.push_back(static_cast<uint32_t>(plan->keys.size()));
  }

  /// Reduces a k-slot signature to the 64-bit bucket key of table t.
  /// Distinct signatures collide with probability ~2^-64; such a collision
  /// only adds spurious candidates, which S3's distance check removes.
  uint64_t KeyOf(std::span<const int32_t> slots, size_t table) const {
    return util::HashBytes(slots.data(), slots.size() * sizeof(int32_t),
                           table_seeds_[table]);
  }

  Family family_;
  int k_ = 0;
  std::vector<typename Family::Functions> functions_;
  std::vector<uint64_t> table_seeds_;
  DerivedParams derived_;
};

/// True when keys[i] repeats an earlier probe of the same table (the table's
/// probes start at `table_begin`). Multi-probe padding repeats the home key,
/// and distinct perturbations can land on the same bucket; probing a bucket
/// once per table keeps collision counts exact and sketch merges minimal.
/// Linear in probes_per_table, which is small.
inline bool IsRepeatedProbe(std::span<const uint64_t> keys, size_t table_begin,
                            size_t i) {
  for (size_t j = table_begin; j < i; ++j) {
    if (keys[j] == keys[i]) return true;
  }
  return false;
}

/// Accumulates one table range's contribution to the Alg. 2 estimate:
/// adds the probed buckets' sizes to *collisions and merges (or folds)
/// their sketches into *scratch, which is NOT cleared — callers sum several
/// segments into one estimate. Table may be LshTable or DynamicLshTable.
template <typename Table>
void AccumulateProbe(std::span<const Table> tables,
                     std::span<const uint64_t> keys, hll::HyperLogLog* scratch,
                     uint64_t* collisions) {
  const size_t probes_per_table = keys.size() / tables.size();
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t t = i / probes_per_table;
    if (IsRepeatedProbe(keys, t * probes_per_table, i)) continue;
    const LshTable::BucketView bucket = tables[t].Lookup(keys[i]);
    if (bucket.empty()) continue;
    *collisions += bucket.size();
    if (bucket.sketch != nullptr) {
      HLSH_CHECK(scratch->Merge(*bucket.sketch).ok());
    } else {
      // Small bucket: fold ids on demand (paper §3.2).
      for (uint32_t id : bucket.ids) scratch->AddPoint(id);
    }
  }
}

/// S2 over one table range: dedups every probed id into *visited, whose
/// touched() list then IS the flat candidate buffer block verification
/// consumes (core/kernels.h), and returns the exact number of collisions.
/// Bucket ids are bulk-inserted with the dedup bits prefetched ahead of
/// the probe loop. Ids whose `tombstones` bit is set are counted as
/// collisions (the probe cost was paid) but not inserted, so deleted
/// points never reach verification.
template <typename Table>
uint64_t CollectProbedIds(std::span<const Table> tables,
                          std::span<const uint64_t> keys,
                          util::VisitedSet* visited,
                          const util::BitVector* tombstones = nullptr) {
  uint64_t collisions = 0;
  const size_t probes_per_table = keys.size() / tables.size();
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t t = i / probes_per_table;
    if (IsRepeatedProbe(keys, t * probes_per_table, i)) continue;
    const LshTable::BucketView bucket = tables[t].Lookup(keys[i]);
    collisions += bucket.size();
    if (tombstones == nullptr) {
      visited->InsertSpan(bucket.ids);
    } else {
      visited->InsertSpanFiltered(bucket.ids, *tombstones);
    }
  }
  return collisions;
}

// --- Plan-based probe walks. ------------------------------------------------
// The ProbePlan forms of AccumulateProbe / CollectProbedIds: per-table keys
// are already unique (no IsRepeatedProbe rescans), and the walk is windowed —
// a batch of bucket views is resolved and its id/sketch storage prefetched
// before any bucket is consumed, hiding the dependent-load latency of the
// bucket lookups behind the HLL merges and dedup inserts.

namespace internal {
/// Buckets resolved (and prefetched) ahead of consumption in one window.
inline constexpr size_t kProbeWindow = 8;

inline void PrefetchBucket(const LshTable::BucketView& bucket) {
  if (bucket.empty()) return;
  __builtin_prefetch(bucket.ids.data());
  if (bucket.sketch != nullptr) __builtin_prefetch(bucket.sketch);
}
}  // namespace internal

/// AccumulateProbe over a precomputed plan (see the keys form above for the
/// contract: *scratch is NOT cleared, segments sum into one estimate).
template <typename Table>
void AccumulateProbe(std::span<const Table> tables, const ProbePlan& plan,
                     hll::HyperLogLog* scratch, uint64_t* collisions) {
  HLSH_DCHECK(plan.num_tables() == tables.size());
  LshTable::BucketView window[internal::kProbeWindow];
  for (size_t t = 0; t < tables.size(); ++t) {
    const std::span<const uint64_t> keys = plan.TableKeys(t);
    for (size_t base = 0; base < keys.size();
         base += internal::kProbeWindow) {
      const size_t n = std::min(internal::kProbeWindow, keys.size() - base);
      for (size_t w = 0; w < n; ++w) {
        window[w] = tables[t].Lookup(keys[base + w]);
        internal::PrefetchBucket(window[w]);
      }
      for (size_t w = 0; w < n; ++w) {
        const LshTable::BucketView& bucket = window[w];
        if (bucket.empty()) continue;
        *collisions += bucket.size();
        if (bucket.sketch != nullptr) {
          HLSH_CHECK(scratch->Merge(*bucket.sketch).ok());
        } else {
          // Small bucket: fold ids on demand (paper §3.2).
          for (uint32_t id : bucket.ids) scratch->AddPoint(id);
        }
      }
    }
  }
}

/// CollectProbedIds over a precomputed plan (see the keys form above).
template <typename Table>
uint64_t CollectProbedIds(std::span<const Table> tables, const ProbePlan& plan,
                          util::VisitedSet* visited,
                          const util::BitVector* tombstones = nullptr) {
  HLSH_DCHECK(plan.num_tables() == tables.size());
  uint64_t collisions = 0;
  LshTable::BucketView window[internal::kProbeWindow];
  for (size_t t = 0; t < tables.size(); ++t) {
    const std::span<const uint64_t> keys = plan.TableKeys(t);
    for (size_t base = 0; base < keys.size();
         base += internal::kProbeWindow) {
      const size_t n = std::min(internal::kProbeWindow, keys.size() - base);
      for (size_t w = 0; w < n; ++w) {
        window[w] = tables[t].Lookup(keys[base + w]);
        internal::PrefetchBucket(window[w]);
      }
      for (size_t w = 0; w < n; ++w) {
        const LshTable::BucketView& bucket = window[w];
        collisions += bucket.size();
        if (tombstones == nullptr) {
          visited->InsertSpan(bucket.ids);
        } else {
          visited->InsertSpanFiltered(bucket.ids, *tombstones);
        }
      }
    }
  }
  return collisions;
}

/// Classic LSH index over a Family (see file comment).
template <typename Family>
class LshIndex {
 public:
  using Point = typename Family::Point;

  struct Options {
    /// Number of hash tables L. The paper's evaluation fixes L = 50.
    int num_tables = 50;
    /// Concatenation width k; 0 = derive from (radius, delta) via the
    /// paper's rule AutoK (requires radius > 0).
    int k = 0;
    /// Per-point failure probability delta (used when k == 0).
    double delta = 0.1;
    /// Search radius used for parameter derivation when k == 0.
    double radius = 0.0;
    /// HLL precision b (m = 2^b registers per bucket sketch). Paper: b = 7.
    int hll_precision = 7;
    /// Small-bucket threshold; LshTable::kThresholdAuto = m.
    size_t small_bucket_threshold = LshTable::kThresholdAuto;
    /// Seed for sampling hash functions.
    uint64_t seed = 1;
    /// Threads for table construction (queries are single-threaded).
    size_t num_build_threads = 1;
    /// Global id of the dataset's first point. A shard built over a slice
    /// of a larger dataset passes its range start here so that buckets and
    /// sketches carry global ids directly (see lsh/table.h Options).
    uint32_t id_base = 0;
  };

  /// Summary of a built index.
  struct Stats {
    size_t num_points = 0;
    int num_tables = 0;
    int k = 0;
    double p1_at_radius = 0.0;      // 0 when k was given explicitly
    double recall_lower_bound = 0.0;  // 1-(1-p1^k)^L, 0 when k explicit
    size_t total_buckets = 0;
    size_t total_sketches = 0;
    size_t memory_bytes = 0;
    size_t sketch_bytes = 0;
    double build_seconds = 0.0;
  };

  using ProbeEstimate = lsh::ProbeEstimate;

  /// Builds an index over `dataset` (any container with size() and
  /// point(i) -> Point). The dataset is not retained.
  template <typename Dataset>
  static util::StatusOr<LshIndex> Build(Family family, const Dataset& dataset,
                                        const Options& options) {
    if (options.hll_precision < hll::HyperLogLog::kMinPrecision ||
        options.hll_precision > hll::HyperLogLog::kMaxPrecision) {
      return util::Status::InvalidArgument("hll_precision out of range");
    }
    if (dataset.size() == 0) {
      return util::Status::InvalidArgument("cannot index an empty dataset");
    }
    if (dataset.size() > static_cast<size_t>(UINT32_MAX)) {
      return util::Status::InvalidArgument("dataset exceeds 2^32-1 points");
    }
    if (static_cast<uint64_t>(options.id_base) + dataset.size() >
        static_cast<uint64_t>(UINT32_MAX) + 1) {
      return util::Status::InvalidArgument(
          "id_base + dataset size exceeds the 32-bit id space");
    }

    auto functions = FunctionSet<Family>::Sample(
        std::move(family), options.num_tables, options.k, options.delta,
        options.radius, options.seed);
    if (!functions.ok()) return functions.status();

    LshIndex index(std::move(*functions));
    index.options_ = options;
    index.stats_.num_points = dataset.size();
    index.stats_.num_tables = options.num_tables;
    index.stats_.k = index.functions_.k();
    index.stats_.p1_at_radius = index.functions_.derived().p1_at_radius;
    index.stats_.recall_lower_bound =
        index.functions_.derived().recall_lower_bound;

    util::WallTimer build_timer;
    const size_t L = static_cast<size_t>(options.num_tables);

    // Hash all points and build each table (parallel across tables).
    index.tables_.resize(L);
    LshTable::Options table_options;
    table_options.hll_precision = options.hll_precision;
    table_options.small_bucket_threshold = options.small_bucket_threshold;
    table_options.id_base = options.id_base;
    const size_t n = dataset.size();
    util::ParallelFor(0, L, options.num_build_threads, [&](size_t t) {
      std::vector<int32_t> slots;
      std::vector<uint64_t> keys(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = index.functions_.SignatureKey(dataset.point(i), t, &slots);
      }
      index.tables_[t].Build(keys, table_options);
    });

    index.stats_.build_seconds = build_timer.ElapsedSeconds();
    for (const LshTable& table : index.tables_) {
      index.stats_.total_buckets += table.num_buckets();
      index.stats_.total_sketches += table.num_sketches();
      index.stats_.memory_bytes += table.MemoryBytes();
      index.stats_.sketch_bytes += table.SketchBytes();
    }
    return index;
  }

  /// S1: the L home-bucket keys of a query.
  void QueryKeys(Point query, std::vector<uint64_t>* keys) const {
    functions_.QueryKeys(query, keys);
  }

  /// S1 with multi-probing (see FunctionSet::QueryKeysMultiProbe).
  util::Status QueryKeysMultiProbe(Point query, size_t probes_per_table,
                                   std::vector<uint64_t>* keys) const {
    return functions_.QueryKeysMultiProbe(query, probes_per_table, keys);
  }

  /// S1, hash-once form (see FunctionSet::ComputePlan).
  util::Status ComputePlan(Point query, size_t probes_per_table,
                           PlanScratch* scratch, ProbePlan* plan) const {
    return functions_.ComputePlan(query, probes_per_table, scratch, plan);
  }

  /// Estimates #collisions (exact) and candSize (merged HLLs) for a set of
  /// probe keys produced by QueryKeys*. `scratch` must have the index's HLL
  /// precision; it is cleared first. Paper Alg. 2, lines 1-2. The sketch
  /// merges and the final estimate run on the dispatched SIMD register
  /// kernels (util/simd.h: byte-max merge, fused sum-of-2^-M + zero count).
  ProbeEstimate EstimateProbe(std::span<const uint64_t> keys,
                              hll::HyperLogLog* scratch) const {
    HLSH_DCHECK(scratch->precision() == options_.hll_precision);
    scratch->Clear();
    ProbeEstimate estimate;
    AccumulateProbe<LshTable>(tables_, keys, scratch, &estimate.collisions);
    estimate.cand_estimate =
        estimate.collisions == 0 ? 0.0 : scratch->Estimate();
    return estimate;
  }

  /// EstimateProbe over a precomputed plan (hash-once path).
  ProbeEstimate EstimateProbe(const ProbePlan& plan,
                              hll::HyperLogLog* scratch) const {
    HLSH_DCHECK(scratch->precision() == options_.hll_precision);
    scratch->Clear();
    ProbeEstimate estimate;
    AccumulateProbe<LshTable>(tables_, plan, scratch, &estimate.collisions);
    estimate.cand_estimate =
        estimate.collisions == 0 ? 0.0 : scratch->Estimate();
    return estimate;
  }

  /// S2: inserts every probed id into `visited` (deduplicating) and returns
  /// the exact number of collisions. visited->touched() is then the
  /// distinct candidate set for S3.
  uint64_t CollectCandidates(std::span<const uint64_t> keys,
                             util::VisitedSet* visited) const {
    return CollectProbedIds<LshTable>(tables_, keys, visited);
  }

  /// S2 over a precomputed plan (hash-once path).
  uint64_t CollectCandidates(const ProbePlan& plan,
                             util::VisitedSet* visited) const {
    return CollectProbedIds<LshTable>(tables_, plan, visited);
  }

  /// Bucket access for inspection and tests.
  LshTable::BucketView Bucket(size_t table, uint64_t key) const {
    HLSH_DCHECK(table < tables_.size());
    return tables_[table].Lookup(key);
  }

  /// Metric distance between two points (delegates to the family), so that
  /// generic searchers can verify candidates without naming the family.
  double Distance(Point a, Point b) const {
    return functions_.family().Distance(a, b);
  }

  const Family& family() const { return functions_.family(); }
  /// The sampled hash functions (shared surface with SegmentedIndex).
  const FunctionSet<Family>& functions() const { return functions_; }
  int k() const { return functions_.k(); }
  /// Global id of the first indexed point (see Options::id_base).
  /// Serialized since format v2, so Save/Load round-trips it.
  uint32_t id_base() const { return options_.id_base; }
  int num_tables() const { return static_cast<int>(tables_.size()); }
  size_t size() const { return stats_.num_points; }
  int hll_precision() const { return options_.hll_precision; }
  const Stats& stats() const { return stats_; }

  /// Creates a scratch sketch compatible with EstimateProbe.
  hll::HyperLogLog MakeScratchSketch() const {
    return hll::HyperLogLog(options_.hll_precision);
  }

  /// Persists the whole index (family, sampled functions, tables with
  /// their bucket sketches) to `path`. The dataset itself is NOT stored —
  /// reload it separately and pair it with the loaded index. The write is
  /// crash-safe: the bytes land in a temp file that is fsynced and renamed
  /// over `path`, so an interrupted Save never leaves a truncated index.
  util::Status Save(const std::string& path) const {
    util::ByteWriter writer;
    writer.WriteU64(kIndexMagic);
    writer.WriteU32(kIndexVersion);
    writer.WriteU32(Family::kFamilyTag);
    functions_.family().SaveFamily(&writer);
    writer.WriteU32(static_cast<uint32_t>(functions_.k()));
    writer.WriteU32(static_cast<uint32_t>(tables_.size()));
    writer.WriteU32(static_cast<uint32_t>(options_.hll_precision));
    writer.WriteU32(options_.id_base);
    writer.WriteU64(options_.small_bucket_threshold);
    writer.WriteU64(options_.seed);
    writer.WriteU64(stats_.num_points);
    writer.WriteF64(stats_.p1_at_radius);
    writer.WriteF64(stats_.recall_lower_bound);
    writer.WriteU64(functions_.table_seeds().size());
    writer.WriteArray<uint64_t>(functions_.table_seeds());
    for (size_t t = 0; t < tables_.size(); ++t) {
      functions_.SaveFunctions(t, &writer);
      tables_[t].Serialize(&writer);
    }
    return util::AtomicWriteFileBytes(path, writer.bytes());
  }

  /// Loads an index written by Save. Rejects wrong-family files, truncated
  /// payloads, and structurally invalid tables.
  static util::StatusOr<LshIndex> Load(const std::string& path) {
    auto bytes = util::ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    util::ByteReader reader(*bytes);

    uint64_t magic = 0;
    uint32_t version = 0, family_tag = 0;
    HLSH_RETURN_IF_ERROR(reader.ReadU64(&magic));
    if (magic != kIndexMagic) {
      return util::Status::DataLoss("not a hybridlsh index file");
    }
    HLSH_RETURN_IF_ERROR(reader.ReadU32(&version));
    // v1 files lack only the id_base field (defaulting to 0 below), so
    // they stay loadable.
    if (version != kIndexVersion && version != 1) {
      return util::Status::DataLoss("unsupported index file version");
    }
    HLSH_RETURN_IF_ERROR(reader.ReadU32(&family_tag));
    if (family_tag != Family::kFamilyTag) {
      return util::Status::InvalidArgument(
          "index file was built with a different LSH family");
    }
    auto family = Family::LoadFamily(&reader);
    if (!family.ok()) return family.status();

    uint32_t k = 0, num_tables = 0, hll_precision = 0, id_base = 0;
    HLSH_RETURN_IF_ERROR(reader.ReadU32(&k));
    HLSH_RETURN_IF_ERROR(reader.ReadU32(&num_tables));
    HLSH_RETURN_IF_ERROR(reader.ReadU32(&hll_precision));
    if (version >= 2) {
      HLSH_RETURN_IF_ERROR(reader.ReadU32(&id_base));
    }
    if (hll_precision < hll::HyperLogLog::kMinPrecision ||
        hll_precision > hll::HyperLogLog::kMaxPrecision || num_tables == 0) {
      return util::Status::DataLoss("index header has invalid parameters");
    }

    Options options;
    options.num_tables = static_cast<int>(num_tables);
    options.k = static_cast<int>(k);
    options.hll_precision = static_cast<int>(hll_precision);
    options.id_base = id_base;

    Stats stats;
    HLSH_RETURN_IF_ERROR(reader.ReadU64(&options.small_bucket_threshold));
    HLSH_RETURN_IF_ERROR(reader.ReadU64(&options.seed));
    HLSH_RETURN_IF_ERROR(reader.ReadU64(&stats.num_points));
    HLSH_RETURN_IF_ERROR(reader.ReadF64(&stats.p1_at_radius));
    HLSH_RETURN_IF_ERROR(reader.ReadF64(&stats.recall_lower_bound));
    stats.k = options.k;
    stats.num_tables = options.num_tables;

    uint64_t num_seeds = 0;
    HLSH_RETURN_IF_ERROR(reader.ReadU64(&num_seeds));
    if (num_seeds != num_tables) {
      return util::Status::DataLoss("table seed count mismatches tables");
    }
    std::vector<uint64_t> table_seeds;
    HLSH_RETURN_IF_ERROR(reader.ReadArray<uint64_t>(num_seeds, &table_seeds));

    LshIndex index(FunctionSet<Family>::ForLoad(
        std::move(*family), options.k, std::move(table_seeds)));
    index.options_ = options;
    index.stats_ = stats;

    index.tables_.reserve(num_tables);
    for (uint32_t t = 0; t < num_tables; ++t) {
      HLSH_RETURN_IF_ERROR(index.functions_.LoadAppendFunctions(&reader));
      auto table = LshTable::Deserialize(&reader);
      if (!table.ok()) return table.status();
      index.tables_.push_back(std::move(*table));
    }
    HLSH_RETURN_IF_ERROR(reader.ExpectEnd());

    for (const LshTable& table : index.tables_) {
      if (table.num_points() != index.stats_.num_points) {
        return util::Status::DataLoss("table size mismatches point count");
      }
      index.stats_.total_buckets += table.num_buckets();
      index.stats_.total_sketches += table.num_sketches();
      index.stats_.memory_bytes += table.MemoryBytes();
      index.stats_.sketch_bytes += table.SketchBytes();
    }
    return index;
  }

 private:
  static constexpr uint64_t kIndexMagic = 0x31584449484c5348ULL;  // "HSLHIDX1"
  static constexpr uint32_t kIndexVersion = 2;  // v2: id_base in the header

  explicit LshIndex(FunctionSet<Family> functions)
      : functions_(std::move(functions)) {}

  FunctionSet<Family> functions_;
  Options options_;
  std::vector<LshTable> tables_;
  Stats stats_;
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_INDEX_H_
