// Cost-based (k, L) parameter planning.
//
// The paper fixes L = 50 and derives k from (radius, delta) — simple, but
// "tuning appropriate parameters k, L for a given dataset ... remains a
// tedious process" (§2). This planner closes that loop with the paper's
// own cost model: given the family's collision probabilities at the search
// radius (p_near) and at a representative far distance (p_far), plus a
// sample-estimated output density, it searches the (k, L) grid for the
// plan that minimizes the expected per-query LSH cost
//
//   E[cost](k, L) = alpha * E[#collisions] + beta * E[candSize]
//     E[#collisions] = L * n * (f_near * p_near^k + f_far * p_far^k)
//     E[candSize]    = n * (f_near * P_hit(p_near) + f_far * P_hit(p_far))
//     P_hit(p)       = 1 - (1 - p^k)^L
//
// subject to the recall constraint P_hit(p_near) >= 1 - delta. The paper's
// (k, L=50) point is always a member of the searched grid, so the planned
// cost is never worse than the paper rule's under the same model.

#ifndef HYBRIDLSH_LSH_PLANNER_H_
#define HYBRIDLSH_LSH_PLANNER_H_

#include <cstdint>

#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// Workload description for the planner.
struct PlannerInput {
  /// Collision probability of one atomic hash at the search radius
  /// (family.CollisionProbability(r)).
  double p_near = 0.9;
  /// Collision probability at a representative non-neighbor distance,
  /// e.g. family.CollisionProbability(2 * r).
  double p_far = 0.5;
  /// Fraction of the dataset expected within the radius of a typical
  /// query (estimate from a sample; the planner is robust to rough guesses).
  double near_fraction = 0.01;
  /// Dataset size.
  size_t n = 100000;
  /// Per-point failure probability.
  double delta = 0.1;
  /// Cost of a distance computation in units of one dedup operation.
  double beta_over_alpha = 10.0;
  /// Search bounds.
  int max_k = 48;
  int max_tables = 512;
};

/// A planned parameter choice with its model predictions.
struct Plan {
  int k = 0;
  int num_tables = 0;
  /// Model recall for points at exactly the radius: 1 - (1 - p_near^k)^L.
  double expected_recall = 0.0;
  /// Expected per-query LSH cost in alpha units under the model.
  double expected_cost = 0.0;
  /// Expected collisions and candidates behind the cost (diagnostics).
  double expected_collisions = 0.0;
  double expected_candidates = 0.0;
};

/// Model cost of a specific (k, L) under the input (exposed for tests and
/// for evaluating the paper's fixed-L choice).
Plan EvaluatePlan(const PlannerInput& input, int k, int num_tables);

/// Finds the feasible (k, L) minimizing expected cost. Fails if the input
/// is invalid (probabilities outside (0,1), p_near <= p_far being fine but
/// p_near <= 0 not) or no feasible plan exists within the bounds.
util::StatusOr<Plan> PlanParameters(const PlannerInput& input);

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_PLANNER_H_
