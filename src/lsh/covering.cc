#include "lsh/covering.h"

#include <bit>

#include "util/hash.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace hybridlsh {
namespace lsh {
namespace {

// Bucket key of a masked code: hash of (code AND mask) words.
uint64_t MaskedKey(const uint64_t* code, const std::vector<uint64_t>& mask,
                   uint64_t seed) {
  uint64_t h = seed;
  for (size_t w = 0; w < mask.size(); ++w) {
    h = util::HashCombine(h, code[w] & mask[w]);
  }
  return h;
}

}  // namespace

util::StatusOr<CoveringLshIndex> CoveringLshIndex::Build(
    const data::BinaryDataset& dataset, const Options& options) {
  if (options.radius < 1 || options.radius > kMaxRadius) {
    return util::Status::InvalidArgument(
        "covering LSH radius must be in [1, 12] (tables grow as 2^(r+1)-1)");
  }
  if (dataset.size() == 0) {
    return util::Status::InvalidArgument("cannot index an empty dataset");
  }
  if (options.hll_precision < hll::HyperLogLog::kMinPrecision ||
      options.hll_precision > hll::HyperLogLog::kMaxPrecision) {
    return util::Status::InvalidArgument("hll_precision out of range");
  }

  CoveringLshIndex index;
  index.radius_ = options.radius;
  index.width_bits_ = dataset.width_bits();
  index.words_per_code_ = dataset.words_per_code();
  index.num_points_ = dataset.size();
  index.hll_precision_ = options.hll_precision;
  index.seed_ = options.seed;

  const uint32_t b = options.radius + 1;
  const size_t num_tables = (size_t{1} << b) - 1;

  // Sample phi: every bit position gets a uniform vector in {0,1}^b.
  util::Rng rng(options.seed);
  std::vector<uint32_t> phi(index.width_bits_);
  for (auto& v : phi) {
    v = static_cast<uint32_t>(rng.NextU64() & ((uint64_t{1} << b) - 1));
  }

  // Table t uses a = t+1; mask bit i iff <phi(i), a> is odd.
  index.masks_.assign(num_tables,
                      std::vector<uint64_t>(index.words_per_code_, 0));
  for (size_t t = 0; t < num_tables; ++t) {
    const uint32_t a = static_cast<uint32_t>(t + 1);
    for (size_t i = 0; i < index.width_bits_; ++i) {
      if (std::popcount(phi[i] & a) & 1) {
        index.masks_[t][i >> 6] |= uint64_t{1} << (i & 63);
      }
    }
  }

  // Build the tables.
  index.tables_.resize(num_tables);
  LshTable::Options table_options;
  table_options.hll_precision = options.hll_precision;
  table_options.small_bucket_threshold = options.small_bucket_threshold;
  const size_t n = dataset.size();
  util::ParallelFor(0, num_tables, options.num_build_threads, [&](size_t t) {
    std::vector<uint64_t> keys(n);
    const uint64_t table_seed = util::HashU64(options.seed, t);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = MaskedKey(dataset.point(i), index.masks_[t], table_seed);
    }
    index.tables_[t].Build(keys, table_options);
  });
  return index;
}

void CoveringLshIndex::QueryKeys(Point code,
                                 std::vector<uint64_t>* keys) const {
  const size_t num_tables = tables_.size();
  keys->resize(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    (*keys)[t] = MaskedKey(code, masks_[t], util::HashU64(seed_, t));
  }
}

CoveringLshIndex::ProbeEstimate CoveringLshIndex::EstimateProbe(
    std::span<const uint64_t> keys, hll::HyperLogLog* scratch) const {
  HLSH_DCHECK(scratch->precision() == hll_precision_);
  scratch->Clear();
  ProbeEstimate estimate;
  for (size_t t = 0; t < keys.size(); ++t) {
    const LshTable::BucketView bucket = tables_[t].Lookup(keys[t]);
    if (bucket.empty()) continue;
    estimate.collisions += bucket.size();
    if (bucket.sketch != nullptr) {
      HLSH_CHECK(scratch->Merge(*bucket.sketch).ok());
    } else {
      for (uint32_t id : bucket.ids) scratch->AddPoint(id);
    }
  }
  estimate.cand_estimate = estimate.collisions == 0 ? 0.0 : scratch->Estimate();
  return estimate;
}

uint64_t CoveringLshIndex::CollectCandidates(std::span<const uint64_t> keys,
                                             util::VisitedSet* visited) const {
  uint64_t collisions = 0;
  for (size_t t = 0; t < keys.size(); ++t) {
    const LshTable::BucketView bucket = tables_[t].Lookup(keys[t]);
    collisions += bucket.size();
    for (uint32_t id : bucket.ids) visited->Insert(id);
  }
  return collisions;
}

size_t CoveringLshIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& mask : masks_) total += mask.size() * sizeof(uint64_t);
  for (const auto& table : tables_) total += table.MemoryBytes();
  return total;
}

}  // namespace lsh
}  // namespace hybridlsh
