#include "lsh/families.h"

#include <cmath>
#include <limits>

#include "core/kernels.h"
#include "lsh/params.h"
#include "util/hash.h"

namespace hybridlsh {
namespace lsh {

namespace {

// The dense families' signature paths project through the dispatched
// matvec kernels (core/kernels.h). k is small (paper: 7-8), so the raw
// projections live on the stack unless a caller samples an unusually wide
// signature.
constexpr size_t kStackProjections = 64;

struct ProjBuffer {
  float stack[kStackProjections];
  std::vector<float> heap;

  float* Acquire(size_t k) {
    if (k <= kStackProjections) return stack;
    heap.resize(k);
    return heap.data();
  }
};

}  // namespace

// --- SimHashFamily ----------------------------------------------------------

SimHashFamily::Functions SimHashFamily::Sample(size_t k, util::Rng* rng) const {
  Functions fns{util::FloatMatrix(k, dim_)};
  for (size_t i = 0; i < k; ++i) {
    float* row = fns.hyperplanes.MutableRow(i);
    for (size_t j = 0; j < dim_; ++j) {
      row[j] = static_cast<float>(rng->Gaussian());
    }
  }
  return fns;
}

void SimHashFamily::Signature(const Functions& fns, Point point,
                              std::span<int32_t> slots) const {
  const size_t k = slots.size();
  HLSH_DCHECK(fns.hyperplanes.rows() == k);
  if (k == 0) return;
  ProjBuffer buffer;
  float* proj = buffer.Acquire(k);
  core::kernels::ProjectionKernels().matvec(fns.hyperplanes.Row(0), k, dim_,
                                            point, proj);
  SignatureFromProjections(fns, {proj, k}, slots);
}

void SimHashFamily::SignatureWithProbeCosts(const Functions& fns, Point point,
                                            std::span<int32_t> slots,
                                            std::span<double> flip_costs) const {
  const size_t k = slots.size();
  HLSH_DCHECK(flip_costs.size() == k);
  if (k == 0) return;
  ProjBuffer buffer;
  float* proj = buffer.Acquire(k);
  core::kernels::ProjectionKernels().matvec(fns.hyperplanes.Row(0), k, dim_,
                                            point, proj);
  SignatureWithProbeCostsFromProjections(fns, {proj, k}, slots, flip_costs);
}

void SimHashFamily::ProjectBatch(const Functions& fns, const Point* points,
                                 size_t count, std::span<float> proj) const {
  const size_t k = fns.hyperplanes.rows();
  HLSH_DCHECK(proj.size() == k * count);
  if (k == 0 || count == 0) return;
  core::kernels::ProjectionKernels().matvec_block(fns.hyperplanes.Row(0), k,
                                                  dim_, points, count,
                                                  proj.data());
}

void SimHashFamily::SignatureFromProjections(const Functions& fns,
                                             std::span<const float> proj,
                                             std::span<int32_t> slots) const {
  (void)fns;
  const size_t k = slots.size();
  HLSH_DCHECK(proj.size() == k);
  for (size_t i = 0; i < k; ++i) slots[i] = proj[i] >= 0.0f;
}

void SimHashFamily::SignatureWithProbeCostsFromProjections(
    const Functions& fns, std::span<const float> proj,
    std::span<int32_t> slots, std::span<double> flip_costs) const {
  (void)fns;
  const size_t k = slots.size();
  HLSH_DCHECK(proj.size() == k && flip_costs.size() == k);
  for (size_t i = 0; i < k; ++i) {
    slots[i] = proj[i] >= 0.0f;
    flip_costs[i] = std::fabs(static_cast<double>(proj[i]));
  }
}

double SimHashFamily::CollisionProbability(double cosine_dist) const {
  return SimHashCollisionProbability(cosine_dist);
}

// --- PStableFamily ----------------------------------------------------------

PStableFamily::Functions PStableFamily::Sample(size_t k, util::Rng* rng) const {
  Functions fns{util::FloatMatrix(k, dim_), std::vector<float>(k)};
  for (size_t i = 0; i < k; ++i) {
    float* row = fns.projections.MutableRow(i);
    for (size_t j = 0; j < dim_; ++j) {
      row[j] = static_cast<float>(kind_ == StableKind::kGaussian
                                      ? rng->Gaussian()
                                      : rng->Cauchy());
    }
    fns.offsets[i] = static_cast<float>(rng->Uniform(0.0, w_));
  }
  return fns;
}

void PStableFamily::Signature(const Functions& fns, Point point,
                              std::span<int32_t> slots) const {
  const size_t k = slots.size();
  HLSH_DCHECK(fns.projections.rows() == k);
  if (k == 0) return;
  ProjBuffer buffer;
  float* proj = buffer.Acquire(k);
  core::kernels::ProjectionKernels().matvec(fns.projections.Row(0), k, dim_,
                                            point, proj);
  SignatureFromProjections(fns, {proj, k}, slots);
}

void PStableFamily::SignatureWithProbeCosts(const Functions& fns, Point point,
                                            std::span<int32_t> slots,
                                            std::span<double> down_costs,
                                            std::span<double> up_costs) const {
  const size_t k = slots.size();
  HLSH_DCHECK(down_costs.size() == k && up_costs.size() == k);
  if (k == 0) return;
  ProjBuffer buffer;
  float* proj = buffer.Acquire(k);
  core::kernels::ProjectionKernels().matvec(fns.projections.Row(0), k, dim_,
                                            point, proj);
  SignatureWithProbeCostsFromProjections(fns, {proj, k}, slots, down_costs,
                                         up_costs);
}

void PStableFamily::ProjectBatch(const Functions& fns, const Point* points,
                                 size_t count, std::span<float> proj) const {
  const size_t k = fns.projections.rows();
  HLSH_DCHECK(proj.size() == k * count);
  if (k == 0 || count == 0) return;
  core::kernels::ProjectionKernels().matvec_block(fns.projections.Row(0), k,
                                                  dim_, points, count,
                                                  proj.data());
}

void PStableFamily::SignatureFromProjections(const Functions& fns,
                                             std::span<const float> proj,
                                             std::span<int32_t> slots) const {
  const size_t k = slots.size();
  HLSH_DCHECK(proj.size() == k);
  for (size_t i = 0; i < k; ++i) {
    const double value =
        (static_cast<double>(proj[i]) + fns.offsets[i]) / w_;
    slots[i] = static_cast<int32_t>(std::floor(value));
  }
}

void PStableFamily::SignatureWithProbeCostsFromProjections(
    const Functions& fns, std::span<const float> proj,
    std::span<int32_t> slots, std::span<double> down_costs,
    std::span<double> up_costs) const {
  const size_t k = slots.size();
  HLSH_DCHECK(proj.size() == k);
  HLSH_DCHECK(down_costs.size() == k && up_costs.size() == k);
  for (size_t i = 0; i < k; ++i) {
    const double value =
        (static_cast<double>(proj[i]) + fns.offsets[i]) / w_;
    const double floor_value = std::floor(value);
    slots[i] = static_cast<int32_t>(floor_value);
    const double frac = value - floor_value;  // position inside the window
    down_costs[i] = frac;                     // distance to the lower boundary
    up_costs[i] = 1.0 - frac;                 // distance to the upper boundary
  }
}

double PStableFamily::CollisionProbability(double dist) const {
  return kind_ == StableKind::kGaussian
             ? GaussianCollisionProbability(dist, w_)
             : CauchyCollisionProbability(dist, w_);
}

// --- BitSamplingFamily ------------------------------------------------------

BitSamplingFamily::Functions BitSamplingFamily::Sample(size_t k,
                                                       util::Rng* rng) const {
  Functions fns;
  fns.positions.resize(k);
  for (size_t i = 0; i < k; ++i) {
    fns.positions[i] = static_cast<uint32_t>(
        rng->UniformInt(0, static_cast<int64_t>(width_bits_) - 1));
  }
  return fns;
}

void BitSamplingFamily::Signature(const Functions& fns, Point code,
                                  std::span<int32_t> slots) const {
  const size_t k = slots.size();
  HLSH_DCHECK(fns.positions.size() == k);
  for (size_t i = 0; i < k; ++i) {
    const uint32_t bit = fns.positions[i];
    slots[i] = static_cast<int32_t>((code[bit >> 6] >> (bit & 63)) & 1);
  }
}

void BitSamplingFamily::SignatureWithProbeCosts(
    const Functions& fns, Point code, std::span<int32_t> slots,
    std::span<double> flip_costs) const {
  Signature(fns, code, slots);
  for (size_t i = 0; i < flip_costs.size(); ++i) flip_costs[i] = 1.0;
}

double BitSamplingFamily::CollisionProbability(double hamming_dist) const {
  return BitSamplingCollisionProbability(hamming_dist,
                                         static_cast<double>(width_bits_));
}

// --- MinHashFamily ----------------------------------------------------------

MinHashFamily::Functions MinHashFamily::Sample(size_t k, util::Rng* rng) const {
  Functions fns;
  fns.seeds.resize(k);
  for (size_t i = 0; i < k; ++i) fns.seeds[i] = rng->NextU64();
  return fns;
}

void MinHashFamily::Signature(const Functions& fns, Point set,
                              std::span<int32_t> slots) const {
  const size_t k = slots.size();
  HLSH_DCHECK(fns.seeds.size() == k);
  for (size_t i = 0; i < k; ++i) {
    uint64_t min_hash = std::numeric_limits<uint64_t>::max();
    for (uint32_t element : set) {
      const uint64_t h = util::HashU64(element, fns.seeds[i]);
      if (h < min_hash) min_hash = h;
    }
    slots[i] = set.empty()
                   ? std::numeric_limits<int32_t>::max()
                   : static_cast<int32_t>(static_cast<uint32_t>(min_hash));
  }
}

double MinHashFamily::CollisionProbability(double jaccard_dist) const {
  return MinHashCollisionProbability(jaccard_dist);
}


// --- Serialization hooks ------------------------------------------------------

namespace {

// Shared helper: (de)serialize a FloatMatrix with its shape.
void SaveMatrix(const util::FloatMatrix& matrix, util::ByteWriter* writer) {
  writer->WriteU64(matrix.rows());
  writer->WriteU64(matrix.cols());
  writer->WriteArray<float>(matrix.data());
}

util::StatusOr<util::FloatMatrix> LoadMatrix(util::ByteReader* reader) {
  uint64_t rows = 0, cols = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&rows));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&cols));
  if (rows != 0 && cols > (uint64_t{1} << 32) / rows) {
    return util::Status::DataLoss("matrix shape overflows");
  }
  std::vector<float> data;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<float>(rows * cols, &data));
  return util::FloatMatrix(rows, cols, std::move(data));
}

}  // namespace

void SimHashFamily::SaveFamily(util::ByteWriter* writer) const {
  writer->WriteU64(dim_);
}

util::StatusOr<SimHashFamily> SimHashFamily::LoadFamily(
    util::ByteReader* reader) {
  uint64_t dim = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&dim));
  if (dim == 0 || dim > (uint64_t{1} << 24)) {
    return util::Status::DataLoss("SimHash family has invalid dimension");
  }
  return SimHashFamily(dim);
}

void SimHashFamily::SaveFunctions(const Functions& fns,
                                  util::ByteWriter* writer) const {
  SaveMatrix(fns.hyperplanes, writer);
}

util::StatusOr<SimHashFamily::Functions> SimHashFamily::LoadFunctions(
    util::ByteReader* reader) const {
  auto matrix = LoadMatrix(reader);
  if (!matrix.ok()) return matrix.status();
  if (matrix->cols() != dim_) {
    return util::Status::DataLoss("hyperplane width mismatches family");
  }
  return Functions{std::move(*matrix)};
}

void PStableFamily::SaveFamily(util::ByteWriter* writer) const {
  writer->WriteU8(kind_ == StableKind::kGaussian ? 0 : 1);
  writer->WriteU64(dim_);
  writer->WriteF64(w_);
}

util::StatusOr<PStableFamily> PStableFamily::LoadFamily(
    util::ByteReader* reader) {
  uint8_t kind_byte = 0;
  uint64_t dim = 0;
  double w = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU8(&kind_byte));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&dim));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&w));
  if (kind_byte > 1) return util::Status::DataLoss("invalid stable kind");
  if (dim == 0 || dim > (uint64_t{1} << 24) || !(w > 0)) {
    return util::Status::DataLoss("p-stable family has invalid parameters");
  }
  return PStableFamily(kind_byte == 0 ? StableKind::kGaussian
                                      : StableKind::kCauchy,
                       dim, w);
}

void PStableFamily::SaveFunctions(const Functions& fns,
                                  util::ByteWriter* writer) const {
  SaveMatrix(fns.projections, writer);
  writer->WriteU64(fns.offsets.size());
  writer->WriteArray<float>(fns.offsets);
}

util::StatusOr<PStableFamily::Functions> PStableFamily::LoadFunctions(
    util::ByteReader* reader) const {
  auto matrix = LoadMatrix(reader);
  if (!matrix.ok()) return matrix.status();
  if (matrix->cols() != dim_) {
    return util::Status::DataLoss("projection width mismatches family");
  }
  uint64_t num_offsets = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_offsets));
  if (num_offsets != matrix->rows()) {
    return util::Status::DataLoss("offset count mismatches projections");
  }
  std::vector<float> offsets;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<float>(num_offsets, &offsets));
  return Functions{std::move(*matrix), std::move(offsets)};
}

void BitSamplingFamily::SaveFamily(util::ByteWriter* writer) const {
  writer->WriteU64(width_bits_);
}

util::StatusOr<BitSamplingFamily> BitSamplingFamily::LoadFamily(
    util::ByteReader* reader) {
  uint64_t width = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&width));
  if (width == 0 || width > (uint64_t{1} << 24)) {
    return util::Status::DataLoss("bit-sampling family has invalid width");
  }
  return BitSamplingFamily(width);
}

void BitSamplingFamily::SaveFunctions(const Functions& fns,
                                      util::ByteWriter* writer) const {
  writer->WriteU64(fns.positions.size());
  writer->WriteArray<uint32_t>(fns.positions);
}

util::StatusOr<BitSamplingFamily::Functions> BitSamplingFamily::LoadFunctions(
    util::ByteReader* reader) const {
  uint64_t count = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&count));
  Functions fns;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint32_t>(count, &fns.positions));
  for (uint32_t position : fns.positions) {
    if (position >= width_bits_) {
      return util::Status::DataLoss("sampled bit position exceeds width");
    }
  }
  return fns;
}

void MinHashFamily::SaveFamily(util::ByteWriter* writer) const {
  writer->WriteU8(1);  // versioned placeholder; MinHash has no parameters
}

util::StatusOr<MinHashFamily> MinHashFamily::LoadFamily(
    util::ByteReader* reader) {
  uint8_t version = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU8(&version));
  if (version != 1) return util::Status::DataLoss("invalid MinHash block");
  return MinHashFamily();
}

void MinHashFamily::SaveFunctions(const Functions& fns,
                                  util::ByteWriter* writer) const {
  writer->WriteU64(fns.seeds.size());
  writer->WriteArray<uint64_t>(fns.seeds);
}

util::StatusOr<MinHashFamily::Functions> MinHashFamily::LoadFunctions(
    util::ByteReader* reader) const {
  uint64_t count = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&count));
  Functions fns;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(count, &fns.seeds));
  return fns;
}

}  // namespace lsh
}  // namespace hybridlsh
