// LSH parameter tuning: collision probabilities and the paper's k rule.
//
// The paper (§2) fixes the number of tables L and the failure probability
// delta, then sets
//
//     k = ceil( log(1 - delta^(1/L)) / log p1 )
//
// where p1 is the collision probability of one atomic hash function at the
// search radius r. This is the practical E2LSH setting; it guarantees that
// a point at distance exactly r collides with the query in at least one of
// the L tables with probability >= 1 - delta (up to the ceil rounding,
// which the paper accepts; AutoK reproduces the paper's rounding and
// RecallLowerBound reports the implied guarantee).
//
// Collision probability formulas per family:
//   * bit sampling on D-bit codes [Indyk-Motwani]: p(r) = 1 - r/D
//   * SimHash [Charikar] on cosine distance s:     p(s) = 1 - acos(1-s)/pi
//   * 2-stable (Gaussian) projections, window w [Datar et al.]:
//       p(r) = 1 - 2*Phi(-w/r) - (2r / (sqrt(2 pi) w)) (1 - e^{-w^2/2r^2})
//   * 1-stable (Cauchy) projections, window w [Datar et al.]:
//       p(r) = (2/pi) atan(w/r) - (r / (pi w)) ln(1 + (w/r)^2)
//   * MinHash [Broder et al.] on Jaccard distance j: p(j) = 1 - j

#ifndef HYBRIDLSH_LSH_PARAMS_H_
#define HYBRIDLSH_LSH_PARAMS_H_

#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// p(r) for one Gaussian (2-stable) projection with window w; L2 distance.
/// Returns 1 for r <= 0.
double GaussianCollisionProbability(double dist, double w);

/// p(r) for one Cauchy (1-stable) projection with window w; L1 distance.
/// Returns 1 for r <= 0.
double CauchyCollisionProbability(double dist, double w);

/// p(s) for one SimHash hyperplane; s = cosine distance in [0, 2].
double SimHashCollisionProbability(double cosine_dist);

/// p(r) for one sampled bit of a width_bits-bit code; Hamming distance.
double BitSamplingCollisionProbability(double hamming_dist, double width_bits);

/// p(j) for one MinHash function; j = Jaccard distance in [0, 1].
double MinHashCollisionProbability(double jaccard_dist);

/// The paper's k rule: ceil(log(1 - delta^(1/L)) / log p1), clamped to
/// >= 1. Fails when p1 is not in (0, 1] or delta not in (0, 1) or L < 1.
util::StatusOr<int> AutoK(double p1, int num_tables, double delta);

/// Probability that a point at collision probability p1 per atomic hash is
/// reported: 1 - (1 - p1^k)^L.
double RecallLowerBound(int k, int num_tables, double p1);

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_PARAMS_H_
