// Covering LSH for Hamming distance (Pagh, SODA 2016): LSH *without false
// negatives*, the second "future work" integration the paper names (§5).
//
// Construction: pick b = radius + 1 and a random map phi from bit
// positions [D] to {0,1}^b. For every nonzero a in {0,1}^b define
// h_a(x) = (x_i : <phi(i), a> = 1 over GF(2)) — i.e., table a masks the
// code to the positions whose phi-vector has odd inner product with a.
// That yields 2^(r+1) - 1 correlated tables.
//
// Guarantee: if Hamming(x, q) <= r, the differing positions D' span at
// most r < b dimensions of GF(2)^b, so a nonzero vector a* orthogonal to
// all of phi(D') exists; table a* masks out every differing bit and x
// collides with q there — deterministically, for every query.
//
// The exponential table count is inherent to the scheme; Build rejects
// radius > kMaxRadius. Buckets carry HLL sketches exactly like LshTable, so
// the hybrid cost model runs on covering LSH unchanged — the combination
// the paper proposes as future work (bench_covering_lsh).

#ifndef HYBRIDLSH_LSH_COVERING_H_
#define HYBRIDLSH_LSH_COVERING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "hll/hyperloglog.h"
#include "lsh/table.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// Covering LSH index over packed binary codes.
class CoveringLshIndex {
 public:
  using Point = const uint64_t*;

  /// Largest supported radius: 2^(12+1) - 1 = 8191 tables.
  static constexpr uint32_t kMaxRadius = 12;

  struct Options {
    /// The radius r the no-false-negative guarantee must hold for.
    uint32_t radius = 2;
    int hll_precision = 7;
    size_t small_bucket_threshold = LshTable::kThresholdAuto;
    uint64_t seed = 1;
    size_t num_build_threads = 1;
  };

  /// Builds the 2^(radius+1) - 1 masked tables over `dataset`.
  static util::StatusOr<CoveringLshIndex> Build(
      const data::BinaryDataset& dataset, const Options& options);

  /// Bucket keys of a query, one per table.
  void QueryKeys(Point code, std::vector<uint64_t>* keys) const;

  /// Exact #collisions + candSize estimate via merged bucket HLLs.
  struct ProbeEstimate {
    uint64_t collisions = 0;
    double cand_estimate = 0.0;
  };
  ProbeEstimate EstimateProbe(std::span<const uint64_t> keys,
                              hll::HyperLogLog* scratch) const;

  /// Dedups all probed ids into `visited`; returns exact #collisions.
  uint64_t CollectCandidates(std::span<const uint64_t> keys,
                             util::VisitedSet* visited) const;

  /// Hamming distance between two codes of this index's width.
  double Distance(Point a, Point b) const {
    return data::HammingDistance(a, b, words_per_code_);
  }

  int num_tables() const { return static_cast<int>(tables_.size()); }
  size_t size() const { return num_points_; }
  uint32_t radius() const { return radius_; }
  size_t width_bits() const { return width_bits_; }
  int hll_precision() const { return hll_precision_; }

  hll::HyperLogLog MakeScratchSketch() const {
    return hll::HyperLogLog(hll_precision_);
  }

  /// Total heap bytes across tables.
  size_t MemoryBytes() const;

 private:
  CoveringLshIndex() = default;

  uint32_t radius_ = 0;
  size_t width_bits_ = 0;
  size_t words_per_code_ = 0;
  size_t num_points_ = 0;
  int hll_precision_ = 7;
  uint64_t seed_ = 0;
  // masks_[t] holds words_per_code_ words: table t keeps bit i iff
  // <phi(i), a_t> = 1, where a_t = t + 1.
  std::vector<std::vector<uint64_t>> masks_;
  std::vector<LshTable> tables_;
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_COVERING_H_
