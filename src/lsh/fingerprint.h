// SimHash fingerprinting: dense vectors -> fixed-width binary codes.
//
// The paper's MNIST pipeline (§4): "we applied SimHash to obtain 64-bit
// fingerprint vectors for MNIST and use bit sampling LSH for Hamming
// distance". Fingerprinter samples `width_bits` random hyperplanes once and
// then maps any number of points (base set and queries alike — the same
// hyperplanes must be used for both) to packed codes where bit i is
// sign(<a_i, x>).
//
// By the SimHash property, E[Hamming(f(x), f(y))] = width * angle(x,y) / pi,
// so Hamming radii on fingerprints correspond to cosine radii on the
// original vectors.

#ifndef HYBRIDLSH_LSH_FINGERPRINT_H_
#define HYBRIDLSH_LSH_FINGERPRINT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/matrix.h"
#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// Maps dense points to `width_bits` SimHash fingerprints.
class Fingerprinter {
 public:
  /// Samples width_bits Gaussian hyperplanes over `dim` dimensions.
  Fingerprinter(size_t dim, size_t width_bits, uint64_t seed);

  /// Fingerprints one point into out_words (words_per_code() words).
  void TransformPoint(const float* point, uint64_t* out_words) const;

  /// Fingerprints a whole dataset. Dimension must match.
  util::StatusOr<data::BinaryDataset> Transform(
      const data::DenseDataset& dataset) const;

  size_t dim() const { return dim_; }
  size_t width_bits() const { return width_bits_; }
  size_t words_per_code() const { return (width_bits_ + 63) / 64; }

 private:
  size_t dim_;
  size_t width_bits_;
  util::FloatMatrix hyperplanes_;  // width_bits x dim
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_FINGERPRINT_H_
