#include "lsh/planner.h"

#include <cmath>

namespace hybridlsh {
namespace lsh {
namespace {

double HitProbability(double p, int k, int num_tables) {
  const double per_table = std::pow(p, k);
  return 1.0 - std::pow(1.0 - per_table, num_tables);
}

}  // namespace

Plan EvaluatePlan(const PlannerInput& input, int k, int num_tables) {
  Plan plan;
  plan.k = k;
  plan.num_tables = num_tables;

  const double n = static_cast<double>(input.n);
  const double f_near = input.near_fraction;
  const double f_far = 1.0 - f_near;
  const double p_near_k = std::pow(input.p_near, k);
  const double p_far_k = std::pow(input.p_far, k);

  plan.expected_recall = HitProbability(input.p_near, k, num_tables);
  plan.expected_collisions =
      static_cast<double>(num_tables) * n * (f_near * p_near_k + f_far * p_far_k);
  plan.expected_candidates =
      n * (f_near * HitProbability(input.p_near, k, num_tables) +
           f_far * HitProbability(input.p_far, k, num_tables));
  plan.expected_cost =
      plan.expected_collisions + input.beta_over_alpha * plan.expected_candidates;
  return plan;
}

util::StatusOr<Plan> PlanParameters(const PlannerInput& input) {
  if (input.p_near <= 0.0 || input.p_near > 1.0 || input.p_far < 0.0 ||
      input.p_far > 1.0) {
    return util::Status::InvalidArgument(
        "collision probabilities must lie in (0, 1]");
  }
  if (input.delta <= 0.0 || input.delta >= 1.0) {
    return util::Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (input.near_fraction < 0.0 || input.near_fraction > 1.0) {
    return util::Status::InvalidArgument("near_fraction must be in [0, 1]");
  }
  if (input.n == 0 || input.max_k < 1 || input.max_tables < 1) {
    return util::Status::InvalidArgument("empty search space");
  }

  bool found = false;
  Plan best;
  for (int k = 1; k <= input.max_k; ++k) {
    // Smallest L meeting the recall constraint for this k:
    //   (1 - p_near^k)^L <= delta  =>  L >= log(delta) / log(1 - p_near^k).
    const double per_table = std::pow(input.p_near, k);
    int min_tables = 1;
    if (per_table < 1.0) {
      const double tables =
          std::log(input.delta) / std::log(1.0 - per_table);
      if (!(tables <= static_cast<double>(input.max_tables))) {
        // Feasible L exceeds the bound; larger k only makes it worse.
        break;
      }
      min_tables = std::max(1, static_cast<int>(std::ceil(tables - 1e-12)));
    }
    // Cost is increasing in L beyond the constraint (every extra table adds
    // collisions and candidates), so L = min_tables is optimal for this k.
    const Plan plan = EvaluatePlan(input, k, min_tables);
    if (!found || plan.expected_cost < best.expected_cost) {
      best = plan;
      found = true;
    }
  }
  if (!found) {
    return util::Status::FailedPrecondition(
        "no (k, L) within bounds meets the recall constraint");
  }
  return best;
}

}  // namespace lsh
}  // namespace hybridlsh
