#include "lsh/fingerprint.h"

#include <cstring>

#include "data/metric.h"
#include "util/random.h"

namespace hybridlsh {
namespace lsh {

Fingerprinter::Fingerprinter(size_t dim, size_t width_bits, uint64_t seed)
    : dim_(dim), width_bits_(width_bits), hyperplanes_(width_bits, dim) {
  HLSH_CHECK(dim > 0);
  HLSH_CHECK(width_bits > 0);
  util::Rng rng(seed);
  for (size_t i = 0; i < width_bits; ++i) {
    float* row = hyperplanes_.MutableRow(i);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.Gaussian());
    }
  }
}

void Fingerprinter::TransformPoint(const float* point,
                                   uint64_t* out_words) const {
  std::memset(out_words, 0, words_per_code() * sizeof(uint64_t));
  for (size_t bit = 0; bit < width_bits_; ++bit) {
    if (data::DotProduct(hyperplanes_.Row(bit), point, dim_) >= 0.0f) {
      out_words[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }
}

util::StatusOr<data::BinaryDataset> Fingerprinter::Transform(
    const data::DenseDataset& dataset) const {
  if (dataset.dim() != dim_) {
    return util::Status::InvalidArgument(
        "dataset dimension does not match fingerprinter");
  }
  data::BinaryDataset codes(dataset.size(), width_bits_);
  for (size_t i = 0; i < dataset.size(); ++i) {
    TransformPoint(dataset.point(i), codes.mutable_point(i));
  }
  return codes;
}

}  // namespace lsh
}  // namespace hybridlsh
