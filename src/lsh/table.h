// One LSH hash table with HyperLogLog-augmented buckets (paper Alg. 1).
//
// A table maps 64-bit bucket keys (hashed k-wise signatures) to buckets of
// point ids. Each bucket additionally carries an HLL sketch of its ids so
// that, at query time, merging the sketches of the L probed buckets
// estimates the distinct candidate count candSize (paper Alg. 2, step 2).
//
// Space optimization (paper §3.2): buckets smaller than
// `small_bucket_threshold` do not materialize a sketch — their few ids are
// folded into the query-time merged HLL on demand, which costs O(bucket
// size) hashing but saves m bytes per small bucket. The threshold defaults
// to m (the register count), the break-even point the paper suggests.
//
// Storage is CSR-style: ids grouped by bucket in one contiguous array, so a
// table adds O(n) ids + O(#buckets) index entries + sketches only for big
// buckets.

#ifndef HYBRIDLSH_LSH_TABLE_H_
#define HYBRIDLSH_LSH_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hll/hyperloglog.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// A single hash table of the classic LSH scheme, with bucket sketches.
class LshTable {
 public:
  struct Options {
    /// HLL precision b; every bucket sketch has m = 2^b registers.
    int hll_precision = 7;
    /// Buckets with fewer ids than this get no sketch (ids are folded into
    /// the merged estimate on demand). kThresholdAuto = use m.
    size_t small_bucket_threshold = kThresholdAuto;
    /// Offset added to every stored id: position i in `keys` is indexed as
    /// id_base + i. Lets a shard index a slice of a larger dataset while
    /// reporting ids in the parent's global id space (bucket ids and bucket
    /// sketches both carry the offset). id_base + keys.size() must fit in
    /// uint32_t.
    uint32_t id_base = 0;
  };
  static constexpr size_t kThresholdAuto = static_cast<size_t>(-1);

  LshTable() = default;

  /// Builds the table from per-point bucket keys: point id i belongs to the
  /// bucket keyed keys[i]. Single pass; replaces any previous content.
  void Build(std::span<const uint64_t> keys, const Options& options);

  /// A view of one bucket. `sketch` is null for small buckets (fold `ids`
  /// into the merged HLL instead).
  struct BucketView {
    std::span<const uint32_t> ids;
    const hll::HyperLogLog* sketch = nullptr;

    size_t size() const { return ids.size(); }
    bool empty() const { return ids.empty(); }
  };

  /// Looks up the bucket for a key; returns an empty view when absent.
  BucketView Lookup(uint64_t key) const;

  /// Number of non-empty buckets.
  size_t num_buckets() const { return bucket_index_.size(); }
  /// Number of indexed points.
  size_t num_points() const { return ids_.size(); }
  /// Largest bucket size (0 when empty).
  size_t max_bucket_size() const { return max_bucket_size_; }
  /// Number of buckets that carry a materialized sketch.
  size_t num_sketches() const { return sketches_.size(); }
  /// Heap bytes for ids, offsets, index, and sketches.
  size_t MemoryBytes() const;
  /// Bytes used by HLL sketches alone (the paper's space overhead).
  size_t SketchBytes() const;

  /// Appends the table (buckets, ids, sketches) to the writer.
  void Serialize(util::ByteWriter* writer) const;
  /// Parses a table written by Serialize. Validates counts, offsets and
  /// sketch payloads; returns DataLoss on malformed input.
  static util::StatusOr<LshTable> Deserialize(util::ByteReader* reader);

 private:
  std::unordered_map<uint64_t, uint32_t> bucket_index_;  // key -> bucket ordinal
  std::vector<size_t> offsets_;                          // CSR offsets
  std::vector<uint32_t> ids_;                            // grouped point ids
  std::vector<int32_t> sketch_of_bucket_;  // ordinal -> sketch idx or -1
  std::vector<hll::HyperLogLog> sketches_;
  size_t max_bucket_size_ = 0;
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_TABLE_H_
