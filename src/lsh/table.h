// One LSH hash table with HyperLogLog-augmented buckets (paper Alg. 1).
//
// A table maps 64-bit bucket keys (hashed k-wise signatures) to buckets of
// point ids. Each bucket additionally carries an HLL sketch of its ids so
// that, at query time, merging the sketches of the L probed buckets
// estimates the distinct candidate count candSize (paper Alg. 2, step 2).
//
// Space optimization (paper §3.2): buckets smaller than
// `small_bucket_threshold` do not materialize a sketch — their few ids are
// folded into the query-time merged HLL on demand, which costs O(bucket
// size) hashing but saves m bytes per small bucket. The threshold defaults
// to m (the register count), the break-even point the paper suggests.
//
// Storage is CSR-style: ids grouped by bucket in one contiguous array, so a
// table adds O(n) ids + O(#buckets) index entries + sketches only for big
// buckets.

#ifndef HYBRIDLSH_LSH_TABLE_H_
#define HYBRIDLSH_LSH_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hll/hyperloglog.h"
#include "util/bit_vector.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace lsh {

/// A single hash table of the classic LSH scheme, with bucket sketches.
class LshTable {
 public:
  struct Options {
    /// HLL precision b; every bucket sketch has m = 2^b registers.
    int hll_precision = 7;
    /// Buckets with fewer ids than this get no sketch (ids are folded into
    /// the merged estimate on demand). kThresholdAuto = use m.
    size_t small_bucket_threshold = kThresholdAuto;
    /// Offset added to every stored id: position i in `keys` is indexed as
    /// id_base + i. Lets a shard index a slice of a larger dataset while
    /// reporting ids in the parent's global id space (bucket ids and bucket
    /// sketches both carry the offset). id_base + keys.size() must fit in
    /// uint32_t.
    uint32_t id_base = 0;
  };
  static constexpr size_t kThresholdAuto = static_cast<size_t>(-1);

  LshTable() = default;

  /// Builds the table from per-point bucket keys: point id i belongs to the
  /// bucket keyed keys[i]. Single pass; replaces any previous content.
  void Build(std::span<const uint64_t> keys, const Options& options);

  /// Builds the table from explicit (key, id) pairs: ids[i] belongs to the
  /// bucket keyed keys[i]. This is the segment-merge path: compaction
  /// exports the surviving entries of several tables (ExportEntries) and
  /// rebuilds one fresh table — with fresh sketches — without rehashing any
  /// point. Ids within a bucket are stored in ascending order, so the
  /// result is independent of the input entry order. Options::id_base is
  /// ignored (ids are already global). Replaces any previous content.
  void BuildFromEntries(std::span<const uint64_t> keys,
                        std::span<const uint32_t> ids, const Options& options);

  /// Appends every (bucket key, id) pair of the table to *keys / *ids,
  /// skipping ids whose `tombstones` bit is set (pass nullptr to keep
  /// everything). The inverse of BuildFromEntries, used by compaction.
  void ExportEntries(std::vector<uint64_t>* keys, std::vector<uint32_t>* ids,
                     const util::BitVector* tombstones = nullptr) const;

  /// A view of one bucket. `sketch` is null for small buckets (fold `ids`
  /// into the merged HLL instead).
  struct BucketView {
    std::span<const uint32_t> ids;
    const hll::HyperLogLog* sketch = nullptr;

    size_t size() const { return ids.size(); }
    bool empty() const { return ids.empty(); }
  };

  /// Looks up the bucket for a key; returns an empty view when absent.
  BucketView Lookup(uint64_t key) const;

  /// Number of non-empty buckets.
  size_t num_buckets() const { return bucket_index_.size(); }
  /// Number of indexed points.
  size_t num_points() const { return ids_.size(); }
  /// Largest bucket size (0 when empty).
  size_t max_bucket_size() const { return max_bucket_size_; }
  /// Number of buckets that carry a materialized sketch.
  size_t num_sketches() const { return sketches_.size(); }
  /// Heap bytes for ids, offsets, index, and sketches.
  size_t MemoryBytes() const;
  /// Bytes used by HLL sketches alone (the paper's space overhead).
  size_t SketchBytes() const;

  /// Appends the table (buckets, ids, sketches) to the writer.
  void Serialize(util::ByteWriter* writer) const;
  /// Parses a table written by Serialize. Validates counts, offsets and
  /// sketch payloads; returns DataLoss on malformed input.
  static util::StatusOr<LshTable> Deserialize(util::ByteReader* reader);

 private:
  std::unordered_map<uint64_t, uint32_t> bucket_index_;  // key -> bucket ordinal
  std::vector<size_t> offsets_;                          // CSR offsets
  std::vector<uint32_t> ids_;                            // grouped point ids
  std::vector<int32_t> sketch_of_bucket_;  // ordinal -> sketch idx or -1
  std::vector<hll::HyperLogLog> sketches_;
  size_t max_bucket_size_ = 0;
};

/// The append-friendly sibling of LshTable: plain hash-map buckets, no
/// sketches, no CSR packing. This is the *active segment* representation of
/// engine::SegmentedIndex — freshly inserted points land here until the
/// segment is sealed into an LshTable. Lookup returns the same BucketView
/// as LshTable with `sketch == nullptr`, so the query path treats every
/// active bucket like a small bucket (ids folded into the merged HLL on
/// demand), and the estimate/collect helpers work over either table kind.
class DynamicLshTable {
 public:
  DynamicLshTable() = default;

  /// Appends `id` to the bucket keyed `key`.
  void Insert(uint64_t key, uint32_t id) {
    buckets_[key].push_back(id);
    ++num_points_;
  }

  /// Looks up the bucket for a key; empty view when absent, never a sketch.
  LshTable::BucketView Lookup(uint64_t key) const {
    const auto it = buckets_.find(key);
    if (it == buckets_.end()) return LshTable::BucketView{};
    return LshTable::BucketView{{it->second.data(), it->second.size()},
                                nullptr};
  }

  /// Appends every (key, id) pair to *keys / *ids, skipping tombstoned ids
  /// (same contract as LshTable::ExportEntries).
  void ExportEntries(std::vector<uint64_t>* keys, std::vector<uint32_t>* ids,
                     const util::BitVector* tombstones = nullptr) const;

  size_t num_points() const { return num_points_; }
  size_t num_buckets() const { return buckets_.size(); }
  size_t MemoryBytes() const;

  /// Drops every bucket (after sealing into an LshTable).
  void Clear() {
    buckets_.clear();
    num_points_ = 0;
  }

 private:
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
  size_t num_points_ = 0;
};

}  // namespace lsh
}  // namespace hybridlsh

#endif  // HYBRIDLSH_LSH_TABLE_H_
