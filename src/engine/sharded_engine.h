// Shard-parallel serving engine over id-range partitions of one dataset.
//
// ShardedEngine<Family> splits the dataset into S disjoint contiguous id
// ranges, builds one SegmentedIndex<Family> per range (in parallel, on the
// engine's persistent util::ThreadPool), and answers a query by fanning out
// across shards and concatenating results. Each shard runs the paper's full
// Algorithm-2 hybrid decision *locally*, with LinearCost(shard_live_n)
// instead of LinearCost(n) — so a small or dense shard can independently
// fall back to an exact scan of its range while the others stay on LSH.
//
// Shards share the hash-function seed: table t of every shard samples the
// same k-wise functions and bucket-key seed as a monolithic index built
// with the same Options. A bucket of the monolithic index is therefore the
// exact union of the shards' corresponding buckets, which gives the
// engine's equivalence guarantee: with the same (seed, k, L), the union of
// per-shard LSH candidate sets equals the monolithic candidate set, and
// forced-LSH / forced-linear results are identical to the single-index
// path for any shard count (tests/test_sharded_engine.cc).
//
// Shard indexes carry *global* ids directly (the initial segment is built
// with the range start as its id offset) — no per-result offset translation
// on the query hot path.
//
// Mutable lifecycle (engine/segmented_index.h): after EnableUpdates (or a
// Build from a mutable dataset), Insert appends to the shared dataset and
// routes the new point to a shard round-robin; Remove routes the tombstone
// to the shard that owns the id; CompactAll compacts every shard in
// parallel on the pool (one task per shard, so no shard is touched by two
// threads).
//
// --- Concurrency model (the serving core) ----------------------------------
//
// The engine serves reads lock-free while writes and background
// maintenance run:
//
//   - QueryConcurrent + a caller-owned QueryScratch (one per reader
//     thread, MakeQueryScratch) is the concurrent read path: each query
//     walks an epoch-published SegmentSnapshot per shard — acquired with
//     plain atomic loads, re-acquired only when a shard's segment list
//     actually changed — and takes no lock anywhere. Any number of reader
//     threads may call it concurrently with each other, with Insert /
//     Remove, and with background seal / compaction.
//   - Insert and Remove serialize against each other on an internal writer
//     mutex (callers need no external locking) and never block readers.
//   - When ingest fills a shard's active segment, the freeze is published
//     immediately and the expensive part — CSR-building the sealed segment
//     and compaction — is scheduled on a dedicated background maintenance
//     thread, rate-limited to one in-flight task per shard. Ingest applies
//     backpressure (seals inline) only if the background thread falls
//     behind by several segments.
//   - stats(), size(), and live accounting are atomic snapshots, safe to
//     poll from any thread.
//   - SaveSnapshot and CompactAll take the writer mutex and drain
//     maintenance first: they block writers, not readers.
//
// The legacy Query / QueryBatch entry points (internal shard fan-out /
// batch pooling) use engine-owned scratch: at most one thread may be in
// them at a time, but they may run concurrently with writers and
// maintenance — they ride the same snapshot path underneath.
//
// --- The composable query pipeline (engine/query_pipeline.h) ----------------
//
// Every entry point executes one QuerySpec through the same stage chain:
// plan -> probe -> gather -> filter -> verify -> score -> merge. The legacy
// radius calls are thin wrappers over QuerySpec::Radius(r); a predicate
// pushes a BitVector filter into the verify kernels (candidates pay a bit
// test before a distance, and the cost model prices the linear scan at
// LinearCost(live, selectivity)); fusion runs N subqueries against the
// same per-shard snapshot acquisition, sharing the hash-once plan and the
// filter, and merges with deterministic RRF / LINEAR scoring
// (core/fusion.h). Attach an AttributeStore (row == global id) with
// AttachAttributes before issuing filtered specs.

#ifndef HYBRIDLSH_ENGINE_SHARDED_ENGINE_H_
#define HYBRIDLSH_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fusion.h"
#include "core/hybrid_searcher.h"
#include "core/kernels.h"
#include "data/attributes.h"
#include "data/dataset.h"
#include "data/metric.h"
#include "data/quantized.h"
#include "engine/dataset_slice.h"
#include "engine/query_pipeline.h"
#include "engine/segmented_index.h"
#include "engine/snapshot.h"
#include "lsh/index.h"
#include "util/bit_vector.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hybridlsh {
namespace engine {

/// Aggregate per-query observability across the shard fan-out.
struct ShardedQueryStats {
  /// Shards queried (== engine num_shards()).
  size_t num_shards = 0;
  /// How many shards answered with LSH-based search vs. exact scan.
  size_t lsh_shards = 0;
  size_t linear_shards = 0;
  /// Sums of the per-shard Algorithm-2 quantities.
  uint64_t collisions = 0;
  double cand_estimate = 0.0;
  size_t cand_actual = 0;
  size_t output_size = 0;
  /// Per-table hash signatures evaluated for this query: L with the
  /// hash-once ProbePlan regardless of shard count, 0 on forced-linear
  /// (the plan is skipped entirely).
  uint64_t hash_evals = 0;
  /// Shard walks served by the one precomputed plan (== shards queried on
  /// the hybrid/LSH paths; 0 on forced-linear).
  size_t plan_reuse = 0;
  /// Wall seconds computing the probe plan (S1; amortized share of the
  /// batch plan computation on the QueryBatch path).
  double hash_seconds = 0.0;
  /// Wall seconds for the whole fan-out (not the per-shard sum).
  double total_seconds = 0.0;
  /// Filter stage (pushdown predicate): whether this query carried one,
  /// the fraction of live points passing it, the composed-bitmap
  /// popcount, and the wall seconds spent evaluating + composing it (0
  /// when the filter was prebuilt and shared, e.g. across a batch).
  bool filtered = false;
  double filter_selectivity = 1.0;
  size_t filter_survivors = 0;
  double filter_seconds = 0.0;
  /// Fusion clauses executed (0 for plain queries).
  size_t fusion_subqueries = 0;
  /// Per-shard detail, indexed by shard ordinal. On fused queries each
  /// shard's counters accumulate over its geometric subqueries and
  /// `strategy` reflects the last one.
  std::vector<core::QueryStats> per_shard;
};

/// One query's result in a batch.
struct ShardedBatchResult {
  std::vector<uint32_t> neighbors;
  ShardedQueryStats stats;
};

/// Build/serve summary of an engine.
struct EngineStats {
  size_t num_points = 0;
  size_t num_shards = 0;
  size_t num_threads = 0;
  double build_seconds = 0.0;   // wall time of the parallel shard build
  size_t memory_bytes = 0;      // summed over shard indexes
  size_t sketch_bytes = 0;
  /// Memory accounting, split by what the bytes buy: the point container
  /// (with its norm cache), the int8 quantized mirror (0 when the screen
  /// is off or the container is not dense — expect ~dataset_bytes/4 when
  /// on), and the index structures (segments + tombstones; equals
  /// memory_bytes, kept under both names for compatibility).
  size_t dataset_bytes = 0;
  size_t mirror_bytes = 0;
  size_t index_bytes = 0;
  /// Whether the int8 screen is active (a mirror is built and queries
  /// verify through VerifyBlockQuantized).
  bool quantized_verify = false;
  /// Cumulative query-side hash counters (atomic snapshots): per-table
  /// signature evaluations performed, and shard walks that reused a
  /// precomputed ProbePlan instead of rehashing. With S shards,
  /// plan_reuse grows S times faster than hash_evals / num_tables — the
  /// hash-once pipeline's savings made visible.
  uint64_t hash_evals = 0;
  uint64_t plan_reuse = 0;
  /// Instruction-set tier resolved at build ("scalar"/"sse2"/"avx2"). The
  /// kernel dispatch is process-wide (util/simd.h), so every shard and
  /// segment of every engine verifies through the same kernel table.
  std::string_view simd_tier = "scalar";
};

/// Shard-parallel hybrid-LSH engine (see file comment).
template <typename Family,
          typename Dataset =
              typename DefaultDataset<typename Family::Point>::type>
class ShardedEngine {
 public:
  using Index = lsh::LshIndex<Family>;
  using ShardIndex = SegmentedIndex<Family, Dataset>;
  using Point = typename Family::Point;

  struct Options {
    /// Number of id-range shards S. Clamped to the dataset size so that no
    /// shard is empty; shard s covers a contiguous range of n/S (+1 for the
    /// first n mod S shards) ids.
    size_t num_shards = 1;
    /// Worker threads in the engine's persistent pool (shard builds, query
    /// fan-out, batch execution). 0 = one per shard.
    size_t num_threads = 0;
    /// Per-shard index parameters. `id_base` is overwritten per shard and
    /// `num_build_threads` is ignored (shard builds already saturate the
    /// pool); everything else — including `seed` — is shared by all shards,
    /// which is what makes the engine candidate-equivalent to a monolithic
    /// index (see file comment).
    typename Index::Options index;
    /// Segment lifecycle knobs, applied per shard (segmented_index.h).
    size_t active_seal_threshold = 4096;
    size_t max_sealed_segments = 4;
    /// Run seal/compaction on the engine's background maintenance thread
    /// (default). false = the standalone-index behavior: maintenance runs
    /// inline on the inserting thread at the thresholds, so lifecycle
    /// counters are deterministic after every Insert (tests, benches that
    /// measure seal cost on the ingest path).
    bool background_maintenance = true;
    /// Quantized verification tier (dense datasets only): build an int8
    /// mirror of the dataset and screen every candidate with integer SIMD
    /// kernels plus a conservative error bound, rescoring only the
    /// borderline ones with the exact float kernels. Result sets are
    /// bit-identical to the all-float path; this knob is the escape hatch
    /// back to exact-float-everywhere verification. Ignored (no mirror,
    /// no overhead) for binary and sparse containers.
    bool quantized_verify = true;
    /// Cost model, multi-probe width, and forced-strategy escape hatch.
    /// The hybrid decision runs per shard with LinearCost(shard_live_n).
    core::SearcherOptions searcher;
  };

  /// Caller-owned scratch for the lock-free QueryConcurrent path: the
  /// global-id dedup set, the merged HLL sketch, the hash-once plan
  /// workspace, and one cached SegmentSnapshot per shard — re-acquired with two plain
  /// atomic loads per query and only refreshed (a shared_ptr copy) when
  /// that shard's segment list actually changed. Create one per reader
  /// thread with MakeQueryScratch(); a scratch must never be used by two
  /// queries at once.
  class QueryScratch {
   private:
    friend class ShardedEngine;
    struct ShardView {
      typename ShardIndex::SegmentSnapshot snapshot;
      uint64_t version = 0;
    };
    QueryScratch(util::VisitedSet v, hll::HyperLogLog m, size_t num_shards)
        : visited(std::move(v)), merged(std::move(m)), views(num_shards) {}

    util::VisitedSet visited;
    hll::HyperLogLog merged;
    std::vector<uint32_t> live_ids;  // flat buffer for the linear path
    std::vector<ShardView> views;    // per-shard epoch cache
    lsh::PlanScratch plan_scratch;   // hash-once S1 workspace
    lsh::ProbePlan plan;             // the query's plan, shared by all shards
    util::BitVector filter;          // filter stage: predicate ∧ ¬tombstone
    std::vector<core::ScoredList> sub_lists;  // fused per-subquery results
    std::vector<uint32_t> sub_ids;   // per-(shard, subquery) gather buffer
    core::FusionScratch fusion;      // merge-stage workspace
  };

  /// Builds all shards in parallel. The dataset is retained by pointer and
  /// must outlive the engine.
  static util::StatusOr<ShardedEngine> Build(Family family,
                                             const Dataset& dataset,
                                             const Options& options) {
    if (options.num_shards < 1) {
      return util::Status::InvalidArgument("num_shards must be >= 1");
    }
    if (dataset.size() == 0) {
      return util::Status::InvalidArgument("cannot build over an empty dataset");
    }
    // Mirror the monolithic LshIndex::Build guard on the full dataset:
    // shard.base is stored as a uint32_t id_base, so a larger n would wrap
    // global ids instead of failing.
    if (dataset.size() > static_cast<size_t>(UINT32_MAX)) {
      return util::Status::InvalidArgument("dataset exceeds 2^32-1 points");
    }
    HLSH_CHECK(options.searcher.probes_per_table >= 1);

    ShardedEngine engine;
    engine.options_ = options;
    engine.dataset_ = &dataset;
    const size_t n = dataset.size();
    const size_t num_shards = std::min(options.num_shards, n);
    const size_t num_threads =
        options.num_threads > 0 ? options.num_threads : num_shards;
    engine.pool_ = std::make_unique<util::ThreadPool>(num_threads);

    // Balanced contiguous partition: n/S per shard, remainder spread left.
    engine.shards_.resize(num_shards);
    {
      const size_t per_shard = n / num_shards;
      const size_t remainder = n % num_shards;
      size_t base = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        engine.shards_[s].base = base;
        engine.shards_[s].size = per_shard + (s < remainder ? 1 : 0);
        base += engine.shards_[s].size;
      }
      HLSH_CHECK(base == n);
    }

    // Build every shard's index on the pool. All shards share one
    // tombstone bitmap (heap-allocated so engine moves keep it stable).
    engine.tombstones_ = std::make_unique<util::BitVector>(n);
    util::WallTimer build_timer;
    std::vector<util::Status> statuses(num_shards, util::Status::Ok());
    util::ParallelForOn(engine.pool_.get(), 0, num_shards, [&](size_t s) {
      Shard& shard = engine.shards_[s];
      typename ShardIndex::Options shard_options;
      shard_options.index = options.index;
      shard_options.index.num_build_threads = 1;
      shard_options.active_seal_threshold = options.active_seal_threshold;
      shard_options.max_sealed_segments = options.max_sealed_segments;
      auto built = ShardIndex::Build(family, &dataset, shard.base, shard.size,
                                     shard_options, engine.tombstones_.get());
      if (!built.ok()) {
        statuses[s] = built.status();
        return;
      }
      shard.index = std::make_unique<ShardIndex>(std::move(*built));
    });
    for (const util::Status& status : statuses) {
      if (!status.ok()) return status;
    }

    engine.SetupMirror();
    engine.initial_n_ = n;
    engine.stats_.num_points = n;
    engine.stats_.num_shards = num_shards;
    engine.stats_.num_threads = num_threads;
    engine.stats_.build_seconds = build_timer.ElapsedSeconds();
    engine.stats_.simd_tier = util::simd::TierName(util::ResolvedSimdTier());
    engine.StartMaintenance();

    // Fan-out scratch: one per shard (single-query path). Batch scratch is
    // created lazily, one per pool worker.
    engine.fanout_scratch_.reserve(num_shards);
    engine.fanout_out_.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      engine.fanout_scratch_.push_back(engine.MakeQueryScratch());
    }
    return engine;
  }

  /// Build over a mutable dataset: same as the const Build plus
  /// EnableUpdates, so Insert works immediately.
  static util::StatusOr<ShardedEngine> Build(Family family, Dataset* dataset,
                                             const Options& options) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    auto engine = Build(std::move(family), *dataset, options);
    if (!engine.ok()) return engine.status();
    HLSH_RETURN_IF_ERROR(engine->EnableUpdates(dataset));
    return engine;
  }

  /// Arms Insert on every shard. `dataset` must be the object Build indexed.
  util::Status EnableUpdates(Dataset* dataset) {
    if (dataset != dataset_) {
      return util::Status::InvalidArgument(
          "mutable dataset does not match the engine's dataset");
    }
    for (Shard& shard : shards_) {
      HLSH_RETURN_IF_ERROR(shard.index->EnableUpdates(dataset));
    }
    mutable_dataset_ = dataset;
    return util::Status::Ok();
  }
  bool updates_enabled() const { return mutable_dataset_ != nullptr; }

  /// Attaches the attribute table the filter stage evaluates predicates
  /// against. Row r describes global id r; ids past the store's current
  /// row count match no predicate. The store must outlive the engine and
  /// may keep growing (AppendRow) while queries run — the filter stage
  /// reads it through acquire-published row counts. Passing nullptr
  /// detaches (filtered specs then fail ValidateSpec).
  void AttachAttributes(const data::AttributeStore* attributes) {
    attributes_ = attributes;
  }
  const data::AttributeStore* attributes() const { return attributes_; }

  /// Appends the point to the shared dataset and indexes it in one shard's
  /// active segment (round-robin, so ingest load spreads evenly). Returns
  /// the new global id. Ownership needs no side table: every successful
  /// insert appends exactly one point, so the k-th insert gets id
  /// initial_n + k and shard k % S — Remove re-derives that.
  ///
  /// Serialized on the internal writer mutex; safe to call from any thread
  /// and concurrently with queries. When the shard's active segment fills,
  /// sealing is scheduled on the background maintenance thread (one task
  /// in flight per shard) instead of running on this call.
  util::StatusOr<uint32_t> Insert(Point point) {
    if (mutable_dataset_ == nullptr) {
      return util::Status::FailedPrecondition(
          "engine is read-only: build from a mutable dataset or call "
          "EnableUpdates to insert");
    }
    std::lock_guard<std::mutex> lock(sync_->write_mu);
    const size_t inserted = dataset_->size() - initial_n_;
    Shard& shard = shards_[inserted % shards_.size()];
    auto id = shard.index->Insert(point);
    if (id.ok()) {
      // Quantize the stored copy of the point (published by the dataset
      // append inside Insert) so the mirror stays row-for-row with the
      // dataset. Still under write_mu: the mirror has one writer.
      if constexpr (std::is_same_v<Dataset, data::DenseDataset>) {
        if (mirror_ != nullptr) mirror_->AppendRow(dataset_->point(*id));
      }
      MaybeScheduleMaintenance(shard.index.get());
    }
    return id;
  }

  /// Tombstones one global id on the shard that owns it. Removing an
  /// already-removed id is a no-op; unknown ids are rejected. Serialized on
  /// the writer mutex like Insert; safe concurrently with queries, which
  /// observe the removal through release/acquire tombstone bits.
  util::Status Remove(uint32_t id) {
    std::lock_guard<std::mutex> lock(sync_->write_mu);
    const size_t n = static_cast<size_t>(id);
    size_t s = 0;
    if (n < initial_n_) {
      // Initial ids live in the contiguous ranges (S is small).
      while (s < shards_.size() &&
             n >= shards_[s].base + shards_[s].size) {
        ++s;
      }
      HLSH_CHECK(s < shards_.size());
    } else {
      if (n >= dataset_->size()) {
        return util::Status::InvalidArgument(
            "id was never inserted into this engine");
      }
      s = (n - initial_n_) % shards_.size();  // round-robin insert order
    }
    return shards_[s].index->Remove(id);
  }

  /// Blocks until every scheduled background seal/compaction has finished.
  /// Queries and writers may keep running; tasks scheduled after this call
  /// are not waited for.
  void DrainMaintenance() {
    if (maintenance_group_ != nullptr) maintenance_group_->Wait();
  }

  /// Compacts every shard in parallel on the engine's pool (one task per
  /// shard — segments are never touched by two threads). Takes the writer
  /// mutex and drains background maintenance first; queries continue
  /// serving off the pre-compaction epochs until each shard's merged
  /// segment is published.
  void CompactAll() {
    std::lock_guard<std::mutex> lock(sync_->write_mu);
    DrainMaintenance();
    util::ParallelForOn(pool_.get(), 0, shards_.size(),
                        [&](size_t s) { shards_[s].index->Compact(); });
  }

  /// The lock-free concurrent read path: answers one query on a
  /// caller-owned scratch (one per reader thread, MakeQueryScratch). Every
  /// id with Distance(point, query) <= radius is appended to *out with the
  /// same per-shard guarantees as Query, each shard walked over an
  /// epoch-published SegmentSnapshot — consistent even while Insert /
  /// Remove / background maintenance run, with no lock or shared mutable
  /// state touched anywhere on the path. Shards are searched sequentially
  /// on the calling thread; concurrency comes from many callers, not an
  /// internal fan-out.
  void QueryConcurrent(Point query, double radius, std::vector<uint32_t>* out,
                       QueryScratch* scratch,
                       ShardedQueryStats* stats = nullptr) const {
    HLSH_CHECK(
        QueryConcurrent(query, QuerySpec::Radius(radius), out, scratch, stats)
            .ok());
  }

  /// Spec form of the concurrent read path: same lock-free guarantees,
  /// plus the filter stage (evaluated into the scratch's BitVector) when
  /// the spec carries a predicate. Rejects fused specs — those return
  /// scored hits, use QueryFusedConcurrent.
  util::Status QueryConcurrent(Point query, const QuerySpec& spec,
                               std::vector<uint32_t>* out,
                               QueryScratch* scratch,
                               ShardedQueryStats* stats = nullptr) const {
    HLSH_RETURN_IF_ERROR(ValidateSpec(spec, /*fused=*/false));
    ShardedQueryStats local_stats;
    ShardedQueryStats* s = stats != nullptr ? stats : &local_stats;
    QueryOnScratch(query, spec, out, scratch, s);
    return util::Status::Ok();
  }

  /// Concurrent fused query: N subqueries against one snapshot acquisition
  /// per shard, merged into (id, score) hits under the spec's fusion mode.
  /// Lock-free like QueryConcurrent; one scratch per reader thread.
  util::Status QueryFusedConcurrent(Point query, const QuerySpec& spec,
                                    std::vector<core::FusedHit>* out,
                                    QueryScratch* scratch,
                                    ShardedQueryStats* stats = nullptr) const {
    HLSH_RETURN_IF_ERROR(ValidateSpec(spec, /*fused=*/true));
    ShardedQueryStats local_stats;
    ShardedQueryStats* s = stats != nullptr ? stats : &local_stats;
    return QueryFusedOnScratch(query, spec, out, scratch, s);
  }

  /// A scratch sized for this engine: dedup over the current id space
  /// (widened automatically as inserts land), sketch at the engine's HLL
  /// precision, one snapshot slot per shard.
  QueryScratch MakeQueryScratch() const {
    return QueryScratch(util::VisitedSet(dataset_->size()),
                        shards_[0].index->MakeScratchSketch(),
                        shards_.size());
  }

  /// Answers one query with a parallel fan-out across shards: every id with
  /// Distance(point, query) <= radius is reported with the same per-shard
  /// guarantees as HybridSearcher. Results are appended to *out grouped by
  /// shard (ascending id ranges); ids are global.
  void Query(Point query, double radius, std::vector<uint32_t>* out,
             ShardedQueryStats* stats = nullptr) {
    HLSH_CHECK(Query(query, QuerySpec::Radius(radius), out, stats).ok());
  }

  /// Spec form of the parallel fan-out: the filter stage runs once on the
  /// calling thread (into engine-owned storage), then every shard worker
  /// reads the composed bitmap const. Rejects fused specs — use
  /// QueryFused. Engine-owned scratch: one caller at a time, like the
  /// radius overload.
  util::Status Query(Point query, const QuerySpec& spec,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats = nullptr) {
    HLSH_RETURN_IF_ERROR(ValidateSpec(spec, /*fused=*/false));
    ShardedQueryStats local_stats;
    ShardedQueryStats* s = stats != nullptr ? stats : &local_stats;
    ResetStats(s);
    util::WallTimer timer;
    const FilterContext fctx = BuildFilterStage(spec, &fanout_filter_, s);

    // S1 once, on the calling thread: every worker reads the one plan
    // (const; the pool dispatch orders the writes before the reads).
    const lsh::ProbePlan* plan = nullptr;
    if (options_.searcher.forced != core::ForcedStrategy::kAlwaysLinear) {
      util::WallTimer hash_timer;
      ComputePlan(query, &fanout_plan_scratch_, &fanout_plan_);
      s->hash_seconds = hash_timer.ElapsedSeconds();
      s->hash_evals = fanout_plan_.num_tables();
      plan = &fanout_plan_;
    }

    util::ParallelForOn(pool_.get(), 0, shards_.size(), [&](size_t i) {
      fanout_out_[i].clear();
      QueryScratch& scratch = fanout_scratch_[i];
      RefreshShardView(i, &scratch);
      QueryShard(shards_[i], scratch.views[i].snapshot, query, spec.radius,
                 plan, fctx, &scratch, &fanout_out_[i], &s->per_shard[i]);
    });

    for (size_t i = 0; i < shards_.size(); ++i) {
      out->insert(out->end(), fanout_out_[i].begin(), fanout_out_[i].end());
    }
    FoldStats(s);
    NoteQueryCounters(*s);
    s->total_seconds = timer.ElapsedSeconds();
    return util::Status::Ok();
  }

  /// Fused query on engine-owned scratch (one caller at a time): executes
  /// every subquery per shard over one snapshot acquisition, scores with
  /// the scalar reference metrics, and merges under the spec's fusion
  /// options. Shards run sequentially — fusion gathers per-subquery lists,
  /// which the parallel fan-out buffers are not shaped for.
  util::Status QueryFused(Point query, const QuerySpec& spec,
                          std::vector<core::FusedHit>* out,
                          ShardedQueryStats* stats = nullptr) {
    HLSH_RETURN_IF_ERROR(ValidateSpec(spec, /*fused=*/true));
    ShardedQueryStats local_stats;
    ShardedQueryStats* s = stats != nullptr ? stats : &local_stats;
    return QueryFusedOnScratch(query, spec, out, &fanout_scratch_[0], s);
  }

  /// Answers a whole query set (any container with size() and point(i)) on
  /// the pool: queries are distributed dynamically across workers, each
  /// worker owns one reusable scratch and runs every shard of its query
  /// sequentially. Results are positionally aligned with the query set.
  /// `wall_seconds` (optional) receives the batch wall time.
  template <typename QuerySet>
  std::vector<ShardedBatchResult> QueryBatch(const QuerySet& queries,
                                             double radius,
                                             double* wall_seconds = nullptr) {
    auto results = QueryBatch(queries, QuerySpec::Radius(radius), wall_seconds);
    HLSH_CHECK(results.ok());
    return std::move(*results);
  }

  /// Spec form of the batch path. The filter stage runs ONCE for the whole
  /// batch — predicates do not depend on the query point, so every worker
  /// shares the one composed bitmap read-only (per-query stats report
  /// filter_seconds = 0 and the shared selectivity). Rejects fused specs.
  template <typename QuerySet>
  util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const QuerySet& queries, const QuerySpec& spec,
      double* wall_seconds = nullptr) {
    HLSH_RETURN_IF_ERROR(ValidateSpec(spec, /*fused=*/false));
    std::vector<ShardedBatchResult> results(queries.size());
    util::WallTimer timer;
    if (queries.size() > 0) {
      EnsureBatchScratch();
      FilterContext batch_fctx;
      const FilterContext* shared_filter = nullptr;
      if (spec.predicate != nullptr) {
        ShardedQueryStats filter_stats;
        batch_fctx = BuildFilterStage(spec, &batch_filter_, &filter_stats);
        shared_filter = &batch_fctx;
      }
      // S1 for the whole batch up front: every table's projections run
      // through the blocked (multi-query) kernel form, and the workers
      // consume the precomputed plans read-only.
      const bool hash_once =
          options_.searcher.forced != core::ForcedStrategy::kAlwaysLinear;
      double hash_share = 0.0;
      if (hash_once) {
        util::WallTimer hash_timer;
        batch_points_.resize(queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          batch_points_[q] = queries.point(q);
        }
        batch_plans_.resize(queries.size());
        HLSH_CHECK(shards_[0]
                       .index
                       ->ComputePlanBatch(batch_points_.data(), queries.size(),
                                          options_.searcher.probes_per_table,
                                          &batch_plan_scratch_,
                                          batch_plans_.data())
                       .ok());
        hash_share = hash_timer.ElapsedSeconds() / queries.size();
      }
      const size_t num_workers =
          std::min(batch_scratch_.size(), queries.size());
      std::atomic<size_t> next{0};
      util::ParallelForOn(pool_.get(), 0, num_workers, [&](size_t w) {
        QueryScratch& scratch = batch_scratch_[w];
        for (size_t q = next.fetch_add(1); q < queries.size();
             q = next.fetch_add(1)) {
          ShardedBatchResult& result = results[q];
          QueryOnScratch(queries.point(q), spec, &result.neighbors, &scratch,
                         &result.stats, hash_once ? &batch_plans_[q] : nullptr,
                         hash_share, shared_filter);
        }
      });
    }
    if (wall_seconds != nullptr) *wall_seconds = timer.ElapsedSeconds();
    return results;
  }

  /// Span-of-points convenience overload (used by the type-erased facade).
  std::vector<ShardedBatchResult> QueryBatch(std::span<const Point> queries,
                                             double radius,
                                             double* wall_seconds = nullptr) {
    struct SpanSet {
      std::span<const Point> points;
      size_t size() const { return points.size(); }
      Point point(size_t i) const { return points[i]; }
    };
    return QueryBatch(SpanSet{queries}, radius, wall_seconds);
  }

  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return pool_->num_threads(); }
  /// Live points across all shards (equals the dataset size until the
  /// first Remove).
  size_t size() const {
    size_t live = 0;
    for (const Shard& shard : shards_) live += shard.index->live_size();
    return live;
  }
  size_t live_size() const { return size(); }
  /// Build-time shape plus *current* point and memory accounting (segments
  /// grow with ingest and shrink at compaction, so bytes are recomputed
  /// per call). Returns a by-value snapshot assembled from atomic reads
  /// and epoch-published segment lists — safe to poll from any thread
  /// while writers and background maintenance run.
  EngineStats stats() const {
    EngineStats stats = stats_;
    stats.num_points = dataset_->size();
    stats.memory_bytes = 0;
    stats.sketch_bytes = 0;
    for (const Shard& shard : shards_) {
      stats.memory_bytes += shard.index->MemoryBytes();
      stats.sketch_bytes += shard.index->SketchBytes();
    }
    if (tombstones_ != nullptr) {
      stats.memory_bytes += tombstones_->MemoryBytes();
    }
    stats.index_bytes = stats.memory_bytes;
    stats.dataset_bytes = dataset_->MemoryBytes();
    stats.mirror_bytes = mirror_ != nullptr ? mirror_->MemoryBytes() : 0;
    stats.quantized_verify = mirror_ != nullptr;
    stats.hash_evals = counters_->hash_evals.load(std::memory_order_relaxed);
    stats.plan_reuse = counters_->plan_reuse.load(std::memory_order_relaxed);
    return stats;
  }
  const Options& options() const { return options_; }
  const Dataset& dataset() const { return *dataset_; }

  /// Shard inspection for tests: the index and initial id range of shard s.
  const ShardIndex& shard_index(size_t s) const { return *shards_[s].index; }
  std::pair<size_t, size_t> shard_range(size_t s) const {
    return {shards_[s].base, shards_[s].base + shards_[s].size};
  }

  // --- Snapshot / restore (engine/snapshot.h). ---------------------------

  /// Persists the full serving state into a versioned, checksummed snapshot
  /// under `dir`: the shared FunctionSet (once), the dataset with its norm
  /// cache, the tombstone bitmap, and every shard's sealed segments. Active
  /// segments are sealed first, so the snapshot is pure CSR and the engine
  /// continues serving from exactly the state it saved. Atomic at the
  /// directory level: a crash mid-save never disturbs the previous
  /// snapshot, and the new one only becomes visible when its CURRENT
  /// pointer commits. Takes the writer mutex and drains background
  /// maintenance (counters must agree with the sealed view it persists),
  /// so it blocks writers for its duration — but not readers, which keep
  /// serving off their epochs.
  util::Status SaveSnapshot(const std::string& dir) {
    std::lock_guard<std::mutex> lock(sync_->write_mu);
    DrainMaintenance();
    for (Shard& shard : shards_) shard.index->SealActive();

    auto writer = snapshot::SnapshotWriter::Begin(dir);
    if (!writer.ok()) return writer.status();
    {
      util::ByteWriter payload;
      shards_[0].index->functions().Save(&payload);
      HLSH_RETURN_IF_ERROR(
          writer->WriteFile(snapshot::kFunctionsFile, payload.bytes()));
    }
    {
      util::ByteWriter payload;
      data::SaveDataset(*dataset_, &payload);
      HLSH_RETURN_IF_ERROR(
          writer->WriteFile(snapshot::kDatasetFile, payload.bytes()));
    }
    {
      util::ByteWriter payload;
      tombstones_->Serialize(&payload);
      HLSH_RETURN_IF_ERROR(
          writer->WriteFile(snapshot::kTombstonesFile, payload.bytes()));
    }
    if (mirror_ != nullptr) {
      // v2 sidecar: the int8 mirror, so a restore skips requantization.
      util::ByteWriter payload;
      mirror_->Save(&payload);
      HLSH_RETURN_IF_ERROR(
          writer->WriteFile(snapshot::kMirrorFile, payload.bytes()));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      util::ByteWriter payload;
      payload.WriteU64(shards_[s].base);
      payload.WriteU64(shards_[s].size);
      HLSH_RETURN_IF_ERROR(shards_[s].index->SaveTo(&payload));
      HLSH_RETURN_IF_ERROR(
          writer->WriteFile(snapshot::ShardFileName(s), payload.bytes()));
    }

    snapshot::Manifest manifest;
    manifest.family_tag = Family::kFamilyTag;
    manifest.metric_tag =
        static_cast<uint32_t>(shards_[0].index->family().metric());
    manifest.dataset_kind = data::DatasetKindOf(*dataset_);
    manifest.num_points = dataset_->size();
    manifest.initial_n = initial_n_;
    manifest.config = ToConfig();
    return writer->Commit(std::move(manifest));
  }

  /// Rehydrates a query-ready engine from the snapshot CURRENT points at.
  /// The dataset is loaded into *dataset (which must outlive the engine,
  /// like Build's) and updates are armed on it, so Insert/Remove serve
  /// immediately. Zero hash functions are evaluated — functions, tables,
  /// and sketches reload as bytes; shard payloads parse in parallel on the
  /// restored pool. Rejects snapshots of a different family or container
  /// with InvalidArgument and corrupt ones with DataLoss.
  static util::StatusOr<ShardedEngine> OpenSnapshot(
      const std::string& dir, Dataset* dataset,
      const snapshot::OpenOptions& open_options = {}) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    auto reader = snapshot::SnapshotReader::Open(dir, open_options.use_mmap);
    if (!reader.ok()) return reader.status();
    const snapshot::Manifest& manifest = reader->manifest();
    if (manifest.family_tag != Family::kFamilyTag) {
      return util::Status::InvalidArgument(
          "snapshot was saved with a different LSH family");
    }
    if (manifest.dataset_kind != data::DatasetKindOf(*dataset)) {
      return util::Status::InvalidArgument(
          "snapshot holds a different dataset container");
    }

    util::WallTimer restore_timer;
    ShardedEngine engine;
    engine.options_ = OptionsFromConfig(manifest.config);
    engine.dataset_ = dataset;
    engine.initial_n_ = manifest.initial_n;

    const size_t num_shards = manifest.config.num_shards;
    const size_t num_threads =
        open_options.num_threads > 0 ? open_options.num_threads
        : manifest.config.num_threads > 0
            ? static_cast<size_t>(manifest.config.num_threads)
            : num_shards;
    engine.pool_ = std::make_unique<util::ThreadPool>(num_threads);

    // Phase 1, all on the pool at once: the dataset chain (read + checksum
    // + parse — the cold-start critical path at millions of points), the
    // tombstone bitmap, the function set, and every shard file's read +
    // checksum. Shard PARSING needs the dataset size and the tombstones for
    // validation, so it waits for phase 2.
    util::Status dataset_status = util::Status::Ok();
    util::Status tombstones_status = util::Status::Ok();
    util::Status functions_status = util::Status::Ok();
    std::optional<lsh::FunctionSet<Family>> functions;
    std::vector<std::optional<snapshot::SnapshotBlob>> shard_blobs(num_shards);
    std::vector<util::Status> statuses(num_shards, util::Status::Ok());
    util::ParallelForOn(
        engine.pool_.get(), 0, num_shards + 3, [&](size_t task) {
          if (task == num_shards) {
            dataset_status = [&] {
              auto blob = reader->ReadFile(snapshot::kDatasetFile);
              if (!blob.ok()) return blob.status();
              util::ByteReader bytes(blob->payload());
              HLSH_RETURN_IF_ERROR(data::LoadDataset(&bytes, dataset));
              return bytes.ExpectEnd();
            }();
            return;
          }
          if (task == num_shards + 1) {
            tombstones_status = [&] {
              auto blob = reader->ReadFile(snapshot::kTombstonesFile);
              if (!blob.ok()) return blob.status();
              util::ByteReader bytes(blob->payload());
              auto tombstones = util::BitVector::Deserialize(&bytes);
              if (!tombstones.ok()) return tombstones.status();
              HLSH_RETURN_IF_ERROR(bytes.ExpectEnd());
              engine.tombstones_ =
                  std::make_unique<util::BitVector>(std::move(*tombstones));
              return util::Status::Ok();
            }();
            return;
          }
          if (task == num_shards + 2) {
            functions_status = [&] {
              auto blob = reader->ReadFile(snapshot::kFunctionsFile);
              if (!blob.ok()) return blob.status();
              util::ByteReader bytes(blob->payload());
              auto loaded = lsh::FunctionSet<Family>::Load(&bytes);
              if (!loaded.ok()) return loaded.status();
              HLSH_RETURN_IF_ERROR(bytes.ExpectEnd());
              functions.emplace(std::move(*loaded));
              return util::Status::Ok();
            }();
            return;
          }
          auto blob = reader->ReadFile(snapshot::ShardFileName(task));
          if (!blob.ok()) {
            statuses[task] = blob.status();
            return;
          }
          shard_blobs[task].emplace(std::move(*blob));
        });
    HLSH_RETURN_IF_ERROR(dataset_status);
    HLSH_RETURN_IF_ERROR(tombstones_status);
    HLSH_RETURN_IF_ERROR(functions_status);
    if (dataset->size() != manifest.num_points ||
        manifest.initial_n > manifest.num_points) {
      return util::Status::DataLoss(
          "snapshot dataset disagrees with its manifest");
    }
    if (engine.tombstones_->size() != dataset->size()) {
      return util::Status::DataLoss(
          "snapshot tombstone bitmap mismatches the dataset");
    }
    if (functions->num_tables() !=
        static_cast<size_t>(manifest.config.num_tables)) {
      return util::Status::DataLoss(
          "snapshot function set mismatches the manifest table count");
    }

    // Phase 2: parse every shard's segments (checksums already verified).
    engine.shards_.resize(num_shards);
    util::ParallelForOn(engine.pool_.get(), 0, num_shards, [&](size_t s) {
      if (!statuses[s].ok()) return;
      util::ByteReader bytes(shard_blobs[s]->payload());
      Shard& shard = engine.shards_[s];
      uint64_t base = 0, size = 0;
      util::Status header = bytes.ReadU64(&base);
      if (header.ok()) header = bytes.ReadU64(&size);
      if (!header.ok() || base > dataset->size() ||
          size > dataset->size() - base) {
        statuses[s] =
            util::Status::DataLoss("snapshot shard range is invalid");
        return;
      }
      shard.base = static_cast<size_t>(base);
      shard.size = static_cast<size_t>(size);
      typename ShardIndex::Options shard_options;
      shard_options.index = engine.options_.index;
      shard_options.index.num_build_threads = 1;
      shard_options.active_seal_threshold =
          engine.options_.active_seal_threshold;
      shard_options.max_sealed_segments = engine.options_.max_sealed_segments;
      auto loaded = ShardIndex::LoadFrom(&bytes, *functions, dataset,
                                         shard_options,
                                         engine.tombstones_.get());
      if (!loaded.ok()) {
        statuses[s] = loaded.status();
        return;
      }
      const util::Status end = bytes.ExpectEnd();
      if (!end.ok()) {
        statuses[s] = end;
        return;
      }
      shard.index = std::make_unique<ShardIndex>(std::move(*loaded));
    });
    for (const util::Status& status : statuses) {
      if (!status.ok()) return status;
    }

    // Mirror restore: load the v2 sidecar when the snapshot carries one,
    // else (a v1 snapshot, or one saved with the screen off and re-opened
    // with it on) requantize from the freshly loaded dataset. Both paths
    // produce the same mirror — quantization is deterministic.
    if constexpr (std::is_same_v<Dataset, data::DenseDataset>) {
      if (engine.options_.quantized_verify) {
        if (manifest.FindFile(snapshot::kMirrorFile) != nullptr) {
          auto blob = reader->ReadFile(snapshot::kMirrorFile);
          if (!blob.ok()) return blob.status();
          util::ByteReader bytes(blob->payload());
          auto mirror = data::QuantizedMirror::Load(&bytes, dataset->dim(),
                                                    dataset->size());
          if (!mirror.ok()) return mirror.status();
          HLSH_RETURN_IF_ERROR(bytes.ExpectEnd());
          if (mirror->size() != dataset->size()) {
            return util::Status::DataLoss(
                "snapshot mirror row count mismatches the dataset");
          }
          engine.mirror_ =
              std::make_unique<data::QuantizedMirror>(std::move(*mirror));
        } else {
          engine.SetupMirror();
        }
      }
    }

    engine.stats_.num_points = manifest.num_points;
    engine.stats_.num_shards = num_shards;
    engine.stats_.num_threads = num_threads;
    engine.stats_.build_seconds = restore_timer.ElapsedSeconds();
    engine.stats_.simd_tier = util::simd::TierName(util::ResolvedSimdTier());

    engine.StartMaintenance();
    engine.fanout_scratch_.reserve(num_shards);
    engine.fanout_out_.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      engine.fanout_scratch_.push_back(engine.MakeQueryScratch());
    }
    HLSH_RETURN_IF_ERROR(engine.EnableUpdates(dataset));
    return engine;
  }

 private:
  /// The engine's family-independent configuration, as persisted in the
  /// snapshot manifest and restored by OptionsFromConfig.
  snapshot::EngineConfig ToConfig() const {
    snapshot::EngineConfig config;
    config.num_shards = shards_.size();
    config.num_threads = pool_->num_threads();
    config.num_tables = options_.index.num_tables;
    config.k = options_.index.k;
    config.delta = options_.index.delta;
    config.radius = options_.index.radius;
    config.hll_precision = options_.index.hll_precision;
    config.small_bucket_threshold = options_.index.small_bucket_threshold;
    config.seed = options_.index.seed;
    config.active_seal_threshold = options_.active_seal_threshold;
    config.max_sealed_segments = options_.max_sealed_segments;
    config.cost_alpha = options_.searcher.cost_model.alpha;
    config.cost_beta = options_.searcher.cost_model.beta;
    config.probes_per_table = options_.searcher.probes_per_table;
    config.forced_strategy =
        static_cast<uint32_t>(options_.searcher.forced);
    config.quantized_verify = options_.quantized_verify ? 1 : 0;
    config.cost_beta_screen = options_.searcher.cost_model.beta_screen;
    config.cost_rescore_fraction =
        options_.searcher.cost_model.rescore_fraction;
    return config;
  }

  static Options OptionsFromConfig(const snapshot::EngineConfig& config) {
    Options options;
    options.num_shards = config.num_shards;
    options.num_threads = config.num_threads;
    options.index.num_tables = config.num_tables;
    options.index.k = config.k;
    options.index.delta = config.delta;
    options.index.radius = config.radius;
    options.index.hll_precision = config.hll_precision;
    options.index.small_bucket_threshold = config.small_bucket_threshold;
    options.index.seed = config.seed;
    options.active_seal_threshold = config.active_seal_threshold;
    options.max_sealed_segments = config.max_sealed_segments;
    options.searcher.cost_model.alpha = config.cost_alpha;
    options.searcher.cost_model.beta = config.cost_beta;
    options.searcher.cost_model.beta_screen = config.cost_beta_screen;
    options.searcher.cost_model.rescore_fraction =
        config.cost_rescore_fraction;
    options.searcher.probes_per_table = config.probes_per_table;
    options.searcher.forced =
        static_cast<core::ForcedStrategy>(config.forced_strategy);
    options.quantized_verify = config.quantized_verify != 0;
    return options;
  }

  struct Shard {
    size_t base = 0;
    size_t size = 0;  // initial range size (inserts/removes don't update it)
    std::unique_ptr<ShardIndex> index;  // pointer keeps Shard movable
  };

  /// Writer-side synchronization, heap-allocated so engine moves keep the
  /// mutex address stable.
  struct EngineSync {
    std::mutex write_mu;
  };

  /// Engine-lifetime query counters, heap-allocated (atomics are neither
  /// movable nor copyable, and the engine must stay movable).
  struct QueryCounters {
    std::atomic<uint64_t> hash_evals{0};
    std::atomic<uint64_t> plan_reuse{0};
  };

  ShardedEngine()
      : sync_(std::make_unique<EngineSync>()),
        counters_(std::make_unique<QueryCounters>()) {}

  /// Builds the int8 mirror over the engine's dataset when the container
  /// is dense, the option is on, and the data quantizes (non-degenerate
  /// scale). No-op otherwise — queries then verify all-float, which is the
  /// same result set either way.
  void SetupMirror() {
    if constexpr (std::is_same_v<Dataset, data::DenseDataset>) {
      if (!options_.quantized_verify) return;
      auto mirror = data::QuantizedMirror::Build(*dataset_);
      if (!mirror.enabled()) return;
      mirror_ = std::make_unique<data::QuantizedMirror>(std::move(mirror));
    }
  }

  /// Arms deferred maintenance on every shard and spins up the dedicated
  /// one-thread maintenance pool. No-op in inline mode
  /// (options_.background_maintenance == false).
  void StartMaintenance() {
    if (!options_.background_maintenance) return;
    for (Shard& shard : shards_) shard.index->SetDeferredMaintenance(true);
    maintenance_pool_ = std::make_unique<util::ThreadPool>(1);
    maintenance_group_ =
        std::make_unique<util::TaskGroup>(maintenance_pool_.get());
  }

  /// Schedules one background maintenance pass for the shard if it has
  /// pending work and none in flight — the per-shard rate limit that keeps
  /// a burst of inserts from queueing redundant seal tasks. Called under
  /// write_mu; the task captures the heap-stable index pointer, so the
  /// engine stays movable while tasks are queued.
  void MaybeScheduleMaintenance(ShardIndex* index) {
    if (maintenance_group_ == nullptr || !index->needs_maintenance()) return;
    if (index->maintenance_inflight().exchange(true,
                                               std::memory_order_acq_rel)) {
      return;
    }
    maintenance_group_->Submit([index] {
      index->RunMaintenance();
      index->maintenance_inflight().store(false, std::memory_order_release);
    });
  }

  void EnsureBatchScratch() {
    if (!batch_scratch_.empty()) return;
    batch_scratch_.reserve(pool_->num_threads());
    for (size_t w = 0; w < pool_->num_threads(); ++w) {
      batch_scratch_.push_back(MakeQueryScratch());
    }
  }

  /// Re-acquires shard s's snapshot into the scratch's view cache (two
  /// atomic loads when the segment list is unchanged) and widens the dedup
  /// set to cover every id the snapshot can emit. VisitedSet spans the
  /// *global* id space — shard buckets store global ids, so no translation
  /// is needed anywhere.
  void RefreshShardView(size_t s, QueryScratch* scratch) const {
    auto& view = scratch->views[s];
    shards_[s].index->AcquireCached(&view.snapshot, &view.version);
    if (scratch->visited.capacity() < view.snapshot.id_bound()) {
      scratch->visited.Resize(view.snapshot.id_bound());
    }
  }

  /// One full query over every shard on the caller's scratch: compute (or
  /// adopt) the probe plan once, refresh each shard's snapshot, run
  /// Algorithm 2 per shard sequentially, fold stats. Lock-free — shared by
  /// QueryConcurrent and the batch workers. `shared_plan` (batch path) is a
  /// plan precomputed for this query; nullptr computes one into the
  /// scratch. Forced-linear skips planning entirely — no hash function
  /// runs.
  void QueryOnScratch(Point query, const QuerySpec& spec,
                      std::vector<uint32_t>* out, QueryScratch* scratch,
                      ShardedQueryStats* s,
                      const lsh::ProbePlan* shared_plan = nullptr,
                      double shared_hash_seconds = 0.0,
                      const FilterContext* shared_filter = nullptr) const {
    ResetStats(s);
    util::WallTimer timer;
    FilterContext fctx;
    if (shared_filter != nullptr) {
      // Prebuilt for the whole batch: adopt it (filter_seconds stays 0 —
      // the cost was paid once, not per query).
      fctx = *shared_filter;
      NoteFilterStats(fctx, s);
    } else {
      fctx = BuildFilterStage(spec, &scratch->filter, s);
    }
    const lsh::ProbePlan* plan = shared_plan;
    if (plan != nullptr) {
      s->hash_seconds = shared_hash_seconds;
    } else if (options_.searcher.forced !=
               core::ForcedStrategy::kAlwaysLinear) {
      util::WallTimer hash_timer;
      ComputePlan(query, &scratch->plan_scratch, &scratch->plan);
      s->hash_seconds = hash_timer.ElapsedSeconds();
      plan = &scratch->plan;
    }
    if (plan != nullptr) s->hash_evals = plan->num_tables();
    for (size_t i = 0; i < shards_.size(); ++i) {
      RefreshShardView(i, scratch);
      QueryShard(shards_[i], scratch->views[i].snapshot, query, spec.radius,
                 plan, fctx, scratch, out, &s->per_shard[i]);
    }
    FoldStats(s);
    NoteQueryCounters(*s);
    s->total_seconds = timer.ElapsedSeconds();
  }

  /// The fused execution path (score + merge stages live here). Shards are
  /// walked sequentially; each shard's snapshot is acquired ONCE and every
  /// subquery runs against it, so all clauses see the same epoch. Gather
  /// results land in per-subquery ScoredLists; the score stage prices every
  /// id with the scalar reference metrics (data/metric.h) — deterministic
  /// across SIMD tiers, so fused scores are reproducible bit-for-bit — and
  /// FuseScoredLists merges with stable tie-breaks.
  util::Status QueryFusedOnScratch(Point query, const QuerySpec& spec,
                                   std::vector<core::FusedHit>* out,
                                   QueryScratch* scratch,
                                   ShardedQueryStats* s) const {
    ResetStats(s);
    util::WallTimer timer;
    s->fusion_subqueries = spec.subqueries.size();
    const FilterContext fctx = BuildFilterStage(spec, &scratch->filter, s);

    // Plan once iff some clause runs the hybrid path: metric overrides
    // bypass the index (their buckets hash a different geometry) and
    // attribute-only clauses never touch it.
    const data::Metric engine_metric = shards_[0].index->family().metric();
    bool needs_plan = false;
    if (options_.searcher.forced != core::ForcedStrategy::kAlwaysLinear) {
      for (const SubquerySpec& sub : spec.subqueries) {
        needs_plan |= !sub.attribute_only &&
                      (!sub.metric.has_value() || *sub.metric == engine_metric);
      }
    }
    const lsh::ProbePlan* plan = nullptr;
    if (needs_plan) {
      util::WallTimer hash_timer;
      ComputePlan(query, &scratch->plan_scratch, &scratch->plan);
      s->hash_seconds = hash_timer.ElapsedSeconds();
      s->hash_evals = scratch->plan.num_tables();
      plan = &scratch->plan;
    }

    auto& lists = scratch->sub_lists;
    lists.resize(spec.subqueries.size());
    for (size_t j = 0; j < lists.size(); ++j) {
      lists[j].weight = spec.subqueries[j].weight;
      lists[j].ids.clear();
      lists[j].distances.clear();
    }

    // Gather: shard-major so each snapshot is acquired once per query, not
    // once per (shard, subquery).
    for (size_t i = 0; i < shards_.size(); ++i) {
      RefreshShardView(i, scratch);
      const auto& snap = scratch->views[i].snapshot;
      for (size_t j = 0; j < spec.subqueries.size(); ++j) {
        const SubquerySpec& sub = spec.subqueries[j];
        if (sub.attribute_only) continue;  // global, handled below
        if (sub.metric.has_value() && *sub.metric != engine_metric) {
          ExecuteOverrideScan(snap, query, sub, fctx, &lists[j]);
          continue;
        }
        scratch->sub_ids.clear();
        core::QueryStats sub_st;
        QueryShard(shards_[i], snap, query, sub.radius, plan, fctx, scratch,
                   &scratch->sub_ids, &sub_st);
        AccumulateShardStats(sub_st, &s->per_shard[i]);
        lists[j].ids.insert(lists[j].ids.end(), scratch->sub_ids.begin(),
                            scratch->sub_ids.end());
      }
    }

    // Score: exact scalar distances under the engine's metric for every
    // hybrid clause (override clauses scored theirs during the scan).
    for (size_t j = 0; j < spec.subqueries.size(); ++j) {
      const SubquerySpec& sub = spec.subqueries[j];
      if (sub.attribute_only) {
        // Every composed-filter survivor, distance 0: the predicate IS the
        // clause. ForEachSetBitInRange emits ascending ids — stable.
        fctx.filter->ForEachSetBitInRange(
            0, fctx.filter->size(), [&](size_t id) {
              lists[j].ids.push_back(static_cast<uint32_t>(id));
              lists[j].distances.push_back(0.0);
            });
        continue;
      }
      if (sub.metric.has_value() && *sub.metric != engine_metric) continue;
      lists[j].distances.reserve(lists[j].ids.size());
      for (const uint32_t id : lists[j].ids) {
        lists[j].distances.push_back(ExactDistance(query, id, engine_metric));
      }
    }

    // Merge.
    HLSH_RETURN_IF_ERROR(core::FuseScoredLists(
        std::span<core::ScoredList>(lists.data(), lists.size()), spec.fusion,
        &scratch->fusion, out));
    FoldStats(s);
    s->output_size = out->size();  // fused hits, not the per-shard sum
    NoteQueryCounters(*s);
    s->total_seconds = timer.ElapsedSeconds();
    return util::Status::Ok();
  }

  /// S1 once per query: all shards sample identical functions from the
  /// shared seed (the engine's equivalence invariant), so shard 0's
  /// function set plans for every shard. Aborts if multi-probe is
  /// requested on a family without it — same contract as ComputeProbeKeys.
  void ComputePlan(Point query, lsh::PlanScratch* scratch,
                   lsh::ProbePlan* plan) const {
    HLSH_CHECK(shards_[0]
                   .index
                   ->ComputePlan(query, options_.searcher.probes_per_table,
                                 scratch, plan)
                   .ok());
  }

  void ResetStats(ShardedQueryStats* s) const {
    *s = ShardedQueryStats{};
    s->num_shards = shards_.size();
    s->per_shard.resize(shards_.size());
  }

  /// Sums the per-shard stats into the aggregate fields.
  void FoldStats(ShardedQueryStats* s) const {
    for (const core::QueryStats& shard : s->per_shard) {
      if (shard.strategy == core::Strategy::kLsh) {
        ++s->lsh_shards;
      } else {
        ++s->linear_shards;
      }
      s->collisions += shard.collisions;
      s->cand_estimate += shard.cand_estimate;
      s->cand_actual += shard.cand_actual;
      s->output_size += shard.output_size;
      s->plan_reuse += shard.plan_reuse;
    }
  }

  /// Folds one query's hash accounting into the engine-lifetime counters
  /// surfaced by stats(). Relaxed: the counters are monotonic telemetry,
  /// not synchronization.
  void NoteQueryCounters(const ShardedQueryStats& s) const {
    counters_->hash_evals.fetch_add(s.hash_evals, std::memory_order_relaxed);
    counters_->plan_reuse.fetch_add(s.plan_reuse, std::memory_order_relaxed);
  }

  /// The paper's Algorithm 2 on one shard over an epoch-published
  /// snapshot: estimate (summed across the snapshot's segments), decide
  /// against LinearCost(shard_live_n), execute. The decision is priced
  /// from ONE coherent LiveStats read, so the tombstone correction and
  /// the linear side cannot mix counter values from different instants.
  /// Appends global ids to *out. Lock-free.
  void QueryShard(const Shard& shard,
                  const typename ShardIndex::SegmentSnapshot& snap,
                  Point query, double radius, const lsh::ProbePlan* plan,
                  const FilterContext& fctx, QueryScratch* scratch,
                  std::vector<uint32_t>* out, core::QueryStats* st) const {
    *st = core::QueryStats{};
    util::WallTimer total_timer;
    const core::CostModel& model = options_.searcher.cost_model;

    if (options_.searcher.forced == core::ForcedStrategy::kAlwaysLinear) {
      st->strategy = core::Strategy::kLinear;
      st->linear_cost = model.LinearCost(shard.index->live_stats().live,
                                         fctx.selectivity);
      ExecuteLinear(shard, snap, query, radius, fctx, out, st, scratch);
      st->total_seconds = total_timer.ElapsedSeconds();
      return;
    }

    // S1 already ran: this walk consumes the query's one shared plan —
    // valid here because every shard samples identical functions from the
    // shared seed. No hash function evaluates inside the shard.
    HLSH_DCHECK(plan != nullptr);
    st->plan_reuse = 1;

    // Alg. 2 lines 1-2 over the snapshot's segments.
    {
      util::WallTimer estimate_timer;
      const auto estimate = snap.EstimateProbe(*plan, &scratch->merged);
      st->collisions = estimate.collisions;
      st->cand_estimate = estimate.cand_estimate;
      st->estimate_seconds = estimate_timer.ElapsedSeconds();
    }

    // Alg. 2 lines 3-4 with the shard-local live linear cost; tombstoned
    // ids inflate the estimate, so subtract their verification share, and
    // a pushdown filter shrinks BOTH sides through the one effective live
    // fraction (cost_model.h): the linear scan only pays exact distances
    // on filter survivors, and LSH candidates that fail the bit test stop
    // before the distance. At low selectivity the model therefore finds
    // that the filtered linear scan wins.
    const core::LiveStats live = shard.index->live_stats();
    st->lsh_cost = model.CorrectedLshCost(st->collisions, st->cand_estimate,
                                          live, fctx.selectivity);
    st->linear_cost = model.LinearCost(live.live, fctx.selectivity);
    const bool use_lsh =
        options_.searcher.forced == core::ForcedStrategy::kAlwaysLsh ||
        st->lsh_cost < st->linear_cost;

    if (use_lsh) {
      st->strategy = core::Strategy::kLsh;
      scratch->visited.Reset();
      st->collisions = snap.CollectCandidates(*plan, &scratch->visited);
      st->cand_actual = scratch->visited.size();
      st->output_size += core::kernels::VerifyCandidatesQuantized(
          *shard.index, *dataset_, mirror_.get(), query,
          scratch->visited.touched(), radius, out, fctx.filter);
    } else {
      st->strategy = core::Strategy::kLinear;
      ExecuteLinear(shard, snap, query, radius, fctx, out, st, scratch);
    }
    st->total_seconds = total_timer.ElapsedSeconds();
  }

  void ExecuteLinear(const Shard& shard,
                     const typename ShardIndex::SegmentSnapshot& snap,
                     Point query, double radius, const FilterContext& fctx,
                     std::vector<uint32_t>* out, core::QueryStats* st,
                     QueryScratch* scratch) const {
    // Flatten the snapshot's live ids — through the filter's bit test when
    // one is pushed down, so non-survivors never reach the kernels — then
    // verify in one block-batched pass (core/kernels.h) instead of per-id
    // Distance calls. The filtered walk keeps the unfiltered emission
    // order (a subsequence), which is what makes pushdown results
    // bit-identical to post-filtering.
    scratch->live_ids.clear();
    if (fctx.filter != nullptr) {
      snap.ForEachLiveIdFiltered(*fctx.filter, [&](uint32_t id) {
        scratch->live_ids.push_back(id);
      });
    } else {
      snap.ForEachLiveId(
          [&](uint32_t id) { scratch->live_ids.push_back(id); });
    }
    st->output_size += core::kernels::VerifyCandidatesQuantized(
        *shard.index, *dataset_, mirror_.get(), query, scratch->live_ids,
        radius, out);
  }

  /// Linear scan of one shard's snapshot under a metric override — the
  /// index's buckets hash the engine's family, so a different metric can
  /// only scan. Scores with the scalar reference kernels (the same ones
  /// the fused score stage uses), appending (id, distance) pairs directly:
  /// override clauses never need a rescore pass. Dense datasets only
  /// (enforced by ValidateSpec).
  void ExecuteOverrideScan(const typename ShardIndex::SegmentSnapshot& snap,
                           Point query, const SubquerySpec& sub,
                           const FilterContext& fctx,
                           core::ScoredList* list) const {
    auto scan = [&](uint32_t id) {
      const double distance = ExactDistance(query, id, *sub.metric);
      if (distance <= sub.radius) {
        list->ids.push_back(id);
        list->distances.push_back(distance);
      }
    };
    if (fctx.filter != nullptr) {
      snap.ForEachLiveIdFiltered(*fctx.filter, scan);
    } else {
      snap.ForEachLiveId(scan);
    }
  }

  /// The score stage's distance: the scalar reference implementations of
  /// data/metric.h, independent of the SIMD tier and of the quantized
  /// screen, so fused scores compare bit-for-bit across machines.
  double ExactDistance(Point query, uint32_t id, data::Metric metric) const {
    if constexpr (std::is_same_v<Dataset, data::DenseDataset>) {
      const float* point = dataset_->point(id);
      const size_t dim = dataset_->dim();
      switch (metric) {
        case data::Metric::kL1:
          return data::L1Distance(query, point, dim);
        case data::Metric::kL2:
          return data::L2Distance(query, point, dim);
        case data::Metric::kCosine:
          return data::CosineDistance(query, point, dim);
        default:
          HLSH_CHECK(false && "metric does not apply to dense points");
          return 0.0;
      }
    } else if constexpr (std::is_same_v<Dataset, data::BinaryDataset>) {
      return data::HammingDistance(query, dataset_->point(id),
                                   dataset_->words_per_code());
    } else {
      return data::JaccardDistance(query, dataset_->point(id));
    }
  }

  /// Validates a spec against this engine before anything executes: a
  /// predicate needs an attached AttributeStore; attribute-only clauses
  /// need a predicate (they report its survivors); metric overrides exist
  /// for dense float data only, and only among the dense metrics. The
  /// fused flag pins which result shape the caller asked for.
  util::Status ValidateSpec(const QuerySpec& spec, bool fused) const {
    if (spec.fused() != fused) {
      return util::Status::InvalidArgument(
          fused ? "QueryFused needs a spec with subqueries"
                : "fused specs return scored hits: call QueryFused");
    }
    if (spec.predicate != nullptr && attributes_ == nullptr) {
      return util::Status::FailedPrecondition(
          "filtered spec without an attached AttributeStore "
          "(AttachAttributes)");
    }
    for (const SubquerySpec& sub : spec.subqueries) {
      if (sub.attribute_only && spec.predicate == nullptr) {
        return util::Status::InvalidArgument(
            "attribute-only subquery requires a predicate");
      }
      if (sub.metric.has_value() &&
          *sub.metric != shards_[0].index->family().metric()) {
        if constexpr (!std::is_same_v<Dataset, data::DenseDataset>) {
          return util::Status::InvalidArgument(
              "metric overrides require a dense float dataset");
        }
        if (*sub.metric != data::Metric::kL1 &&
            *sub.metric != data::Metric::kL2 &&
            *sub.metric != data::Metric::kCosine) {
          return util::Status::InvalidArgument(
              "metric override must be a dense metric (L1/L2/cosine)");
        }
      }
    }
    return util::Status::Ok();
  }

  /// Runs the filter stage for one query (BuildFilterContext) into
  /// `storage` and records it in the stats. Pass-through (and free) for
  /// unfiltered specs.
  FilterContext BuildFilterStage(const QuerySpec& spec,
                                 util::BitVector* storage,
                                 ShardedQueryStats* s) const {
    if (spec.predicate == nullptr) return FilterContext{};
    util::WallTimer timer;
    const FilterContext fctx =
        BuildFilterContext(attributes_, spec.predicate, tombstones_.get(),
                           dataset_->size(), live_size(), storage);
    NoteFilterStats(fctx, s);
    s->filter_seconds = timer.ElapsedSeconds();
    return fctx;
  }

  void NoteFilterStats(const FilterContext& fctx, ShardedQueryStats* s) const {
    if (fctx.filter == nullptr) return;
    s->filtered = true;
    s->filter_selectivity = fctx.selectivity;
    s->filter_survivors = fctx.survivors;
  }

  /// Accumulates one subquery's shard stats into the per-shard slot (the
  /// fused gather runs several QueryShard passes per shard).
  static void AccumulateShardStats(const core::QueryStats& sub,
                                   core::QueryStats* total) {
    total->strategy = sub.strategy;
    total->collisions += sub.collisions;
    total->cand_estimate += sub.cand_estimate;
    total->cand_actual += sub.cand_actual;
    total->output_size += sub.output_size;
    total->plan_reuse += sub.plan_reuse;
    total->lsh_cost += sub.lsh_cost;
    total->linear_cost += sub.linear_cost;
    total->estimate_seconds += sub.estimate_seconds;
    total->total_seconds += sub.total_seconds;
  }

  Options options_;
  const Dataset* dataset_ = nullptr;
  Dataset* mutable_dataset_ = nullptr;
  // Attribute table for the filter stage (row == global id); attached by
  // the caller, read lock-free through acquire-published row counts.
  const data::AttributeStore* attributes_ = nullptr;
  // Writer mutex (heap-stable across engine moves).
  std::unique_ptr<EngineSync> sync_;
  // Cumulative hash/plan counters (heap-stable across engine moves).
  std::unique_ptr<QueryCounters> counters_;
  std::unique_ptr<util::ThreadPool> pool_;
  // One tombstone bitmap shared by every shard (heap-stable across moves).
  std::unique_ptr<util::BitVector> tombstones_;
  // Int8 mirror of the (dense) dataset for the quantized screen; null when
  // the option is off, the container is not dense, or the data does not
  // quantize. Heap-stable across engine moves; appended under write_mu,
  // read lock-free by queries through acquire-published row counts.
  std::unique_ptr<data::QuantizedMirror> mirror_;
  std::vector<Shard> shards_;
  // Background seal/compaction: a dedicated one-thread pool plus its
  // completion latch. Declared after shards_ so destruction drains every
  // queued task (which captures raw ShardIndex pointers) before any shard
  // index dies.
  std::unique_ptr<util::ThreadPool> maintenance_pool_;
  std::unique_ptr<util::TaskGroup> maintenance_group_;
  size_t initial_n_ = 0;  // dataset size at Build
  EngineStats stats_;     // build-time shape; dynamic fields redone in stats()
  // Single-query fan-out scratch (one per shard) and shard result buffers.
  std::vector<QueryScratch> fanout_scratch_;
  std::vector<std::vector<uint32_t>> fanout_out_;
  // Hash-once plan of the in-flight Query (computed on the calling thread,
  // read by every fan-out worker).
  lsh::PlanScratch fanout_plan_scratch_;
  lsh::ProbePlan fanout_plan_;
  // Filter-stage storage of the in-flight fan-out Query / QueryBatch
  // (built once on the calling thread, read const by the workers).
  util::BitVector fanout_filter_;
  util::BitVector batch_filter_;
  // Batch scratch (one per pool worker), created on first QueryBatch, plus
  // the batched S1 buffers: materialized query points, one plan per query,
  // and the blocked-projection workspace.
  std::vector<QueryScratch> batch_scratch_;
  std::vector<Point> batch_points_;
  std::vector<lsh::ProbePlan> batch_plans_;
  lsh::PlanScratch batch_plan_scratch_;
};

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_SHARDED_ENGINE_H_
