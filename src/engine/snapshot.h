// Crash-safe, versioned, checksummed snapshot directories for the serving
// engine.
//
// A snapshot is the engine's full serving state on disk — hash functions,
// per-shard CSR segments with their HLL sketches, tombstones, the dataset
// (with its norm cache), and the calibrated cost model — laid out so that a
// restart rehydrates a query-ready engine without recomputing a single
// hash. The directory protocol is the LevelDB-style CURRENT pointer:
//
//   root/
//     CURRENT              "snapshot-000007\n"  (atomic rename, synced)
//     snapshot-000007/
//       MANIFEST           header + engine config + file table (written LAST)
//       functions.bin      one FunctionSet block, shared by all shards
//       dataset.bin        the point container + dense norm cache
//       tombstones.bin     the engine-wide delete bitmap
//       shard-000.bin ...  per-shard sealed segments (CSR + sketches)
//
// Every file is written temp + fsync + rename and carries a trailing
// 64-bit checksum of its payload; the MANIFEST additionally records each
// file's size and checksum. A new snapshot goes into a fresh epoch
// directory and only becomes visible when CURRENT is atomically replaced —
// a crash at ANY point (mid-file, before the manifest, before CURRENT)
// leaves the previous snapshot untouched and loadable. Older epochs are
// garbage-collected only after CURRENT commits.
//
// This header is the representation-independent core: directory protocol,
// manifest schema, checksummed file IO (buffered or mmap). The typed
// save/load logic lives with the structures it serializes
// (ShardedEngine::SaveSnapshot / OpenSnapshot in engine/sharded_engine.h,
// the facade dispatch in engine/search_engine.h).

#ifndef HYBRIDLSH_ENGINE_SNAPSHOT_H_
#define HYBRIDLSH_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/mmap_file.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace engine {
namespace snapshot {

/// v1: initial format. v2: adds the quantized-verification fields to the
/// config block and an optional int8 mirror sidecar (mirror.bin). Readers
/// accept both: a v1 snapshot restores with the mirror rebuilt from the
/// dataset instead of loaded (kMinFormatVersion tracks the floor).
inline constexpr uint32_t kFormatVersion = 2;
inline constexpr uint32_t kMinFormatVersion = 1;

inline constexpr char kCurrentFile[] = "CURRENT";
inline constexpr char kManifestFile[] = "MANIFEST";
inline constexpr char kFunctionsFile[] = "functions.bin";
inline constexpr char kDatasetFile[] = "dataset.bin";
inline constexpr char kTombstonesFile[] = "tombstones.bin";
/// Optional (v2, dense datasets with quantized_verify): the serialized
/// data::QuantizedMirror sidecar, so a restore skips requantization.
inline constexpr char kMirrorFile[] = "mirror.bin";

/// "shard-000.bin", "shard-001.bin", ...
std::string ShardFileName(size_t shard);

/// Load-time knobs for ShardedEngine::OpenSnapshot / OpenSnapshotEngine.
struct OpenOptions {
  /// Map snapshot files read-only (util/mmap_file.h) instead of reading
  /// them into heap buffers: the dataset and CSR segment payloads are then
  /// paged in by the kernel and copied once, straight from the page cache.
  bool use_mmap = false;
  /// Overrides the pool size recorded in the manifest (0 = keep it) — a
  /// snapshot may be restored on a smaller machine than it was taken on.
  size_t num_threads = 0;
};

/// The family-independent engine configuration a snapshot restores:
/// sharding, index parameters, segment-lifecycle knobs, and the searcher
/// policy including the calibrated (alpha, beta) cost constants.
struct EngineConfig {
  uint64_t num_shards = 1;
  uint64_t num_threads = 0;
  int32_t num_tables = 50;
  int32_t k = 0;
  double delta = 0.1;
  double radius = 0.0;
  int32_t hll_precision = 7;
  uint64_t small_bucket_threshold = 0;
  uint64_t seed = 1;
  uint64_t active_seal_threshold = 4096;
  uint64_t max_sealed_segments = 4;
  double cost_alpha = 1.0;
  double cost_beta = 10.0;
  uint64_t probes_per_table = 1;
  uint32_t forced_strategy = 0;  // core::ForcedStrategy underlying value
  // --- v2 fields (defaults are what a v1 snapshot restores to). ---
  uint32_t quantized_verify = 1;  // int8 screen enabled (dense datasets)
  double cost_beta_screen = 0.0;
  double cost_rescore_fraction = 1.0;
};

/// One data file recorded in the manifest.
struct FileEntry {
  std::string name;
  uint64_t size = 0;      // on-disk size, payload + trailing checksum
  uint64_t checksum = 0;  // checksum of the payload alone
};

/// The snapshot's self-description, written last.
struct Manifest {
  uint32_t format_version = kFormatVersion;
  uint32_t family_tag = 0;    // Family::kFamilyTag of the saved engine
  uint32_t metric_tag = 0;    // data::Metric underlying value
  uint32_t dataset_kind = 0;  // data::kDenseDatasetKind etc.
  uint64_t num_points = 0;    // dataset size at snapshot
  uint64_t initial_n = 0;     // dataset size at the original Build
  EngineConfig config;
  std::vector<FileEntry> files;

  void Serialize(util::ByteWriter* writer) const;
  static util::StatusOr<Manifest> Parse(util::ByteReader* reader);

  /// The manifest entry for `name`, or nullptr.
  const FileEntry* FindFile(const std::string& name) const;
};

/// A snapshot file's verified payload, backed either by an owned buffer or
/// by a read-only mapping (near-zero-copy load path).
class SnapshotBlob {
 public:
  std::span<const uint8_t> payload() const { return payload_; }

  /// The trailing checksum, already verified against the payload.
  uint64_t checksum() const { return checksum_; }

 private:
  friend util::StatusOr<SnapshotBlob> ReadSnapshotFile(const std::string&,
                                                       bool);
  std::vector<uint8_t> owned_;
  util::MappedFile mapped_;
  std::span<const uint8_t> payload_;
  uint64_t checksum_ = 0;
};

/// Reads `path` (buffered, or mmap'd when `use_mmap`), verifies the
/// trailing checksum, and returns the payload. DataLoss on truncation or
/// checksum mismatch.
util::StatusOr<SnapshotBlob> ReadSnapshotFile(const std::string& path,
                                              bool use_mmap);

/// Stages one snapshot epoch: Begin creates root/snapshot-NNNNNN/, each
/// WriteFile lands one checksummed data file in it, and Commit writes the
/// manifest, atomically repoints CURRENT, and garbage-collects older
/// epochs. Dropping the writer without Commit leaves an orphan epoch that
/// loaders ignore and the next Commit cleans up.
class SnapshotWriter {
 public:
  static util::StatusOr<SnapshotWriter> Begin(const std::string& root);

  /// Writes payload + checksum to `name` inside the epoch directory and
  /// records its manifest entry.
  util::Status WriteFile(const std::string& name,
                         std::span<const uint8_t> payload);

  /// Completes the snapshot: `manifest.files` is filled from the staged
  /// files, the manifest is written last, CURRENT is atomically replaced,
  /// and older epoch directories are removed.
  util::Status Commit(Manifest manifest);

  const std::string& epoch_dir() const { return epoch_dir_; }

 private:
  std::string root_;
  std::string epoch_name_;
  std::string epoch_dir_;
  std::vector<FileEntry> files_;
};

/// Opens the snapshot CURRENT points at and loads its manifest. Each
/// ReadFile cross-checks the file's size and checksum against the manifest
/// (catching mixed-epoch and partially-written state) before returning the
/// payload.
class SnapshotReader {
 public:
  static util::StatusOr<SnapshotReader> Open(const std::string& root,
                                             bool use_mmap);

  const Manifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }

  util::StatusOr<SnapshotBlob> ReadFile(const std::string& name) const;

 private:
  std::string dir_;
  bool use_mmap_ = false;
  Manifest manifest_;
};

}  // namespace snapshot
}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_SNAPSHOT_H_
