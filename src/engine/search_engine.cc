// Registry and built-in factories for the type-erased SearchEngine facade.

#include "engine/search_engine.h"

#include <map>
#include <mutex>
#include <string>

#include "lsh/families.h"

namespace hybridlsh {
namespace engine {

namespace {

// -- Registry ---------------------------------------------------------------

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<data::Metric, EngineFactory>& Registry() {
  static std::map<data::Metric, EngineFactory> registry;
  return registry;
}

// -- Shared factory plumbing ------------------------------------------------

/// Mirrors the family-independent EngineOptions fields into the per-family
/// ShardedEngine options.
template <typename Engine>
typename Engine::Options ToEngineOptions(const EngineOptions& options) {
  typename Engine::Options engine_options;
  engine_options.num_shards = options.num_shards;
  engine_options.num_threads = options.num_threads;
  engine_options.index.num_tables = options.num_tables;
  engine_options.index.k = options.k;
  engine_options.index.delta = options.delta;
  engine_options.index.radius = options.radius;
  engine_options.index.hll_precision = options.hll_precision;
  engine_options.index.seed = options.seed;
  engine_options.active_seal_threshold = options.active_seal_threshold;
  engine_options.max_sealed_segments = options.max_sealed_segments;
  engine_options.quantized_verify = options.quantized_verify;
  engine_options.searcher = options.searcher;
  return engine_options;
}

template <typename Family, typename Dataset>
util::StatusOr<std::unique_ptr<SearchEngine>> Adapt(
    Family family, const Dataset& dataset, const EngineOptions& options) {
  using Engine = ShardedEngine<Family, Dataset>;
  auto engine =
      Engine::Build(std::move(family), dataset, ToEngineOptions<Engine>(options));
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<SearchEngine>(
      new ShardedEngineAdapter<Family, Dataset>(std::move(*engine)));
}

/// Pulls the container a factory needs out of the variant, or fails with a
/// metric-specific message.
template <typename Dataset>
util::StatusOr<const Dataset*> Expect(AnyDataset dataset, const char* want) {
  if (const auto* const* held = std::get_if<const Dataset*>(&dataset)) {
    if (*held == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    return *held;
  }
  return util::Status::InvalidArgument(
      std::string("this metric requires a ") + want + " dataset");
}

/// The p-stable quantization window: explicit, or the paper's radius-tied
/// default (w = 4r for L1, 2r for L2; §4.1).
util::StatusOr<double> PStableW(const EngineOptions& options,
                                double radius_multiple) {
  if (options.pstable_w > 0) return options.pstable_w;
  if (options.radius > 0) return radius_multiple * options.radius;
  return util::Status::InvalidArgument(
      "kL1/kL2 engines need pstable_w > 0 or radius > 0 to derive it");
}

// -- Built-in factories, one per paper pairing ------------------------------

util::StatusOr<std::unique_ptr<SearchEngine>> BuildCosine(
    AnyDataset dataset, const EngineOptions& options) {
  auto dense = Expect<data::DenseDataset>(dataset, "dense");
  if (!dense.ok()) return dense.status();
  return Adapt(lsh::SimHashFamily((*dense)->dim()), **dense, options);
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildL2(
    AnyDataset dataset, const EngineOptions& options) {
  auto dense = Expect<data::DenseDataset>(dataset, "dense");
  if (!dense.ok()) return dense.status();
  auto w = PStableW(options, 2.0);
  if (!w.ok()) return w.status();
  return Adapt(lsh::PStableFamily::L2((*dense)->dim(), *w), **dense, options);
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildL1(
    AnyDataset dataset, const EngineOptions& options) {
  auto dense = Expect<data::DenseDataset>(dataset, "dense");
  if (!dense.ok()) return dense.status();
  auto w = PStableW(options, 4.0);
  if (!w.ok()) return w.status();
  return Adapt(lsh::PStableFamily::L1((*dense)->dim(), *w), **dense, options);
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildHamming(
    AnyDataset dataset, const EngineOptions& options) {
  auto binary = Expect<data::BinaryDataset>(dataset, "binary");
  if (!binary.ok()) return binary.status();
  return Adapt(lsh::BitSamplingFamily((*binary)->width_bits()), **binary,
               options);
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildJaccard(
    AnyDataset dataset, const EngineOptions& options) {
  auto sparse = Expect<data::SparseDataset>(dataset, "sparse");
  if (!sparse.ok()) return sparse.status();
  return Adapt(lsh::MinHashFamily(), **sparse, options);
}

void EnsureBuiltins() {
  static const bool registered = [] {
    std::map<data::Metric, EngineFactory>& registry = Registry();
    registry[data::Metric::kCosine] = &BuildCosine;
    registry[data::Metric::kL2] = &BuildL2;
    registry[data::Metric::kL1] = &BuildL1;
    registry[data::Metric::kHamming] = &BuildHamming;
    registry[data::Metric::kJaccard] = &BuildJaccard;
    return true;
  }();
  (void)registered;
}

}  // namespace

// -- SearchEngine defaults: every overload rejects --------------------------

util::Status SearchEngine::WrongPointType(const char* got) const {
  return util::Status::InvalidArgument(
      std::string("engine for metric ") + std::string(MetricName(metric())) +
      " does not accept " + got + " queries");
}

util::Status SearchEngine::Query(const float*, double, std::vector<uint32_t>*,
                                 ShardedQueryStats*) {
  return WrongPointType("dense float");
}

util::Status SearchEngine::Query(const uint64_t*, double,
                                 std::vector<uint32_t>*, ShardedQueryStats*) {
  return WrongPointType("packed binary");
}

util::Status SearchEngine::Query(std::span<const uint32_t>, double,
                                 std::vector<uint32_t>*, ShardedQueryStats*) {
  return WrongPointType("sparse id-set");
}

util::Status SearchEngine::AttachAttributes(const data::AttributeStore*) {
  return util::Status::Unimplemented(
      "this engine does not support attribute filters");
}

util::Status SearchEngine::Query(const float*, const QuerySpec&,
                                 std::vector<uint32_t>*, ShardedQueryStats*) {
  return WrongPointType("dense float");
}

util::Status SearchEngine::Query(const uint64_t*, const QuerySpec&,
                                 std::vector<uint32_t>*, ShardedQueryStats*) {
  return WrongPointType("packed binary");
}

util::Status SearchEngine::Query(std::span<const uint32_t>, const QuerySpec&,
                                 std::vector<uint32_t>*, ShardedQueryStats*) {
  return WrongPointType("sparse id-set");
}

util::Status SearchEngine::QueryFused(const float*, const QuerySpec&,
                                      std::vector<core::FusedHit>*,
                                      ShardedQueryStats*) {
  return WrongPointType("dense float");
}

util::Status SearchEngine::QueryFused(const uint64_t*, const QuerySpec&,
                                      std::vector<core::FusedHit>*,
                                      ShardedQueryStats*) {
  return WrongPointType("packed binary");
}

util::Status SearchEngine::QueryFused(std::span<const uint32_t>,
                                      const QuerySpec&,
                                      std::vector<core::FusedHit>*,
                                      ShardedQueryStats*) {
  return WrongPointType("sparse id-set");
}

util::StatusOr<std::vector<ShardedBatchResult>> SearchEngine::QueryBatch(
    const data::DenseDataset&, double, double*) {
  return WrongPointType("dense float");
}

util::StatusOr<std::vector<ShardedBatchResult>> SearchEngine::QueryBatch(
    const data::BinaryDataset&, double, double*) {
  return WrongPointType("packed binary");
}

util::StatusOr<std::vector<ShardedBatchResult>> SearchEngine::QueryBatch(
    const data::SparseDataset&, double, double*) {
  return WrongPointType("sparse id-set");
}

util::StatusOr<uint32_t> SearchEngine::Insert(const float*) {
  return WrongPointType("dense float");
}

util::StatusOr<uint32_t> SearchEngine::Insert(const uint64_t*) {
  return WrongPointType("packed binary");
}

util::StatusOr<uint32_t> SearchEngine::Insert(std::span<const uint32_t>) {
  return WrongPointType("sparse id-set");
}

util::Status SearchEngine::Remove(uint32_t) {
  return util::Status::Unimplemented("this engine does not support updates");
}

util::Status SearchEngine::SaveSnapshot(const std::string&) {
  return util::Status::Unimplemented("this engine does not support snapshots");
}

util::Status SearchEngine::Compact() {
  return util::Status::Unimplemented("this engine does not support updates");
}

util::Status SearchEngine::EnableUpdates(AnyMutableDataset) {
  return util::Status::Unimplemented("this engine does not support updates");
}

// -- Registry API -----------------------------------------------------------

void RegisterEngineFactory(data::Metric metric, EngineFactory factory) {
  HLSH_CHECK(factory != nullptr);
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry()[metric] = factory;
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildEngine(
    data::Metric metric, AnyDataset dataset, const EngineOptions& options) {
  EnsureBuiltins();
  EngineFactory factory = nullptr;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(metric);
    if (it != Registry().end()) factory = it->second;
  }
  if (factory == nullptr) {
    return util::Status::NotFound(
        std::string("no engine factory registered for metric ") +
        std::string(MetricName(metric)));
  }
  return factory(dataset, options);
}

util::StatusOr<std::unique_ptr<SearchEngine>> BuildMutableEngine(
    data::Metric metric, AnyMutableDataset dataset,
    const EngineOptions& options) {
  const AnyDataset view =
      std::visit([](auto* held) -> AnyDataset { return held; }, dataset);
  auto engine = BuildEngine(metric, view, options);
  if (!engine.ok()) return engine;
  HLSH_RETURN_IF_ERROR((*engine)->EnableUpdates(dataset));
  return engine;
}

// -- Snapshot restore ---------------------------------------------------------

namespace {

/// Restores one typed engine and hands the dataset's ownership to the
/// adapter. OpenSnapshot itself checks that the snapshot's family and
/// container match <Family, Dataset> and arms updates.
template <typename Family, typename Dataset>
util::StatusOr<std::unique_ptr<SearchEngine>> OpenTyped(
    const std::string& dir, const snapshot::OpenOptions& options) {
  auto dataset = std::make_unique<Dataset>();
  auto engine =
      ShardedEngine<Family, Dataset>::OpenSnapshot(dir, dataset.get(), options);
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<SearchEngine>(
      new ShardedEngineAdapter<Family, Dataset>(std::move(*engine),
                                                std::move(dataset)));
}

}  // namespace

util::StatusOr<std::unique_ptr<SearchEngine>> OpenSnapshotEngine(
    const std::string& dir, const snapshot::OpenOptions& options) {
  // One cheap manifest read decides which typed opener to run; the typed
  // OpenSnapshot then re-verifies everything it loads.
  auto reader = snapshot::SnapshotReader::Open(dir, /*use_mmap=*/false);
  if (!reader.ok()) return reader.status();
  switch (static_cast<data::Metric>(reader->manifest().metric_tag)) {
    case data::Metric::kCosine:
      return OpenTyped<lsh::SimHashFamily, data::DenseDataset>(dir, options);
    case data::Metric::kL2:
    case data::Metric::kL1:
      return OpenTyped<lsh::PStableFamily, data::DenseDataset>(dir, options);
    case data::Metric::kHamming:
      return OpenTyped<lsh::BitSamplingFamily, data::BinaryDataset>(dir,
                                                                    options);
    case data::Metric::kJaccard:
      return OpenTyped<lsh::MinHashFamily, data::SparseDataset>(dir, options);
  }
  return util::Status::DataLoss("snapshot manifest names an unknown metric");
}

}  // namespace engine
}  // namespace hybridlsh
