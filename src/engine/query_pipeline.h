// The composable query pipeline: QuerySpec and the shared stage helpers.
//
// Every query the engine answers — the legacy single-radius call, a
// predicate-filtered search, or an N-subquery fusion — is one QuerySpec
// flowing through the same stage chain:
//
//   plan    hash the query once per (query, family): lsh::ComputePlan /
//           ComputePlanBatch, shared across shards and subqueries;
//   probe   per shard, per subquery: EstimateProbe over the epoch
//           snapshot's sketches feeds the cost model;
//   gather  S2 bucket merge into the VisitedSet (tombstone-filtered), or
//           the filtered linear path's survivor enumeration;
//   filter  evaluate the predicate into a BitVector over [0, id_bound),
//           compose word-wise with the tombstone bitmap
//           (BitVector::AndWithNot), and derive one selectivity for the
//           cost model (BuildFilterContext below, once per query);
//   verify  the kernels of core/kernels.h with the filter pushed down —
//           a candidate pays a bit test before it pays a distance;
//   score   recompute exact per-id distances for fused subqueries with
//           the scalar data/metric.h references (tier-independent);
//   merge   deterministic RRF / LINEAR fusion (core/fusion.h) with stable
//           tie-breaks.
//
// The legacy entry points (Query / QueryConcurrent / QueryBatch) are thin
// wrappers that build a trivial QuerySpec, so there is exactly one
// execution path to maintain; a trivial spec takes the null-filter,
// no-fusion fast branches and compiles to the pre-pipeline flow.

#ifndef HYBRIDLSH_ENGINE_QUERY_PIPELINE_H_
#define HYBRIDLSH_ENGINE_QUERY_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fusion.h"
#include "data/attributes.h"
#include "data/metric.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace hybridlsh {
namespace engine {

/// One fusion clause of a fused query. All subqueries run against the same
/// query point and the same per-shard snapshot acquisition; they differ in
/// radius, metric, or by being an attribute-only scan.
struct SubquerySpec {
  /// Search radius (ignored for attribute_only clauses).
  double radius = 0.0;

  /// This clause's weight in the fused score.
  double weight = 1.0;

  /// Optional metric override (dense engines only). A subquery with a
  /// metric different from the engine's LSH family cannot use the index's
  /// buckets, so it executes as a (filtered) linear scan under that
  /// metric; subqueries without an override run the full hybrid
  /// LSH-vs-linear decision.
  std::optional<data::Metric> metric;

  /// Attribute-only clause: geometry is ignored; every id passing the
  /// spec's predicate is reported with distance 0. Requires a predicate.
  bool attribute_only = false;
};

/// The one query description every engine entry point executes. A
/// default-constructed spec with just `radius` set reproduces the legacy
/// single-radius query exactly.
struct QuerySpec {
  /// Radius of the single (non-fused) query. Ignored when subqueries are
  /// present.
  double radius = 0.0;

  /// Optional pushdown predicate over the engine's attached
  /// AttributeStore; null means unfiltered. The pointee must outlive the
  /// call.
  const data::Predicate* predicate = nullptr;

  /// Fusion clauses. Empty = plain single query; otherwise each subquery
  /// executes independently (sharing plan, filter, and snapshot) and the
  /// lists merge under `fusion`.
  std::vector<SubquerySpec> subqueries;

  /// Scoring semantics for the merge stage.
  core::FusionOptions fusion;

  bool fused() const { return !subqueries.empty(); }

  static QuerySpec Radius(double radius) {
    QuerySpec spec;
    spec.radius = radius;
    return spec;
  }
};

/// The filter stage's product: one per query, shared by every shard and
/// subquery. `filter` is null for unfiltered specs; otherwise it points at
/// query-scratch storage holding predicate ∧ ¬tombstone bits over
/// [0, id_bound) — set bits are exactly the live ids that pass.
struct FilterContext {
  const util::BitVector* filter = nullptr;
  /// Survivors / live — the fraction of live points passing the filter,
  /// i.e. the selectivity term of CostModel::EffectiveLiveFraction.
  double selectivity = 1.0;
  /// popcount of the composed bitmap.
  size_t survivors = 0;
};

/// Runs the filter stage: evaluates `predicate` over [0, id_bound) into
/// *storage, composes with `tombstones` (which may be null for containers
/// without deletes, and may be concurrently written — AndWithNot loads it
/// word-atomically), counts survivors, and derives the selectivity against
/// `live_total` (the engine's live point count; survivors can exceed it
/// only transiently, hence the clamp downstream). Null predicate returns
/// the pass-through context without touching *storage.
inline FilterContext BuildFilterContext(const data::AttributeStore* attributes,
                                        const data::Predicate* predicate,
                                        const util::BitVector* tombstones,
                                        size_t id_bound, size_t live_total,
                                        util::BitVector* storage) {
  FilterContext ctx;
  if (predicate == nullptr) return ctx;
  HLSH_CHECK(attributes != nullptr &&
             "filtered query without an attached AttributeStore");
  data::EvaluateFilter(*attributes, *predicate, id_bound, storage);
  if (tombstones != nullptr) storage->AndWithNot(*tombstones);
  ctx.filter = storage;
  ctx.survivors = storage->Count();
  ctx.selectivity =
      live_total == 0 ? 0.0
                      : static_cast<double>(ctx.survivors) /
                            static_cast<double>(live_total);
  if (ctx.selectivity > 1.0) ctx.selectivity = 1.0;
  return ctx;
}

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_QUERY_PIPELINE_H_
