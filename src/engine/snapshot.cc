#include "engine/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <system_error>

#include "util/hash.h"

namespace hybridlsh {
namespace engine {
namespace snapshot {

namespace {

constexpr uint64_t kManifestMagic = 0x50414e53484c5348ULL;  // "HSLHSNAP"
constexpr uint64_t kChecksumSeed = 0x736e617073686f74ULL;   // "snapshot"
constexpr char kEpochPrefix[] = "snapshot-";

uint64_t Checksum(std::span<const uint8_t> payload) {
  return util::HashBytes(payload.data(), payload.size(), kChecksumSeed);
}

/// Parses "snapshot-NNNNNN" -> NNNNNN, or nullopt for other names.
std::optional<uint64_t> EpochOf(const std::string& name) {
  const std::string prefix(kEpochPrefix);
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return std::nullopt;
  }
  uint64_t epoch = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return epoch;
}

std::string EpochName(uint64_t epoch) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s%06" PRIu64, kEpochPrefix, epoch);
  return buffer;
}

void WriteString(util::ByteWriter* writer, const std::string& text) {
  writer->WriteBlob({reinterpret_cast<const uint8_t*>(text.data()),
                     text.size()});
}

util::Status ReadString(util::ByteReader* reader, std::string* out) {
  std::vector<uint8_t> bytes;
  HLSH_RETURN_IF_ERROR(reader->ReadBlob(&bytes));
  out->assign(bytes.begin(), bytes.end());
  return util::Status::Ok();
}

}  // namespace

std::string ShardFileName(size_t shard) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "shard-%03zu.bin", shard);
  return buffer;
}

// --- Manifest ---------------------------------------------------------------

void Manifest::Serialize(util::ByteWriter* writer) const {
  writer->WriteU64(kManifestMagic);
  writer->WriteU32(format_version);
  writer->WriteU32(family_tag);
  writer->WriteU32(metric_tag);
  writer->WriteU32(dataset_kind);
  writer->WriteU64(num_points);
  writer->WriteU64(initial_n);

  writer->WriteU64(config.num_shards);
  writer->WriteU64(config.num_threads);
  writer->WriteI32(config.num_tables);
  writer->WriteI32(config.k);
  writer->WriteF64(config.delta);
  writer->WriteF64(config.radius);
  writer->WriteI32(config.hll_precision);
  writer->WriteU64(config.small_bucket_threshold);
  writer->WriteU64(config.seed);
  writer->WriteU64(config.active_seal_threshold);
  writer->WriteU64(config.max_sealed_segments);
  writer->WriteF64(config.cost_alpha);
  writer->WriteF64(config.cost_beta);
  writer->WriteU64(config.probes_per_table);
  writer->WriteU32(config.forced_strategy);
  // v2 config fields sit between the v1 config block and the file list so
  // the version-gated Parse below can skip them for v1 payloads.
  writer->WriteU32(config.quantized_verify);
  writer->WriteF64(config.cost_beta_screen);
  writer->WriteF64(config.cost_rescore_fraction);

  writer->WriteU64(files.size());
  for (const FileEntry& file : files) {
    WriteString(writer, file.name);
    writer->WriteU64(file.size);
    writer->WriteU64(file.checksum);
  }
}

util::StatusOr<Manifest> Manifest::Parse(util::ByteReader* reader) {
  Manifest manifest;
  uint64_t magic = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&magic));
  if (magic != kManifestMagic) {
    return util::Status::DataLoss("not a hybridlsh snapshot manifest");
  }
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&manifest.format_version));
  if (manifest.format_version < kMinFormatVersion ||
      manifest.format_version > kFormatVersion) {
    return util::Status::DataLoss("unsupported snapshot format version");
  }
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&manifest.family_tag));
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&manifest.metric_tag));
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&manifest.dataset_kind));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&manifest.num_points));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&manifest.initial_n));

  EngineConfig& config = manifest.config;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.num_shards));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.num_threads));
  HLSH_RETURN_IF_ERROR(reader->ReadI32(&config.num_tables));
  HLSH_RETURN_IF_ERROR(reader->ReadI32(&config.k));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.delta));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.radius));
  HLSH_RETURN_IF_ERROR(reader->ReadI32(&config.hll_precision));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.small_bucket_threshold));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.seed));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.active_seal_threshold));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.max_sealed_segments));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.cost_alpha));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.cost_beta));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&config.probes_per_table));
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&config.forced_strategy));
  if (manifest.format_version >= 2) {
    HLSH_RETURN_IF_ERROR(reader->ReadU32(&config.quantized_verify));
    HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.cost_beta_screen));
    HLSH_RETURN_IF_ERROR(reader->ReadF64(&config.cost_rescore_fraction));
  }
  // A v1 snapshot predates quantized verification: restore with the
  // default-on screen and the single-beta cost model (the EngineConfig
  // initializers), and rebuild the mirror from the dataset at open.
  // Bound the fields that size allocations (shard vectors, thread pool)
  // before any shard payload is validated — same 2^20 cap as num_files,
  // FunctionSet::Load, and SegmentedIndex::LoadFrom.
  constexpr uint64_t kMaxCount = uint64_t{1} << 20;
  if (config.num_shards == 0 || config.num_shards > kMaxCount ||
      config.num_threads > kMaxCount || config.num_tables <= 0 ||
      config.probes_per_table == 0 || config.forced_strategy > 2 ||
      config.quantized_verify > 1 ||
      !(config.cost_beta_screen >= 0.0) ||
      !(config.cost_rescore_fraction >= 0.0)) {
    return util::Status::DataLoss("snapshot manifest has invalid config");
  }

  uint64_t num_files = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_files));
  if (num_files > (uint64_t{1} << 20)) {
    return util::Status::DataLoss("snapshot manifest lists too many files");
  }
  manifest.files.resize(num_files);
  for (FileEntry& file : manifest.files) {
    HLSH_RETURN_IF_ERROR(ReadString(reader, &file.name));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&file.size));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&file.checksum));
  }
  HLSH_RETURN_IF_ERROR(reader->ExpectEnd());
  return manifest;
}

const FileEntry* Manifest::FindFile(const std::string& name) const {
  for (const FileEntry& file : files) {
    if (file.name == name) return &file;
  }
  return nullptr;
}

// --- Checksummed file IO ----------------------------------------------------

util::StatusOr<SnapshotBlob> ReadSnapshotFile(const std::string& path,
                                              bool use_mmap) {
  SnapshotBlob blob;
  std::span<const uint8_t> bytes;
  if (use_mmap) {
    auto mapped = util::MappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    blob.mapped_ = std::move(*mapped);
    bytes = blob.mapped_.bytes();
  } else {
    auto owned = util::ReadFileBytes(path);
    if (!owned.ok()) return owned.status();
    blob.owned_ = std::move(*owned);
    bytes = blob.owned_;
  }
  if (bytes.size() < sizeof(uint64_t)) {
    return util::Status::DataLoss("snapshot file is truncated: " + path);
  }
  const std::span<const uint8_t> payload =
      bytes.subspan(0, bytes.size() - sizeof(uint64_t));
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload.size(), sizeof(stored));
  if (stored != Checksum(payload)) {
    return util::Status::DataLoss("snapshot file fails its checksum: " + path);
  }
  blob.payload_ = payload;
  blob.checksum_ = stored;
  return blob;
}

// --- SnapshotWriter ---------------------------------------------------------

util::StatusOr<SnapshotWriter> SnapshotWriter::Begin(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return util::Status::Internal("cannot create snapshot root: " + root);
  }

  // Next epoch = 1 + the largest existing one (complete or orphaned).
  uint64_t epoch = 1;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const auto existing = EpochOf(entry.path().filename().string());
    if (existing.has_value()) epoch = std::max(epoch, *existing + 1);
  }

  SnapshotWriter writer;
  writer.root_ = root;
  writer.epoch_name_ = EpochName(epoch);
  writer.epoch_dir_ = root + "/" + writer.epoch_name_;
  fs::create_directory(writer.epoch_dir_, ec);
  if (ec) {
    return util::Status::Internal("cannot create snapshot epoch: " +
                                  writer.epoch_dir_);
  }
  return writer;
}

util::Status SnapshotWriter::WriteFile(const std::string& name,
                                       std::span<const uint8_t> payload) {
  // The checksum trailer rides in the same atomic write — no second buffer
  // holding a copy of the (possibly dataset-sized) payload, one hash pass.
  const uint64_t checksum = Checksum(payload);
  uint8_t trailer[sizeof(checksum)];
  std::memcpy(trailer, &checksum, sizeof(checksum));
  HLSH_RETURN_IF_ERROR(
      util::AtomicWriteFileBytes(epoch_dir_ + "/" + name, payload, trailer));
  files_.push_back(
      FileEntry{name, payload.size() + sizeof(checksum), checksum});
  return util::Status::Ok();
}

util::Status SnapshotWriter::Commit(Manifest manifest) {
  namespace fs = std::filesystem;
  manifest.files = files_;

  // Manifest last: its presence certifies every data file above it.
  util::ByteWriter payload;
  manifest.Serialize(&payload);
  const uint64_t checksum = Checksum(payload.bytes());
  uint8_t trailer[sizeof(checksum)];
  std::memcpy(trailer, &checksum, sizeof(checksum));
  HLSH_RETURN_IF_ERROR(util::AtomicWriteFileBytes(
      epoch_dir_ + "/" + kManifestFile, payload.bytes(), trailer));

  // Publish: CURRENT is the commit point.
  const std::string current = epoch_name_ + "\n";
  HLSH_RETURN_IF_ERROR(util::AtomicWriteFileBytes(
      root_ + "/" + kCurrentFile,
      {reinterpret_cast<const uint8_t*>(current.data()), current.size()}));

  // GC older (and orphaned) epochs only after the new one is live.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (EpochOf(name).has_value() && name != epoch_name_) {
      fs::remove_all(entry.path(), ec);  // best-effort
    }
  }
  return util::Status::Ok();
}

// --- SnapshotReader ---------------------------------------------------------

util::StatusOr<SnapshotReader> SnapshotReader::Open(const std::string& root,
                                                    bool use_mmap) {
  auto current = util::ReadFileBytes(root + "/" + kCurrentFile);
  if (!current.ok()) {
    if (current.status().code() == util::StatusCode::kNotFound) {
      return util::Status::NotFound("no snapshot at " + root +
                                    " (missing CURRENT)");
    }
    return current.status();
  }
  std::string name(current->begin(), current->end());
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  if (name.empty() || name.find('/') != std::string::npos ||
      !EpochOf(name).has_value()) {
    return util::Status::DataLoss("snapshot CURRENT names an invalid epoch");
  }

  SnapshotReader reader;
  reader.dir_ = root + "/" + name;
  reader.use_mmap_ = use_mmap;
  auto blob = ReadSnapshotFile(reader.dir_ + "/" + kManifestFile, use_mmap);
  if (!blob.ok()) return blob.status();
  util::ByteReader bytes(blob->payload());
  auto manifest = Manifest::Parse(&bytes);
  if (!manifest.ok()) return manifest.status();
  reader.manifest_ = std::move(*manifest);
  return reader;
}

util::StatusOr<SnapshotBlob> SnapshotReader::ReadFile(
    const std::string& name) const {
  const FileEntry* entry = manifest_.FindFile(name);
  if (entry == nullptr) {
    return util::Status::DataLoss("snapshot manifest does not list " + name);
  }
  auto blob = ReadSnapshotFile(dir_ + "/" + name, use_mmap_);
  if (!blob.ok()) return blob.status();
  const uint64_t size = blob->payload().size() + sizeof(uint64_t);
  // The trailing checksum was just verified against the payload, so
  // comparing it to the manifest entry is equivalent to re-hashing.
  if (size != entry->size || blob->checksum() != entry->checksum) {
    return util::Status::DataLoss(
        "snapshot file disagrees with its manifest entry: " + name);
  }
  return blob;
}

}  // namespace snapshot
}  // namespace engine
}  // namespace hybridlsh
