// Zero-copy contiguous view over a dataset's id range [base, base + size).
//
// The sharded engine builds each shard's LshIndex over a slice of the full
// dataset instead of copying points: the slice renumbers ids to 0..size-1
// for the index builder, while the index's Options::id_base puts global ids
// back into the buckets (see lsh/table.h). Works with any container that
// models the dataset surface (size(), point(i)).

#ifndef HYBRIDLSH_ENGINE_DATASET_SLICE_H_
#define HYBRIDLSH_ENGINE_DATASET_SLICE_H_

#include <cstddef>

#include "util/status.h"

namespace hybridlsh {
namespace engine {

/// Non-owning view of `count` consecutive points starting at `base`.
template <typename Dataset>
class DatasetSlice {
 public:
  using Point = typename Dataset::Point;

  DatasetSlice(const Dataset* parent, size_t base, size_t count)
      : parent_(parent), base_(base), count_(count) {
    HLSH_CHECK(parent != nullptr);
    HLSH_CHECK(base + count <= parent->size());
  }

  size_t size() const { return count_; }
  size_t base() const { return base_; }

  Point point(size_t i) const {
    HLSH_DCHECK(i < count_);
    return parent_->point(base_ + i);
  }

 private:
  const Dataset* parent_;
  size_t base_;
  size_t count_;
};

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_DATASET_SLICE_H_
