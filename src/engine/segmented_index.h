// LSM-style segmented LSH index: the mutable lifecycle behind the serving
// engine, with an epoch-published read path that takes zero locks.
//
// A classic LshIndex is one-shot: Build() over a frozen dataset, then
// queries forever. The per-bucket HyperLogLog sketches make in-place
// deletion impossible (HLLs merge but never subtract), so mutability needs
// an architectural answer rather than a patch. SegmentedIndex gives it the
// storage-engine shape:
//
//   inserts  -> ACTIVE log        a fixed-capacity, insert-only chained hash
//                                 log (ActiveLshLog) readers walk lock-free;
//                                 no sketches — buckets fold into the
//                                 query-time estimate like small buckets
//                                 (§3.2);
//   freeze   -> FROZEN log        when the active log fills, the writer swaps
//                                 in a fresh one; the frozen log stays
//                                 queryable as-is until a maintenance pass
//                                 seals it;
//   seal     -> SEALED segment    a frozen log rebuilt into L CSR LshTables
//                                 with fresh HLL sketches;
//   deletes  -> TOMBSTONES        one shared BitVector over global ids,
//                                 monotone set-only between compactions; dead
//                                 ids stay in their buckets (and sketches)
//                                 until compaction, but are dropped before
//                                 distance verification;
//   compact  -> one fresh sealed segment: every sealed segment's surviving
//                                 (key, id) entries are exported and merged
//                                 (LshTable::BuildFromEntries) — no point is
//                                 rehashed — and sketches are rebuilt without
//                                 the dead ids.
//
// All segments share ONE FunctionSet (lsh/index.h): a point hashes to the
// same bucket key in table t no matter which segment currently stores it,
// so the union of per-segment candidate sets equals the candidate set of a
// monolithic index built over the same live points with the same seed.
// That is the lifecycle's equivalence guarantee, tested in
// tests/test_segmented_index.cc.
//
// The hybrid decision sums ProbeEstimates across segments; tombstones bias
// the estimate upward (dead ids still sit in the merged sketches), which
// core::CostModel::TombstoneCorrection subtracts before the LSH-vs-linear
// comparison.
//
// --- Concurrency model (the PR 6 serving core) -----------------------------
//
// The segment list is immutable once published: readers acquire a
// SegmentSnapshot and walk a consistent set of sealed segments and logs
// with no locks; shared_ptr refcounts are the reader epoch, so a
// superseded list (and its segments) is reclaimed when the last in-flight
// reader drops it. Snapshots are cached per reader scratch and re-validated
// against an atomic version counter, so the steady-state read path is two
// relaxed/acquire loads; only a version change makes the reader copy the
// current shared_ptr under a brief mutex (libstdc++'s atomic<shared_ptr>
// unlocks its load with a relaxed op, which is formally racy and trips
// TSan, so the slot is mutex-guarded instead — same cost, clean model). Writers (Insert/Remove) are
// externally serialized against each other (ShardedEngine holds a writer
// mutex); seal and compaction may run on a background thread concurrently
// with both readers and the writer:
//
//   - Insert appends to the active log (entries become visible through
//     release-published bucket heads) and never rebuilds anything; when the
//     log fills it is frozen and a fresh log is published.
//   - RunMaintenance() (background or inline) seals frozen logs into CSR
//     segments and compacts sealed segments, building off to the side and
//     atomically installing a new list under a brief writer-side mutex that
//     readers never touch.
//   - Remove marks the shared tombstone bitmap with a release-ordered set;
//     readers filter with acquire loads. Stale reads are monotone-safe: a
//     query may return a point removed *during* the query, never one whose
//     removal happened-before the query began.
//
// By default maintenance runs inline at the thresholds (standalone indexes
// keep the old synchronous behavior); ShardedEngine switches the index to
// deferred maintenance and drives RunMaintenance() from its pool.

#ifndef HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_
#define HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/cost_model.h"
#include "data/dataset.h"
#include "hll/hyperloglog.h"
#include "lsh/index.h"
#include "lsh/table.h"
#include "util/bit_vector.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hybridlsh {
namespace engine {

/// Default dataset container for a family's Point type (so that
/// SegmentedIndex<Family> / ShardedEngine<Family> work without naming the
/// container).
template <typename Point>
struct DefaultDataset;
template <>
struct DefaultDataset<const float*> {
  using type = data::DenseDataset;
};
template <>
struct DefaultDataset<const uint64_t*> {
  using type = data::BinaryDataset;
};
template <>
struct DefaultDataset<std::span<const uint32_t>> {
  using type = data::SparseDataset;
};

/// Appends one point to the container, matching the container's own Append
/// surface. The uniform Status signature is what SegmentedIndex::Insert
/// uses across representations. The point is staged through a thread-local
/// buffer first: callers routinely insert a point that aliases the
/// dataset's own storage (e.g. re-inserting dataset.point(i)), which the
/// growth reallocation would otherwise invalidate mid-copy.
inline util::Status AppendDatasetPoint(data::DenseDataset* dataset,
                                       const float* point) {
  if (dataset->dim() == 0) {
    return util::Status::InvalidArgument(
        "cannot append to a dense dataset without a dimension");
  }
  static thread_local std::vector<float> buffer;
  buffer.assign(point, point + dataset->dim());
  dataset->Append(buffer);
  return util::Status::Ok();
}
inline util::Status AppendDatasetPoint(data::BinaryDataset* dataset,
                                       const uint64_t* code) {
  if (dataset->width_bits() == 0) {
    return util::Status::InvalidArgument(
        "cannot append to a binary dataset without a code width");
  }
  static thread_local std::vector<uint64_t> buffer;
  buffer.assign(code, code + dataset->words_per_code());
  dataset->Append(buffer.data());
  return util::Status::Ok();
}
inline util::Status AppendDatasetPoint(data::SparseDataset* dataset,
                                       std::span<const uint32_t> point) {
  static thread_local std::vector<uint32_t> buffer;
  buffer.assign(point.begin(), point.end());
  return dataset->Append(buffer);
}

/// Fixed-capacity, insert-only chained-hash log over L tables: the active
/// segment of a SegmentedIndex. One writer appends entries; any number of
/// readers walk buckets concurrently with no locks.
///
/// Layout: per table t, entry i stores its bucket key at keys_[t*cap + i]
/// and a chain link at next_[t*cap + i]; bucket heads are atomic entry
/// indexes. The writer fills an entry's id, keys, and links, then
/// release-stores each table's bucket head — a reader that acquires a head
/// therefore sees every field of every entry on the chain. Chains list
/// entries in descending insertion order, so a reader bounding itself to a
/// count snapshot skips newer entries and never reads a slot that is still
/// being filled. All storage is allocated up front (capacity entries), so
/// appends never reallocate under readers.
class ActiveLshLog {
 public:
  ActiveLshLog(size_t num_tables, size_t capacity)
      : num_tables_(num_tables), capacity_(capacity) {
    HLSH_CHECK(num_tables >= 1 && capacity >= 1);
    size_t buckets = 8;
    while (buckets < 2 * capacity) buckets *= 2;
    buckets_per_table_ = buckets;
    bucket_mask_ = buckets - 1;
    keys_.resize(num_tables * capacity);
    next_.resize(num_tables * capacity);
    ids_.resize(capacity);
    heads_ = std::make_unique<std::atomic<int32_t>[]>(num_tables * buckets);
    for (size_t i = 0; i < num_tables * buckets; ++i) {
      heads_[i].store(-1, std::memory_order_relaxed);
    }
  }

  ActiveLshLog(const ActiveLshLog&) = delete;
  ActiveLshLog& operator=(const ActiveLshLog&) = delete;

  size_t capacity() const { return capacity_; }
  size_t num_tables() const { return num_tables_; }
  bool full() const { return size() >= capacity_; }

  /// Published entry count (relaxed; monotone under one writer).
  size_t size() const { return count_.load(std::memory_order_relaxed); }
  /// Published entry count; entries below it are fully visible afterwards.
  size_t size_acquire() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Appends one entry (id + its L bucket keys). Writer-only; requires
  /// !full(). Readers see the entry through the bucket heads (release) and
  /// the count (release).
  void Append(std::span<const uint64_t> keys, uint32_t id) {
    const size_t i = count_.load(std::memory_order_relaxed);
    HLSH_DCHECK(i < capacity_ && keys.size() == num_tables_);
    ids_[i] = id;
    for (size_t t = 0; t < num_tables_; ++t) {
      keys_[t * capacity_ + i] = keys[t];
    }
    for (size_t t = 0; t < num_tables_; ++t) {
      std::atomic<int32_t>& head = heads_[BucketSlot(t, keys[t])];
      next_[t * capacity_ + i] = head.load(std::memory_order_relaxed);
      head.store(static_cast<int32_t>(i), std::memory_order_release);
    }
    count_.store(i + 1, std::memory_order_release);
  }

  /// id of entry i (i below a count snapshot).
  uint32_t id(size_t i) const { return ids_[i]; }
  /// Bucket key of entry i in table t.
  uint64_t key(size_t t, size_t i) const { return keys_[t * capacity_ + i]; }

  /// Alg. 2 estimate contribution over entries [0, limit): adds probed
  /// collision counts and folds probed ids into *scratch (active buckets
  /// have no sketches — §3.2 on-demand folding). Mirrors
  /// lsh::AccumulateProbe's multi-probe dedup.
  void AccumulateProbe(std::span<const uint64_t> keys, size_t limit,
                       hll::HyperLogLog* scratch, uint64_t* collisions) const {
    const size_t probes_per_table = keys.size() / num_tables_;
    for (size_t p = 0; p < keys.size(); ++p) {
      const size_t t = p / probes_per_table;
      if (lsh::IsRepeatedProbe(keys, t * probes_per_table, p)) continue;
      ForEachInBucket(t, keys[p], limit, [&](uint32_t id) {
        ++*collisions;
        scratch->AddPoint(id);
      });
    }
  }

  /// AccumulateProbe over a precomputed plan: per-table keys are already
  /// unique, so the walk is a straight replay with no dedup rescans.
  void AccumulateProbe(const lsh::ProbePlan& plan, size_t limit,
                       hll::HyperLogLog* scratch, uint64_t* collisions) const {
    HLSH_DCHECK(plan.num_tables() == num_tables_);
    for (size_t t = 0; t < num_tables_; ++t) {
      for (const uint64_t key : plan.TableKeys(t)) {
        ForEachInBucket(t, key, limit, [&](uint32_t id) {
          ++*collisions;
          scratch->AddPoint(id);
        });
      }
    }
  }

  /// S2 over entries [0, limit): dedups probed live ids into *visited and
  /// returns the collision count. Mirrors lsh::CollectProbedIds.
  uint64_t CollectProbedIds(std::span<const uint64_t> keys, size_t limit,
                            util::VisitedSet* visited,
                            const util::BitVector* tombstones) const {
    uint64_t collisions = 0;
    const size_t probes_per_table = keys.size() / num_tables_;
    for (size_t p = 0; p < keys.size(); ++p) {
      const size_t t = p / probes_per_table;
      if (lsh::IsRepeatedProbe(keys, t * probes_per_table, p)) continue;
      ForEachInBucket(t, keys[p], limit, [&](uint32_t id) {
        ++collisions;
        if (tombstones == nullptr || !tombstones->TestAcquire(id)) {
          visited->Insert(id);
        }
      });
    }
    return collisions;
  }

  /// CollectProbedIds over a precomputed plan (no dedup rescans).
  uint64_t CollectProbedIds(const lsh::ProbePlan& plan, size_t limit,
                            util::VisitedSet* visited,
                            const util::BitVector* tombstones) const {
    HLSH_DCHECK(plan.num_tables() == num_tables_);
    uint64_t collisions = 0;
    for (size_t t = 0; t < num_tables_; ++t) {
      for (const uint64_t key : plan.TableKeys(t)) {
        ForEachInBucket(t, key, limit, [&](uint32_t id) {
          ++collisions;
          if (tombstones == nullptr || !tombstones->TestAcquire(id)) {
            visited->Insert(id);
          }
        });
      }
    }
    return collisions;
  }

  /// Heap bytes of the log's fixed storage.
  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(uint64_t) +
           next_.capacity() * sizeof(int32_t) +
           ids_.capacity() * sizeof(uint32_t) +
           num_tables_ * buckets_per_table_ * sizeof(std::atomic<int32_t>);
  }

 private:
  size_t BucketSlot(size_t t, uint64_t key) const {
    // Keys are already avalanched 64-bit hashes (lsh::SignatureKey); fold
    // the high half in so masking stays well distributed.
    return t * buckets_per_table_ +
           (static_cast<size_t>(key ^ (key >> 32)) & bucket_mask_);
  }

  /// Calls fn(id) for every entry with this bucket key in table t whose
  /// insertion index is below `limit`.
  template <typename Fn>
  void ForEachInBucket(size_t t, uint64_t key, size_t limit, Fn&& fn) const {
    const size_t base = t * capacity_;
    for (int32_t i =
             heads_[BucketSlot(t, key)].load(std::memory_order_acquire);
         i >= 0; i = next_[base + static_cast<size_t>(i)]) {
      const size_t entry = static_cast<size_t>(i);
      if (entry >= limit) continue;  // appended after the caller's snapshot
      if (keys_[base + entry] == key) fn(ids_[entry]);
    }
  }

  size_t num_tables_;
  size_t capacity_;
  size_t buckets_per_table_ = 0;
  size_t bucket_mask_ = 0;
  std::vector<uint64_t> keys_;  // [t * capacity + i]
  std::vector<int32_t> next_;   // [t * capacity + i]
  std::vector<uint32_t> ids_;   // [i]
  std::unique_ptr<std::atomic<int32_t>[]> heads_;  // [t * buckets + slot]
  std::atomic<size_t> count_{0};
};

/// A frozen segment: L CSR tables with sketches plus its live-at-seal id
/// list (ascending; later tombstones are filtered on read). Immutable once
/// published in a SegmentListView.
struct LshSegment {
  std::vector<lsh::LshTable> tables;
  std::vector<uint32_t> ids;

  size_t MemoryBytes() const {
    size_t total = ids.capacity() * sizeof(uint32_t);
    for (const lsh::LshTable& table : tables) total += table.MemoryBytes();
    return total;
  }
};

/// The epoch-published segment list: an immutable snapshot of which
/// segments and logs exist. Readers hold it by shared_ptr (the epoch);
/// writers install a new list and the old one is reclaimed when the last
/// reader drains.
struct SegmentListView {
  std::vector<std::shared_ptr<const LshSegment>> sealed;
  /// Filled logs awaiting a seal pass, oldest first. Queried as-is.
  std::vector<std::shared_ptr<const ActiveLshLog>> frozen;
  /// The log the writer currently appends to (never null; entries keep
  /// appearing in it after this view is published — readers bound
  /// themselves by a count snapshot).
  std::shared_ptr<const ActiveLshLog> active;
};

/// Mutable LSH index over a (possibly growing) dataset (see file comment).
///
/// Exposes the same query surface as LshIndex — QueryKeys,
/// QueryKeysMultiProbe, EstimateProbe, CollectCandidates, Distance, size(),
/// MakeScratchSketch() — so core::HybridSearcher and the sharded fan-out
/// run over either, plus the lifecycle surface: Insert, Remove, Compact,
/// live_size, ForEachLiveId. The convenience query methods acquire a fresh
/// snapshot per call; the engine's lock-free path acquires one
/// SegmentSnapshot per query instead (Acquire()).
template <typename Family,
          typename Dataset =
              typename DefaultDataset<typename Family::Point>::type>
class SegmentedIndex {
 public:
  using Point = typename Family::Point;
  using IndexOptions = typename lsh::LshIndex<Family>::Options;

  struct Options {
    /// Table count, k / delta / radius, HLL precision, seed, build threads.
    /// `id_base` is ignored — the covered range is given to Build directly.
    IndexOptions index;
    /// The active log freezes (and, by default, seals) at this many points.
    /// Smaller = cheaper estimates sooner; larger = cheaper ingest.
    size_t active_seal_threshold = 4096;
    /// Compaction triggers when a seal pushes the sealed-segment count past
    /// this. 0 disables auto-compaction (call Compact yourself).
    size_t max_sealed_segments = 4;
  };

  /// Lifecycle observability. All counters are atomic snapshots — safe to
  /// read while writers and maintenance run.
  struct LifecycleStats {
    size_t live_points = 0;      // reported by queries
    size_t indexed_points = 0;   // live + tombstoned-but-not-yet-compacted
    size_t active_points = 0;    // in the active log
    size_t pending_seal_logs = 0;  // frozen logs awaiting a seal pass
    size_t sealed_segments = 0;
    size_t tombstones = 0;       // dead ids still occupying buckets
    size_t compactions = 0;      // lifetime count
    double last_compact_seconds = 0.0;
    size_t memory_bytes = 0;
  };

  /// A consistent, immutable handle on the index for one query: the
  /// segment list view plus a count snapshot of the (still-growing) active
  /// log and the id bound every contained id is below. Acquiring is one
  /// atomic shared_ptr load; all query methods on it are lock-free and safe
  /// concurrently with Insert/Remove/maintenance.
  class SegmentSnapshot {
   public:
    /// Sums the Alg. 2 lines 1-2 estimate across every segment: collisions
    /// exactly, candSize from ONE merged HLL (sketches from sealed
    /// buckets, on-demand folding for small/active buckets). Tombstoned
    /// ids are still counted — apply CostModel::TombstoneCorrection with
    /// live_fraction() before comparing against the linear cost.
    lsh::ProbeEstimate EstimateProbe(std::span<const uint64_t> keys,
                                     hll::HyperLogLog* scratch) const {
      scratch->Clear();
      lsh::ProbeEstimate estimate;
      for (const auto& segment : view_->sealed) {
        lsh::AccumulateProbe<lsh::LshTable>(segment->tables, keys, scratch,
                                            &estimate.collisions);
      }
      for (const auto& log : view_->frozen) {
        log->AccumulateProbe(keys, log->size_acquire(), scratch,
                             &estimate.collisions);
      }
      if (active_count_ > 0) {
        view_->active->AccumulateProbe(keys, active_count_, scratch,
                                       &estimate.collisions);
      }
      estimate.cand_estimate =
          estimate.collisions == 0 ? 0.0 : scratch->Estimate();
      return estimate;
    }

    /// EstimateProbe over a precomputed plan (hash-once path): the same
    /// summed estimate, replaying one ProbePlan against every segment.
    lsh::ProbeEstimate EstimateProbe(const lsh::ProbePlan& plan,
                                     hll::HyperLogLog* scratch) const {
      scratch->Clear();
      lsh::ProbeEstimate estimate;
      for (const auto& segment : view_->sealed) {
        lsh::AccumulateProbe<lsh::LshTable>(segment->tables, plan, scratch,
                                            &estimate.collisions);
      }
      for (const auto& log : view_->frozen) {
        log->AccumulateProbe(plan, log->size_acquire(), scratch,
                             &estimate.collisions);
      }
      if (active_count_ > 0) {
        view_->active->AccumulateProbe(plan, active_count_, scratch,
                                       &estimate.collisions);
      }
      estimate.cand_estimate =
          estimate.collisions == 0 ? 0.0 : scratch->Estimate();
      return estimate;
    }

    /// S2 across every segment. Tombstoned ids count as collisions (their
    /// probe cost was paid) but are never inserted, so S3 only verifies
    /// live candidates.
    uint64_t CollectCandidates(std::span<const uint64_t> keys,
                               util::VisitedSet* visited) const {
      uint64_t collisions = 0;
      for (const auto& segment : view_->sealed) {
        collisions += lsh::CollectProbedIds<lsh::LshTable>(
            segment->tables, keys, visited, tombstones_);
      }
      for (const auto& log : view_->frozen) {
        collisions += log->CollectProbedIds(keys, log->size_acquire(),
                                            visited, tombstones_);
      }
      if (active_count_ > 0) {
        collisions += view_->active->CollectProbedIds(keys, active_count_,
                                                      visited, tombstones_);
      }
      return collisions;
    }

    /// S2 over a precomputed plan (hash-once path).
    uint64_t CollectCandidates(const lsh::ProbePlan& plan,
                               util::VisitedSet* visited) const {
      uint64_t collisions = 0;
      for (const auto& segment : view_->sealed) {
        collisions += lsh::CollectProbedIds<lsh::LshTable>(
            segment->tables, plan, visited, tombstones_);
      }
      for (const auto& log : view_->frozen) {
        collisions += log->CollectProbedIds(plan, log->size_acquire(),
                                            visited, tombstones_);
      }
      if (active_count_ > 0) {
        collisions += view_->active->CollectProbedIds(plan, active_count_,
                                                      visited, tombstones_);
      }
      return collisions;
    }

    /// Calls fn(id) for every live id in the snapshot (linear-scan
    /// support; segment order, ascending within a sealed segment).
    template <typename Fn>
    void ForEachLiveId(Fn&& fn) const {
      for (const auto& segment : view_->sealed) {
        for (const uint32_t id : segment->ids) {
          if (!tombstones_->TestAcquire(id)) fn(id);
        }
      }
      for (const auto& log : view_->frozen) {
        const size_t n = log->size_acquire();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t id = log->id(i);
          if (!tombstones_->TestAcquire(id)) fn(id);
        }
      }
      for (size_t i = 0; i < active_count_; ++i) {
        const uint32_t id = view_->active->id(i);
        if (!tombstones_->TestAcquire(id)) fn(id);
      }
    }

    /// ForEachLiveId through a pushdown filter: fn(id) for every live id
    /// whose bit is set in `filter` (ids at or past the filter's bound
    /// fail — the filter was built over the id space visible when the
    /// query started). Emission order is exactly ForEachLiveId's with
    /// non-survivors skipped — a subsequence — which is what makes
    /// filtered linear scans bit-identical to post-filtered ones.
    template <typename Fn>
    void ForEachLiveIdFiltered(const util::BitVector& filter,
                               Fn&& fn) const {
      const size_t bound = filter.size();
      ForEachLiveId([&](uint32_t id) {
        if (id < bound && filter.Get(id)) fn(id);
      });
    }

    /// Every id visible through this snapshot is below this bound (sizes a
    /// VisitedSet / result buffer).
    size_t id_bound() const { return id_bound_; }

    /// True when the snapshot holds no indexed ids at all.
    bool empty() const {
      return view_->sealed.empty() && view_->frozen.empty() &&
             active_count_ == 0;
    }

    const SegmentListView& view() const { return *view_; }
    size_t active_count() const { return active_count_; }

   private:
    friend class SegmentedIndex;
    std::shared_ptr<const SegmentListView> view_;
    const util::BitVector* tombstones_ = nullptr;
    size_t active_count_ = 0;
    size_t id_bound_ = 0;
  };

  /// Builds an index whose initial sealed segment covers the `count` points
  /// of *dataset starting at `base` (global ids [base, base + count), the
  /// existing offset-build path). count == 0 starts empty — the streaming-
  /// from-zero case. The dataset is retained by pointer; pass the same
  /// pointer to EnableUpdates to allow Insert.
  ///
  /// `shared_tombstones` lets several indexes over one dataset (the shards
  /// of a ShardedEngine) share a single delete bitmap instead of each
  /// holding a dataset-sized one; nullptr makes the index own its bitmap.
  /// A shared bitmap must outlive every index using it, and ids must be
  /// routed so that one index owns each id (tombstone *counts* stay
  /// per-index).
  static util::StatusOr<SegmentedIndex> Build(
      Family family, const Dataset* dataset, size_t base, size_t count,
      const Options& options, util::BitVector* shared_tombstones = nullptr) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    if (base + count > dataset->size()) {
      return util::Status::InvalidArgument(
          "segment range exceeds the dataset");
    }
    if (options.index.hll_precision < hll::HyperLogLog::kMinPrecision ||
        options.index.hll_precision > hll::HyperLogLog::kMaxPrecision) {
      return util::Status::InvalidArgument("hll_precision out of range");
    }
    if (dataset->size() > static_cast<size_t>(UINT32_MAX)) {
      return util::Status::InvalidArgument("dataset exceeds 2^32-1 points");
    }

    auto functions = lsh::FunctionSet<Family>::Sample(
        std::move(family), options.index.num_tables, options.index.k,
        options.index.delta, options.index.radius, options.index.seed);
    if (!functions.ok()) return functions.status();

    SegmentedIndex index(std::move(*functions));
    index.dataset_ = dataset;
    index.options_ = options;
    index.id_base_ = static_cast<uint32_t>(base);
    index.initial_count_ = count;
    index.build_n_ = dataset->size();
    index.table_options_.hll_precision = options.index.hll_precision;
    index.table_options_.small_bucket_threshold =
        options.index.small_bucket_threshold;
    if (shared_tombstones != nullptr) {
      index.tombstones_ = shared_tombstones;
    } else {
      index.owned_tombstones_ = std::make_unique<util::BitVector>();
      index.tombstones_ = index.owned_tombstones_.get();
    }
    index.tombstones_->Grow(dataset->size());

    auto view = std::make_shared<SegmentListView>();
    if (count > 0) {
      auto segment = std::make_shared<LshSegment>();
      segment->tables.resize(static_cast<size_t>(options.index.num_tables));
      lsh::LshTable::Options table_options = index.table_options_;
      table_options.id_base = static_cast<uint32_t>(base);
      util::ParallelFor(
          0, segment->tables.size(), options.index.num_build_threads,
          [&](size_t t) {
            std::vector<int32_t> slots;
            std::vector<uint64_t> keys(count);
            for (size_t i = 0; i < count; ++i) {
              keys[i] = index.functions_.SignatureKey(
                  dataset->point(base + i), t, &slots);
            }
            segment->tables[t].Build(keys, table_options);
          });
      segment->ids.resize(count);
      for (size_t i = 0; i < count; ++i) {
        segment->ids[i] = static_cast<uint32_t>(base + i);
      }
      view->sealed.push_back(std::move(segment));
      index.live_dead_.store(static_cast<uint64_t>(count) * kLiveOne,
                             std::memory_order_relaxed);
    }
    view->active = index.MakeLog();
    index.active_writer_ = const_cast<ActiveLshLog*>(view->active.get());
    {
      std::lock_guard<std::mutex> lock(index.sync_->publish_mu);
      index.PublishViewLocked(std::move(view));
    }
    return index;
  }

  SegmentedIndex(const SegmentedIndex&) = delete;
  SegmentedIndex& operator=(const SegmentedIndex&) = delete;

  // Moves are build-time operations: neither operand may be under
  // concurrent access (StatusOr plumbing and engine assembly).
  SegmentedIndex(SegmentedIndex&& other) noexcept
      : dataset_(other.dataset_),
        mutable_dataset_(other.mutable_dataset_),
        options_(std::move(other.options_)),
        functions_(std::move(other.functions_)),
        table_options_(other.table_options_),
        active_writer_(other.active_writer_),
        sync_(std::move(other.sync_)),
        owned_tombstones_(std::move(other.owned_tombstones_)),
        tombstones_(owned_tombstones_ != nullptr ? owned_tombstones_.get()
                                                 : other.tombstones_),
        deferred_maintenance_(other.deferred_maintenance_),
        id_base_(other.id_base_),
        initial_count_(other.initial_count_),
        build_n_(other.build_n_) {
    view_ = std::move(other.view_);
    view_version_.store(
        other.view_version_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    live_dead_.store(other.live_dead_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    compactions_.store(other.compactions_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    last_compact_seconds_.store(
        other.last_compact_seconds_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    maintenance_inflight_.store(false, std::memory_order_relaxed);
  }
  SegmentedIndex& operator=(SegmentedIndex&& other) noexcept {
    if (this != &other) {
      this->~SegmentedIndex();
      new (this) SegmentedIndex(std::move(other));
    }
    return *this;
  }

  /// Arms Insert: `dataset` must be the pointer Build was given. Separated
  /// from Build so read-only callers can keep handing out const datasets.
  util::Status EnableUpdates(Dataset* dataset) {
    if (dataset != dataset_) {
      return util::Status::InvalidArgument(
          "mutable dataset does not match the indexed dataset");
    }
    mutable_dataset_ = dataset;
    return util::Status::Ok();
  }
  bool updates_enabled() const { return mutable_dataset_ != nullptr; }

  /// Deferred mode hands freeze-triggered seal/compaction to an external
  /// driver (ShardedEngine's background workers) instead of running them
  /// inline: Insert only swaps logs, and the caller polls
  /// needs_maintenance() / calls RunMaintenance(). Inline mode (default)
  /// preserves the synchronous standalone behavior.
  void SetDeferredMaintenance(bool deferred) {
    deferred_maintenance_ = deferred;
  }

  /// Whether background work is pending: frozen logs to seal, or a sealed
  /// segment count past the compaction watermark.
  bool needs_maintenance() const {
    const auto view = AcquireViewPtr();
    return !view->frozen.empty() ||
           (options_.max_sealed_segments > 0 &&
            view->sealed.size() > options_.max_sealed_segments);
  }

  /// One maintenance pass: seals every frozen log, then compacts if the
  /// sealed count exceeds the watermark. Safe concurrently with readers
  /// and with the (externally serialized) writer; at most one maintenance
  /// pass may run at a time per index (callers rate-limit — ShardedEngine
  /// keeps one in flight per shard).
  void RunMaintenance() {
    std::lock_guard<std::mutex> lock(sync_->maintenance_mu);
    SealFrozenLocked();
    if (options_.max_sealed_segments > 0 &&
        AcquireViewPtr()->sealed.size() > options_.max_sealed_segments) {
      CompactLocked();
    }
  }

  /// True while an engine-scheduled maintenance task is queued or running
  /// (the engine's one-in-flight rate limit; not used by the index itself).
  std::atomic<bool>& maintenance_inflight() const {
    return maintenance_inflight_;
  }

  /// Appends the point to the dataset and indexes it in the active log.
  /// Returns the new global id. At the seal threshold the log is frozen
  /// and — unless deferred maintenance is armed — sealed (and maybe
  /// compacted) inline.
  util::StatusOr<uint32_t> Insert(Point point) {
    if (mutable_dataset_ == nullptr) {
      return util::Status::FailedPrecondition(
          "index is read-only: EnableUpdates was not called with the "
          "mutable dataset");
    }
    if (dataset_->size() >= static_cast<size_t>(UINT32_MAX) + 1) {
      return util::Status::InvalidArgument(
          "dataset is at the 32-bit id limit");
    }
    const uint32_t id = static_cast<uint32_t>(dataset_->size());
    HLSH_RETURN_IF_ERROR(AppendDatasetPoint(mutable_dataset_, point));
    tombstones_->Grow(dataset_->size());
    // Hash the stored copy: `point` may alias dataset memory whose growth
    // Append just retired.
    insert_keys_.resize(functions_.num_tables());
    for (size_t t = 0; t < insert_keys_.size(); ++t) {
      insert_keys_[t] =
          functions_.SignatureKey(dataset_->point(id), t, &insert_slots_);
    }
    active_writer_->Append(insert_keys_, id);
    live_dead_.fetch_add(kLiveOne, std::memory_order_relaxed);
    if (active_writer_->full()) {
      FreezeActive();
      if (!deferred_maintenance_) {
        RunMaintenance();
      } else if (AcquireViewPtr()->frozen.size() >= kMaxFrozenLogs) {
        // Backpressure: the background driver is not keeping up; seal one
        // log on the ingest thread so frozen logs stay bounded.
        std::lock_guard<std::mutex> lock(sync_->maintenance_mu);
        SealFrozenLocked();
      }
    }
    return id;
  }

  /// Tombstones one id this index owns. Ids below the dataset size at
  /// Build must fall in the initial [base, base + count) range; later ids
  /// were inserted through *some* index over this dataset, and the caller
  /// routes them to the owning one (ShardedEngine::Remove does). Removing
  /// an already-dead id is a no-op. Safe concurrently with readers and
  /// maintenance (release-ordered tombstone set).
  util::Status Remove(uint32_t id) {
    tombstones_->Grow(dataset_->size());
    if (id >= tombstones_->size()) {
      return util::Status::InvalidArgument("id out of range");
    }
    if (id < build_n_ &&
        (id < id_base_ || id >= id_base_ + initial_count_)) {
      return util::Status::InvalidArgument(
          "id is not in this index's initial range");
    }
    if (tombstones_->Get(id)) return util::Status::Ok();
    tombstones_->SetConcurrent(id);
    // One RMW moves the id from live to dead: a concurrent live_stats()
    // load sees both fields change together (unsigned wrap subtracts the
    // high half cleanly — the fields cannot borrow into each other while
    // live > 0, which Remove guarantees for an untombstoned owned id).
    live_dead_.fetch_add(kDeadOne - kLiveOne, std::memory_order_relaxed);
    return util::Status::Ok();
  }

  /// Freezes the active log and seals every frozen log into CSR segments
  /// (public so callers can force sketches into existence before a
  /// read-heavy phase, and the precondition for SaveTo).
  void SealActive() {
    FreezeActive();
    std::lock_guard<std::mutex> lock(sync_->maintenance_mu);
    SealFrozenLocked();
  }

  /// Merges all sealed segments (sealing the active/frozen logs first)
  /// into one fresh sealed segment, dropping tombstoned ids and rebuilding
  /// sketches. Entries are exported and regrouped — no point is rehashed.
  void Compact() {
    FreezeActive();
    std::lock_guard<std::mutex> lock(sync_->maintenance_mu);
    SealFrozenLocked();
    CompactLocked();
  }

  // --- Lock-free query surface. ------------------------------------------

  /// Acquires a consistent snapshot for one query (one atomic shared_ptr
  /// load plus two count loads).
  SegmentSnapshot Acquire() const {
    SegmentSnapshot snapshot;
    snapshot.view_ = AcquireViewPtr();
    snapshot.tombstones_ = tombstones_;
    snapshot.active_count_ = snapshot.view_->active->size_acquire();
    // Read the dataset size AFTER the count acquires above: every id
    // published into the snapshot was appended to the dataset first, so
    // this load is guaranteed to cover them.
    snapshot.id_bound_ = dataset_->size();
    return snapshot;
  }

  /// Monotone counter bumped on every segment-list publication; callers
  /// may cache a SegmentSnapshot and re-acquire only when this changes
  /// (ShardedEngine's per-scratch view cache).
  uint64_t view_version() const {
    return view_version_.load(std::memory_order_acquire);
  }

  /// Acquire() with a caller-held cache: the shared_ptr load (an atomic RMW
  /// on the refcount, plus a library-internal lock in libstdc++'s
  /// atomic<shared_ptr>) only happens when the segment list actually
  /// changed, so a steady-state query costs two plain atomic loads. The
  /// version is read BEFORE the view, so a publication racing this call can
  /// only make the cache conservatively stale (re-acquired next call),
  /// never wrongly fresh. Counts are refreshed every call — the active log
  /// grows without a version bump.
  void AcquireCached(SegmentSnapshot* snapshot,
                     uint64_t* cached_version) const {
    const uint64_t version = view_version();
    if (snapshot->view_ == nullptr || *cached_version != version) {
      snapshot->view_ = AcquireViewPtr();
      snapshot->tombstones_ = tombstones_;
      *cached_version = version;
    }
    snapshot->active_count_ = snapshot->view_->active->size_acquire();
    snapshot->id_bound_ = dataset_->size();
  }

  void QueryKeys(Point query, std::vector<uint64_t>* keys) const {
    functions_.QueryKeys(query, keys);
  }
  util::Status QueryKeysMultiProbe(Point query, size_t probes_per_table,
                                   std::vector<uint64_t>* keys) const {
    return functions_.QueryKeysMultiProbe(query, probes_per_table, keys);
  }

  /// S1, hash-once form (see lsh::FunctionSet::ComputePlan). The plan is
  /// valid for every snapshot of this index — segments share the one
  /// FunctionSet — and for any other index sampled with the same
  /// (family, num_tables, k, seed).
  util::Status ComputePlan(Point query, size_t probes_per_table,
                           lsh::PlanScratch* scratch,
                           lsh::ProbePlan* plan) const {
    return functions_.ComputePlan(query, probes_per_table, scratch, plan);
  }
  util::Status ComputePlanBatch(const Point* queries, size_t count,
                                size_t probes_per_table,
                                lsh::PlanScratch* scratch,
                                lsh::ProbePlan* plans) const {
    return functions_.ComputePlanBatch(queries, count, probes_per_table,
                                       scratch, plans);
  }

  /// Convenience wrappers over Acquire() — one snapshot per call, so two
  /// calls may see different epochs; use Acquire() directly when one query
  /// must estimate and collect against the same snapshot.
  lsh::ProbeEstimate EstimateProbe(std::span<const uint64_t> keys,
                                   hll::HyperLogLog* scratch) const {
    HLSH_DCHECK(scratch->precision() == options_.index.hll_precision);
    return Acquire().EstimateProbe(keys, scratch);
  }

  uint64_t CollectCandidates(std::span<const uint64_t> keys,
                             util::VisitedSet* visited) const {
    return Acquire().CollectCandidates(keys, visited);
  }

  template <typename Fn>
  void ForEachLiveId(Fn&& fn) const {
    Acquire().ForEachLiveId(std::forward<Fn>(fn));
  }

  bool is_live(uint32_t id) const {
    return id >= tombstones_->size() || !tombstones_->TestAcquire(id);
  }

  double Distance(Point a, Point b) const {
    return functions_.family().Distance(a, b);
  }
  const Family& family() const { return functions_.family(); }
  const lsh::FunctionSet<Family>& functions() const { return functions_; }
  int k() const { return functions_.k(); }
  int num_tables() const {
    return static_cast<int>(functions_.num_tables());
  }
  uint32_t id_base() const { return id_base_; }
  int hll_precision() const { return options_.index.hll_precision; }
  const Options& options() const { return options_; }

  /// Coherent (live, indexed) pair from ONE atomic load — both counters
  /// are packed in a single word, so concurrent Insert/Remove can never
  /// tear the pair apart. This is what the engine's decision sites read.
  core::LiveStats live_stats() const {
    const uint64_t packed = live_dead_.load(std::memory_order_relaxed);
    const size_t live = static_cast<size_t>(packed >> 32);
    const size_t dead = static_cast<size_t>(packed & 0xFFFFFFFFu);
    return core::LiveStats{live, live + dead};
  }

  /// Live points — what a query can report. Atomic counter reads.
  size_t size() const { return live_stats().live; }
  size_t live_size() const { return size(); }
  /// Live + dead ids still occupying buckets.
  size_t indexed_size() const { return live_stats().indexed; }
  /// Fraction of indexed ids that are live (1.0 right after compaction).
  double live_fraction() const { return live_stats().fraction(); }

  hll::HyperLogLog MakeScratchSketch() const {
    return hll::HyperLogLog(options_.index.hll_precision);
  }

  // --- Snapshot persistence (engine/snapshot.h). -------------------------
  // SaveTo/LoadFrom carry only what this index owns: range bookkeeping,
  // counters, and the sealed segments (CSR tables + sketches + id lists).
  // The FunctionSet, dataset, tombstones, and Options travel once at the
  // engine level and are handed back to LoadFrom — that is what makes a
  // multi-shard snapshot O(1) in hash functions instead of O(S).

  /// Appends this index's segments and counters to the writer. The active
  /// and frozen logs must be empty — callers SealActive() first (with
  /// writers and maintenance quiesced), so a snapshot is pure CSR and the
  /// restored index answers queries through sketches identical to the live
  /// sealed ones.
  util::Status SaveTo(util::ByteWriter* writer) const {
    const auto view = AcquireViewPtr();
    if (view->active->size() != 0 || !view->frozen.empty()) {
      return util::Status::FailedPrecondition(
          "seal the active segment before snapshotting");
    }
    const core::LiveStats live = live_stats();
    writer->WriteU32(id_base_);
    writer->WriteU64(initial_count_);
    writer->WriteU64(build_n_);
    writer->WriteU64(live.live);
    writer->WriteU64(live.indexed - live.live);
    writer->WriteU64(view->sealed.size());
    for (const auto& segment : view->sealed) {
      writer->WriteU64(segment->tables.size());
      for (const lsh::LshTable& table : segment->tables) {
        table.Serialize(writer);
      }
      writer->WriteU64(segment->ids.size());
      writer->WriteArray<uint32_t>(segment->ids);
    }
    return util::Status::Ok();
  }

  /// Rebuilds an index from a SaveTo payload. `functions` is the engine's
  /// shared (already-loaded) FunctionSet, `dataset` the restored container,
  /// `tombstones` the engine-wide bitmap (already loaded; nullptr makes the
  /// index own an empty one, the standalone case). No hash function is
  /// evaluated and no point is read — tables and sketches reload as bytes.
  /// The live/dead counters are revalidated against the actual segment
  /// contents, so a corrupt (but checksum-passing) payload cannot smuggle
  /// in an inconsistent index.
  static util::StatusOr<SegmentedIndex> LoadFrom(
      util::ByteReader* reader, lsh::FunctionSet<Family> functions,
      const Dataset* dataset, const Options& options,
      util::BitVector* shared_tombstones = nullptr) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    if (options.index.hll_precision < hll::HyperLogLog::kMinPrecision ||
        options.index.hll_precision > hll::HyperLogLog::kMaxPrecision) {
      return util::Status::InvalidArgument("hll_precision out of range");
    }

    SegmentedIndex index(std::move(functions));
    index.dataset_ = dataset;
    index.options_ = options;
    index.table_options_.hll_precision = options.index.hll_precision;
    index.table_options_.small_bucket_threshold =
        options.index.small_bucket_threshold;
    if (shared_tombstones != nullptr) {
      index.tombstones_ = shared_tombstones;
    } else {
      index.owned_tombstones_ = std::make_unique<util::BitVector>();
      index.tombstones_ = index.owned_tombstones_.get();
    }
    index.tombstones_->Grow(dataset->size());

    uint64_t initial_count = 0, build_n = 0, num_live = 0, num_dead = 0;
    uint64_t num_segments = 0;
    HLSH_RETURN_IF_ERROR(reader->ReadU32(&index.id_base_));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&initial_count));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&build_n));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_live));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_dead));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_segments));
    if (build_n > dataset->size() ||
        static_cast<uint64_t>(index.id_base_) + initial_count > build_n ||
        num_segments > (uint64_t{1} << 20)) {
      return util::Status::DataLoss("segmented index header is invalid");
    }
    index.initial_count_ = initial_count;
    index.build_n_ = build_n;

    size_t live_seen = 0, dead_seen = 0;
    auto view = std::make_shared<SegmentListView>();
    view->sealed.reserve(num_segments);
    for (uint64_t s = 0; s < num_segments; ++s) {
      auto segment = std::make_shared<LshSegment>();
      uint64_t num_tables = 0;
      HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_tables));
      if (num_tables != index.functions_.num_tables()) {
        return util::Status::DataLoss(
            "segment table count mismatches the function set");
      }
      segment->tables.reserve(num_tables);
      for (uint64_t t = 0; t < num_tables; ++t) {
        auto table = lsh::LshTable::Deserialize(reader);
        if (!table.ok()) return table.status();
        segment->tables.push_back(std::move(*table));
      }
      uint64_t num_ids = 0;
      HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_ids));
      HLSH_RETURN_IF_ERROR(
          reader->ReadArray<uint32_t>(num_ids, &segment->ids));
      for (const uint32_t id : segment->ids) {
        if (id >= dataset->size()) {
          return util::Status::DataLoss("segment id exceeds the dataset");
        }
        if (index.tombstones_->Get(id)) {
          ++dead_seen;
        } else {
          ++live_seen;
        }
      }
      view->sealed.push_back(std::move(segment));
    }
    if (live_seen != num_live || dead_seen != num_dead) {
      return util::Status::DataLoss(
          "segment id lists disagree with the live/dead counters");
    }
    index.live_dead_.store(
        static_cast<uint64_t>(live_seen) * kLiveOne +
            static_cast<uint64_t>(dead_seen) * kDeadOne,
        std::memory_order_relaxed);
    view->active = index.MakeLog();
    index.active_writer_ = const_cast<ActiveLshLog*>(view->active.get());
    {
      std::lock_guard<std::mutex> lock(index.sync_->publish_mu);
      index.PublishViewLocked(std::move(view));
    }
    return index;
  }

  LifecycleStats lifecycle() const {
    const auto view = AcquireViewPtr();
    const core::LiveStats live = live_stats();
    LifecycleStats stats;
    stats.live_points = live.live;
    stats.indexed_points = live.indexed;
    stats.active_points = view->active->size();
    stats.pending_seal_logs = view->frozen.size();
    stats.sealed_segments = view->sealed.size();
    stats.tombstones = live.indexed - live.live;
    stats.compactions = compactions_.load(std::memory_order_relaxed);
    stats.last_compact_seconds =
        last_compact_seconds_.load(std::memory_order_relaxed);
    stats.memory_bytes = MemoryBytes();
    return stats;
  }

  size_t MemoryBytes() const {
    const auto view = AcquireViewPtr();
    size_t total = 0;
    for (const auto& segment : view->sealed) total += segment->MemoryBytes();
    for (const auto& log : view->frozen) total += log->MemoryBytes();
    total += view->active->MemoryBytes();
    if (owned_tombstones_ != nullptr) {
      total += owned_tombstones_->MemoryBytes();
    }
    return total;
  }

  /// Bytes used by HLL sketches alone (sealed segments; the active log
  /// has none by design).
  size_t SketchBytes() const {
    const auto view = AcquireViewPtr();
    size_t total = 0;
    for (const auto& segment : view->sealed) {
      for (const lsh::LshTable& table : segment->tables) {
        total += table.SketchBytes();
      }
    }
    return total;
  }

 private:
  /// Writer-side mutexes live on the heap so the index stays movable.
  /// Lock order: maintenance_mu before publish_mu (never the reverse).
  struct Sync {
    /// Serializes maintenance passes (seal/compact) against each other and
    /// against inline backpressure sealing.
    std::mutex maintenance_mu;
    /// Guards the view_ slot: every read or swap of the shared_ptr holds
    /// it, for O(list length) pointer copies at most. Writers take it on
    /// each publication; readers only when the version counter says their
    /// cached snapshot is stale (steady state never touches it).
    std::mutex publish_mu;
  };

  /// Bound on frozen logs before ingest applies backpressure (deferred
  /// maintenance mode only).
  static constexpr size_t kMaxFrozenLogs = 4;

  explicit SegmentedIndex(lsh::FunctionSet<Family> functions)
      : functions_(std::move(functions)), sync_(std::make_unique<Sync>()) {}

  std::shared_ptr<const SegmentListView> AcquireViewPtr() const {
    std::lock_guard<std::mutex> lock(sync_->publish_mu);
    return view_;
  }

  /// Requires publish_mu. The version bump is release so a reader that saw
  /// the new version (acquire) and then copies the slot under the mutex is
  /// guaranteed at least this view.
  void PublishViewLocked(std::shared_ptr<const SegmentListView> view) {
    view_ = std::move(view);
    view_version_.fetch_add(1, std::memory_order_release);
  }

  std::shared_ptr<ActiveLshLog> MakeLog() const {
    return std::make_shared<ActiveLshLog>(
        functions_.num_tables(),
        std::max<size_t>(options_.active_seal_threshold, 1));
  }

  /// Swaps a fresh active log in, moving the current one (if non-empty)
  /// onto the frozen list. Writer-thread only.
  void FreezeActive() {
    if (active_writer_ == nullptr || active_writer_->size() == 0) return;
    std::lock_guard<std::mutex> lock(sync_->publish_mu);
    auto next = std::make_shared<SegmentListView>(*view_);
    next->frozen.push_back(view_->active);
    next->active = MakeLog();
    active_writer_ = const_cast<ActiveLshLog*>(next->active.get());
    PublishViewLocked(std::move(next));
  }

  /// Seals every frozen log (oldest first) into CSR segments. Requires
  /// maintenance_mu. Builds off to the side; each install swaps the list.
  void SealFrozenLocked() {
    for (;;) {
      std::shared_ptr<const ActiveLshLog> log;
      {
        std::lock_guard<std::mutex> lock(sync_->publish_mu);
        if (view_->frozen.empty()) return;
        log = view_->frozen.front();
      }
      // Decide survival once per entry (one consistent tombstone read), so
      // the id list, the counter adjustment, and the per-table bucket
      // contents all agree even while Remove runs concurrently.
      const size_t count = log->size_acquire();
      std::vector<uint32_t> kept_ids;
      std::vector<bool> keep(count);
      kept_ids.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        const uint32_t id = log->id(i);
        keep[i] = !tombstones_->Get(id);
        if (keep[i]) kept_ids.push_back(id);
      }
      auto segment = std::make_shared<LshSegment>();
      if (!kept_ids.empty()) {
        const size_t num_tables = log->num_tables();
        segment->tables.resize(num_tables);
        std::vector<uint64_t> keys;
        keys.reserve(kept_ids.size());
        for (size_t t = 0; t < num_tables; ++t) {
          keys.clear();
          for (size_t i = 0; i < count; ++i) {
            if (keep[i]) keys.push_back(log->key(t, i));
          }
          segment->tables[t].BuildFromEntries(keys, kept_ids,
                                              table_options_);
        }
        segment->ids = std::move(kept_ids);
      }
      const size_t dead_dropped = count - segment->ids.size();
      {
        std::lock_guard<std::mutex> lock(sync_->publish_mu);
        auto next = std::make_shared<SegmentListView>(*view_);
        // The sealed log is the oldest frozen entry; only maintenance
        // removes frozen logs, and maintenance_mu is held.
        HLSH_CHECK(!next->frozen.empty() && next->frozen.front() == log);
        next->frozen.erase(next->frozen.begin());
        if (!segment->ids.empty()) {
          next->sealed.push_back(std::move(segment));
        }
        PublishViewLocked(std::move(next));
      }
      // Dead active ids leave the index here, so they stop counting
      // against the estimate correction.
      live_dead_.fetch_sub(dead_dropped * kDeadOne,
                           std::memory_order_relaxed);
    }
  }

  /// Merges every sealed segment into one, dropping tombstoned ids.
  /// Requires maintenance_mu. The merge reads only immutable sealed
  /// segments, off the publication path; the install swaps the list.
  void CompactLocked() {
    util::WallTimer timer;
    std::vector<std::shared_ptr<const LshSegment>> inputs;
    {
      std::lock_guard<std::mutex> lock(sync_->publish_mu);
      inputs = view_->sealed;
    }
    const size_t L = functions_.num_tables();
    auto merged = std::make_shared<LshSegment>();
    merged->tables.resize(L);
    util::ParallelFor(0, L, options_.index.num_build_threads, [&](size_t t) {
      std::vector<uint64_t> keys;
      std::vector<uint32_t> ids;
      for (const auto& segment : inputs) {
        segment->tables[t].ExportEntries(&keys, &ids, tombstones_);
      }
      merged->tables[t].BuildFromEntries(keys, ids, table_options_);
    });

    size_t input_ids = 0;
    for (const auto& segment : inputs) {
      input_ids += segment->ids.size();
      for (const uint32_t id : segment->ids) {
        if (!tombstones_->Get(id)) merged->ids.push_back(id);
      }
    }
    std::sort(merged->ids.begin(), merged->ids.end());
    const size_t dead_dropped = input_ids - merged->ids.size();

    {
      std::lock_guard<std::mutex> lock(sync_->publish_mu);
      auto next = std::make_shared<SegmentListView>(*view_);
      // Replace exactly the merged inputs; segments sealed while the merge
      // ran (they appended past the input prefix) are preserved.
      std::vector<std::shared_ptr<const LshSegment>> sealed;
      if (!merged->ids.empty()) sealed.push_back(std::move(merged));
      for (const auto& segment : next->sealed) {
        if (std::find(inputs.begin(), inputs.end(), segment) ==
            inputs.end()) {
          sealed.push_back(segment);
        }
      }
      next->sealed = std::move(sealed);
      PublishViewLocked(std::move(next));
    }
    live_dead_.fetch_sub(dead_dropped * kDeadOne, std::memory_order_relaxed);
    compactions_.fetch_add(1, std::memory_order_relaxed);
    last_compact_seconds_.store(timer.ElapsedSeconds(),
                                std::memory_order_relaxed);
  }

  const Dataset* dataset_ = nullptr;
  Dataset* mutable_dataset_ = nullptr;
  Options options_;
  lsh::FunctionSet<Family> functions_;
  lsh::LshTable::Options table_options_;

  // The epoch-published segment list (see file comment) and its version.
  // The slot is guarded by sync_->publish_mu (readers copy it only when
  // view_version_ invalidates their cached snapshot); the version counter
  // is what the lock-free fast path polls.
  std::shared_ptr<const SegmentListView> view_;
  std::atomic<uint64_t> view_version_{0};
  // Writer-side alias of view_->active (the one log Append may touch).
  ActiveLshLog* active_writer_ = nullptr;
  std::unique_ptr<Sync> sync_;

  // Tombstone bitmap over the global id space: owned when standalone,
  // engine-provided (shared by all shards) under ShardedEngine.
  std::unique_ptr<util::BitVector> owned_tombstones_;
  util::BitVector* tombstones_ = nullptr;

  // Live/dead accounting, packed live<<32 | dead in ONE atomic word so a
  // single load yields a coherent core::LiveStats (the decision inputs).
  // Invariant (up to in-flight interleavings): `dead` counts tombstoned
  // ids still present in some segment or log of this index; `live` the
  // rest. Id counts fit 32 bits by the Build/Insert guards.
  static constexpr uint64_t kLiveOne = uint64_t{1} << 32;
  static constexpr uint64_t kDeadOne = 1;
  std::atomic<uint64_t> live_dead_{0};
  std::atomic<size_t> compactions_{0};
  std::atomic<double> last_compact_seconds_{0.0};
  mutable std::atomic<bool> maintenance_inflight_{false};

  bool deferred_maintenance_ = false;
  uint32_t id_base_ = 0;
  size_t initial_count_ = 0;  // size of the initial [base, base+count) range
  size_t build_n_ = 0;        // dataset size at Build (pre-insert ids)
  std::vector<int32_t> insert_slots_;    // Insert scratch
  std::vector<uint64_t> insert_keys_;    // Insert scratch
};

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_
