// LSM-style segmented LSH index: the mutable lifecycle behind the serving
// engine.
//
// A classic LshIndex is one-shot: Build() over a frozen dataset, then
// queries forever. The per-bucket HyperLogLog sketches make in-place
// deletion impossible (HLLs merge but never subtract), so mutability needs
// an architectural answer rather than a patch. SegmentedIndex gives it the
// storage-engine shape:
//
//   inserts  -> ACTIVE segment   L hash-map tables (DynamicLshTable), no
//                                sketches; buckets fold into the query-time
//                                estimate like small buckets (§3.2);
//   seal     -> SEALED segment   the active segment frozen into L CSR
//                                LshTables with fresh HLL sketches
//                                (automatic at Options::active_seal_threshold);
//   deletes  -> TOMBSTONES       one shared BitVector over global ids; dead
//                                ids stay in their buckets (and sketches)
//                                until compaction, but are dropped before
//                                distance verification;
//   compact  -> one fresh sealed segment: every segment's surviving
//                                (key, id) entries are exported and merged
//                                (LshTable::BuildFromEntries) — no point is
//                                rehashed — and sketches are rebuilt without
//                                the dead ids.
//
// All segments share ONE FunctionSet (lsh/index.h): a point hashes to the
// same bucket key in table t no matter which segment currently stores it,
// so the union of per-segment candidate sets equals the candidate set of a
// monolithic index built over the same live points with the same seed.
// That is the lifecycle's equivalence guarantee, tested in
// tests/test_segmented_index.cc.
//
// The hybrid decision sums ProbeEstimates across segments; tombstones bias
// the estimate upward (dead ids still sit in the merged sketches), which
// core::CostModel::TombstoneCorrection subtracts before the LSH-vs-linear
// comparison.
//
// Thread-safety matches the rest of the stack: one index = one logical
// writer/reader. Insert/Remove/Compact/queries must be externally
// serialized; engine::ShardedEngine runs at most one task per shard when it
// compacts on its pool.

#ifndef HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_
#define HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "hll/hyperloglog.h"
#include "lsh/index.h"
#include "lsh/table.h"
#include "util/bit_vector.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hybridlsh {
namespace engine {

/// Default dataset container for a family's Point type (so that
/// SegmentedIndex<Family> / ShardedEngine<Family> work without naming the
/// container).
template <typename Point>
struct DefaultDataset;
template <>
struct DefaultDataset<const float*> {
  using type = data::DenseDataset;
};
template <>
struct DefaultDataset<const uint64_t*> {
  using type = data::BinaryDataset;
};
template <>
struct DefaultDataset<std::span<const uint32_t>> {
  using type = data::SparseDataset;
};

/// Appends one point to the container, matching the container's own Append
/// surface. The uniform Status signature is what SegmentedIndex::Insert
/// uses across representations. The point is staged through a thread-local
/// buffer first: callers routinely insert a point that aliases the
/// dataset's own storage (e.g. re-inserting dataset.point(i)), which the
/// growth reallocation would otherwise invalidate mid-copy.
inline util::Status AppendDatasetPoint(data::DenseDataset* dataset,
                                       const float* point) {
  if (dataset->dim() == 0) {
    return util::Status::InvalidArgument(
        "cannot append to a dense dataset without a dimension");
  }
  static thread_local std::vector<float> buffer;
  buffer.assign(point, point + dataset->dim());
  dataset->Append(buffer);
  return util::Status::Ok();
}
inline util::Status AppendDatasetPoint(data::BinaryDataset* dataset,
                                       const uint64_t* code) {
  if (dataset->width_bits() == 0) {
    return util::Status::InvalidArgument(
        "cannot append to a binary dataset without a code width");
  }
  static thread_local std::vector<uint64_t> buffer;
  buffer.assign(code, code + dataset->words_per_code());
  dataset->Append(buffer.data());
  return util::Status::Ok();
}
inline util::Status AppendDatasetPoint(data::SparseDataset* dataset,
                                       std::span<const uint32_t> point) {
  static thread_local std::vector<uint32_t> buffer;
  buffer.assign(point.begin(), point.end());
  return dataset->Append(buffer);
}

/// Mutable LSH index over a (possibly growing) dataset (see file comment).
///
/// Exposes the same query surface as LshIndex — QueryKeys,
/// QueryKeysMultiProbe, EstimateProbe, CollectCandidates, Distance, size(),
/// MakeScratchSketch() — so core::HybridSearcher and the sharded fan-out
/// run over either, plus the lifecycle surface: Insert, Remove, Compact,
/// live_size, ForEachLiveId.
template <typename Family,
          typename Dataset =
              typename DefaultDataset<typename Family::Point>::type>
class SegmentedIndex {
 public:
  using Point = typename Family::Point;
  using IndexOptions = typename lsh::LshIndex<Family>::Options;

  struct Options {
    /// Table count, k / delta / radius, HLL precision, seed, build threads.
    /// `id_base` is ignored — the covered range is given to Build directly.
    IndexOptions index;
    /// The active segment seals into a CSR+sketch segment at this many
    /// points. Smaller = cheaper estimates sooner; larger = cheaper ingest.
    size_t active_seal_threshold = 4096;
    /// Compact() runs automatically when a seal pushes the sealed-segment
    /// count past this. 0 disables auto-compaction (call Compact yourself).
    size_t max_sealed_segments = 4;
  };

  /// Lifecycle observability.
  struct LifecycleStats {
    size_t live_points = 0;      // reported by queries
    size_t indexed_points = 0;   // live + tombstoned-but-not-yet-compacted
    size_t active_points = 0;    // in the hash-map segment
    size_t sealed_segments = 0;
    size_t tombstones = 0;       // dead ids still occupying buckets
    size_t compactions = 0;      // lifetime count
    double last_compact_seconds = 0.0;
    size_t memory_bytes = 0;
  };

  /// Builds an index whose initial sealed segment covers the `count` points
  /// of *dataset starting at `base` (global ids [base, base + count), the
  /// existing offset-build path). count == 0 starts empty — the streaming-
  /// from-zero case. The dataset is retained by pointer; pass the same
  /// pointer to EnableUpdates to allow Insert.
  ///
  /// `shared_tombstones` lets several indexes over one dataset (the shards
  /// of a ShardedEngine) share a single delete bitmap instead of each
  /// holding a dataset-sized one; nullptr makes the index own its bitmap.
  /// A shared bitmap must outlive every index using it, and ids must be
  /// routed so that one index owns each id (tombstone *counts* stay
  /// per-index).
  static util::StatusOr<SegmentedIndex> Build(
      Family family, const Dataset* dataset, size_t base, size_t count,
      const Options& options, util::BitVector* shared_tombstones = nullptr) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    if (base + count > dataset->size()) {
      return util::Status::InvalidArgument(
          "segment range exceeds the dataset");
    }
    if (options.index.hll_precision < hll::HyperLogLog::kMinPrecision ||
        options.index.hll_precision > hll::HyperLogLog::kMaxPrecision) {
      return util::Status::InvalidArgument("hll_precision out of range");
    }
    if (dataset->size() > static_cast<size_t>(UINT32_MAX)) {
      return util::Status::InvalidArgument("dataset exceeds 2^32-1 points");
    }

    auto functions = lsh::FunctionSet<Family>::Sample(
        std::move(family), options.index.num_tables, options.index.k,
        options.index.delta, options.index.radius, options.index.seed);
    if (!functions.ok()) return functions.status();

    SegmentedIndex index(std::move(*functions));
    index.dataset_ = dataset;
    index.options_ = options;
    index.id_base_ = static_cast<uint32_t>(base);
    index.initial_count_ = count;
    index.build_n_ = dataset->size();
    index.table_options_.hll_precision = options.index.hll_precision;
    index.table_options_.small_bucket_threshold =
        options.index.small_bucket_threshold;
    index.active_.resize(static_cast<size_t>(options.index.num_tables));
    if (shared_tombstones != nullptr) {
      index.tombstones_ = shared_tombstones;
    } else {
      index.owned_tombstones_ = std::make_unique<util::BitVector>();
      index.tombstones_ = index.owned_tombstones_.get();
    }
    index.tombstones_->Grow(dataset->size());

    if (count > 0) {
      Segment segment;
      segment.tables.resize(static_cast<size_t>(options.index.num_tables));
      lsh::LshTable::Options table_options = index.table_options_;
      table_options.id_base = static_cast<uint32_t>(base);
      util::ParallelFor(
          0, segment.tables.size(), options.index.num_build_threads,
          [&](size_t t) {
            std::vector<int32_t> slots;
            std::vector<uint64_t> keys(count);
            for (size_t i = 0; i < count; ++i) {
              keys[i] = index.functions_.SignatureKey(
                  dataset->point(base + i), t, &slots);
            }
            segment.tables[t].Build(keys, table_options);
          });
      segment.ids.resize(count);
      for (size_t i = 0; i < count; ++i) {
        segment.ids[i] = static_cast<uint32_t>(base + i);
      }
      index.sealed_.push_back(std::move(segment));
      index.num_live_ = count;
    }
    return index;
  }

  /// Arms Insert: `dataset` must be the pointer Build was given. Separated
  /// from Build so read-only callers can keep handing out const datasets.
  util::Status EnableUpdates(Dataset* dataset) {
    if (dataset != dataset_) {
      return util::Status::InvalidArgument(
          "mutable dataset does not match the indexed dataset");
    }
    mutable_dataset_ = dataset;
    return util::Status::Ok();
  }
  bool updates_enabled() const { return mutable_dataset_ != nullptr; }

  /// Appends the point to the dataset and indexes it in the active segment.
  /// Returns the new global id. Seals (and maybe compacts) when the active
  /// segment reaches the configured threshold.
  util::StatusOr<uint32_t> Insert(Point point) {
    if (mutable_dataset_ == nullptr) {
      return util::Status::FailedPrecondition(
          "index is read-only: EnableUpdates was not called with the "
          "mutable dataset");
    }
    if (dataset_->size() >= static_cast<size_t>(UINT32_MAX) + 1) {
      return util::Status::InvalidArgument(
          "dataset is at the 32-bit id limit");
    }
    const uint32_t id = static_cast<uint32_t>(dataset_->size());
    HLSH_RETURN_IF_ERROR(AppendDatasetPoint(mutable_dataset_, point));
    tombstones_->Grow(dataset_->size());
    // Hash the stored copy: `point` may alias dataset memory that Append
    // just reallocated.
    for (size_t t = 0; t < active_.size(); ++t) {
      active_[t].Insert(
          functions_.SignatureKey(dataset_->point(id), t, &insert_slots_), id);
    }
    active_ids_.push_back(id);
    ++num_live_;
    if (active_ids_.size() >= options_.active_seal_threshold) {
      SealActive();
      if (options_.max_sealed_segments > 0 &&
          sealed_.size() > options_.max_sealed_segments) {
        Compact();
      }
    }
    return id;
  }

  /// Tombstones one id this index owns. Ids below the dataset size at
  /// Build must fall in the initial [base, base + count) range; later ids
  /// were inserted through *some* index over this dataset, and the caller
  /// routes them to the owning one (ShardedEngine::Remove does). Removing
  /// an already-dead id is a no-op.
  util::Status Remove(uint32_t id) {
    tombstones_->Grow(dataset_->size());
    if (id >= tombstones_->size()) {
      return util::Status::InvalidArgument("id out of range");
    }
    if (id < build_n_ &&
        (id < id_base_ || id >= id_base_ + initial_count_)) {
      return util::Status::InvalidArgument(
          "id is not in this index's initial range");
    }
    if (tombstones_->Get(id)) return util::Status::Ok();
    tombstones_->Set(id);
    ++num_dead_;
    --num_live_;
    return util::Status::Ok();
  }

  /// Freezes the active segment into a sealed one (public so callers can
  /// force sketches into existence before a read-heavy phase).
  void SealActive() {
    if (active_ids_.empty()) return;
    Segment segment;
    segment.tables.resize(active_.size());
    std::vector<uint64_t> keys;
    std::vector<uint32_t> ids;
    for (size_t t = 0; t < active_.size(); ++t) {
      keys.clear();
      ids.clear();
      active_[t].ExportEntries(&keys, &ids, tombstones_);
      segment.tables[t].BuildFromEntries(keys, ids, table_options_);
      active_[t].Clear();
    }
    // Active ids are ascending by construction; dead ones leave the index
    // here, so they stop counting against the estimate correction.
    for (const uint32_t id : active_ids_) {
      if (tombstones_->Get(id)) {
        --num_dead_;
      } else {
        segment.ids.push_back(id);
      }
    }
    active_ids_.clear();
    if (!segment.ids.empty()) sealed_.push_back(std::move(segment));
  }

  /// Merges the active + all sealed segments into one fresh sealed segment,
  /// dropping tombstoned ids and rebuilding sketches. Entries are exported
  /// and regrouped — no point is rehashed.
  void Compact() {
    util::WallTimer timer;
    const size_t L = active_.size();
    Segment merged;
    merged.tables.resize(L);
    util::ParallelFor(0, L, options_.index.num_build_threads, [&](size_t t) {
      std::vector<uint64_t> keys;
      std::vector<uint32_t> ids;
      for (const Segment& segment : sealed_) {
        segment.tables[t].ExportEntries(&keys, &ids, tombstones_);
      }
      active_[t].ExportEntries(&keys, &ids, tombstones_);
      merged.tables[t].BuildFromEntries(keys, ids, table_options_);
    });
    for (lsh::DynamicLshTable& table : active_) table.Clear();

    merged.ids.reserve(num_live_);
    for (const Segment& segment : sealed_) {
      for (const uint32_t id : segment.ids) {
        if (!tombstones_->Get(id)) merged.ids.push_back(id);
      }
    }
    for (const uint32_t id : active_ids_) {
      if (!tombstones_->Get(id)) merged.ids.push_back(id);
    }
    std::sort(merged.ids.begin(), merged.ids.end());
    active_ids_.clear();

    sealed_.clear();
    if (!merged.ids.empty()) sealed_.push_back(std::move(merged));
    num_dead_ = 0;
    ++compactions_;
    last_compact_seconds_ = timer.ElapsedSeconds();
  }

  // --- LshIndex-compatible query surface. --------------------------------

  void QueryKeys(Point query, std::vector<uint64_t>* keys) const {
    functions_.QueryKeys(query, keys);
  }
  util::Status QueryKeysMultiProbe(Point query, size_t probes_per_table,
                                   std::vector<uint64_t>* keys) const {
    return functions_.QueryKeysMultiProbe(query, probes_per_table, keys);
  }

  /// Sums the Alg. 2 lines 1-2 estimate across every segment: collisions
  /// exactly, candSize from ONE merged HLL (sketches from sealed buckets,
  /// on-demand folding for small/active buckets). Sketch merges and the
  /// final estimate run on the dispatched SIMD register kernels
  /// (util/simd.h), shared with the static index and every shard.
  /// Tombstoned ids are still counted — apply
  /// CostModel::TombstoneCorrection with live_fraction() before comparing
  /// against the linear cost.
  lsh::ProbeEstimate EstimateProbe(std::span<const uint64_t> keys,
                                   hll::HyperLogLog* scratch) const {
    HLSH_DCHECK(scratch->precision() == options_.index.hll_precision);
    scratch->Clear();
    lsh::ProbeEstimate estimate;
    for (const Segment& segment : sealed_) {
      lsh::AccumulateProbe<lsh::LshTable>(segment.tables, keys, scratch,
                                          &estimate.collisions);
    }
    if (!active_ids_.empty()) {
      lsh::AccumulateProbe<lsh::DynamicLshTable>(active_, keys, scratch,
                                                 &estimate.collisions);
    }
    estimate.cand_estimate =
        estimate.collisions == 0 ? 0.0 : scratch->Estimate();
    return estimate;
  }

  /// S2 across every segment. Tombstoned ids count as collisions (their
  /// probe cost was paid) but are never inserted, so S3 only verifies live
  /// candidates.
  uint64_t CollectCandidates(std::span<const uint64_t> keys,
                             util::VisitedSet* visited) const {
    uint64_t collisions = 0;
    for (const Segment& segment : sealed_) {
      collisions += lsh::CollectProbedIds<lsh::LshTable>(
          segment.tables, keys, visited, tombstones_);
    }
    if (!active_ids_.empty()) {
      collisions += lsh::CollectProbedIds<lsh::DynamicLshTable>(
          active_, keys, visited, tombstones_);
    }
    return collisions;
  }

  /// Calls fn(id) for every live id this index holds (linear-scan support;
  /// segment order, ascending within a segment).
  template <typename Fn>
  void ForEachLiveId(Fn&& fn) const {
    for (const Segment& segment : sealed_) {
      for (const uint32_t id : segment.ids) {
        if (!tombstones_->Get(id)) fn(id);
      }
    }
    for (const uint32_t id : active_ids_) {
      if (!tombstones_->Get(id)) fn(id);
    }
  }

  bool is_live(uint32_t id) const {
    return id >= tombstones_->size() || !tombstones_->Get(id);
  }

  double Distance(Point a, Point b) const {
    return functions_.family().Distance(a, b);
  }
  const Family& family() const { return functions_.family(); }
  const lsh::FunctionSet<Family>& functions() const { return functions_; }
  int k() const { return functions_.k(); }
  int num_tables() const { return static_cast<int>(active_.size()); }
  uint32_t id_base() const { return id_base_; }
  int hll_precision() const { return options_.index.hll_precision; }
  const Options& options() const { return options_; }

  /// Live points — what a query can report.
  size_t size() const { return num_live_; }
  size_t live_size() const { return num_live_; }
  /// Live + dead ids still occupying buckets.
  size_t indexed_size() const { return num_live_ + num_dead_; }
  /// Fraction of indexed ids that are live (1.0 right after compaction).
  double live_fraction() const {
    const size_t indexed = indexed_size();
    return indexed == 0 ? 1.0
                        : static_cast<double>(num_live_) /
                              static_cast<double>(indexed);
  }

  hll::HyperLogLog MakeScratchSketch() const {
    return hll::HyperLogLog(options_.index.hll_precision);
  }

  // --- Snapshot persistence (engine/snapshot.h). -------------------------
  // SaveTo/LoadFrom carry only what this index owns: range bookkeeping,
  // counters, and the sealed segments (CSR tables + sketches + id lists).
  // The FunctionSet, dataset, tombstones, and Options travel once at the
  // engine level and are handed back to LoadFrom — that is what makes a
  // multi-shard snapshot O(1) in hash functions instead of O(S).

  /// Appends this index's segments and counters to the writer. The active
  /// segment must be empty — callers SealActive() first, so a snapshot is
  /// pure CSR and the restored index answers queries through sketches
  /// identical to the live sealed ones.
  util::Status SaveTo(util::ByteWriter* writer) const {
    if (!active_ids_.empty()) {
      return util::Status::FailedPrecondition(
          "seal the active segment before snapshotting");
    }
    writer->WriteU32(id_base_);
    writer->WriteU64(initial_count_);
    writer->WriteU64(build_n_);
    writer->WriteU64(num_live_);
    writer->WriteU64(num_dead_);
    writer->WriteU64(sealed_.size());
    for (const Segment& segment : sealed_) {
      writer->WriteU64(segment.tables.size());
      for (const lsh::LshTable& table : segment.tables) {
        table.Serialize(writer);
      }
      writer->WriteU64(segment.ids.size());
      writer->WriteArray<uint32_t>(segment.ids);
    }
    return util::Status::Ok();
  }

  /// Rebuilds an index from a SaveTo payload. `functions` is the engine's
  /// shared (already-loaded) FunctionSet, `dataset` the restored container,
  /// `tombstones` the engine-wide bitmap (already loaded; nullptr makes the
  /// index own an empty one, the standalone case). No hash function is
  /// evaluated and no point is read — tables and sketches reload as bytes.
  /// The live/dead counters are revalidated against the actual segment
  /// contents, so a corrupt (but checksum-passing) payload cannot smuggle
  /// in an inconsistent index.
  static util::StatusOr<SegmentedIndex> LoadFrom(
      util::ByteReader* reader, lsh::FunctionSet<Family> functions,
      const Dataset* dataset, const Options& options,
      util::BitVector* shared_tombstones = nullptr) {
    if (dataset == nullptr) {
      return util::Status::InvalidArgument("dataset pointer is null");
    }
    if (options.index.hll_precision < hll::HyperLogLog::kMinPrecision ||
        options.index.hll_precision > hll::HyperLogLog::kMaxPrecision) {
      return util::Status::InvalidArgument("hll_precision out of range");
    }

    SegmentedIndex index(std::move(functions));
    index.dataset_ = dataset;
    index.options_ = options;
    index.table_options_.hll_precision = options.index.hll_precision;
    index.table_options_.small_bucket_threshold =
        options.index.small_bucket_threshold;
    index.active_.resize(index.functions_.num_tables());
    if (shared_tombstones != nullptr) {
      index.tombstones_ = shared_tombstones;
    } else {
      index.owned_tombstones_ = std::make_unique<util::BitVector>();
      index.tombstones_ = index.owned_tombstones_.get();
    }
    index.tombstones_->Grow(dataset->size());

    uint64_t initial_count = 0, build_n = 0, num_live = 0, num_dead = 0;
    uint64_t num_segments = 0;
    HLSH_RETURN_IF_ERROR(reader->ReadU32(&index.id_base_));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&initial_count));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&build_n));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_live));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_dead));
    HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_segments));
    if (build_n > dataset->size() ||
        static_cast<uint64_t>(index.id_base_) + initial_count > build_n ||
        num_segments > (uint64_t{1} << 20)) {
      return util::Status::DataLoss("segmented index header is invalid");
    }
    index.initial_count_ = initial_count;
    index.build_n_ = build_n;

    size_t live_seen = 0, dead_seen = 0;
    index.sealed_.reserve(num_segments);
    for (uint64_t s = 0; s < num_segments; ++s) {
      Segment segment;
      uint64_t num_tables = 0;
      HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_tables));
      if (num_tables != index.functions_.num_tables()) {
        return util::Status::DataLoss(
            "segment table count mismatches the function set");
      }
      segment.tables.reserve(num_tables);
      for (uint64_t t = 0; t < num_tables; ++t) {
        auto table = lsh::LshTable::Deserialize(reader);
        if (!table.ok()) return table.status();
        segment.tables.push_back(std::move(*table));
      }
      uint64_t num_ids = 0;
      HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_ids));
      HLSH_RETURN_IF_ERROR(reader->ReadArray<uint32_t>(num_ids, &segment.ids));
      for (const uint32_t id : segment.ids) {
        if (id >= dataset->size()) {
          return util::Status::DataLoss("segment id exceeds the dataset");
        }
        if (index.tombstones_->Get(id)) {
          ++dead_seen;
        } else {
          ++live_seen;
        }
      }
      index.sealed_.push_back(std::move(segment));
    }
    if (live_seen != num_live || dead_seen != num_dead) {
      return util::Status::DataLoss(
          "segment id lists disagree with the live/dead counters");
    }
    index.num_live_ = live_seen;
    index.num_dead_ = dead_seen;
    return index;
  }

  LifecycleStats lifecycle() const {
    LifecycleStats stats;
    stats.live_points = num_live_;
    stats.indexed_points = indexed_size();
    stats.active_points = active_ids_.size();
    stats.sealed_segments = sealed_.size();
    stats.tombstones = num_dead_;
    stats.compactions = compactions_;
    stats.last_compact_seconds = last_compact_seconds_;
    stats.memory_bytes = MemoryBytes();
    return stats;
  }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (const Segment& segment : sealed_) {
      for (const lsh::LshTable& table : segment.tables) {
        total += table.MemoryBytes();
      }
      total += segment.ids.capacity() * sizeof(uint32_t);
    }
    for (const lsh::DynamicLshTable& table : active_) {
      total += table.MemoryBytes();
    }
    if (owned_tombstones_ != nullptr) {
      total += owned_tombstones_->MemoryBytes();
    }
    return total;
  }

  /// Bytes used by HLL sketches alone (sealed segments; the active segment
  /// has none by design).
  size_t SketchBytes() const {
    size_t total = 0;
    for (const Segment& segment : sealed_) {
      for (const lsh::LshTable& table : segment.tables) {
        total += table.SketchBytes();
      }
    }
    return total;
  }

 private:
  /// A frozen segment: L CSR tables with sketches plus its live-at-seal id
  /// list (ascending; later tombstones are filtered on read).
  struct Segment {
    std::vector<lsh::LshTable> tables;
    std::vector<uint32_t> ids;
  };

  explicit SegmentedIndex(lsh::FunctionSet<Family> functions)
      : functions_(std::move(functions)) {}

  const Dataset* dataset_ = nullptr;
  Dataset* mutable_dataset_ = nullptr;
  Options options_;
  lsh::FunctionSet<Family> functions_;
  lsh::LshTable::Options table_options_;
  std::vector<Segment> sealed_;
  std::vector<lsh::DynamicLshTable> active_;
  std::vector<uint32_t> active_ids_;  // ascending insertion order
  // Tombstone bitmap over the global id space: owned when standalone,
  // engine-provided (shared by all shards) under ShardedEngine.
  std::unique_ptr<util::BitVector> owned_tombstones_;
  util::BitVector* tombstones_ = nullptr;
  size_t num_live_ = 0;
  size_t num_dead_ = 0;  // tombstoned ids still in segments
  uint32_t id_base_ = 0;
  size_t initial_count_ = 0;  // size of the initial [base, base+count) range
  size_t build_n_ = 0;        // dataset size at Build (pre-insert ids)
  size_t compactions_ = 0;
  double last_compact_seconds_ = 0.0;
  std::vector<int32_t> insert_slots_;  // Insert scratch
};

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_SEGMENTED_INDEX_H_
