// Type-erased serving facade over ShardedEngine<Family>.
//
// Everything below engine/ is compile-time generic: callers name
// LshIndex<Family> and the dataset container in their types, which is right
// for benches but wrong for a server that picks the metric from a request
// or a config file. SearchEngine is the runtime boundary: one virtual
// interface that any (family, dataset) pair adapts into, so examples,
// benches, and future server code hold a std::unique_ptr<SearchEngine>
// instead of propagating <Family, Dataset> template parameters.
//
// Points cross the type-erased boundary through one typed overload per
// representation (dense floats, packed binary codes, sparse id sets). An
// engine implements the overload matching its family's Point type and
// rejects the others with InvalidArgument — a server routing requests by
// metric always knows which representation its payload is in.
//
// Construction goes through a registry keyed by data::Metric:
//
//   auto engine = BuildEngine(data::Metric::kL2, &dataset, options);
//   (*engine)->Query(query, radius, &ids);
//
// The five paper pairings are pre-registered; RegisterEngineFactory lets
// new families plug in without touching this file.

#ifndef HYBRIDLSH_ENGINE_SEARCH_ENGINE_H_
#define HYBRIDLSH_ENGINE_SEARCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "core/fusion.h"
#include "data/attributes.h"
#include "data/dataset.h"
#include "data/metric.h"
#include "engine/query_pipeline.h"
#include "engine/sharded_engine.h"
#include "util/status.h"

namespace hybridlsh {
namespace engine {

/// Family-independent build parameters, mirrored into the per-family
/// LshIndex<Family>::Options by the registry factories.
struct EngineOptions {
  /// Sharding and pool size (see ShardedEngine<Family>::Options).
  size_t num_shards = 1;
  size_t num_threads = 0;  // 0 = one per shard

  /// Index parameters shared by all shards (lsh/index.h Options).
  int num_tables = 50;
  int k = 0;  // 0 = auto from (radius, delta)
  double delta = 0.1;
  /// Search radius: parameter derivation for k == 0, and the w default for
  /// the p-stable families.
  double radius = 0.0;
  int hll_precision = 7;
  uint64_t seed = 1;

  /// Quantization window for kL1 / kL2 (PStableFamily). 0 = the paper's
  /// defaults in terms of `radius`: w = 4r (L1), w = 2r (L2).
  double pstable_w = 0.0;

  /// Segment lifecycle knobs, applied per shard (see
  /// engine/segmented_index.h): the active segment seals at this many
  /// points, and a shard auto-compacts past this many sealed segments.
  size_t active_seal_threshold = 4096;
  size_t max_sealed_segments = 4;

  /// Int8 quantized verification tier (dense datasets; see
  /// ShardedEngine::Options::quantized_verify). false = exact-float
  /// verification everywhere. Results are identical either way.
  bool quantized_verify = true;

  /// Cost model, multi-probe width, and forced-strategy escape hatch.
  core::SearcherOptions searcher;
};

/// The mutable counterpart of AnyDataset: hand one of these to
/// BuildEngine (or EnableUpdates) and the engine can append points on
/// Insert. The pointee must outlive the engine.
using AnyMutableDataset = std::variant<data::DenseDataset*,
                                       data::BinaryDataset*,
                                       data::SparseDataset*>;

/// Runtime-polymorphic handle to a built sharded engine (see file comment).
///
/// Thread-safety matches ShardedEngine: one engine = one logical caller;
/// internal parallelism (shard fan-out, batch workers) is the engine's own.
class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  virtual data::Metric metric() const = 0;
  /// The adapted family's kFamilyTag (e.g. "SIMH", "PSTB").
  virtual uint32_t family_tag() const = 0;
  virtual size_t size() const = 0;
  virtual size_t num_shards() const = 0;
  virtual size_t num_threads() const = 0;
  virtual EngineStats stats() const = 0;

  // --- Single queries, one typed overload per point representation. ------
  // The overload matching the engine's family succeeds and appends global
  // ids to *out; the others return InvalidArgument. Defaults here reject
  // everything; adapters override exactly one.

  /// Dense float vector (kL1, kL2, kCosine engines).
  virtual util::Status Query(const float* query, double radius,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);
  /// Packed binary code (kHamming engines).
  virtual util::Status Query(const uint64_t* query, double radius,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);
  /// Sparse increasing id set (kJaccard engines).
  virtual util::Status Query(std::span<const uint32_t> query, double radius,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);

  // --- Composable pipeline queries (engine/query_pipeline.h). ------------
  // One QuerySpec describes radius, optional pushdown predicate, and
  // optional fusion clauses; the engine validates it (a predicate needs an
  // attached AttributeStore, metric overrides need dense data) and
  // executes every spec through the same plan→probe→gather→filter→verify→
  // score→merge chain the radius overloads ride.

  /// Attaches the attribute table predicates evaluate against (row r
  /// describes global id r; must outlive the engine). nullptr detaches.
  virtual util::Status AttachAttributes(const data::AttributeStore* attributes);

  /// Non-fused spec (radius + optional predicate): appends matching global
  /// ids to *out, exactly the post-filtered result set of the radius
  /// overload but with the predicate pushed below the distance kernels.
  virtual util::Status Query(const float* query, const QuerySpec& spec,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);
  virtual util::Status Query(const uint64_t* query, const QuerySpec& spec,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);
  virtual util::Status Query(std::span<const uint32_t> query,
                             const QuerySpec& spec,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats = nullptr);

  /// Fused spec (N subqueries): merged (id, score) hits under the spec's
  /// RRF / LINEAR fusion options, deterministically ordered.
  virtual util::Status QueryFused(const float* query, const QuerySpec& spec,
                                  std::vector<core::FusedHit>* out,
                                  ShardedQueryStats* stats = nullptr);
  virtual util::Status QueryFused(const uint64_t* query, const QuerySpec& spec,
                                  std::vector<core::FusedHit>* out,
                                  ShardedQueryStats* stats = nullptr);
  virtual util::Status QueryFused(std::span<const uint32_t> query,
                                  const QuerySpec& spec,
                                  std::vector<core::FusedHit>* out,
                                  ShardedQueryStats* stats = nullptr);

  // --- Batches, one typed overload per dataset container. ---------------
  // Pooled execution with per-worker scratch reuse (ShardedEngine::
  // QueryBatch); results are positionally aligned with the query set.
  // `wall_seconds` (optional) receives the batch wall time.

  virtual util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::DenseDataset& queries, double radius,
      double* wall_seconds = nullptr);
  virtual util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::BinaryDataset& queries, double radius,
      double* wall_seconds = nullptr);
  virtual util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::SparseDataset& queries, double radius,
      double* wall_seconds = nullptr);

  // --- Mutable lifecycle (segmented shards). -----------------------------
  // Insert follows the Query pattern: one typed overload per point
  // representation, non-matching overloads reject. Insert additionally
  // requires a mutable dataset — build through the AnyMutableDataset
  // BuildEngine overload, or call EnableUpdates on an engine built from a
  // const dataset. Remove and Compact work on any engine (tombstones and
  // compaction never touch the dataset).

  /// Appends the point and indexes it; returns the new global id.
  virtual util::StatusOr<uint32_t> Insert(const float* point);
  virtual util::StatusOr<uint32_t> Insert(const uint64_t* code);
  virtual util::StatusOr<uint32_t> Insert(std::span<const uint32_t> point);

  /// Tombstones one global id (idempotent; unknown ids are rejected).
  virtual util::Status Remove(uint32_t id);

  /// Merges every shard's segments, dropping tombstoned points and
  /// rebuilding sketches (ShardedEngine::CompactAll).
  virtual util::Status Compact();

  /// Arms Insert: the variant must hold the engine's dataset container
  /// type and point at the object the engine was built over.
  virtual util::Status EnableUpdates(AnyMutableDataset dataset);

  // --- Snapshot / restore. -----------------------------------------------
  // SaveSnapshot persists the full serving state (hash functions, sealed
  // segments, tombstones, dataset + norm cache, cost model) into a
  // crash-safe snapshot directory; OpenSnapshotEngine (below) restores it
  // behind the facade without recomputing a single hash. See
  // engine/snapshot.h for the directory protocol and guarantees.

  virtual util::Status SaveSnapshot(const std::string& dir);

 protected:
  /// The InvalidArgument produced by every non-matching overload.
  util::Status WrongPointType(const char* got) const;
};

/// Adapts a built ShardedEngine<Family, Dataset> into the facade. Only the
/// Query / QueryBatch overloads matching the family's Point type and the
/// dataset container answer; the rest fall through to the rejecting base.
template <typename Family,
          typename Dataset =
              typename DefaultDataset<typename Family::Point>::type>
class ShardedEngineAdapter final : public SearchEngine {
 public:
  using Engine = ShardedEngine<Family, Dataset>;
  using Point = typename Engine::Point;

  explicit ShardedEngineAdapter(Engine engine) : engine_(std::move(engine)) {}

  /// Adapter that also owns the dataset — the snapshot-restore path, where
  /// no caller-held container exists yet. The engine references *dataset by
  /// pointer, so the unique_ptr's stable address is what makes this safe.
  ShardedEngineAdapter(Engine engine, std::unique_ptr<Dataset> dataset)
      : owned_dataset_(std::move(dataset)), engine_(std::move(engine)) {}

  data::Metric metric() const override {
    return engine_.shard_index(0).family().metric();
  }
  uint32_t family_tag() const override { return Family::kFamilyTag; }
  size_t size() const override { return engine_.size(); }
  size_t num_shards() const override { return engine_.num_shards(); }
  size_t num_threads() const override { return engine_.num_threads(); }
  EngineStats stats() const override { return engine_.stats(); }

  /// The adapted engine, for callers that do know the concrete type.
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

  using SearchEngine::Query;
  using SearchEngine::QueryFused;
  using SearchEngine::QueryBatch;
  using SearchEngine::Insert;

  util::Status AttachAttributes(
      const data::AttributeStore* attributes) override {
    engine_.AttachAttributes(attributes);
    return util::Status::Ok();
  }

  util::Status Query(const float* query, const QuerySpec& spec,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    return SpecQueryImpl(query, spec, out, stats, "dense float");
  }
  util::Status Query(const uint64_t* query, const QuerySpec& spec,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    return SpecQueryImpl(query, spec, out, stats, "packed binary");
  }
  util::Status Query(std::span<const uint32_t> query, const QuerySpec& spec,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    return SpecQueryImpl(query, spec, out, stats, "sparse id-set");
  }

  util::Status QueryFused(const float* query, const QuerySpec& spec,
                          std::vector<core::FusedHit>* out,
                          ShardedQueryStats* stats) override {
    return FusedQueryImpl(query, spec, out, stats, "dense float");
  }
  util::Status QueryFused(const uint64_t* query, const QuerySpec& spec,
                          std::vector<core::FusedHit>* out,
                          ShardedQueryStats* stats) override {
    return FusedQueryImpl(query, spec, out, stats, "packed binary");
  }
  util::Status QueryFused(std::span<const uint32_t> query,
                          const QuerySpec& spec,
                          std::vector<core::FusedHit>* out,
                          ShardedQueryStats* stats) override {
    return FusedQueryImpl(query, spec, out, stats, "sparse id-set");
  }

  util::Status Query(const float* query, double radius,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    if constexpr (std::is_same_v<Point, const float*>) {
      engine_.Query(query, radius, out, stats);
      return util::Status::Ok();
    } else {
      return WrongPointType("dense float");
    }
  }

  util::Status Query(const uint64_t* query, double radius,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    if constexpr (std::is_same_v<Point, const uint64_t*>) {
      engine_.Query(query, radius, out, stats);
      return util::Status::Ok();
    } else {
      return WrongPointType("packed binary");
    }
  }

  util::Status Query(std::span<const uint32_t> query, double radius,
                     std::vector<uint32_t>* out,
                     ShardedQueryStats* stats) override {
    if constexpr (std::is_same_v<Point, std::span<const uint32_t>>) {
      engine_.Query(query, radius, out, stats);
      return util::Status::Ok();
    } else {
      return WrongPointType("sparse id-set");
    }
  }

  util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::DenseDataset& queries, double radius,
      double* wall_seconds) override {
    return BatchImpl(queries, radius, wall_seconds, "dense float");
  }

  util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::BinaryDataset& queries, double radius,
      double* wall_seconds) override {
    return BatchImpl(queries, radius, wall_seconds, "packed binary");
  }

  util::StatusOr<std::vector<ShardedBatchResult>> QueryBatch(
      const data::SparseDataset& queries, double radius,
      double* wall_seconds) override {
    return BatchImpl(queries, radius, wall_seconds, "sparse id-set");
  }

  util::StatusOr<uint32_t> Insert(const float* point) override {
    return InsertImpl(point, "dense float");
  }
  util::StatusOr<uint32_t> Insert(const uint64_t* code) override {
    return InsertImpl(code, "packed binary");
  }
  util::StatusOr<uint32_t> Insert(std::span<const uint32_t> point) override {
    return InsertImpl(point, "sparse id-set");
  }

  util::Status Remove(uint32_t id) override { return engine_.Remove(id); }

  util::Status Compact() override {
    engine_.CompactAll();
    return util::Status::Ok();
  }

  util::Status EnableUpdates(AnyMutableDataset dataset) override {
    if (auto* const* held = std::get_if<Dataset*>(&dataset)) {
      if (*held == nullptr) {
        return util::Status::InvalidArgument("dataset pointer is null");
      }
      return engine_.EnableUpdates(*held);
    }
    return util::Status::InvalidArgument(
        "mutable dataset container does not match the engine's dataset");
  }

  util::Status SaveSnapshot(const std::string& dir) override {
    return engine_.SaveSnapshot(dir);
  }

 private:
  template <typename P>
  util::Status SpecQueryImpl(P query, const QuerySpec& spec,
                             std::vector<uint32_t>* out,
                             ShardedQueryStats* stats, const char* got) {
    if constexpr (std::is_same_v<P, Point>) {
      return engine_.Query(query, spec, out, stats);
    } else {
      return WrongPointType(got);
    }
  }
  template <typename P>
  util::Status FusedQueryImpl(P query, const QuerySpec& spec,
                              std::vector<core::FusedHit>* out,
                              ShardedQueryStats* stats, const char* got) {
    if constexpr (std::is_same_v<P, Point>) {
      return engine_.QueryFused(query, spec, out, stats);
    } else {
      return WrongPointType(got);
    }
  }
  template <typename P>
  util::StatusOr<uint32_t> InsertImpl(P point, const char* got) {
    if constexpr (std::is_same_v<P, Point>) {
      return engine_.Insert(point);
    } else {
      return WrongPointType(got);
    }
  }
  template <typename QuerySet>
  util::StatusOr<std::vector<ShardedBatchResult>> BatchImpl(
      const QuerySet& queries, double radius, double* wall_seconds,
      const char* got) {
    if constexpr (std::is_same_v<QuerySet, Dataset>) {
      return engine_.QueryBatch(queries, radius, wall_seconds);
    } else {
      return WrongPointType(got);
    }
  }

  // Set only by the snapshot-restore constructor; engine_ points into it.
  // Declared first so the dataset outlives the engine on destruction.
  std::unique_ptr<Dataset> owned_dataset_;
  Engine engine_;
};

/// The dataset containers an engine factory can be handed. A factory whose
/// family reads a different container rejects with InvalidArgument.
using AnyDataset = std::variant<const data::DenseDataset*,
                                const data::BinaryDataset*,
                                const data::SparseDataset*>;

/// Builds a fully-typed engine behind the facade. Signature shared by the
/// built-in factories and external registrations.
using EngineFactory = util::StatusOr<std::unique_ptr<SearchEngine>> (*)(
    AnyDataset dataset, const EngineOptions& options);

/// Registers (or replaces) the factory serving `metric`. The five paper
/// pairings are pre-registered: kCosine/kL2/kL1 over DenseDataset, kHamming
/// over BinaryDataset, kJaccard over SparseDataset.
void RegisterEngineFactory(data::Metric metric, EngineFactory factory);

/// Builds an engine through the registry. The dataset must outlive the
/// returned engine (it is retained by pointer, not copied).
util::StatusOr<std::unique_ptr<SearchEngine>> BuildEngine(
    data::Metric metric, AnyDataset dataset, const EngineOptions& options);

/// Builds an updatable engine: same registry path, then EnableUpdates, so
/// Insert / Remove / Compact serve immediately. The dataset will grow on
/// Insert and must outlive the engine. (A distinct name, not an overload:
/// a non-const dataset pointer would otherwise make every existing
/// BuildEngine call ambiguous.)
util::StatusOr<std::unique_ptr<SearchEngine>> BuildMutableEngine(
    data::Metric metric, AnyMutableDataset dataset,
    const EngineOptions& options);

/// Restores a snapshot written by SearchEngine::SaveSnapshot (or by
/// ShardedEngine::SaveSnapshot directly) behind the facade. The snapshot's
/// manifest names the metric, LSH family, and dataset container, so the
/// caller needs no type information: the right typed engine is rebuilt, the
/// dataset is owned by the returned engine, and updates are armed — a
/// service restart is Open + serve. `options.use_mmap` maps the snapshot
/// files read-only for near-zero-copy startup.
util::StatusOr<std::unique_ptr<SearchEngine>> OpenSnapshotEngine(
    const std::string& dir, const snapshot::OpenOptions& options = {});

}  // namespace engine
}  // namespace hybridlsh

#endif  // HYBRIDLSH_ENGINE_SEARCH_ENGINE_H_
