// Deterministic multi-subquery result fusion (the merge stage of the
// composable query pipeline).
//
// A fused query runs N subqueries — different radii, different metrics, or
// an attribute-only scan — against one snapshot and combines their result
// lists into a single scored ranking, following the RRF / LINEAR scoring
// shapes of RediSearch's FT.HYBRID:
//
//   RRF:    fused(id) = sum_i  weight_i / (rrf_k + rank_i(id))
//   LINEAR: fused(id) = sum_i  weight_i * sim_i(id),  sim = 1 / (1 + dist)
//
// where rank_i is the 1-based rank of id in subquery i ordered by
// (distance ascending, id ascending), and a subquery that did not report
// id contributes nothing. The final ranking orders by (fused score
// descending, id ascending). Every tie-break is total, and contributions
// are accumulated in a fixed order (id-major, then subquery order), so the
// merge is bit-deterministic across runs, thread counts, and SIMD tiers —
// the per-id distances it consumes come from the scalar scoring helpers,
// not the vectorized verify kernels.

#ifndef HYBRIDLSH_CORE_FUSION_H_
#define HYBRIDLSH_CORE_FUSION_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hybridlsh {
namespace core {

enum class FusionMode : uint8_t {
  kRrf,     // reciprocal-rank fusion (rank-based, scale-free)
  kLinear,  // weighted sum of 1/(1+distance) similarities
};

inline const char* FusionModeName(FusionMode mode) {
  return mode == FusionMode::kRrf ? "rrf" : "linear";
}

struct FusionOptions {
  FusionMode mode = FusionMode::kRrf;
  /// RRF rank constant: larger values flatten the rank curve. 60 is the
  /// conventional default from the TREC fusion literature.
  double rrf_k = 60.0;
};

/// One fused result: a point id and its combined score (higher = better).
struct FusedHit {
  uint32_t id = 0;
  double score = 0.0;
};

/// One subquery's results: parallel id/distance arrays plus the
/// subquery's fusion weight. Distances must be >= 0 (radius-search
/// distances are); an attribute-only subquery reports distance 0 for
/// every id, making its ranks degenerate to ascending-id order and its
/// LINEAR similarity 1.
struct ScoredList {
  double weight = 1.0;
  std::vector<uint32_t> ids;
  std::vector<double> distances;
};

/// Reusable allocation scratch for FuseScoredLists (the query paths keep
/// one per QueryScratch so steady-state fusion does not allocate).
struct FusionScratch {
  std::vector<uint32_t> order;
  /// (id << 32 | subquery index, contribution): sorting by the packed key
  /// fixes the accumulation order and makes an in-list duplicate a
  /// repeated key.
  std::vector<std::pair<uint64_t, double>> contributions;
};

/// Merges `lists` into *out (cleared first) under `options`; see the file
/// comment for the exact semantics. Duplicate ids within one list are
/// invalid (the radius-search paths never produce them) and flagged with
/// InvalidArgument. `scratch` may be null (a local is used).
util::Status FuseScoredLists(std::span<ScoredList> lists,
                             const FusionOptions& options,
                             FusionScratch* scratch,
                             std::vector<FusedHit>* out);

}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_FUSION_H_
