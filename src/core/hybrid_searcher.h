// The hybrid search strategy (paper Algorithm 2) — the primary contribution.
//
// For each query the searcher:
//   1. hashes the query into its L bucket keys (LSH step S1);
//   2. reads the probed buckets' sizes (exact #collisions) and merges their
//      HyperLogLog sketches to estimate candSize (Alg. 2 lines 1-2);
//   3. evaluates LSHCost = alpha*#collisions + beta*candSize against
//      LinearCost = beta*n (lines 3);
//   4. answers with LSH-based search when LSHCost < LinearCost, with an
//      exact linear scan otherwise (line 4).
//
// Both execution paths verify candidates through the block-batched SIMD
// kernels in core/kernels.h (flat id buffer + prefetch + dispatched
// distance kernels) rather than one Distance() call per candidate.
//
// HybridSearcher is generic over the index (LshIndex<Family> or
// CoveringLshIndex) and the dataset container; it owns the per-query
// scratch (VisitedSet, merged HLL, key buffer), so create one searcher per
// thread and reuse it across queries. It does not own the index or the
// dataset.

#ifndef HYBRIDLSH_CORE_HYBRID_SEARCHER_H_
#define HYBRIDLSH_CORE_HYBRID_SEARCHER_H_

#include <concepts>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/cost_model.h"
#include "core/kernels.h"
#include "hll/hyperloglog.h"
#include "lsh/index.h"
#include "util/bit_vector.h"
#include "util/status.h"
#include "util/timer.h"

namespace hybridlsh {
namespace core {

/// Which execution path answered a query.
enum class Strategy {
  kLsh,
  kLinear,
};

/// Stable display name ("lsh" / "linear").
inline std::string_view StrategyName(Strategy strategy) {
  return strategy == Strategy::kLsh ? "lsh" : "linear";
}

/// Per-query observability: everything Table 1 and Figures 2-3 report.
struct QueryStats {
  Strategy strategy = Strategy::kLsh;
  /// Exact number of collisions in the probed buckets.
  uint64_t collisions = 0;
  /// candSize estimate from the merged HLLs.
  double cand_estimate = 0.0;
  /// Exact distinct candidate count (LSH path only; 0 on the linear path).
  size_t cand_actual = 0;
  /// Number of reported near neighbors.
  size_t output_size = 0;
  /// Model costs behind the decision.
  double lsh_cost = 0.0;
  double linear_cost = 0.0;
  /// Wall seconds spent merging HLLs + estimating candSize (Table 1 %Cost).
  double estimate_seconds = 0.0;
  /// Wall seconds for the whole query (S1 + estimate + execution).
  double total_seconds = 0.0;
  /// Per-table hash signatures evaluated for this query: L on any path
  /// that runs S1 (hybrid, forced-LSH), 0 on forced-linear. Under a
  /// sharded engine the per-shard value is 0 — the engine hashes once and
  /// every shard walk reuses the plan.
  uint64_t hash_evals = 0;
  /// 1 when this query (or shard walk) consumed a precomputed ProbePlan
  /// instead of rehashing; 0 on the legacy key-buffer path and on
  /// forced-linear.
  size_t plan_reuse = 0;
};

/// Mutually exclusive execution modes (see Query()).
enum class ForcedStrategy {
  kAuto,        // the hybrid decision (default)
  kAlwaysLsh,   // classic LSH-based search
  kAlwaysLinear  // exact scan
};

/// Options for a HybridSearcher.
struct SearcherOptions {
  /// The calibrated or pinned (alpha, beta) constants.
  CostModel cost_model;
  /// Probes per table; > 1 enables multi-probe on indexes that support it.
  size_t probes_per_table = 1;
  /// Bypass the decision (used by the figure benches' LSH/Linear series).
  ForcedStrategy forced = ForcedStrategy::kAuto;
};

/// S1 for any index: the home-bucket keys, or the multi-probe sequence when
/// probes_per_table > 1. Shared by HybridSearcher and the sharded engine so
/// the probing policy cannot diverge between the monolithic and sharded
/// paths. Aborts if probing is requested on an index without multi-probe
/// support.
template <typename Index>
void ComputeProbeKeys(const Index& index, typename Index::Point query,
                      size_t probes_per_table, std::vector<uint64_t>* keys) {
  constexpr bool kHasMultiProbe =
      requires(const Index& i, typename Index::Point p, size_t probes,
               std::vector<uint64_t>* out) {
        i.QueryKeysMultiProbe(p, probes, out);
      };
  if (probes_per_table > 1) {
    if constexpr (kHasMultiProbe) {
      HLSH_CHECK(index.QueryKeysMultiProbe(query, probes_per_table, keys).ok());
      return;
    } else {
      HLSH_CHECK(false && "index does not support multi-probe");
    }
  }
  index.QueryKeys(query, keys);
}

/// Detects a segmented (mutable) index — engine/segmented_index.h. Such an
/// index reports live_size() < dataset size after deletes, iterates live
/// ids for the linear path, and needs the tombstone correction applied to
/// the LSH cost before the strategy decision.
template <typename Index>
concept SegmentedIndexLike = requires(const Index& index) {
  { index.live_size() } -> std::convertible_to<size_t>;
  { index.live_fraction() } -> std::convertible_to<double>;
  index.ForEachLiveId([](uint32_t) {});
};

/// Hybrid rNNR searcher over a built index and its dataset.
///
/// Index requirements: Point, QueryKeys, EstimateProbe, CollectCandidates,
/// Distance, size(), MakeScratchSketch(). Dataset requirements: size(),
/// point(i) -> Point. The dataset must be the one the index was built on.
///
/// Over a SegmentedIndexLike index the searcher follows the mutable
/// lifecycle: the per-query scratch grows with the dataset, the estimate
/// sums across segments (inside the index), the decision compares the
/// tombstone-corrected LSH cost against LinearCost(live_size), and the
/// linear path scans live ids only.
template <typename Index, typename Dataset>
class HybridSearcher {
 public:
  using Point = typename Index::Point;

  static constexpr bool kSegmented = SegmentedIndexLike<Index>;

  HybridSearcher(const Index* index, const Dataset* dataset,
                 const SearcherOptions& options)
      : index_(index),
        dataset_(dataset),
        options_(options),
        visited_(dataset->size()),
        merged_(index->MakeScratchSketch()) {
    if constexpr (!kSegmented) {
      HLSH_CHECK(index->size() == dataset->size());
    }
    HLSH_CHECK(options.probes_per_table >= 1);
    if constexpr (requires { index->id_base(); }) {
      // A range-offset index (lsh/index.h Options::id_base) stores global
      // ids outside [0, size()), which would index past visited_ and the
      // dataset here. Such indexes belong to engine::ShardedEngine, whose
      // scratch spans the parent id space.
      HLSH_CHECK(index->id_base() == 0);
    }
  }

  /// Reports all ids with Distance(point, query) <= radius, each with
  /// probability >= 1 - delta (exactly, when the linear path is taken).
  /// Results are appended to *out in unspecified order. `stats` is optional.
  void Query(Point query, double radius, std::vector<uint32_t>* out,
             QueryStats* stats = nullptr) {
    QueryStats local_stats;
    QueryStats* s = stats != nullptr ? stats : &local_stats;
    *s = QueryStats{};
    util::WallTimer total_timer;
    EnsureCapacity();

    if (options_.forced == ForcedStrategy::kAlwaysLinear) {
      s->strategy = Strategy::kLinear;
      s->linear_cost = options_.cost_model.LinearCost(LiveStatsSnapshot().live);
      ExecuteLinear(query, radius, out, s);
      s->total_seconds = total_timer.ElapsedSeconds();
      return;
    }

    // S1: the probe plan (or legacy bucket keys) — home buckets plus the
    // multi-probe sequence.
    ComputeKeys(query, s);

    // Alg. 2 lines 1-2: exact #collisions + candSize estimate via HLLs
    // (summed across segments for a segmented index).
    {
      util::WallTimer estimate_timer;
      const auto estimate = EstimateNow();
      s->collisions = estimate.collisions;
      s->cand_estimate = estimate.cand_estimate;
      s->estimate_seconds = estimate_timer.ElapsedSeconds();
    }

    // Alg. 2 lines 3-4: compare model costs, pick the strategy. A
    // segmented index's estimate includes tombstoned ids; subtract their
    // share of the verification cost and scan only live points linearly.
    const LiveStats live = LiveStatsSnapshot();
    s->lsh_cost = options_.cost_model.CorrectedLshCost(s->collisions,
                                                       s->cand_estimate, live);
    s->linear_cost = options_.cost_model.LinearCost(live.live);
    const bool use_lsh = options_.forced == ForcedStrategy::kAlwaysLsh ||
                         s->lsh_cost < s->linear_cost;

    if (use_lsh) {
      s->strategy = Strategy::kLsh;
      ExecuteLsh(query, radius, out, s);
    } else {
      s->strategy = Strategy::kLinear;
      ExecuteLinear(query, radius, out, s);
    }
    s->total_seconds = total_timer.ElapsedSeconds();
  }

  /// Predicate-filtered Query(): the pipeline's searcher leg. `filter`
  /// holds raw predicate bits over [0, bound) — bit set iff the id passes
  /// the predicate (engine/query_pipeline.h BuildFilterContext evaluates
  /// it; here it need NOT be composed with tombstones: the LSH path drops
  /// dead ids at S2 as always, the linear path iterates live ids only).
  /// Null filter degrades to Query(). The strategy decision folds the
  /// filter's selectivity through CostModel::EffectiveLiveFraction, so at
  /// low selectivity the linear path — which verifies only filter
  /// survivors — wins even when the unfiltered decision would pick LSH.
  /// Results are exactly the unfiltered results restricted to ids whose
  /// filter bit is set (ids at or past filter->size() fail).
  void QueryFiltered(Point query, double radius, const util::BitVector* filter,
                     std::vector<uint32_t>* out, QueryStats* stats = nullptr) {
    if (filter == nullptr) {
      Query(query, radius, out, stats);
      return;
    }
    QueryStats local_stats;
    QueryStats* s = stats != nullptr ? stats : &local_stats;
    *s = QueryStats{};
    util::WallTimer total_timer;
    EnsureCapacity();

    const LiveStats live = LiveStatsSnapshot();
    // Survivor estimate: predicate passers (dead passers inflate it for a
    // standalone segmented index, which only nudges the decision toward
    // LSH — the clamp keeps the fraction sane).
    double selectivity =
        live.live == 0 ? 0.0
                       : static_cast<double>(filter->Count()) /
                             static_cast<double>(live.live);
    if (selectivity > 1.0) selectivity = 1.0;

    if (options_.forced == ForcedStrategy::kAlwaysLinear) {
      s->strategy = Strategy::kLinear;
      s->linear_cost = options_.cost_model.LinearCost(live.live, selectivity);
      ExecuteLinearFiltered(query, radius, filter, out, s);
      s->total_seconds = total_timer.ElapsedSeconds();
      return;
    }

    ComputeKeys(query, s);
    {
      util::WallTimer estimate_timer;
      const auto estimate = EstimateNow();
      s->collisions = estimate.collisions;
      s->cand_estimate = estimate.cand_estimate;
      s->estimate_seconds = estimate_timer.ElapsedSeconds();
    }

    s->lsh_cost = options_.cost_model.CorrectedLshCost(
        s->collisions, s->cand_estimate, live.fraction(), selectivity);
    s->linear_cost = options_.cost_model.LinearCost(live.live, selectivity);
    const bool use_lsh = options_.forced == ForcedStrategy::kAlwaysLsh ||
                         s->lsh_cost < s->linear_cost;
    if (use_lsh) {
      s->strategy = Strategy::kLsh;
      ExecuteLsh(query, radius, out, s, filter);
    } else {
      s->strategy = Strategy::kLinear;
      ExecuteLinearFiltered(query, radius, filter, out, s);
    }
    s->total_seconds = total_timer.ElapsedSeconds();
  }

  /// Classic LSH-based search (no decision, no estimation overhead beyond
  /// stats collection).
  void QueryLsh(Point query, double radius, std::vector<uint32_t>* out,
                QueryStats* stats = nullptr) {
    QueryStats local_stats;
    QueryStats* s = stats != nullptr ? stats : &local_stats;
    *s = QueryStats{};
    util::WallTimer total_timer;
    EnsureCapacity();
    ComputeKeys(query, s);
    s->strategy = Strategy::kLsh;
    ExecuteLsh(query, radius, out, s);
    s->total_seconds = total_timer.ElapsedSeconds();
  }

  /// Exact linear scan.
  void QueryLinear(Point query, double radius, std::vector<uint32_t>* out,
                   QueryStats* stats = nullptr) {
    QueryStats local_stats;
    QueryStats* s = stats != nullptr ? stats : &local_stats;
    *s = QueryStats{};
    util::WallTimer total_timer;
    EnsureCapacity();
    s->strategy = Strategy::kLinear;
    ExecuteLinear(query, radius, out, s);
    s->total_seconds = total_timer.ElapsedSeconds();
  }

  /// The decision inputs for a query without executing it (Alg. 2 lines
  /// 1-3). Useful for inspecting the cost model.
  QueryStats EstimateOnly(Point query) {
    QueryStats s;
    util::WallTimer total_timer;
    ComputeKeys(query, &s);
    util::WallTimer estimate_timer;
    const auto estimate = EstimateNow();
    s.collisions = estimate.collisions;
    s.cand_estimate = estimate.cand_estimate;
    s.estimate_seconds = estimate_timer.ElapsedSeconds();
    const LiveStats live = LiveStatsSnapshot();
    s.lsh_cost =
        options_.cost_model.CorrectedLshCost(s.collisions, s.cand_estimate, live);
    s.linear_cost = options_.cost_model.LinearCost(live.live);
    s.strategy = s.lsh_cost < s.linear_cost ? Strategy::kLsh : Strategy::kLinear;
    s.total_seconds = total_timer.ElapsedSeconds();
    return s;
  }

  const CostModel& cost_model() const { return options_.cost_model; }
  const SearcherOptions& options() const { return options_; }

 private:
  /// Does the index speak the hash-once ProbePlan protocol (lsh/index.h)?
  /// LshIndex and SegmentedIndex do; CoveringLshIndex stays on the legacy
  /// key buffer.
  static constexpr bool kHasPlan =
      requires(const Index& i, Point p, size_t probes,
               lsh::PlanScratch* scratch, lsh::ProbePlan* plan,
               hll::HyperLogLog* merged, util::VisitedSet* visited) {
        { i.ComputePlan(p, probes, scratch, plan) } -> std::same_as<util::Status>;
        i.EstimateProbe(*plan, merged);
        i.CollectCandidates(*plan, visited);
      };

  /// S1: compute the probe plan (and record the hash accounting), or fall
  /// back to the flat key buffer for indexes without plan support.
  void ComputeKeys(Point query, QueryStats* s) {
    if constexpr (kHasPlan) {
      HLSH_CHECK(index_
                     ->ComputePlan(query, options_.probes_per_table,
                                   &plan_scratch_, &plan_)
                     .ok());
      s->hash_evals = plan_.num_tables();
      s->plan_reuse = 1;
    } else {
      ComputeProbeKeys(*index_, query, options_.probes_per_table, &keys_);
      s->hash_evals = static_cast<uint64_t>(index_->num_tables());
    }
  }

  /// Alg. 2 lines 1-2 on whichever probe representation S1 produced.
  auto EstimateNow() {
    if constexpr (kHasPlan) {
      return index_->EstimateProbe(plan_, &merged_);
    } else {
      return index_->EstimateProbe(keys_, &merged_);
    }
  }

  // S2 + S3: dedup candidates into the flat touched() buffer, then verify
  // it in one block-batched kernel pass (core/kernels.h). A pushed-down
  // filter rides into the verify call: filtered candidates pay a bit test,
  // not a distance.
  void ExecuteLsh(Point query, double radius, std::vector<uint32_t>* out,
                  QueryStats* s, const util::BitVector* filter = nullptr) {
    visited_.Reset();
    if constexpr (kHasPlan) {
      s->collisions = index_->CollectCandidates(plan_, &visited_);
    } else {
      s->collisions = index_->CollectCandidates(keys_, &visited_);
    }
    s->cand_actual = visited_.size();
    s->output_size += kernels::VerifyCandidates(
        *index_, *dataset_, query, visited_.touched(), radius, out, filter);
  }

  void ExecuteLinear(Point query, double radius, std::vector<uint32_t>* out,
                     QueryStats* s) {
    if constexpr (kSegmented) {
      // Gather the live ids into a flat buffer so verification runs
      // block-batched instead of one virtual-ish call per id.
      linear_ids_.clear();
      index_->ForEachLiveId([&](uint32_t id) { linear_ids_.push_back(id); });
      s->output_size += kernels::VerifyCandidates(*index_, *dataset_, query,
                                                  linear_ids_, radius, out);
    } else {
      s->output_size += kernels::VerifyAllIds(
          *index_, *dataset_, query, 0,
          static_cast<uint32_t>(dataset_->size()), radius, out);
    }
  }

  /// The filtered linear path verifies only filter survivors. Static
  /// indexes let the range kernel word-skip the bitmap directly; a
  /// segmented index intersects during the live-id walk so dead passers
  /// never reach the verify buffer.
  void ExecuteLinearFiltered(Point query, double radius,
                             const util::BitVector* filter,
                             std::vector<uint32_t>* out, QueryStats* s) {
    if constexpr (kSegmented) {
      linear_ids_.clear();
      const size_t bound = filter->size();
      index_->ForEachLiveId([&](uint32_t id) {
        if (id < bound && filter->Get(id)) linear_ids_.push_back(id);
      });
      s->output_size += kernels::VerifyCandidates(*index_, *dataset_, query,
                                                  linear_ids_, radius, out);
    } else {
      s->output_size += kernels::VerifyAllIds(
          *index_, *dataset_, query, 0,
          static_cast<uint32_t>(dataset_->size()), radius, out, filter);
    }
  }

  /// One coherent (live, indexed) pair per decision. A concurrent
  /// segmented index keeps both packed in one atomic word (live_stats()),
  /// so the tombstone correction and the linear comparison price from the
  /// same instant; two separate live_size()/live_fraction() calls could
  /// straddle a writer's update. Static indexes are trivially coherent.
  LiveStats LiveStatsSnapshot() const {
    if constexpr (requires(const Index& index) {
                    { index.live_stats() } -> std::convertible_to<LiveStats>;
                  }) {
      return index_->live_stats();
    } else if constexpr (kSegmented) {
      return LiveStats{index_->live_size(), index_->indexed_size()};
    } else {
      return LiveStats{dataset_->size(), dataset_->size()};
    }
  }

  /// A mutable index's dataset grows between queries; keep the dedup set's
  /// id space in step (no-op on the static path).
  void EnsureCapacity() {
    if constexpr (kSegmented) {
      if (visited_.capacity() < dataset_->size()) {
        visited_.Resize(dataset_->size());
      }
    }
  }

  const Index* index_;
  const Dataset* dataset_;
  SearcherOptions options_;
  util::VisitedSet visited_;
  hll::HyperLogLog merged_;
  std::vector<uint64_t> keys_;        // legacy S1 buffer (non-plan indexes)
  lsh::PlanScratch plan_scratch_;     // hash-once S1 workspace
  lsh::ProbePlan plan_;               // the query's reusable probe plan
  std::vector<uint32_t> linear_ids_;  // live-id scratch (segmented linear)
};

}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_HYBRID_SEARCHER_H_
