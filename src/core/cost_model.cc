#include "core/cost_model.h"

#include <algorithm>

#include "util/bit_vector.h"
#include "util/random.h"
#include "util/timer.h"

namespace hybridlsh {
namespace core {

double CostCalibrator::MeasureAlpha(size_t capacity, size_t ops, uint64_t seed,
                                    int repetitions) {
  HLSH_CHECK(capacity > 0 && ops > 0 && repetitions > 0);
  // Pre-generate the id stream so the timed loop measures only the insert.
  util::Rng rng(seed);
  std::vector<uint32_t> ids(ops);
  for (auto& id : ids) {
    id = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(capacity) - 1));
  }
  util::VisitedSet visited(capacity);
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    visited.Reset();
    util::WallTimer timer;
    for (uint32_t id : ids) visited.Insert(id);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best / static_cast<double>(ops);
}

double CostCalibrator::MeasureBeta(
    const std::function<double(size_t)>& distance_fn, size_t sample_size,
    size_t ops, int repetitions) {
  HLSH_CHECK(sample_size > 0 && ops > 0 && repetitions > 0);
  double sink = 0.0;
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::WallTimer timer;
    for (size_t i = 0; i < ops; ++i) {
      sink += distance_fn(i % sample_size);
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  // Keep the accumulated distances alive past optimization.
  asm volatile("" : "+r"(sink));
  return best / static_cast<double>(ops);
}

CostModel CostCalibrator::Calibrate(
    const std::function<double(size_t)>& distance_fn, size_t sample_size,
    size_t dedup_capacity, size_t ops, uint64_t seed) {
  CostModel model;
  model.alpha = MeasureAlpha(dedup_capacity, ops, seed);
  // Distance computations are slower; fewer reps suffice for stable means.
  model.beta = MeasureBeta(distance_fn, sample_size, std::max<size_t>(ops / 10, 1));
  return model;
}

}  // namespace core
}  // namespace hybridlsh
