#include "core/cost_model.h"

#include <algorithm>
#include <span>

#include "util/bit_vector.h"
#include "util/random.h"
#include "util/timer.h"

namespace hybridlsh {
namespace core {

util::StatusOr<double> CostCalibrator::MeasureAlpha(size_t capacity,
                                                    size_t ops, uint64_t seed,
                                                    int repetitions) {
  if (capacity == 0) {
    return util::Status::InvalidArgument(
        "cannot calibrate alpha over an empty id space");
  }
  if (ops == 0 || repetitions <= 0) {
    return util::Status::InvalidArgument(
        "calibration needs ops > 0 and repetitions > 0");
  }
  // Pre-generate the id stream so the timed loop measures only the insert.
  util::Rng rng(seed);
  std::vector<uint32_t> ids(ops);
  for (auto& id : ids) {
    id = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(capacity) - 1));
  }
  // Price the span-batched dedup the collect path actually runs: the
  // plan-based walk (lsh::CollectProbedIds) hands VisitedSet whole buckets
  // via InsertSpan, not one Insert call per collision. Feed the stream in
  // small-bucket-sized chunks so alpha reflects the amortized per-id cost.
  constexpr size_t kSpan = 8;
  util::VisitedSet visited(capacity);
  const std::span<const uint32_t> stream(ids);
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    visited.Reset();
    util::WallTimer timer;
    size_t i = 0;
    for (; i + kSpan <= ops; i += kSpan) {
      visited.InsertSpan(stream.subspan(i, kSpan));
    }
    if (i < ops) visited.InsertSpan(stream.subspan(i));
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best / static_cast<double>(ops);
}

util::StatusOr<double> CostCalibrator::MeasureBeta(
    const std::function<double(size_t)>& distance_fn, size_t n,
    size_t sample_size, size_t ops, int repetitions) {
  // A sample larger than the dataset would index distance_fn out of range;
  // an empty one would take i % 0. Clamp, then reject emptiness.
  sample_size = std::min(sample_size, n);
  if (sample_size == 0) {
    return util::Status::InvalidArgument(
        "cannot calibrate beta on an empty sample");
  }
  if (ops == 0 || repetitions <= 0) {
    return util::Status::InvalidArgument(
        "calibration needs ops > 0 and repetitions > 0");
  }
  double sink = 0.0;
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    util::WallTimer timer;
    for (size_t i = 0; i < ops; ++i) {
      sink += distance_fn(i % sample_size);
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  // Keep the accumulated distances alive past optimization.
  asm volatile("" : "+r"(sink));
  return best / static_cast<double>(ops);
}

util::StatusOr<CostModel> CostCalibrator::Calibrate(
    const std::function<double(size_t)>& distance_fn, size_t n,
    size_t sample_size, size_t dedup_capacity, size_t ops, uint64_t seed) {
  CostModel model;
  auto alpha = MeasureAlpha(dedup_capacity, ops, seed);
  if (!alpha.ok()) return alpha.status();
  model.alpha = *alpha;
  // Distance computations are slower; fewer reps suffice for stable means.
  auto beta = MeasureBeta(distance_fn, n, sample_size,
                          std::max<size_t>(ops / 10, 1));
  if (!beta.ok()) return beta.status();
  model.beta = *beta;
  return model;
}

}  // namespace core
}  // namespace hybridlsh
