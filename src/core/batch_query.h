// Pooled batch execution of rNNR queries.
//
// The paper's experiments time a 100-query set; production services answer
// query *streams*. BatchRunner owns one HybridSearcher per pool worker
// (searchers own per-query scratch and must not be shared) and drains each
// batch through a persistent util::ThreadPool with dynamic query
// distribution — no threads are spawned per batch, and worker scratch is
// reused across batches. The per-query hybrid decision is unchanged — only
// the orchestration is parallel, so recall guarantees and the cost model
// are unaffected.
//
// The BatchQuery free function remains as a one-shot convenience for tests
// and benches; serving call sites should hold a BatchRunner (or the
// sharded engine, engine/sharded_engine.h, which pools the same way).

#ifndef HYBRIDLSH_CORE_BATCH_QUERY_H_
#define HYBRIDLSH_CORE_BATCH_QUERY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/hybrid_searcher.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hybridlsh {
namespace core {

/// Result of one query in a batch.
struct BatchResult {
  std::vector<uint32_t> neighbors;
  QueryStats stats;
};

/// Executes query batches against one (index, dataset) pair on a caller-
/// provided persistent pool. Holds one HybridSearcher per pool worker,
/// created once and reused across Run calls. Not thread-safe: one runner =
/// one logical caller (parallelism is internal).
template <typename Index, typename Dataset>
class BatchRunner {
 public:
  /// The pool, index, and dataset must outlive the runner.
  BatchRunner(const Index* index, const Dataset* dataset,
              const SearcherOptions& options, util::ThreadPool* pool)
      : pool_(pool) {
    HLSH_CHECK(pool != nullptr);
    searchers_.reserve(pool->num_threads());
    for (size_t w = 0; w < pool->num_threads(); ++w) {
      searchers_.emplace_back(index, dataset, options);
    }
  }

  /// Answers every query in `queries` (a container with size() and
  /// point(i) -> Index::Point) within `radius`. Queries are distributed
  /// dynamically across the pool's workers; results are positionally
  /// aligned with the query set. `wall_seconds` (optional) receives the
  /// batch wall time.
  template <typename QuerySet>
  std::vector<BatchResult> Run(const QuerySet& queries, double radius,
                               double* wall_seconds = nullptr) {
    std::vector<BatchResult> results(queries.size());
    util::WallTimer timer;
    if (queries.size() > 0) {
      const size_t num_workers = std::min(searchers_.size(), queries.size());
      std::atomic<size_t> next{0};
      util::ParallelForOn(pool_, 0, num_workers, [&](size_t w) {
        HybridSearcher<Index, Dataset>& searcher = searchers_[w];
        for (size_t q = next.fetch_add(1); q < queries.size();
             q = next.fetch_add(1)) {
          searcher.Query(queries.point(q), radius, &results[q].neighbors,
                         &results[q].stats);
        }
      });
    }
    if (wall_seconds != nullptr) *wall_seconds = timer.ElapsedSeconds();
    return results;
  }

  /// Run with a pushdown filter: every query verifies only ids whose bit
  /// is set in *filter (see HybridSearcher::QueryFiltered — the filter is
  /// applied before any distance is computed, and the per-query hybrid
  /// decision prices the linear side at the filter's selectivity). The
  /// filter is shared read-only by all workers; it must not be mutated
  /// while the batch runs. A null filter is the plain Run.
  template <typename QuerySet>
  std::vector<BatchResult> RunFiltered(const QuerySet& queries, double radius,
                                       const util::BitVector* filter,
                                       double* wall_seconds = nullptr) {
    std::vector<BatchResult> results(queries.size());
    util::WallTimer timer;
    if (queries.size() > 0) {
      const size_t num_workers = std::min(searchers_.size(), queries.size());
      std::atomic<size_t> next{0};
      util::ParallelForOn(pool_, 0, num_workers, [&](size_t w) {
        HybridSearcher<Index, Dataset>& searcher = searchers_[w];
        for (size_t q = next.fetch_add(1); q < queries.size();
             q = next.fetch_add(1)) {
          searcher.QueryFiltered(queries.point(q), radius, filter,
                                 &results[q].neighbors, &results[q].stats);
        }
      });
    }
    if (wall_seconds != nullptr) *wall_seconds = timer.ElapsedSeconds();
    return results;
  }

  size_t num_workers() const { return searchers_.size(); }

 private:
  util::ThreadPool* pool_;
  std::vector<HybridSearcher<Index, Dataset>> searchers_;
};

/// One-shot convenience: builds a transient pool + runner and executes a
/// single batch with `num_threads` workers. Repeated call sites should keep
/// a BatchRunner over a persistent pool instead.
template <typename Index, typename Dataset, typename QuerySet>
std::vector<BatchResult> BatchQuery(const Index& index, const Dataset& dataset,
                                    const QuerySet& queries, double radius,
                                    const SearcherOptions& options,
                                    size_t num_threads = 1,
                                    double* wall_seconds = nullptr) {
  util::ThreadPool pool(std::max<size_t>(1, num_threads));
  BatchRunner<Index, Dataset> runner(&index, &dataset, options, &pool);
  return runner.Run(queries, radius, wall_seconds);
}

/// Aggregate view over a batch: strategy mix and output-size spread (the
/// Figure 3 quantities, computed from a live batch instead of ground
/// truth).
struct BatchSummary {
  size_t num_queries = 0;
  size_t linear_calls = 0;
  uint64_t total_collisions = 0;
  /// Sum of per-query total_seconds across all workers — aggregate CPU
  /// time, NOT elapsed time (concurrent workers overlap). Use wall_seconds
  /// for throughput.
  double total_seconds = 0;
  /// Elapsed wall time of the batch, as reported by BatchRunner::Run.
  /// 0 when Summarize was not given a measurement.
  double wall_seconds = 0;
  size_t min_output = 0;
  size_t max_output = 0;
  double avg_output = 0;

  double pct_linear_calls() const {
    return num_queries == 0
               ? 0.0
               : 100.0 * static_cast<double>(linear_calls) /
                     static_cast<double>(num_queries);
  }

  /// Queries per second of elapsed time (0 without a wall measurement).
  double qps() const {
    return wall_seconds <= 0
               ? 0.0
               : static_cast<double>(num_queries) / wall_seconds;
  }
};

/// Summarizes a batch result set. Pass the wall time captured by
/// BatchRunner::Run to get throughput; the per-query sum alone cannot
/// provide it.
inline BatchSummary Summarize(const std::vector<BatchResult>& results,
                              double wall_seconds = 0.0) {
  BatchSummary summary;
  summary.num_queries = results.size();
  summary.wall_seconds = wall_seconds;
  if (results.empty()) return summary;
  summary.min_output = results[0].neighbors.size();
  double total_output = 0;
  for (const BatchResult& result : results) {
    summary.linear_calls += result.stats.strategy == Strategy::kLinear;
    summary.total_collisions += result.stats.collisions;
    summary.total_seconds += result.stats.total_seconds;
    summary.min_output = std::min(summary.min_output, result.neighbors.size());
    summary.max_output = std::max(summary.max_output, result.neighbors.size());
    total_output += static_cast<double>(result.neighbors.size());
  }
  summary.avg_output = total_output / static_cast<double>(results.size());
  return summary;
}

}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_BATCH_QUERY_H_
