// Parallel batch execution of rNNR queries.
//
// The paper's experiments time a 100-query set; production services answer
// query *streams*. BatchQuery shards a query set across worker threads,
// each with its own HybridSearcher (searchers own per-query scratch and
// must not be shared). The per-query hybrid decision is unchanged — only
// the orchestration is parallel, so recall guarantees and the cost model
// are unaffected.

#ifndef HYBRIDLSH_CORE_BATCH_QUERY_H_
#define HYBRIDLSH_CORE_BATCH_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/hybrid_searcher.h"

namespace hybridlsh {
namespace core {

/// Result of one query in a batch.
struct BatchResult {
  std::vector<uint32_t> neighbors;
  QueryStats stats;
};

/// Answers every query in `queries` (a container with size() and
/// point(i) -> Index::Point) within `radius`, using `num_threads` workers.
/// Results are positionally aligned with the query set. Each worker builds
/// one HybridSearcher over (index, dataset) with `options`.
template <typename Index, typename Dataset, typename QuerySet>
std::vector<BatchResult> BatchQuery(const Index& index, const Dataset& dataset,
                                    const QuerySet& queries, double radius,
                                    const SearcherOptions& options,
                                    size_t num_threads = 1) {
  std::vector<BatchResult> results(queries.size());
  if (queries.size() == 0) return results;
  const size_t threads = std::max<size_t>(1, num_threads);

  // Chunk the query range; one searcher per chunk (= per worker).
  const size_t count = queries.size();
  const size_t chunk = (count + threads - 1) / threads;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = t * chunk;
    const size_t hi = std::min(count, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&, lo, hi] {
      HybridSearcher<Index, Dataset> searcher(&index, &dataset, options);
      for (size_t q = lo; q < hi; ++q) {
        searcher.Query(queries.point(q), radius, &results[q].neighbors,
                       &results[q].stats);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return results;
}

/// Aggregate view over a batch: strategy mix and output-size spread (the
/// Figure 3 quantities, computed from a live batch instead of ground
/// truth).
struct BatchSummary {
  size_t num_queries = 0;
  size_t linear_calls = 0;
  uint64_t total_collisions = 0;
  double total_seconds = 0;
  size_t min_output = 0;
  size_t max_output = 0;
  double avg_output = 0;

  double pct_linear_calls() const {
    return num_queries == 0
               ? 0.0
               : 100.0 * static_cast<double>(linear_calls) /
                     static_cast<double>(num_queries);
  }
};

/// Summarizes a batch result set.
inline BatchSummary Summarize(const std::vector<BatchResult>& results) {
  BatchSummary summary;
  summary.num_queries = results.size();
  if (results.empty()) return summary;
  summary.min_output = results[0].neighbors.size();
  double total_output = 0;
  for (const BatchResult& result : results) {
    summary.linear_calls += result.stats.strategy == Strategy::kLinear;
    summary.total_collisions += result.stats.collisions;
    summary.total_seconds += result.stats.total_seconds;
    summary.min_output = std::min(summary.min_output, result.neighbors.size());
    summary.max_output = std::max(summary.max_output, result.neighbors.size());
    total_output += static_cast<double>(result.neighbors.size());
  }
  summary.avg_output = total_output / static_cast<double>(results.size());
  return summary;
}

}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_BATCH_QUERY_H_
