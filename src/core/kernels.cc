// Per-tier kernel implementations and the block-batched verifiers.
//
// Every float kernel implements the canonical 8-lane accumulation order
// documented in util/simd.h, so all tiers return bit-identical results:
// AVX2 holds the 8 lanes in one 256-bit register, SSE2 in two 128-bit
// registers, the scalar tier in eight named accumulators; all three share
// the same pairwise reduction and the same scalar tail. This file is
// compiled with -ffp-contract=off (see CMakeLists.txt) so a
// -march=native build cannot contract the scalar tier's mul+add chains
// into FMAs the vector tiers don't use.

#include "core/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/status.h"

namespace hybridlsh {
namespace core {
namespace kernels {
namespace {

// --- Scalar tier (the reference): canonical 8-lane accumulation. -----------
// The dot product lives in util/simd.h (DotF32Scalar) so data/ can share
// it for the cosine norm cache.

float DotScalar(const float* a, const float* b, size_t d) {
  return util::simd::DotF32Scalar(a, b, d);
}

float L2SqScalar(const float* a, const float* b, size_t d) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const float diff = a[i + l] - b[i + l];
      lanes[l] += diff * diff;
    }
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
              ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float L1Scalar(const float* a, const float* b, size_t d) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) lanes[l] += std::fabs(a[i + l] - b[i + l]);
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
              ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

/// Final cosine arithmetic shared by every tier and by the
/// precomputed-norm verifier: 1 - clamp(dot / denom), zero denominators
/// treated as orthogonal (distance 1; see data/metric.h).
inline float CosineFromParts(float dot, float denom) {
  if (denom == 0.0f) return 1.0f;
  float cos = dot / denom;
  if (cos > 1.0f) cos = 1.0f;
  if (cos < -1.0f) cos = -1.0f;
  return 1.0f - cos;
}

float CosineScalar(const float* a, const float* b, size_t d) {
  float dot_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float na_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float nb_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const float x = a[i + l];
      const float y = b[i + l];
      dot_lanes[l] += x * y;
      na_lanes[l] += x * x;
      nb_lanes[l] += y * y;
    }
  }
  float dot = ((dot_lanes[0] + dot_lanes[4]) + (dot_lanes[2] + dot_lanes[6])) +
              ((dot_lanes[1] + dot_lanes[5]) + (dot_lanes[3] + dot_lanes[7]));
  float na = ((na_lanes[0] + na_lanes[4]) + (na_lanes[2] + na_lanes[6])) +
             ((na_lanes[1] + na_lanes[5]) + (na_lanes[3] + na_lanes[7]));
  float nb = ((nb_lanes[0] + nb_lanes[4]) + (nb_lanes[2] + nb_lanes[6])) +
             ((nb_lanes[1] + nb_lanes[5]) + (nb_lanes[3] + nb_lanes[7]));
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

/// Popcount-unrolled Hamming distance; integer, so exact in any order and
/// shared by every tier (at fingerprint widths the cost is load-bound, not
/// popcount-bound — there is no vector win to take below several words).
uint32_t HammingKernel(const uint64_t* a, const uint64_t* b, size_t words) {
  uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    c0 += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<uint32_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<uint32_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<uint32_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  uint32_t total = (c0 + c2) + (c1 + c3);
  for (; i < words; ++i) {
    total += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

#if defined(HLSH_SIMD_X86)

// --- SSE2 tier: the 8 virtual lanes live in two 128-bit registers. ---------

/// Reduces {lanes 0-3, lanes 4-7} with the canonical pairwise order.
__attribute__((target("sse2"))) inline float ReduceLanesSse2(__m128 acc_lo,
                                                             __m128 acc_hi) {
  const __m128 s = _mm_add_ps(acc_lo, acc_hi);  // [s0, s1, s2, s3]
  const __m128 pair = _mm_add_ps(s, _mm_movehl_ps(s, s));  // [s0+s2, s1+s3]
  return _mm_cvtss_f32(pair) +
         _mm_cvtss_f32(_mm_shuffle_ps(pair, pair, 1));
}

__attribute__((target("sse2"))) float DotSse2(const float* a, const float* b,
                                              size_t d) {
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc_lo = _mm_add_ps(acc_lo,
                        _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    acc_hi = _mm_add_ps(
        acc_hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("sse2"))) float L2SqSse2(const float* a, const float* b,
                                               size_t d) {
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 d_lo = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 d_hi =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d_lo, d_lo));
    acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d_hi, d_hi));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("sse2"))) float L1Sse2(const float* a, const float* b,
                                             size_t d) {
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 d_lo = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 d_hi =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    acc_lo = _mm_add_ps(acc_lo, _mm_and_ps(d_lo, abs_mask));
    acc_hi = _mm_add_ps(acc_hi, _mm_and_ps(d_hi, abs_mask));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

__attribute__((target("sse2"))) float CosineSse2(const float* a,
                                                 const float* b, size_t d) {
  __m128 dot_lo = _mm_setzero_ps(), dot_hi = _mm_setzero_ps();
  __m128 na_lo = _mm_setzero_ps(), na_hi = _mm_setzero_ps();
  __m128 nb_lo = _mm_setzero_ps(), nb_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 x_lo = _mm_loadu_ps(a + i);
    const __m128 x_hi = _mm_loadu_ps(a + i + 4);
    const __m128 y_lo = _mm_loadu_ps(b + i);
    const __m128 y_hi = _mm_loadu_ps(b + i + 4);
    dot_lo = _mm_add_ps(dot_lo, _mm_mul_ps(x_lo, y_lo));
    dot_hi = _mm_add_ps(dot_hi, _mm_mul_ps(x_hi, y_hi));
    na_lo = _mm_add_ps(na_lo, _mm_mul_ps(x_lo, x_lo));
    na_hi = _mm_add_ps(na_hi, _mm_mul_ps(x_hi, x_hi));
    nb_lo = _mm_add_ps(nb_lo, _mm_mul_ps(y_lo, y_lo));
    nb_hi = _mm_add_ps(nb_hi, _mm_mul_ps(y_hi, y_hi));
  }
  float dot = ReduceLanesSse2(dot_lo, dot_hi);
  float na = ReduceLanesSse2(na_lo, na_hi);
  float nb = ReduceLanesSse2(nb_lo, nb_hi);
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

// --- AVX2 tier: the 8 virtual lanes are one 256-bit register. --------------

__attribute__((target("avx2"))) inline float ReduceLanesAvx2(__m256 acc) {
  const __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                              _mm256_extractf128_ps(acc, 1));
  const __m128 pair = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(pair) +
         _mm_cvtss_f32(_mm_shuffle_ps(pair, pair, 1));
}

__attribute__((target("avx2"))) float DotAvx2(const float* a, const float* b,
                                              size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) float L2SqAvx2(const float* a, const float* b,
                                               size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx2"))) float L1Avx2(const float* a, const float* b,
                                             size_t d) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_and_ps(diff, abs_mask));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

__attribute__((target("avx2"))) float CosineAvx2(const float* a,
                                                 const float* b, size_t d) {
  __m256 dot_acc = _mm256_setzero_ps();
  __m256 na_acc = _mm256_setzero_ps();
  __m256 nb_acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 x = _mm256_loadu_ps(a + i);
    const __m256 y = _mm256_loadu_ps(b + i);
    dot_acc = _mm256_add_ps(dot_acc, _mm256_mul_ps(x, y));
    na_acc = _mm256_add_ps(na_acc, _mm256_mul_ps(x, x));
    nb_acc = _mm256_add_ps(nb_acc, _mm256_mul_ps(y, y));
  }
  float dot = ReduceLanesAvx2(dot_acc);
  float na = ReduceLanesAvx2(na_acc);
  float nb = ReduceLanesAvx2(nb_acc);
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

#endif  // HLSH_SIMD_X86

// --- Int8 screen kernels. ---------------------------------------------------
// Integer sums are exact in any order, so tiers agree bit-for-bit by
// construction; no canonical-lane choreography needed. Overflow is bounded
// by data::QuantizedMirror::kMaxDim (elements <= 254^2 per product).

int32_t Int8L1Scalar(const int8_t* a, const int8_t* b, size_t d) {
  int32_t sum = 0;
  for (size_t i = 0; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff < 0 ? -diff : diff;
  }
  return sum;
}

int32_t Int8L2SqScalar(const int8_t* a, const int8_t* b, size_t d) {
  int32_t sum = 0;
  for (size_t i = 0; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

int32_t Int8DotScalar(const int8_t* a, const int8_t* b, size_t d) {
  int32_t sum = 0;
  for (size_t i = 0; i < d; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

#if defined(HLSH_SIMD_X86)

// L1 tiers ride PSADBW: xor with 0x80 biases signed bytes to unsigned
// without changing differences, and the sum-of-absolute-differences unit
// folds 8 bytes per 64-bit lane in one instruction.

__attribute__((target("sse2"))) int32_t Int8L1Sse2(const int8_t* a,
                                                   const int8_t* b, size_t d) {
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i acc = _mm_setzero_si128();  // two u64 partial sums
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), bias);
    const __m128i y = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), bias);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(x, y));
  }
  int32_t sum =
      _mm_cvtsi128_si32(_mm_add_epi64(acc, _mm_srli_si128(acc, 8)));
  for (; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff < 0 ? -diff : diff;
  }
  return sum;
}

/// Sign-extends 16 packed int8 into two 8x16 registers (SSE2 has no
/// PMOVSXBW: interleave into the high byte, then arithmetic-shift down).
__attribute__((target("sse2"))) inline void SignExtend8To16Sse2(
    __m128i v, __m128i* lo, __m128i* hi) {
  const __m128i zero = _mm_setzero_si128();
  *lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, v), 8);
  *hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, v), 8);
}

__attribute__((target("sse2"))) inline int32_t ReduceI32Sse2(__m128i acc) {
  acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 8));
  acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 4));
  return _mm_cvtsi128_si32(acc);
}

__attribute__((target("sse2"))) int32_t Int8L2SqSse2(const int8_t* a,
                                                     const int8_t* b,
                                                     size_t d) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m128i x_lo, x_hi, y_lo, y_hi;
    SignExtend8To16Sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), &x_lo, &x_hi);
    SignExtend8To16Sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), &y_lo, &y_hi);
    const __m128i d_lo = _mm_sub_epi16(x_lo, y_lo);
    const __m128i d_hi = _mm_sub_epi16(x_hi, y_hi);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
  }
  int32_t sum = ReduceI32Sse2(acc);
  for (; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("sse2"))) int32_t Int8DotSse2(const int8_t* a,
                                                    const int8_t* b, size_t d) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m128i x_lo, x_hi, y_lo, y_hi;
    SignExtend8To16Sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), &x_lo, &x_hi);
    SignExtend8To16Sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), &y_lo, &y_hi);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(x_lo, y_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(x_hi, y_hi));
  }
  int32_t sum = ReduceI32Sse2(acc);
  for (; i < d; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

__attribute__((target("avx2"))) int32_t Int8L1Avx2(const int8_t* a,
                                                   const int8_t* b, size_t d) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  __m256i acc = _mm256_setzero_si256();  // four u64 partial sums
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), bias);
    const __m256i y = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), bias);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(x, y));
  }
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  int32_t sum = _mm_cvtsi128_si32(_mm_add_epi64(s, _mm_srli_si128(s, 8)));
  for (; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff < 0 ? -diff : diff;
  }
  return sum;
}

__attribute__((target("avx2"))) inline int32_t ReduceI32Avx2(__m256i acc) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) int32_t Int8L2SqAvx2(const int8_t* a,
                                                     const int8_t* b,
                                                     size_t d) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d_lo =
        _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(x)),
                         _mm256_cvtepi8_epi16(_mm256_castsi256_si128(y)));
    const __m256i d_hi =
        _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(x, 1)),
                         _mm256_cvtepi8_epi16(_mm256_extracti128_si256(y, 1)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
  }
  int32_t sum = ReduceI32Avx2(acc);
  for (; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx2"))) int32_t Int8DotAvx2(const int8_t* a,
                                                    const int8_t* b, size_t d) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(
        acc,
        _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(x)),
                          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(y))));
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(
                 _mm256_cvtepi8_epi16(_mm256_extracti128_si256(x, 1)),
                 _mm256_cvtepi8_epi16(_mm256_extracti128_si256(y, 1))));
  }
  int32_t sum = ReduceI32Avx2(acc);
  for (; i < d; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

#endif  // HLSH_SIMD_X86

// Block forms. The screen's candidate rows are a random gather, so every
// implementation prefetches this many candidates ahead of the one it is
// summing; the AVX2 tier additionally interleaves two candidates against
// shared query registers (independent accumulator chains hide the
// madd/add latency that bounds the pair kernels).
constexpr size_t kInt8BlockPrefetchAhead = 8;

inline void PrefetchInt8Row(const int8_t* row, size_t bytes) {
  for (size_t offset = 0; offset < bytes; offset += 64) {
    __builtin_prefetch(row + offset, /*rw=*/0, /*locality=*/1);
  }
}

/// Pair kernel in a prefetching gather loop (the scalar / SSE2 tiers).
template <int32_t (*Pair)(const int8_t*, const int8_t*, size_t)>
void Int8BlockGeneric(const int8_t* codes, size_t dim, const uint32_t* ids,
                      size_t count, const int8_t* query, int32_t* sums) {
  for (size_t k = 0; k < count; ++k) {
    if (k + kInt8BlockPrefetchAhead < count) {
      PrefetchInt8Row(
          codes + static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead]) * dim,
          dim);
    }
    sums[k] = Pair(codes + static_cast<size_t>(ids[k]) * dim, query, dim);
  }
}

#if defined(HLSH_SIMD_X86)

__attribute__((target("avx2"))) void Int8L1BlockAvx2(
    const int8_t* codes, size_t dim, const uint32_t* ids, size_t count,
    const int8_t* query, int32_t* sums) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    if (k + kInt8BlockPrefetchAhead + 1 < count) {
      PrefetchInt8Row(
          codes + static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead]) * dim,
          dim);
      PrefetchInt8Row(
          codes +
              static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead + 1]) * dim,
          dim);
    }
    const int8_t* a0 = codes + static_cast<size_t>(ids[k]) * dim;
    const int8_t* a1 = codes + static_cast<size_t>(ids[k + 1]) * dim;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 32 <= dim; i += 32) {
      const __m256i y = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + i)),
          bias);
      const __m256i x0 = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + i)), bias);
      const __m256i x1 = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + i)), bias);
      acc0 = _mm256_add_epi64(acc0, _mm256_sad_epu8(x0, y));
      acc1 = _mm256_add_epi64(acc1, _mm256_sad_epu8(x1, y));
    }
    const __m128i s0 = _mm_add_epi64(_mm256_castsi256_si128(acc0),
                                     _mm256_extracti128_si256(acc0, 1));
    const __m128i s1 = _mm_add_epi64(_mm256_castsi256_si128(acc1),
                                     _mm256_extracti128_si256(acc1, 1));
    int32_t sum0 =
        _mm_cvtsi128_si32(_mm_add_epi64(s0, _mm_srli_si128(s0, 8)));
    int32_t sum1 =
        _mm_cvtsi128_si32(_mm_add_epi64(s1, _mm_srli_si128(s1, 8)));
    for (; i < dim; ++i) {
      const int32_t y = query[i];
      const int32_t d0 = static_cast<int32_t>(a0[i]) - y;
      const int32_t d1 = static_cast<int32_t>(a1[i]) - y;
      sum0 += d0 < 0 ? -d0 : d0;
      sum1 += d1 < 0 ? -d1 : d1;
    }
    sums[k] = sum0;
    sums[k + 1] = sum1;
  }
  for (; k < count; ++k) {
    sums[k] = Int8L1Avx2(codes + static_cast<size_t>(ids[k]) * dim, query, dim);
  }
}

__attribute__((target("avx2"))) void Int8L2SqBlockAvx2(
    const int8_t* codes, size_t dim, const uint32_t* ids, size_t count,
    const int8_t* query, int32_t* sums) {
  size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    if (k + kInt8BlockPrefetchAhead + 1 < count) {
      PrefetchInt8Row(
          codes + static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead]) * dim,
          dim);
      PrefetchInt8Row(
          codes +
              static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead + 1]) * dim,
          dim);
    }
    const int8_t* a0 = codes + static_cast<size_t>(ids[k]) * dim;
    const int8_t* a1 = codes + static_cast<size_t>(ids[k + 1]) * dim;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 32 <= dim; i += 32) {
      const __m256i y =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + i));
      const __m256i y_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(y));
      const __m256i y_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(y, 1));
      const __m256i x0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + i));
      const __m256i x1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + i));
      const __m256i d0_lo = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(x0)), y_lo);
      const __m256i d0_hi = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(x0, 1)), y_hi);
      const __m256i d1_lo = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(x1)), y_lo);
      const __m256i d1_hi = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(x1, 1)), y_hi);
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(d0_lo, d0_lo));
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(d0_hi, d0_hi));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(d1_lo, d1_lo));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(d1_hi, d1_hi));
    }
    int32_t sum0 = ReduceI32Avx2(acc0);
    int32_t sum1 = ReduceI32Avx2(acc1);
    for (; i < dim; ++i) {
      const int32_t y = query[i];
      const int32_t d0 = static_cast<int32_t>(a0[i]) - y;
      const int32_t d1 = static_cast<int32_t>(a1[i]) - y;
      sum0 += d0 * d0;
      sum1 += d1 * d1;
    }
    sums[k] = sum0;
    sums[k + 1] = sum1;
  }
  for (; k < count; ++k) {
    sums[k] =
        Int8L2SqAvx2(codes + static_cast<size_t>(ids[k]) * dim, query, dim);
  }
}

__attribute__((target("avx2"))) void Int8DotBlockAvx2(
    const int8_t* codes, size_t dim, const uint32_t* ids, size_t count,
    const int8_t* query, int32_t* sums) {
  size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    if (k + kInt8BlockPrefetchAhead + 1 < count) {
      PrefetchInt8Row(
          codes + static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead]) * dim,
          dim);
      PrefetchInt8Row(
          codes +
              static_cast<size_t>(ids[k + kInt8BlockPrefetchAhead + 1]) * dim,
          dim);
    }
    const int8_t* a0 = codes + static_cast<size_t>(ids[k]) * dim;
    const int8_t* a1 = codes + static_cast<size_t>(ids[k + 1]) * dim;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 32 <= dim; i += 32) {
      const __m256i y =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + i));
      const __m256i y_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(y));
      const __m256i y_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(y, 1));
      const __m256i x0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + i));
      const __m256i x1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + i));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(x0)), y_lo));
      acc0 = _mm256_add_epi32(
          acc0,
          _mm256_madd_epi16(
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(x0, 1)), y_hi));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm256_castsi256_si128(x1)), y_lo));
      acc1 = _mm256_add_epi32(
          acc1,
          _mm256_madd_epi16(
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(x1, 1)), y_hi));
    }
    int32_t sum0 = ReduceI32Avx2(acc0);
    int32_t sum1 = ReduceI32Avx2(acc1);
    for (; i < dim; ++i) {
      const int32_t y = query[i];
      sum0 += static_cast<int32_t>(a0[i]) * y;
      sum1 += static_cast<int32_t>(a1[i]) * y;
    }
    sums[k] = sum0;
    sums[k + 1] = sum1;
  }
  for (; k < count; ++k) {
    sums[k] =
        Int8DotAvx2(codes + static_cast<size_t>(ids[k]) * dim, query, dim);
  }
}

#endif  // HLSH_SIMD_X86

const Int8KernelTable kInt8ScalarTable = {
    .tier = util::simd::Tier::kScalar,
    .l1 = &Int8L1Scalar,
    .l2sq = &Int8L2SqScalar,
    .dot = &Int8DotScalar,
    .l1_block = &Int8BlockGeneric<&Int8L1Scalar>,
    .l2sq_block = &Int8BlockGeneric<&Int8L2SqScalar>,
    .dot_block = &Int8BlockGeneric<&Int8DotScalar>,
};

#if defined(HLSH_SIMD_X86)
const Int8KernelTable kInt8Sse2Table = {
    .tier = util::simd::Tier::kSse2,
    .l1 = &Int8L1Sse2,
    .l2sq = &Int8L2SqSse2,
    .dot = &Int8DotSse2,
    .l1_block = &Int8BlockGeneric<&Int8L1Sse2>,
    .l2sq_block = &Int8BlockGeneric<&Int8L2SqSse2>,
    .dot_block = &Int8BlockGeneric<&Int8DotSse2>,
};

const Int8KernelTable kInt8Avx2Table = {
    .tier = util::simd::Tier::kAvx2,
    .l1 = &Int8L1Avx2,
    .l2sq = &Int8L2SqAvx2,
    .dot = &Int8DotAvx2,
    .l1_block = &Int8L1BlockAvx2,
    .l2sq_block = &Int8L2SqBlockAvx2,
    .dot_block = &Int8DotBlockAvx2,
};
#endif  // HLSH_SIMD_X86

const KernelTable kScalarTable = {
    .tier = util::simd::Tier::kScalar,
    .l1 = &L1Scalar,
    .l2sq = &L2SqScalar,
    .dot = &DotScalar,
    .cosine = &CosineScalar,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxScalar,
    .hll_sum = &util::simd::HllRegisterSumScalar,
};

#if defined(HLSH_SIMD_X86)
const KernelTable kSse2Table = {
    .tier = util::simd::Tier::kSse2,
    .l1 = &L1Sse2,
    .l2sq = &L2SqSse2,
    .dot = &DotSse2,
    .cosine = &CosineSse2,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxSse2,
    // No gather below AVX2: the fused sum is lookup-bound, so this tier
    // shares the scalar implementation (bit-identical by construction).
    .hll_sum = &util::simd::HllRegisterSumScalar,
};

const KernelTable kAvx2Table = {
    .tier = util::simd::Tier::kAvx2,
    .l1 = &L1Avx2,
    .l2sq = &L2SqAvx2,
    .dot = &DotAvx2,
    .cosine = &CosineAvx2,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxAvx2,
    .hll_sum = &util::simd::HllRegisterSumAvx2,
};
#endif  // HLSH_SIMD_X86

// --- Block verification internals. -----------------------------------------

/// Ids farther ahead than this are prefetched while the current candidate
/// is verified; ~4 rows hides DRAM latency behind one row's arithmetic
/// without thrashing the prefetch queue.
constexpr size_t kPrefetchAhead = 4;

inline void PrefetchRow(const void* row, size_t bytes) {
  const char* p = static_cast<const char*>(row);
  for (size_t offset = 0; offset < bytes; offset += 64) {
    __builtin_prefetch(p + offset, /*rw=*/0, /*locality=*/1);
  }
}

// --- Projection kernels (S1 query hashing). ---------------------------------
// See ProjectionKernelTable in kernels.h. Each (row, query) dot product
// follows the canonical 8-lane order; the block forms only reorder which
// pair is computed when, never how a pair accumulates, so single and
// blocked forms agree bit-exactly across every tier.

/// Matrix rows ahead of the current one to prefetch. Projection matrices
/// are small (k rows) and walked front to back, so a shallow distance
/// keeps the next row in flight without evicting the query vector.
constexpr size_t kProjRowPrefetchAhead = 2;

void ProjectMatvecScalar(const float* matrix, size_t k, size_t dim,
                         const float* query, float* out) {
  const size_t row_bytes = dim * sizeof(float);
  for (size_t i = 0; i < k; ++i) {
    if (i + kProjRowPrefetchAhead < k) {
      PrefetchRow(matrix + (i + kProjRowPrefetchAhead) * dim, row_bytes);
    }
    out[i] = util::simd::DotF32Scalar(matrix + i * dim, query, dim);
  }
}

/// Generic block form over any pair dot kernel: rows outer, queries inner,
/// so each matrix row is loaded from memory once and served to every query
/// of the batch from cache (the GEMM-shaped traversal).
template <float (*Dot)(const float*, const float*, size_t)>
void ProjectBlockGeneric(const float* matrix, size_t k, size_t dim,
                         const float* const* queries, size_t count,
                         float* out) {
  const size_t row_bytes = dim * sizeof(float);
  for (size_t i = 0; i < k; ++i) {
    if (i + kProjRowPrefetchAhead < k) {
      PrefetchRow(matrix + (i + kProjRowPrefetchAhead) * dim, row_bytes);
    }
    const float* row = matrix + i * dim;
    for (size_t q = 0; q < count; ++q) {
      out[q * k + i] = Dot(row, queries[q], dim);
    }
  }
}

#if defined(HLSH_SIMD_X86)

__attribute__((target("sse2"))) void ProjectMatvecSse2(const float* matrix,
                                                       size_t k, size_t dim,
                                                       const float* query,
                                                       float* out) {
  const size_t row_bytes = dim * sizeof(float);
  for (size_t i = 0; i < k; ++i) {
    if (i + kProjRowPrefetchAhead < k) {
      PrefetchRow(matrix + (i + kProjRowPrefetchAhead) * dim, row_bytes);
    }
    out[i] = DotSse2(matrix + i * dim, query, dim);
  }
}

/// AVX2 matvec: four matrix rows interleave against one pass over the
/// query. A single canonical-order dot is one add chain (latency-bound at
/// ~2 elements/cycle regardless of vector width — which is why a naive
/// AVX2 matvec ties the auto-vectorized scalar tier); four rows give four
/// independent chains while each row's own accumulation stays in
/// DotAvx2's exact order, so results remain bit-identical.
__attribute__((target("avx2"))) void ProjectMatvecAvx2(const float* matrix,
                                                       size_t k, size_t dim,
                                                       const float* query,
                                                       float* out) {
  const size_t row_bytes = dim * sizeof(float);
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    if (i + 4 < k) {
      const size_t next = i + 4;
      const size_t stop = next + 4 < k ? next + 4 : k;
      for (size_t p = next; p < stop; ++p) {
        PrefetchRow(matrix + p * dim, row_bytes);
      }
    }
    const float* r0 = matrix + i * dim;
    const float* r1 = matrix + (i + 1) * dim;
    const float* r2 = matrix + (i + 2) * dim;
    const float* r3 = matrix + (i + 3) * dim;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      const __m256 q = _mm256_loadu_ps(query + j);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(q, _mm256_loadu_ps(r0 + j)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(q, _mm256_loadu_ps(r1 + j)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(q, _mm256_loadu_ps(r2 + j)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(q, _mm256_loadu_ps(r3 + j)));
    }
    float sum0 = ReduceLanesAvx2(acc0);
    float sum1 = ReduceLanesAvx2(acc1);
    float sum2 = ReduceLanesAvx2(acc2);
    float sum3 = ReduceLanesAvx2(acc3);
    for (; j < dim; ++j) {
      const float q = query[j];
      sum0 += r0[j] * q;
      sum1 += r1[j] * q;
      sum2 += r2[j] * q;
      sum3 += r3[j] * q;
    }
    out[i] = sum0;
    out[i + 1] = sum1;
    out[i + 2] = sum2;
    out[i + 3] = sum3;
  }
  for (; i < k; ++i) {
    out[i] = DotAvx2(matrix + i * dim, query, dim);
  }
}

/// AVX2 block form: query groups of four outer, matrix rows inner. The
/// four active queries stay L1-resident while the matrix streams through
/// once per group, so large-dim batches read each row count/4 times
/// instead of per-row re-reading every query vector (the dominant L2
/// traffic when count*dim outgrows L1); the four accumulator chains per
/// row hide add latency exactly like ProjectMatvecAvx2's row interleave.
/// Each query keeps its own accumulator register fed in DotAvx2's exact
/// order, so single and blocked forms agree bitwise.
__attribute__((target("avx2"))) void ProjectBlockAvx2(
    const float* matrix, size_t k, size_t dim, const float* const* queries,
    size_t count, float* out) {
  const size_t row_bytes = dim * sizeof(float);
  size_t q = 0;
  for (; q + 4 <= count; q += 4) {
    const float* qa = queries[q];
    const float* qb = queries[q + 1];
    const float* qc = queries[q + 2];
    const float* qd = queries[q + 3];
    for (size_t i = 0; i < k; ++i) {
      if (i + kProjRowPrefetchAhead < k) {
        PrefetchRow(matrix + (i + kProjRowPrefetchAhead) * dim, row_bytes);
      }
      const float* row = matrix + i * dim;
      __m256 acc_a = _mm256_setzero_ps();
      __m256 acc_b = _mm256_setzero_ps();
      __m256 acc_c = _mm256_setzero_ps();
      __m256 acc_d = _mm256_setzero_ps();
      size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256 r = _mm256_loadu_ps(row + j);
        acc_a = _mm256_add_ps(acc_a, _mm256_mul_ps(r, _mm256_loadu_ps(qa + j)));
        acc_b = _mm256_add_ps(acc_b, _mm256_mul_ps(r, _mm256_loadu_ps(qb + j)));
        acc_c = _mm256_add_ps(acc_c, _mm256_mul_ps(r, _mm256_loadu_ps(qc + j)));
        acc_d = _mm256_add_ps(acc_d, _mm256_mul_ps(r, _mm256_loadu_ps(qd + j)));
      }
      float sum_a = ReduceLanesAvx2(acc_a);
      float sum_b = ReduceLanesAvx2(acc_b);
      float sum_c = ReduceLanesAvx2(acc_c);
      float sum_d = ReduceLanesAvx2(acc_d);
      for (; j < dim; ++j) {
        const float r = row[j];
        sum_a += r * qa[j];
        sum_b += r * qb[j];
        sum_c += r * qc[j];
        sum_d += r * qd[j];
      }
      out[q * k + i] = sum_a;
      out[(q + 1) * k + i] = sum_b;
      out[(q + 2) * k + i] = sum_c;
      out[(q + 3) * k + i] = sum_d;
    }
  }
  if (q + 2 <= count) {
    const float* qa = queries[q];
    const float* qb = queries[q + 1];
    for (size_t i = 0; i < k; ++i) {
      if (i + kProjRowPrefetchAhead < k) {
        PrefetchRow(matrix + (i + kProjRowPrefetchAhead) * dim, row_bytes);
      }
      const float* row = matrix + i * dim;
      __m256 acc_a = _mm256_setzero_ps();
      __m256 acc_b = _mm256_setzero_ps();
      size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256 r = _mm256_loadu_ps(row + j);
        acc_a = _mm256_add_ps(acc_a, _mm256_mul_ps(r, _mm256_loadu_ps(qa + j)));
        acc_b = _mm256_add_ps(acc_b, _mm256_mul_ps(r, _mm256_loadu_ps(qb + j)));
      }
      float sum_a = ReduceLanesAvx2(acc_a);
      float sum_b = ReduceLanesAvx2(acc_b);
      for (; j < dim; ++j) {
        sum_a += row[j] * qa[j];
        sum_b += row[j] * qb[j];
      }
      out[q * k + i] = sum_a;
      out[(q + 1) * k + i] = sum_b;
    }
    q += 2;
  }
  for (; q < count; ++q) {
    ProjectMatvecAvx2(matrix, k, dim, queries[q], out + q * k);
  }
}

#endif  // HLSH_SIMD_X86

const ProjectionKernelTable kProjScalarTable = {
    .tier = util::simd::Tier::kScalar,
    .matvec = &ProjectMatvecScalar,
    .matvec_block = &ProjectBlockGeneric<&DotScalar>,
};

#if defined(HLSH_SIMD_X86)
const ProjectionKernelTable kProjSse2Table = {
    .tier = util::simd::Tier::kSse2,
    .matvec = &ProjectMatvecSse2,
    .matvec_block = &ProjectBlockGeneric<&DotSse2>,
};

const ProjectionKernelTable kProjAvx2Table = {
    .tier = util::simd::Tier::kAvx2,
    .matvec = &ProjectMatvecAvx2,
    .matvec_block = &ProjectBlockAvx2,
};
#endif  // HLSH_SIMD_X86

/// Dense verification over any id sequence. `id_at(j)` maps a block
/// position to a candidate id; the flat-buffer and contiguous-range entry
/// points both inline through here so their behavior cannot diverge.
template <typename IdAt>
size_t VerifyDenseImpl(const data::DenseDataset& dataset, data::Metric metric,
                       const float* query, size_t count, IdAt id_at,
                       double radius, std::vector<uint32_t>* out) {
  const size_t dim = dataset.dim();
  const size_t row_bytes = dim * sizeof(float);
  const KernelTable& table = Kernels();
  size_t reported = 0;
  const auto report = [&](uint32_t id) {
    out->push_back(id);
    ++reported;
  };

  switch (metric) {
    case data::Metric::kL2: {
      const double r2 = radius * radius;
      for (size_t j = 0; j < count; ++j) {
        if (j + kPrefetchAhead < count) {
          PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
        }
        const uint32_t id = id_at(j);
        if (static_cast<double>(table.l2sq(dataset.point(id), query, dim)) <=
            r2) {
          report(id);
        }
      }
      return reported;
    }
    case data::Metric::kL1: {
      for (size_t j = 0; j < count; ++j) {
        if (j + kPrefetchAhead < count) {
          PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
        }
        const uint32_t id = id_at(j);
        if (static_cast<double>(table.l1(dataset.point(id), query, dim)) <=
            radius) {
          report(id);
        }
      }
      return reported;
    }
    case data::Metric::kCosine: {
      if (dataset.has_norms()) {
        // Fast path: one dot product per candidate; the candidate's norm
        // comes from the dataset cache, the query's is computed once.
        const std::span<const float> norms = dataset.norms();
        const float query_norm = std::sqrt(table.dot(query, query, dim));
        for (size_t j = 0; j < count; ++j) {
          if (j + kPrefetchAhead < count) {
            PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
          }
          const uint32_t id = id_at(j);
          const float dot = table.dot(dataset.point(id), query, dim);
          const float dist = CosineFromParts(dot, norms[id] * query_norm);
          if (static_cast<double>(dist) <= radius) report(id);
        }
      } else {
        for (size_t j = 0; j < count; ++j) {
          if (j + kPrefetchAhead < count) {
            PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
          }
          const uint32_t id = id_at(j);
          const float dist = table.cosine(dataset.point(id), query, dim);
          if (static_cast<double>(dist) <= radius) report(id);
        }
      }
      return reported;
    }
    default:
      HLSH_CHECK(false && "VerifyBlock: metric does not apply to dense rows");
      return 0;
  }
}

template <typename IdAt>
size_t VerifyBinaryImpl(const data::BinaryDataset& dataset,
                        const uint64_t* query, size_t count, IdAt id_at,
                        double radius, std::vector<uint32_t>* out) {
  const size_t words = dataset.words_per_code();
  const size_t row_bytes = words * sizeof(uint64_t);
  const KernelTable& table = Kernels();
  size_t reported = 0;
  for (size_t j = 0; j < count; ++j) {
    if (j + kPrefetchAhead < count) {
      PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
    }
    const uint32_t id = id_at(j);
    const uint32_t dist = table.hamming(dataset.point(id), query, words);
    if (static_cast<double>(dist) <= radius) {
      out->push_back(id);
      ++reported;
    }
  }
  return reported;
}

/// Compacts `ids` to the subsequence whose filter bit is set (ids the
/// filter does not cover are dropped — see the kernels.h contract). The
/// filtered entry points run the unfiltered kernels over the compacted
/// buffer: order is preserved, so a filtered call emits exactly what the
/// unfiltered call would have emitted, restricted to surviving ids, and
/// the distance loops never pay a per-candidate filter branch.
void CompactFiltered(std::span<const uint32_t> ids,
                     const util::BitVector& filter,
                     std::vector<uint32_t>* survivors) {
  survivors->clear();
  const size_t bound = filter.size();
  const size_t n = ids.size();
  constexpr size_t kFilterPrefetchAhead = 8;
  for (size_t j = 0; j < n; ++j) {
    if (j + kFilterPrefetchAhead < n &&
        ids[j + kFilterPrefetchAhead] < bound) {
      filter.PrefetchWord(ids[j + kFilterPrefetchAhead]);
    }
    const uint32_t id = ids[j];
    if (id < bound && filter.Get(id)) survivors->push_back(id);
  }
}

/// The contiguous-range analogue: survivors of [begin, end) by
/// word-skipping the filter bitmap — O(range/64 + survivors), which is
/// what makes the filtered linear scan profitable at low selectivity.
void CompactFilteredRange(uint32_t begin, uint32_t end,
                          const util::BitVector& filter,
                          std::vector<uint32_t>* survivors) {
  survivors->clear();
  filter.ForEachSetBitInRange(begin, end, [&](size_t id) {
    survivors->push_back(static_cast<uint32_t>(id));
  });
}

}  // namespace

const KernelTable& KernelsForTier(util::simd::Tier tier) {
#if defined(HLSH_SIMD_X86)
  switch (std::min(tier, util::simd::MaxSupportedTier())) {
    case util::simd::Tier::kAvx2:
      return kAvx2Table;
    case util::simd::Tier::kSse2:
      return kSse2Table;
    case util::simd::Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return kScalarTable;
}

const KernelTable& Kernels() {
  return KernelsForTier(util::ResolvedSimdTier());
}

const Int8KernelTable& Int8KernelsForTier(util::simd::Tier tier) {
#if defined(HLSH_SIMD_X86)
  switch (std::min(tier, util::simd::MaxSupportedTier())) {
    case util::simd::Tier::kAvx2:
      return kInt8Avx2Table;
    case util::simd::Tier::kSse2:
      return kInt8Sse2Table;
    case util::simd::Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return kInt8ScalarTable;
}

const Int8KernelTable& Int8Kernels() {
  return Int8KernelsForTier(util::ResolvedSimdTier());
}

const ProjectionKernelTable& ProjectionKernelsForTier(util::simd::Tier tier) {
#if defined(HLSH_SIMD_X86)
  switch (std::min(tier, util::simd::MaxSupportedTier())) {
    case util::simd::Tier::kAvx2:
      return kProjAvx2Table;
    case util::simd::Tier::kSse2:
      return kProjSse2Table;
    case util::simd::Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return kProjScalarTable;
}

const ProjectionKernelTable& ProjectionKernels() {
  return ProjectionKernelsForTier(util::ResolvedSimdTier());
}

size_t VerifyBlock(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, std::span<const uint32_t> ids,
                   double radius, std::vector<uint32_t>* out,
                   const util::BitVector* filter) {
  if (filter != nullptr) {
    thread_local std::vector<uint32_t> survivors;
    CompactFiltered(ids, *filter, &survivors);
    return VerifyDenseImpl(
        dataset, metric, query, survivors.size(),
        [&](size_t j) { return survivors[j]; }, radius, out);
  }
  return VerifyDenseImpl(
      dataset, metric, query, ids.size(), [&](size_t j) { return ids[j]; },
      radius, out);
}

size_t VerifyRange(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, uint32_t begin, uint32_t end,
                   double radius, std::vector<uint32_t>* out,
                   const util::BitVector* filter) {
  if (end <= begin) return 0;
  if (filter != nullptr) {
    thread_local std::vector<uint32_t> survivors;
    CompactFilteredRange(begin, end, *filter, &survivors);
    return VerifyDenseImpl(
        dataset, metric, query, survivors.size(),
        [&](size_t j) { return survivors[j]; }, radius, out);
  }
  return VerifyDenseImpl(
      dataset, metric, query, static_cast<size_t>(end - begin),
      [&](size_t j) { return begin + static_cast<uint32_t>(j); }, radius, out);
}

size_t VerifyBlockQuantized(const data::DenseDataset& dataset,
                            const data::QuantizedMirror& mirror,
                            data::Metric metric, const float* query,
                            std::span<const uint32_t> ids, double radius,
                            std::vector<uint32_t>* out,
                            QuantizedScreenStats* stats,
                            const util::BitVector* filter) {
  if (filter != nullptr) {
    // Filter before the screen: filtered-out candidates pay one bit test,
    // not an int8 kernel row. Stats then count survivors only. The
    // compacted buffer is a subsequence of `ids`, so emission order still
    // matches the unfiltered call restricted to survivors.
    thread_local std::vector<uint32_t> filter_survivors;
    CompactFiltered(ids, *filter, &filter_survivors);
    return VerifyBlockQuantized(dataset, mirror, metric, query,
                                std::span<const uint32_t>(filter_survivors),
                                radius, out, stats, nullptr);
  }
  const size_t dim = dataset.dim();
  const bool cosine = metric == data::Metric::kCosine;
  if (!mirror.enabled() || mirror.dim() != dim ||
      (cosine && (!dataset.has_norms() || radius >= 2.0))) {
    // No screen to run (or, for cosine with radius >= 2, the clamp in
    // CosineFromParts caps every float distance at 2 and the out-test
    // would wrongly reject): exact path for everything.
    return VerifyBlock(dataset, metric, query, ids, radius, out);
  }

  const double scale = mirror.scale();
  const double inv_scale = 1.0 / scale;

  // Quantize the query once and measure its quantization error EXACTLY
  // (the data side is bounded by scale/2 per element; the query side need
  // not be — out-of-range or non-finite elements clamp to codes whose
  // error these sums still capture, except NaN, which poisons the sums so
  // every comparison below fails and every candidate goes borderline).
  thread_local std::vector<int8_t> qquery;
  qquery.resize(dim);
  double query_l1_err = 0.0;  // sum |y - s*qy|
  double query_l2_err_sq = 0.0;  // sum (y - s*qy)^2
  double query_norm_sq = 0.0;  // sum y^2 (cosine bound)
  for (size_t d = 0; d < dim; ++d) {
    const double y = static_cast<double>(query[d]);
    long long q = 0;
    if (std::isfinite(y)) {
      q = std::llround(y * inv_scale);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
    }
    qquery[d] = static_cast<int8_t>(q);
    const double e = y - scale * static_cast<double>(q);
    query_l1_err += std::fabs(e);
    query_l2_err_sq += e * e;
    query_norm_sq += y * y;
  }
  const double query_l2_err = std::sqrt(query_l2_err_sq);
  const double query_norm = std::sqrt(query_norm_sq);
  if (cosine && !(query_norm > 0.0)) {
    // A zero (or non-finite) query norm voids every cosine denominator:
    // nothing can screen, so take the exact path directly.
    return VerifyBlock(dataset, metric, query, ids, radius, out);
  }

  // Slack covering the float32 kernels' own rounding: their sums are
  // within ~dim * 2^-24 relative of exact, so inflating the quantization
  // band by kFpSlackPerDim * dim (two orders looser) guarantees the
  // screen's verdict never disagrees with the float kernel's.
  constexpr double kFpSlackPerDim = 1e-6;
  const double fp_slack = 1e-7 + kFpSlackPerDim * static_cast<double>(dim);
  // Data-side quantization error per element is <= scale/2.
  const double half_l1 = 0.5 * scale * static_cast<double>(dim);
  const double half_l2 = 0.5 * scale * std::sqrt(static_cast<double>(dim));

  const Int8KernelTable& table = Int8Kernels();
  const int8_t* qy = qquery.data();
  const size_t mirror_rows = mirror.size_acquire();
  const std::span<const float> norms =
      cosine ? dataset.norms() : std::span<const float>{};

  // Screen verdicts are recorded per candidate position and results are
  // emitted in a final pass, so *out receives ids in exactly the order
  // VerifyBlock would have appended them (the linear path's callers rely
  // on ascending emission; the screen must not reorder).
  constexpr uint8_t kOut = 0, kIn = 1, kBorderline = 2;
  thread_local std::vector<uint8_t> verdicts;
  thread_local std::vector<uint32_t> rescore;
  thread_local std::vector<uint32_t> rescored_hits;
  const size_t count = ids.size();
  verdicts.resize(count);
  rescore.clear();
  rescore.reserve(count);
  rescored_hits.clear();
  // The L1/L2 verdict predicates are monotone in the int8 kernel sum S, so
  // the per-candidate double math (sqrt, scale-backs, slack inflation)
  // folds into two integer cut points found once per call by binary search
  // over the SAME double predicates: verdicts are identical, but the hot
  // loop compares one int64 against two constants. Sums are bounded by
  // dim * 254^2.
  const int64_t max_sum = static_cast<int64_t>(dim) * 254 * 254;
  // Largest S in [0, max_sum] where pred holds, -1 if none (pred must be
  // monotone true -> false in S).
  const auto last_true = [max_sum](auto pred) -> int64_t {
    if (!pred(int64_t{0})) return -1;
    int64_t lo = 0, hi = max_sum;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo + 1) / 2;
      if (pred(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };
  // Smallest S in [0, max_sum] where pred holds, max_sum + 1 if none (pred
  // must be monotone false -> true in S).
  const auto first_true = [max_sum](auto pred) -> int64_t {
    if (!pred(max_sum)) return max_sum + 1;
    int64_t lo = 0, hi = max_sum;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (pred(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  // Pass 1: pick the screen batch. The COMMON case — every candidate id
  // below the acquired mirror row count, and no visible exact_only rows
  // (one relaxed counter load; the writer bumps the counter before
  // publishing the row) — screens `ids` itself: no copy, no position
  // indirection, no per-candidate flag gather. Otherwise unmirrorable ids
  // — a racing reader can hold an id the writer indexed before the mirror
  // append published, and exact_only rows are outside the calibrated
  // range — default to borderline, and the rest are gathered with their
  // positions for one batched kernel call. The mirror's base pointers are
  // acquire-loaded ONCE: rows below the already-acquired mirror_rows stay
  // valid across concurrent appends (growth retires, never frees,
  // superseded buffers).
  const int8_t* codes = mirror.codes_data();
  const uint8_t* exact_flags = mirror.exact_only_data();
  thread_local std::vector<uint32_t> screen_ids;
  thread_local std::vector<uint32_t> screen_pos;
  thread_local std::vector<int32_t> sums;
  bool identity = mirror.exact_only_count() == 0;
  if (identity) {
    for (size_t j = 0; j < count; ++j) {
      if (ids[j] >= mirror_rows) {
        identity = false;
        break;
      }
    }
  }
  const uint32_t* screen_ids_ptr = ids.data();
  size_t screened_count = count;
  if (!identity) {
    screen_ids.clear();
    screen_pos.clear();
    for (size_t j = 0; j < count; ++j) {
      verdicts[j] = kBorderline;
      const uint32_t id = ids[j];
      if (id < mirror_rows && exact_flags[id] == 0) {
        screen_ids.push_back(id);
        screen_pos.push_back(static_cast<uint32_t>(j));
      }
    }
    screen_ids_ptr = screen_ids.data();
    screened_count = screen_ids.size();
  }
  sums.resize(screened_count);

  // Classifies kernel sums against the two integer cut points. The
  // identity variant writes all three verdicts (pass 1 skipped the
  // borderline pre-fill) and collects borderline ids inline — k IS the
  // candidate position, so the rescore list stays in candidate order,
  // which the emit merge below requires.
  const auto classify_cuts = [&](int64_t t_in, int64_t t_out) {
    if (identity) {
      for (size_t k = 0; k < screened_count; ++k) {
        const int64_t s = sums[k];
        const uint8_t v = s <= t_in ? kIn : (s >= t_out ? kOut : kBorderline);
        verdicts[k] = v;
        if (v == kBorderline) rescore.push_back(screen_ids_ptr[k]);
      }
    } else {
      for (size_t k = 0; k < screened_count; ++k) {
        const int64_t s = sums[k];
        if (s <= t_in) {
          verdicts[screen_pos[k]] = kIn;
        } else if (s >= t_out) {
          verdicts[screen_pos[k]] = kOut;
        }
      }
    }
  };

  const double r2 = radius * radius;
  switch (metric) {
    case data::Metric::kL2: {
      const double eps = half_l2 + query_l2_err;
      const int64_t t_in = last_true([&](int64_t s) {
        const double hi =
            scale * std::sqrt(static_cast<double>(s)) + eps;
        return hi * hi * (1.0 + fp_slack) <= r2;
      });
      const int64_t t_out = first_true([&](int64_t s) {
        const double lo = scale * std::sqrt(static_cast<double>(s)) - eps;
        return lo > 0.0 && lo * lo * (1.0 - fp_slack) > r2;
      });
      table.l2sq_block(codes, dim, screen_ids_ptr, screened_count, qy,
                       sums.data());
      classify_cuts(t_in, t_out);
      break;
    }
    case data::Metric::kL1: {
      const double eps = half_l1 + query_l1_err;
      const int64_t t_in = last_true([&](int64_t s) {
        const double v = scale * static_cast<double>(s);
        return (v + eps) * (1.0 + fp_slack) <= radius;
      });
      const int64_t t_out = first_true([&](int64_t s) {
        const double lo = scale * static_cast<double>(s) - eps;
        return lo > 0.0 && lo * (1.0 - fp_slack) > radius;
      });
      table.l1_block(codes, dim, screen_ids_ptr, screened_count, qy,
                     sums.data());
      classify_cuts(t_in, t_out);
      break;
    }
    case data::Metric::kCosine: {
      // With denom = norms[id] * query_norm > 0, the verdict tests
      //   in:  1 - dot/denom + (dot_eps + fp*(|dot| + denom))/denom + fp
      //        <= radius
      //   out: 1 - dot/denom - (dot_eps + fp*(|dot| + denom))/denom - fp
      //        > radius
      // (dot_eps = half_l2*query_norm + (norms[id] + half_l2)*query_l2_err)
      // multiply through by denom into one fused-multiply form per side;
      // double rounding of the rearrangement is orders below fp_slack.
      //   in:  dot - fp*|dot| >= norms[id]*k_in + c0   (and radius >= 0,
      //        since the float path clamps its distance into [0, 2])
      //   out: dot + fp*|dot| <  norms[id]*k_out - c0
      const double s2 = scale * scale;
      const double c0 = half_l2 * (query_norm + query_l2_err);
      const double k_in =
          query_norm * (1.0 + 2.0 * fp_slack - radius) + query_l2_err;
      const double k_out =
          query_norm * (1.0 - 2.0 * fp_slack - radius) - query_l2_err;
      const bool in_possible = radius >= 0.0;
      table.dot_block(codes, dim, screen_ids_ptr, screened_count, qy,
                      sums.data());
      if (identity) {
        for (size_t k = 0; k < screened_count; ++k) {
          const double nid = static_cast<double>(norms[screen_ids_ptr[k]]);
          uint8_t v = kBorderline;  // zero vector: borderline
          if (nid > 0.0) {
            const double t = s2 * static_cast<double>(sums[k]);
            const double ft = fp_slack * std::fabs(t);
            if (in_possible && t - ft >= nid * k_in + c0) {
              v = kIn;
            } else if (t + ft < nid * k_out - c0) {
              v = kOut;
            }
          }
          verdicts[k] = v;
          if (v == kBorderline) rescore.push_back(screen_ids_ptr[k]);
        }
      } else {
        for (size_t k = 0; k < screened_count; ++k) {
          const double nid = static_cast<double>(norms[screen_ids_ptr[k]]);
          if (!(nid > 0.0)) continue;  // zero vector: borderline
          const double t = s2 * static_cast<double>(sums[k]);
          const double ft = fp_slack * std::fabs(t);
          if (in_possible && t - ft >= nid * k_in + c0) {
            verdicts[screen_pos[k]] = kIn;
          } else if (t + ft < nid * k_out - c0) {
            verdicts[screen_pos[k]] = kOut;
          }
        }
      }
      break;
    }
    default:
      HLSH_CHECK(false &&
                 "VerifyBlockQuantized: metric does not apply to dense rows");
  }

  // Rescore the borderline batch exactly, then emit: rescore is built in
  // candidate order (inline above for the identity path), so rescored_hits
  // is a subsequence of rescore (which is a subsequence of ids) and one
  // forward pointer recovers each borderline candidate's exact verdict in
  // order.
  if (!identity) {
    for (size_t j = 0; j < count; ++j) {
      if (verdicts[j] == kBorderline) rescore.push_back(ids[j]);
    }
  }
  VerifyBlock(dataset, metric, query, std::span<const uint32_t>(rescore),
              radius, &rescored_hits);
  size_t reported = 0;
  size_t p = 0;
  size_t definite_in = 0;
  for (size_t j = 0; j < count; ++j) {
    if (verdicts[j] == kIn) {
      out->push_back(ids[j]);
      ++reported;
      ++definite_in;
    } else if (verdicts[j] == kBorderline && p < rescored_hits.size() &&
               rescored_hits[p] == ids[j]) {
      out->push_back(ids[j]);
      ++reported;
      ++p;
    }
  }
  if (stats != nullptr) {
    stats->screened += count;
    stats->definite_in += definite_in;
    stats->definite_out += count - definite_in - rescore.size();
    stats->borderline += rescore.size();
  }
  return reported;
}

size_t VerifyBlock(const data::BinaryDataset& dataset, const uint64_t* query,
                   std::span<const uint32_t> ids, double radius,
                   std::vector<uint32_t>* out, const util::BitVector* filter) {
  if (filter != nullptr) {
    thread_local std::vector<uint32_t> survivors;
    CompactFiltered(ids, *filter, &survivors);
    return VerifyBinaryImpl(
        dataset, query, survivors.size(),
        [&](size_t j) { return survivors[j]; }, radius, out);
  }
  return VerifyBinaryImpl(
      dataset, query, ids.size(), [&](size_t j) { return ids[j]; }, radius,
      out);
}

size_t VerifyRange(const data::BinaryDataset& dataset, const uint64_t* query,
                   uint32_t begin, uint32_t end, double radius,
                   std::vector<uint32_t>* out, const util::BitVector* filter) {
  if (end <= begin) return 0;
  if (filter != nullptr) {
    thread_local std::vector<uint32_t> survivors;
    CompactFilteredRange(begin, end, *filter, &survivors);
    return VerifyBinaryImpl(
        dataset, query, survivors.size(),
        [&](size_t j) { return survivors[j]; }, radius, out);
  }
  return VerifyBinaryImpl(
      dataset, query, static_cast<size_t>(end - begin),
      [&](size_t j) { return begin + static_cast<uint32_t>(j); }, radius, out);
}

}  // namespace kernels
}  // namespace core
}  // namespace hybridlsh
