// Per-tier kernel implementations and the block-batched verifiers.
//
// Every float kernel implements the canonical 8-lane accumulation order
// documented in util/simd.h, so all tiers return bit-identical results:
// AVX2 holds the 8 lanes in one 256-bit register, SSE2 in two 128-bit
// registers, the scalar tier in eight named accumulators; all three share
// the same pairwise reduction and the same scalar tail. This file is
// compiled with -ffp-contract=off (see CMakeLists.txt) so a
// -march=native build cannot contract the scalar tier's mul+add chains
// into FMAs the vector tiers don't use.

#include "core/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/status.h"

namespace hybridlsh {
namespace core {
namespace kernels {
namespace {

// --- Scalar tier (the reference): canonical 8-lane accumulation. -----------
// The dot product lives in util/simd.h (DotF32Scalar) so data/ can share
// it for the cosine norm cache.

float DotScalar(const float* a, const float* b, size_t d) {
  return util::simd::DotF32Scalar(a, b, d);
}

float L2SqScalar(const float* a, const float* b, size_t d) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const float diff = a[i + l] - b[i + l];
      lanes[l] += diff * diff;
    }
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
              ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float L1Scalar(const float* a, const float* b, size_t d) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) lanes[l] += std::fabs(a[i + l] - b[i + l]);
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
              ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

/// Final cosine arithmetic shared by every tier and by the
/// precomputed-norm verifier: 1 - clamp(dot / denom), zero denominators
/// treated as orthogonal (distance 1; see data/metric.h).
inline float CosineFromParts(float dot, float denom) {
  if (denom == 0.0f) return 1.0f;
  float cos = dot / denom;
  if (cos > 1.0f) cos = 1.0f;
  if (cos < -1.0f) cos = -1.0f;
  return 1.0f - cos;
}

float CosineScalar(const float* a, const float* b, size_t d) {
  float dot_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float na_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float nb_lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      const float x = a[i + l];
      const float y = b[i + l];
      dot_lanes[l] += x * y;
      na_lanes[l] += x * x;
      nb_lanes[l] += y * y;
    }
  }
  float dot = ((dot_lanes[0] + dot_lanes[4]) + (dot_lanes[2] + dot_lanes[6])) +
              ((dot_lanes[1] + dot_lanes[5]) + (dot_lanes[3] + dot_lanes[7]));
  float na = ((na_lanes[0] + na_lanes[4]) + (na_lanes[2] + na_lanes[6])) +
             ((na_lanes[1] + na_lanes[5]) + (na_lanes[3] + na_lanes[7]));
  float nb = ((nb_lanes[0] + nb_lanes[4]) + (nb_lanes[2] + nb_lanes[6])) +
             ((nb_lanes[1] + nb_lanes[5]) + (nb_lanes[3] + nb_lanes[7]));
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

/// Popcount-unrolled Hamming distance; integer, so exact in any order and
/// shared by every tier (at fingerprint widths the cost is load-bound, not
/// popcount-bound — there is no vector win to take below several words).
uint32_t HammingKernel(const uint64_t* a, const uint64_t* b, size_t words) {
  uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    c0 += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<uint32_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<uint32_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<uint32_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  uint32_t total = (c0 + c2) + (c1 + c3);
  for (; i < words; ++i) {
    total += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

#if defined(HLSH_SIMD_X86)

// --- SSE2 tier: the 8 virtual lanes live in two 128-bit registers. ---------

/// Reduces {lanes 0-3, lanes 4-7} with the canonical pairwise order.
__attribute__((target("sse2"))) inline float ReduceLanesSse2(__m128 acc_lo,
                                                             __m128 acc_hi) {
  const __m128 s = _mm_add_ps(acc_lo, acc_hi);  // [s0, s1, s2, s3]
  const __m128 pair = _mm_add_ps(s, _mm_movehl_ps(s, s));  // [s0+s2, s1+s3]
  return _mm_cvtss_f32(pair) +
         _mm_cvtss_f32(_mm_shuffle_ps(pair, pair, 1));
}

__attribute__((target("sse2"))) float DotSse2(const float* a, const float* b,
                                              size_t d) {
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc_lo = _mm_add_ps(acc_lo,
                        _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    acc_hi = _mm_add_ps(
        acc_hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("sse2"))) float L2SqSse2(const float* a, const float* b,
                                               size_t d) {
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 d_lo = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 d_hi =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(d_lo, d_lo));
    acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(d_hi, d_hi));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("sse2"))) float L1Sse2(const float* a, const float* b,
                                             size_t d) {
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 d_lo = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 d_hi =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    acc_lo = _mm_add_ps(acc_lo, _mm_and_ps(d_lo, abs_mask));
    acc_hi = _mm_add_ps(acc_hi, _mm_and_ps(d_hi, abs_mask));
  }
  float sum = ReduceLanesSse2(acc_lo, acc_hi);
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

__attribute__((target("sse2"))) float CosineSse2(const float* a,
                                                 const float* b, size_t d) {
  __m128 dot_lo = _mm_setzero_ps(), dot_hi = _mm_setzero_ps();
  __m128 na_lo = _mm_setzero_ps(), na_hi = _mm_setzero_ps();
  __m128 nb_lo = _mm_setzero_ps(), nb_hi = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128 x_lo = _mm_loadu_ps(a + i);
    const __m128 x_hi = _mm_loadu_ps(a + i + 4);
    const __m128 y_lo = _mm_loadu_ps(b + i);
    const __m128 y_hi = _mm_loadu_ps(b + i + 4);
    dot_lo = _mm_add_ps(dot_lo, _mm_mul_ps(x_lo, y_lo));
    dot_hi = _mm_add_ps(dot_hi, _mm_mul_ps(x_hi, y_hi));
    na_lo = _mm_add_ps(na_lo, _mm_mul_ps(x_lo, x_lo));
    na_hi = _mm_add_ps(na_hi, _mm_mul_ps(x_hi, x_hi));
    nb_lo = _mm_add_ps(nb_lo, _mm_mul_ps(y_lo, y_lo));
    nb_hi = _mm_add_ps(nb_hi, _mm_mul_ps(y_hi, y_hi));
  }
  float dot = ReduceLanesSse2(dot_lo, dot_hi);
  float na = ReduceLanesSse2(na_lo, na_hi);
  float nb = ReduceLanesSse2(nb_lo, nb_hi);
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

// --- AVX2 tier: the 8 virtual lanes are one 256-bit register. --------------

__attribute__((target("avx2"))) inline float ReduceLanesAvx2(__m256 acc) {
  const __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                              _mm256_extractf128_ps(acc, 1));
  const __m128 pair = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(pair) +
         _mm_cvtss_f32(_mm_shuffle_ps(pair, pair, 1));
}

__attribute__((target("avx2"))) float DotAvx2(const float* a, const float* b,
                                              size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) float L2SqAvx2(const float* a, const float* b,
                                               size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx2"))) float L1Avx2(const float* a, const float* b,
                                             size_t d) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_and_ps(diff, abs_mask));
  }
  float sum = ReduceLanesAvx2(acc);
  for (; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

__attribute__((target("avx2"))) float CosineAvx2(const float* a,
                                                 const float* b, size_t d) {
  __m256 dot_acc = _mm256_setzero_ps();
  __m256 na_acc = _mm256_setzero_ps();
  __m256 nb_acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 x = _mm256_loadu_ps(a + i);
    const __m256 y = _mm256_loadu_ps(b + i);
    dot_acc = _mm256_add_ps(dot_acc, _mm256_mul_ps(x, y));
    na_acc = _mm256_add_ps(na_acc, _mm256_mul_ps(x, x));
    nb_acc = _mm256_add_ps(nb_acc, _mm256_mul_ps(y, y));
  }
  float dot = ReduceLanesAvx2(dot_acc);
  float na = ReduceLanesAvx2(na_acc);
  float nb = ReduceLanesAvx2(nb_acc);
  for (; i < d; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return CosineFromParts(dot, std::sqrt(na) * std::sqrt(nb));
}

#endif  // HLSH_SIMD_X86

const KernelTable kScalarTable = {
    .tier = util::simd::Tier::kScalar,
    .l1 = &L1Scalar,
    .l2sq = &L2SqScalar,
    .dot = &DotScalar,
    .cosine = &CosineScalar,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxScalar,
    .hll_sum = &util::simd::HllRegisterSumScalar,
};

#if defined(HLSH_SIMD_X86)
const KernelTable kSse2Table = {
    .tier = util::simd::Tier::kSse2,
    .l1 = &L1Sse2,
    .l2sq = &L2SqSse2,
    .dot = &DotSse2,
    .cosine = &CosineSse2,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxSse2,
    // No gather below AVX2: the fused sum is lookup-bound, so this tier
    // shares the scalar implementation (bit-identical by construction).
    .hll_sum = &util::simd::HllRegisterSumScalar,
};

const KernelTable kAvx2Table = {
    .tier = util::simd::Tier::kAvx2,
    .l1 = &L1Avx2,
    .l2sq = &L2SqAvx2,
    .dot = &DotAvx2,
    .cosine = &CosineAvx2,
    .hamming = &HammingKernel,
    .hll_merge = &util::simd::HllMergeMaxAvx2,
    .hll_sum = &util::simd::HllRegisterSumAvx2,
};
#endif  // HLSH_SIMD_X86

// --- Block verification internals. -----------------------------------------

/// Ids farther ahead than this are prefetched while the current candidate
/// is verified; ~4 rows hides DRAM latency behind one row's arithmetic
/// without thrashing the prefetch queue.
constexpr size_t kPrefetchAhead = 4;

inline void PrefetchRow(const void* row, size_t bytes) {
  const char* p = static_cast<const char*>(row);
  for (size_t offset = 0; offset < bytes; offset += 64) {
    __builtin_prefetch(p + offset, /*rw=*/0, /*locality=*/1);
  }
}

/// Dense verification over any id sequence. `id_at(j)` maps a block
/// position to a candidate id; the flat-buffer and contiguous-range entry
/// points both inline through here so their behavior cannot diverge.
template <typename IdAt>
size_t VerifyDenseImpl(const data::DenseDataset& dataset, data::Metric metric,
                       const float* query, size_t count, IdAt id_at,
                       double radius, std::vector<uint32_t>* out) {
  const size_t dim = dataset.dim();
  const size_t row_bytes = dim * sizeof(float);
  const KernelTable& table = Kernels();
  size_t reported = 0;
  const auto report = [&](uint32_t id) {
    out->push_back(id);
    ++reported;
  };

  switch (metric) {
    case data::Metric::kL2: {
      const double r2 = radius * radius;
      for (size_t j = 0; j < count; ++j) {
        if (j + kPrefetchAhead < count) {
          PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
        }
        const uint32_t id = id_at(j);
        if (static_cast<double>(table.l2sq(dataset.point(id), query, dim)) <=
            r2) {
          report(id);
        }
      }
      return reported;
    }
    case data::Metric::kL1: {
      for (size_t j = 0; j < count; ++j) {
        if (j + kPrefetchAhead < count) {
          PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
        }
        const uint32_t id = id_at(j);
        if (static_cast<double>(table.l1(dataset.point(id), query, dim)) <=
            radius) {
          report(id);
        }
      }
      return reported;
    }
    case data::Metric::kCosine: {
      if (dataset.has_norms()) {
        // Fast path: one dot product per candidate; the candidate's norm
        // comes from the dataset cache, the query's is computed once.
        const std::span<const float> norms = dataset.norms();
        const float query_norm = std::sqrt(table.dot(query, query, dim));
        for (size_t j = 0; j < count; ++j) {
          if (j + kPrefetchAhead < count) {
            PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
          }
          const uint32_t id = id_at(j);
          const float dot = table.dot(dataset.point(id), query, dim);
          const float dist = CosineFromParts(dot, norms[id] * query_norm);
          if (static_cast<double>(dist) <= radius) report(id);
        }
      } else {
        for (size_t j = 0; j < count; ++j) {
          if (j + kPrefetchAhead < count) {
            PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
          }
          const uint32_t id = id_at(j);
          const float dist = table.cosine(dataset.point(id), query, dim);
          if (static_cast<double>(dist) <= radius) report(id);
        }
      }
      return reported;
    }
    default:
      HLSH_CHECK(false && "VerifyBlock: metric does not apply to dense rows");
      return 0;
  }
}

template <typename IdAt>
size_t VerifyBinaryImpl(const data::BinaryDataset& dataset,
                        const uint64_t* query, size_t count, IdAt id_at,
                        double radius, std::vector<uint32_t>* out) {
  const size_t words = dataset.words_per_code();
  const size_t row_bytes = words * sizeof(uint64_t);
  const KernelTable& table = Kernels();
  size_t reported = 0;
  for (size_t j = 0; j < count; ++j) {
    if (j + kPrefetchAhead < count) {
      PrefetchRow(dataset.point(id_at(j + kPrefetchAhead)), row_bytes);
    }
    const uint32_t id = id_at(j);
    const uint32_t dist = table.hamming(dataset.point(id), query, words);
    if (static_cast<double>(dist) <= radius) {
      out->push_back(id);
      ++reported;
    }
  }
  return reported;
}

}  // namespace

const KernelTable& KernelsForTier(util::simd::Tier tier) {
#if defined(HLSH_SIMD_X86)
  switch (std::min(tier, util::simd::MaxSupportedTier())) {
    case util::simd::Tier::kAvx2:
      return kAvx2Table;
    case util::simd::Tier::kSse2:
      return kSse2Table;
    case util::simd::Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return kScalarTable;
}

const KernelTable& Kernels() {
  return KernelsForTier(util::simd::ResolvedTier());
}

size_t VerifyBlock(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, std::span<const uint32_t> ids,
                   double radius, std::vector<uint32_t>* out) {
  return VerifyDenseImpl(
      dataset, metric, query, ids.size(), [&](size_t j) { return ids[j]; },
      radius, out);
}

size_t VerifyRange(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, uint32_t begin, uint32_t end,
                   double radius, std::vector<uint32_t>* out) {
  if (end <= begin) return 0;
  return VerifyDenseImpl(
      dataset, metric, query, static_cast<size_t>(end - begin),
      [&](size_t j) { return begin + static_cast<uint32_t>(j); }, radius, out);
}

size_t VerifyBlock(const data::BinaryDataset& dataset, const uint64_t* query,
                   std::span<const uint32_t> ids, double radius,
                   std::vector<uint32_t>* out) {
  return VerifyBinaryImpl(
      dataset, query, ids.size(), [&](size_t j) { return ids[j]; }, radius,
      out);
}

size_t VerifyRange(const data::BinaryDataset& dataset, const uint64_t* query,
                   uint32_t begin, uint32_t end, double radius,
                   std::vector<uint32_t>* out) {
  if (end <= begin) return 0;
  return VerifyBinaryImpl(
      dataset, query, static_cast<size_t>(end - begin),
      [&](size_t j) { return begin + static_cast<uint32_t>(j); }, radius, out);
}

}  // namespace kernels
}  // namespace core
}  // namespace hybridlsh
