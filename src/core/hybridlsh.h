// Umbrella header: the full public API of the hybridlsh library.
//
// Typical use (see examples/quickstart.cpp):
//
//   #include "core/hybridlsh.h"
//   using namespace hybridlsh;
//
//   data::DenseDataset points = ...;                     // n x d, L2 metric
//   lsh::PStableFamily family = lsh::PStableFamily::L2(d, /*w=*/2 * r);
//   L2Index::Options options;
//   options.radius = r;                                  // k auto-tuned
//   auto index = L2Index::Build(family, points, options);
//
//   core::SearcherOptions searcher_options;
//   searcher_options.cost_model = core::CostModel::FromRatio(6.0);
//   L2Searcher searcher(&*index, &points, searcher_options);
//
//   std::vector<uint32_t> neighbors;
//   core::QueryStats stats;
//   searcher.Query(query, r, &neighbors, &stats);

#ifndef HYBRIDLSH_CORE_HYBRIDLSH_H_
#define HYBRIDLSH_CORE_HYBRIDLSH_H_

#include "core/cost_model.h"
#include "core/hybrid_searcher.h"
#include "core/kernels.h"
#include "data/dataset.h"
#include "data/io.h"
#include "data/metric.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "hll/hyperloglog.h"
#include "lsh/covering.h"
#include "lsh/families.h"
#include "lsh/fingerprint.h"
#include "lsh/index.h"
#include "lsh/params.h"

namespace hybridlsh {

/// Index aliases for the paper's four (metric, family) pairs + MinHash.
using CosineIndex = lsh::LshIndex<lsh::SimHashFamily>;
using L2Index = lsh::LshIndex<lsh::PStableFamily>;
using L1Index = lsh::LshIndex<lsh::PStableFamily>;
using HammingIndex = lsh::LshIndex<lsh::BitSamplingFamily>;
using JaccardIndex = lsh::LshIndex<lsh::MinHashFamily>;

/// Searcher aliases over the standard dataset containers.
using CosineSearcher = core::HybridSearcher<CosineIndex, data::DenseDataset>;
using L2Searcher = core::HybridSearcher<L2Index, data::DenseDataset>;
using L1Searcher = core::HybridSearcher<L1Index, data::DenseDataset>;
using HammingSearcher =
    core::HybridSearcher<HammingIndex, data::BinaryDataset>;
using JaccardSearcher =
    core::HybridSearcher<JaccardIndex, data::SparseDataset>;
using CoveringSearcher =
    core::HybridSearcher<lsh::CoveringLshIndex, data::BinaryDataset>;

}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_HYBRIDLSH_H_
