#include "core/fusion.h"

#include <algorithm>
#include <numeric>

namespace hybridlsh {
namespace core {

util::Status FuseScoredLists(std::span<ScoredList> lists,
                             const FusionOptions& options,
                             FusionScratch* scratch,
                             std::vector<FusedHit>* out) {
  out->clear();
  FusionScratch local;
  FusionScratch* s = scratch != nullptr ? scratch : &local;
  s->contributions.clear();

  for (size_t i = 0; i < lists.size(); ++i) {
    const ScoredList& list = lists[i];
    const size_t n = list.ids.size();
    if (list.distances.size() != n) {
      return util::Status::InvalidArgument(
          "ScoredList ids/distances length mismatch");
    }
    if (options.mode == FusionMode::kRrf) {
      // Rank by (distance ascending, id ascending) — a total order, so
      // equal distances cannot make ranks run-dependent.
      s->order.resize(n);
      std::iota(s->order.begin(), s->order.end(), 0u);
      std::sort(s->order.begin(), s->order.end(),
                [&](uint32_t a, uint32_t b) {
                  if (list.distances[a] != list.distances[b]) {
                    return list.distances[a] < list.distances[b];
                  }
                  return list.ids[a] < list.ids[b];
                });
      for (size_t r = 0; r < n; ++r) {
        const uint32_t id = list.ids[s->order[r]];
        const double contrib =
            list.weight / (options.rrf_k + static_cast<double>(r + 1));
        s->contributions.emplace_back(
            (uint64_t{id} << 32) | static_cast<uint32_t>(i), contrib);
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        const double contrib = list.weight / (1.0 + list.distances[j]);
        s->contributions.emplace_back(
            (uint64_t{list.ids[j]} << 32) | static_cast<uint32_t>(i),
            contrib);
      }
    }
  }

  // Accumulate in (id, subquery) key order: the floating-point sum for
  // every id folds its subquery contributions in one fixed sequence, no
  // matter what order the subqueries reported in.
  std::sort(s->contributions.begin(), s->contributions.end());
  for (size_t j = 0; j + 1 < s->contributions.size(); ++j) {
    if (s->contributions[j].first == s->contributions[j + 1].first) {
      return util::Status::InvalidArgument(
          "duplicate id within one fused subquery result list");
    }
  }

  for (size_t j = 0; j < s->contributions.size();) {
    const uint32_t id = static_cast<uint32_t>(s->contributions[j].first >> 32);
    double score = 0.0;
    while (j < s->contributions.size() &&
           static_cast<uint32_t>(s->contributions[j].first >> 32) == id) {
      score += s->contributions[j].second;
      ++j;
    }
    out->push_back(FusedHit{id, score});
  }

  std::sort(out->begin(), out->end(), [](const FusedHit& a, const FusedHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  return util::Status::Ok();
}

}  // namespace core
}  // namespace hybridlsh
