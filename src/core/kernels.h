// The vectorized kernel subsystem: runtime-dispatched distance kernels and
// block-batched candidate verification.
//
// The paper's cost model prices every query in units of beta = one distance
// computation (Eq. 1/2), so candidate verification is the hot path of both
// strategies. This layer replaces the per-candidate
// `index->Distance(dataset.point(id), query)` calls with:
//
//   * a KernelTable of distance kernels (L1 / L2 / squared-L2 / dot /
//     fused cosine over dense rows, popcount-unrolled Hamming over packed
//     codes, plus the HLL register ops from util/simd.h), one table per
//     instruction-set tier, dispatched once per process on
//     util::simd::ResolvedTier();
//   * VerifyBlock / VerifyRange: block-batched verification that walks a
//     flat candidate-id buffer in cache-friendly blocks with software
//     prefetch, uses squared-L2 against radius^2 (no per-candidate sqrt),
//     and takes the precomputed-norm fast path for cosine when the
//     DenseDataset has them cached;
//   * VerifyCandidates / VerifyAllIds: the generic entry points
//     core::HybridSearcher and engine::ShardedEngine verify through, which
//     pick the typed block path per dataset container (dense, packed
//     binary) and fall back to per-id Family::Distance elsewhere (sparse
//     Jaccard).
//
// Every tier of every float kernel follows the canonical 8-lane
// accumulation order documented in util/simd.h, so scalar-forced
// (HLSH_SIMD=scalar) and vectorized runs report bit-identical result sets
// — only candidate order may differ. kernels.cc is compiled with
// -ffp-contract=off so no tier silently picks up FMA contraction. The
// cosine norm cache is built with the same canonical dot (util/simd.h
// DotF32Scalar), so the cached-norm and fused paths also agree on every
// candidate. Note the contract is within-the-subsystem: kernel sums round
// differently in the last ulp than the sequential-order references in
// data/metric.h (and L2 compares squared distance against radius^2 rather
// than sqrt against radius), so comparisons against data::RangeScan* hold
// only for radii that no candidate's distance matches to the last ulp —
// true of the suite's fixed seeds, and of any test that derives its
// radius between two order statistics (tests/test_kernels.cc PickRadius).

#ifndef HYBRIDLSH_CORE_KERNELS_H_
#define HYBRIDLSH_CORE_KERNELS_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "data/quantized.h"
#include "util/bit_vector.h"
#include "util/simd.h"

namespace hybridlsh {
namespace core {
namespace kernels {

/// One tier's kernels. All shards and segments of an engine share the one
/// table Kernels() resolves; per-tier tables exist for tests and benches.
struct KernelTable {
  util::simd::Tier tier;

  /// L1 (Manhattan) distance over d floats.
  float (*l1)(const float* a, const float* b, size_t d);
  /// Squared L2 distance (callers compare against radius^2).
  float (*l2sq)(const float* a, const float* b, size_t d);
  /// Dot product <a, b>.
  float (*dot)(const float* a, const float* b, size_t d);
  /// Fused cosine distance 1 - cos(a, b): dot and both norms in one pass
  /// (the no-precomputed-norms path). Zero vectors give distance 1.
  float (*cosine)(const float* a, const float* b, size_t d);
  /// Hamming distance over packed 64-bit words (popcount, 4x unrolled).
  uint32_t (*hamming)(const uint64_t* a, const uint64_t* b, size_t words);
  /// HLL register-wise max merge (util/simd.h).
  void (*hll_merge)(uint8_t* dst, const uint8_t* src, size_t m);
  /// HLL fused sum-of-2^-M + zero count (util/simd.h).
  double (*hll_sum)(const uint8_t* regs, size_t m, size_t* zeros);
};

/// The kernel table for util::ResolvedSimdTier(). Follows
/// SetResolvedTierForTest, so tier-equivalence tests can swap mid-process.
const KernelTable& Kernels();

/// The kernel table for one specific tier (clamped to CPU support).
const KernelTable& KernelsForTier(util::simd::Tier tier);

// --- Int8 screen kernels (quantized verification). --------------------------
// Distance sums over int8 codes from a data::QuantizedMirror. All integer:
// exact in any accumulation order, so every tier returns the same int32 by
// construction (no canonical-lane contract needed). The caller maps sums
// back to real distances with the mirror's scale (L1 = scale * l1,
// L2^2 = scale^2 * l2sq, <a,b> = scale^2 * dot). Sums stay inside int32
// for dim <= data::QuantizedMirror::kMaxDim.

struct Int8KernelTable {
  util::simd::Tier tier;
  /// Sum of |a[i] - b[i]| (AVX2/SSE2: bias-to-unsigned + PSADBW).
  int32_t (*l1)(const int8_t* a, const int8_t* b, size_t d);
  /// Sum of (a[i] - b[i])^2 (AVX2/SSE2: sign-extend + VPMADDWD).
  int32_t (*l2sq)(const int8_t* a, const int8_t* b, size_t d);
  /// Sum of a[i] * b[i] — the cosine screen composes this with the
  /// dataset's cached float norms.
  int32_t (*dot)(const int8_t* a, const int8_t* b, size_t d);

  /// Block forms: sums[k] = the corresponding pair sum between `query`
  /// and row ids[k] of `codes` (row-major, `dim` int8 per row). One call
  /// per candidate batch is what the quantized screen runs: it removes
  /// the per-candidate indirect call, prefetches upcoming rows, and (AVX2)
  /// interleaves two candidates against shared query registers to hide
  /// accumulator latency. Sums are bit-identical to the pair kernels.
  void (*l1_block)(const int8_t* codes, size_t dim, const uint32_t* ids,
                   size_t count, const int8_t* query, int32_t* sums);
  void (*l2sq_block)(const int8_t* codes, size_t dim, const uint32_t* ids,
                     size_t count, const int8_t* query, int32_t* sums);
  void (*dot_block)(const int8_t* codes, size_t dim, const uint32_t* ids,
                    size_t count, const int8_t* query, int32_t* sums);
};

/// The int8 table for util::ResolvedSimdTier() (same dispatch and test
/// override as Kernels()).
const Int8KernelTable& Int8Kernels();

/// The int8 table for one specific tier (clamped to CPU support).
const Int8KernelTable& Int8KernelsForTier(util::simd::Tier tier);

// --- Projection kernels (query hashing, LSH step S1). -----------------------
// The k x dim projection matrices of the dense LSH families (SimHash
// hyperplanes, Gaussian/Cauchy p-stable projections; util::FloatMatrix, so
// row-major contiguous) applied to queries. Row i is one sampled hash
// function; out[i] is the raw projection <row_i, query> from which the
// family derives slot i and its probe cost. Every (row, query) pair
// accumulates in the canonical 8-lane order (util/simd.h DotF32Scalar is
// the reference), so all tiers and both forms below produce bit-identical
// floats: signatures, probe costs, and therefore LSH-vs-linear decisions
// cannot depend on the dispatched tier or on whether a query was hashed
// alone or inside a batch.

struct ProjectionKernelTable {
  util::simd::Tier tier;

  /// Single query: out[i] = <matrix row i, query> for i in [0, k).
  void (*matvec)(const float* matrix, size_t k, size_t dim, const float* query,
                 float* out);

  /// Multi-query blocked (GEMM-shaped) form: out[q*k + i] = <row i,
  /// queries[q]>. Rows traverse the outer loop so each matrix row is
  /// streamed from memory once and served to every query from cache; the
  /// AVX2 tier additionally interleaves two queries against shared row
  /// registers. Bit-identical to k x count matvec calls.
  void (*matvec_block)(const float* matrix, size_t k, size_t dim,
                       const float* const* queries, size_t count, float* out);
};

/// The projection table for util::ResolvedSimdTier() (same dispatch and
/// test override as Kernels()).
const ProjectionKernelTable& ProjectionKernels();

/// The projection table for one specific tier (clamped to CPU support).
const ProjectionKernelTable& ProjectionKernelsForTier(util::simd::Tier tier);

/// Outcome counters for one quantized verification call (optional; tests
/// and benches use them to show the screen actually classifies).
struct QuantizedScreenStats {
  size_t screened = 0;      ///< candidates the int8 screen classified
  size_t definite_in = 0;   ///< reported without touching float rows
  size_t definite_out = 0;  ///< rejected without touching float rows
  size_t borderline = 0;    ///< rescored with the exact float kernels
};

// --- Block-batched verification. -------------------------------------------
// Each call appends every id whose distance to `query` is <= radius to
// *out and returns the number appended. Candidates are processed in
// blocks with software prefetch of upcoming rows.
//
// Every entry point takes an optional pushed-down `filter`: when non-null,
// an id is verified (and can be reported) only if its filter bit is set;
// ids at or past filter->size() are rejected (the filter was built over
// the id bound visible at query start, so a concurrently inserted id has
// no evaluated predicate and must not leak through). The bit test runs
// BEFORE the distance computation — that is the pushdown: at low
// selectivity almost every candidate costs one word probe instead of a
// row load plus a kernel call. The filter is query-private scratch
// (already composed with the tombstone bitmap via
// util::BitVector::AndWithNot), so plain relaxed reads suffice.

/// Dense rows under metric (kL1, kL2, or kCosine). For kCosine the
/// dataset's cached norms (data::DenseDataset::PrecomputeNorms) are used
/// when present; otherwise the fused cosine kernel runs per candidate.
size_t VerifyBlock(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, std::span<const uint32_t> ids,
                   double radius, std::vector<uint32_t>* out,
                   const util::BitVector* filter = nullptr);

/// Dense contiguous id range [begin, end) — the linear-scan path, which
/// streams rows without an id gather.
size_t VerifyRange(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, uint32_t begin, uint32_t end,
                   double radius, std::vector<uint32_t>* out,
                   const util::BitVector* filter = nullptr);

/// Two-phase quantized verification: an int8 screen over the mirror's
/// codes classifies each candidate as definitely-in / definitely-out /
/// borderline under a conservative error bound, and only borderline
/// candidates are rescored with the exact float32 kernels. The appended
/// output is bit-identical to VerifyBlock's — same ids in the same
/// (candidate) order — so callers relying on ascending emission from the
/// linear path see no difference.
///
/// The bound: with global scale s, every calibrated element obeys
/// |x - s*qx| <= s/2 and the query's quantization error is computed
/// exactly per call, so (e.g. L1) the true distance lies within
/// dim*s/2 + sum|y - s*qy| of s * screen_sum; the threshold test inflates
/// that band by a float-rounding slack so the verdict can never disagree
/// with what the float32 kernel would report. Candidates the bound cannot
/// cover — rows flagged exact_only, ids at or beyond the mirror's
/// published size (a racing reader), non-finite queries — fall into the
/// borderline set. Falls back to VerifyBlock entirely when the mirror is
/// disabled, the metric is cosine without cached norms, or radius >= 2
/// under cosine (where clamping breaks the out-test).
size_t VerifyBlockQuantized(const data::DenseDataset& dataset,
                            const data::QuantizedMirror& mirror,
                            data::Metric metric, const float* query,
                            std::span<const uint32_t> ids, double radius,
                            std::vector<uint32_t>* out,
                            QuantizedScreenStats* stats = nullptr,
                            const util::BitVector* filter = nullptr);

/// Packed binary codes under Hamming distance.
size_t VerifyBlock(const data::BinaryDataset& dataset, const uint64_t* query,
                   std::span<const uint32_t> ids, double radius,
                   std::vector<uint32_t>* out,
                   const util::BitVector* filter = nullptr);
size_t VerifyRange(const data::BinaryDataset& dataset, const uint64_t* query,
                   uint32_t begin, uint32_t end, double radius,
                   std::vector<uint32_t>* out,
                   const util::BitVector* filter = nullptr);

// --- Generic entry points for the searcher / engine layers. ----------------

namespace detail {
/// Whether the index can name its metric (LshIndex / SegmentedIndex via
/// their family; CoveringLshIndex has no family but is Hamming-only, which
/// the BinaryDataset overloads cover without one).
template <typename Index>
concept HasFamilyMetric = requires(const Index& index) {
  { index.family().metric() } -> std::convertible_to<data::Metric>;
};

/// The one filter predicate every verify path applies (see the
/// block-batched section comment): null filter passes everything, ids the
/// filter does not cover fail.
inline bool FilterPass(const util::BitVector* filter, uint32_t id) {
  return filter == nullptr || (id < filter->size() && filter->Get(id));
}
}  // namespace detail

/// Verifies a flat candidate-id buffer (e.g. VisitedSet::touched() after
/// CollectCandidates) against `query`, appending reported ids to *out.
/// Dense and packed-binary datasets take the block-batched kernels;
/// anything else (sparse Jaccard) verifies per id through Index::Distance.
template <typename Index, typename Dataset>
size_t VerifyCandidates(const Index& index, const Dataset& dataset,
                        typename Index::Point query,
                        std::span<const uint32_t> ids, double radius,
                        std::vector<uint32_t>* out,
                        const util::BitVector* filter = nullptr) {
  if constexpr (std::is_same_v<Dataset, data::DenseDataset> &&
                detail::HasFamilyMetric<Index>) {
    return VerifyBlock(dataset, index.family().metric(), query, ids, radius,
                       out, filter);
  } else if constexpr (std::is_same_v<Dataset, data::BinaryDataset>) {
    return VerifyBlock(dataset, query, ids, radius, out, filter);
  } else {
    size_t reported = 0;
    for (const uint32_t id : ids) {
      if (!detail::FilterPass(filter, id)) continue;
      if (index.Distance(dataset.point(id), query) <= radius) {
        out->push_back(id);
        ++reported;
      }
    }
    return reported;
  }
}

/// VerifyCandidates with the quantized screen in front: dense datasets
/// with a live mirror screen through VerifyBlockQuantized; every other
/// container (and a null/disabled mirror) takes the exact path unchanged.
/// The engine's query paths call this with its engine-level mirror.
template <typename Index, typename Dataset>
size_t VerifyCandidatesQuantized(const Index& index, const Dataset& dataset,
                                 const data::QuantizedMirror* mirror,
                                 typename Index::Point query,
                                 std::span<const uint32_t> ids, double radius,
                                 std::vector<uint32_t>* out,
                                 const util::BitVector* filter = nullptr) {
  if constexpr (std::is_same_v<Dataset, data::DenseDataset> &&
                detail::HasFamilyMetric<Index>) {
    if (mirror != nullptr && mirror->enabled()) {
      return VerifyBlockQuantized(dataset, *mirror, index.family().metric(),
                                  query, ids, radius, out, nullptr, filter);
    }
  }
  return VerifyCandidates(index, dataset, query, ids, radius, out, filter);
}

/// Verifies the contiguous id range [begin, end) — the static linear-scan
/// path. Same container dispatch as VerifyCandidates.
template <typename Index, typename Dataset>
size_t VerifyAllIds(const Index& index, const Dataset& dataset,
                    typename Index::Point query, uint32_t begin, uint32_t end,
                    double radius, std::vector<uint32_t>* out,
                    const util::BitVector* filter = nullptr) {
  if constexpr (std::is_same_v<Dataset, data::DenseDataset> &&
                detail::HasFamilyMetric<Index>) {
    return VerifyRange(dataset, index.family().metric(), query, begin, end,
                       radius, out, filter);
  } else if constexpr (std::is_same_v<Dataset, data::BinaryDataset>) {
    return VerifyRange(dataset, query, begin, end, radius, out, filter);
  } else {
    size_t reported = 0;
    for (uint32_t id = begin; id < end; ++id) {
      if (!detail::FilterPass(filter, id)) continue;
      if (index.Distance(dataset.point(id), query) <= radius) {
        out->push_back(id);
        ++reported;
      }
    }
    return reported;
  }
}

}  // namespace kernels
}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_KERNELS_H_
