// The vectorized kernel subsystem: runtime-dispatched distance kernels and
// block-batched candidate verification.
//
// The paper's cost model prices every query in units of beta = one distance
// computation (Eq. 1/2), so candidate verification is the hot path of both
// strategies. This layer replaces the per-candidate
// `index->Distance(dataset.point(id), query)` calls with:
//
//   * a KernelTable of distance kernels (L1 / L2 / squared-L2 / dot /
//     fused cosine over dense rows, popcount-unrolled Hamming over packed
//     codes, plus the HLL register ops from util/simd.h), one table per
//     instruction-set tier, dispatched once per process on
//     util::simd::ResolvedTier();
//   * VerifyBlock / VerifyRange: block-batched verification that walks a
//     flat candidate-id buffer in cache-friendly blocks with software
//     prefetch, uses squared-L2 against radius^2 (no per-candidate sqrt),
//     and takes the precomputed-norm fast path for cosine when the
//     DenseDataset has them cached;
//   * VerifyCandidates / VerifyAllIds: the generic entry points
//     core::HybridSearcher and engine::ShardedEngine verify through, which
//     pick the typed block path per dataset container (dense, packed
//     binary) and fall back to per-id Family::Distance elsewhere (sparse
//     Jaccard).
//
// Every tier of every float kernel follows the canonical 8-lane
// accumulation order documented in util/simd.h, so scalar-forced
// (HLSH_SIMD=scalar) and vectorized runs report bit-identical result sets
// — only candidate order may differ. kernels.cc is compiled with
// -ffp-contract=off so no tier silently picks up FMA contraction. The
// cosine norm cache is built with the same canonical dot (util/simd.h
// DotF32Scalar), so the cached-norm and fused paths also agree on every
// candidate. Note the contract is within-the-subsystem: kernel sums round
// differently in the last ulp than the sequential-order references in
// data/metric.h (and L2 compares squared distance against radius^2 rather
// than sqrt against radius), so comparisons against data::RangeScan* hold
// only for radii that no candidate's distance matches to the last ulp —
// true of the suite's fixed seeds, and of any test that derives its
// radius between two order statistics (tests/test_kernels.cc PickRadius).

#ifndef HYBRIDLSH_CORE_KERNELS_H_
#define HYBRIDLSH_CORE_KERNELS_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "util/simd.h"

namespace hybridlsh {
namespace core {
namespace kernels {

/// One tier's kernels. All shards and segments of an engine share the one
/// table Kernels() resolves; per-tier tables exist for tests and benches.
struct KernelTable {
  util::simd::Tier tier;

  /// L1 (Manhattan) distance over d floats.
  float (*l1)(const float* a, const float* b, size_t d);
  /// Squared L2 distance (callers compare against radius^2).
  float (*l2sq)(const float* a, const float* b, size_t d);
  /// Dot product <a, b>.
  float (*dot)(const float* a, const float* b, size_t d);
  /// Fused cosine distance 1 - cos(a, b): dot and both norms in one pass
  /// (the no-precomputed-norms path). Zero vectors give distance 1.
  float (*cosine)(const float* a, const float* b, size_t d);
  /// Hamming distance over packed 64-bit words (popcount, 4x unrolled).
  uint32_t (*hamming)(const uint64_t* a, const uint64_t* b, size_t words);
  /// HLL register-wise max merge (util/simd.h).
  void (*hll_merge)(uint8_t* dst, const uint8_t* src, size_t m);
  /// HLL fused sum-of-2^-M + zero count (util/simd.h).
  double (*hll_sum)(const uint8_t* regs, size_t m, size_t* zeros);
};

/// The kernel table for util::simd::ResolvedTier(). Follows
/// SetResolvedTierForTest, so tier-equivalence tests can swap mid-process.
const KernelTable& Kernels();

/// The kernel table for one specific tier (clamped to CPU support).
const KernelTable& KernelsForTier(util::simd::Tier tier);

// --- Block-batched verification. -------------------------------------------
// Each call appends every id whose distance to `query` is <= radius to
// *out and returns the number appended. Candidates are processed in
// blocks with software prefetch of upcoming rows.

/// Dense rows under metric (kL1, kL2, or kCosine). For kCosine the
/// dataset's cached norms (data::DenseDataset::PrecomputeNorms) are used
/// when present; otherwise the fused cosine kernel runs per candidate.
size_t VerifyBlock(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, std::span<const uint32_t> ids,
                   double radius, std::vector<uint32_t>* out);

/// Dense contiguous id range [begin, end) — the linear-scan path, which
/// streams rows without an id gather.
size_t VerifyRange(const data::DenseDataset& dataset, data::Metric metric,
                   const float* query, uint32_t begin, uint32_t end,
                   double radius, std::vector<uint32_t>* out);

/// Packed binary codes under Hamming distance.
size_t VerifyBlock(const data::BinaryDataset& dataset, const uint64_t* query,
                   std::span<const uint32_t> ids, double radius,
                   std::vector<uint32_t>* out);
size_t VerifyRange(const data::BinaryDataset& dataset, const uint64_t* query,
                   uint32_t begin, uint32_t end, double radius,
                   std::vector<uint32_t>* out);

// --- Generic entry points for the searcher / engine layers. ----------------

namespace detail {
/// Whether the index can name its metric (LshIndex / SegmentedIndex via
/// their family; CoveringLshIndex has no family but is Hamming-only, which
/// the BinaryDataset overloads cover without one).
template <typename Index>
concept HasFamilyMetric = requires(const Index& index) {
  { index.family().metric() } -> std::convertible_to<data::Metric>;
};
}  // namespace detail

/// Verifies a flat candidate-id buffer (e.g. VisitedSet::touched() after
/// CollectCandidates) against `query`, appending reported ids to *out.
/// Dense and packed-binary datasets take the block-batched kernels;
/// anything else (sparse Jaccard) verifies per id through Index::Distance.
template <typename Index, typename Dataset>
size_t VerifyCandidates(const Index& index, const Dataset& dataset,
                        typename Index::Point query,
                        std::span<const uint32_t> ids, double radius,
                        std::vector<uint32_t>* out) {
  if constexpr (std::is_same_v<Dataset, data::DenseDataset> &&
                detail::HasFamilyMetric<Index>) {
    return VerifyBlock(dataset, index.family().metric(), query, ids, radius,
                       out);
  } else if constexpr (std::is_same_v<Dataset, data::BinaryDataset>) {
    return VerifyBlock(dataset, query, ids, radius, out);
  } else {
    size_t reported = 0;
    for (const uint32_t id : ids) {
      if (index.Distance(dataset.point(id), query) <= radius) {
        out->push_back(id);
        ++reported;
      }
    }
    return reported;
  }
}

/// Verifies the contiguous id range [begin, end) — the static linear-scan
/// path. Same container dispatch as VerifyCandidates.
template <typename Index, typename Dataset>
size_t VerifyAllIds(const Index& index, const Dataset& dataset,
                    typename Index::Point query, uint32_t begin, uint32_t end,
                    double radius, std::vector<uint32_t>* out) {
  if constexpr (std::is_same_v<Dataset, data::DenseDataset> &&
                detail::HasFamilyMetric<Index>) {
    return VerifyRange(dataset, index.family().metric(), query, begin, end,
                       radius, out);
  } else if constexpr (std::is_same_v<Dataset, data::BinaryDataset>) {
    return VerifyRange(dataset, query, begin, end, radius, out);
  } else {
    size_t reported = 0;
    for (uint32_t id = begin; id < end; ++id) {
      if (index.Distance(dataset.point(id), query) <= radius) {
        out->push_back(id);
        ++reported;
      }
    }
    return reported;
  }
}

}  // namespace kernels
}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_KERNELS_H_
