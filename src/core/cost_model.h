// The computational cost model of LSH-based search (paper §3.1).
//
// For a query, LSH-based search pays (Eq. 1)
//
//     LSHCost = alpha * #collisions + beta * candSize
//
// (S2: one dedup operation per collision; S3: one distance computation per
// distinct candidate), while a linear scan pays (Eq. 2)
//
//     LinearCost = beta * n.
//
// alpha and beta are implementation- and dataset-dependent constants; the
// paper calibrates the ratio beta/alpha on a random sample of 100 queries
// and 10,000 points (§4.2), landing at 10, 10, 6 and 1 for Webspam,
// CoverType, Corel and MNIST respectively. CostCalibrator reproduces that
// measurement for any dataset; CostModel::FromRatio pins the ratio
// directly, which the figure benches use to mirror the published setup.

#ifndef HYBRIDLSH_CORE_COST_MODEL_H_
#define HYBRIDLSH_CORE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/status.h"

namespace hybridlsh {
namespace core {

/// A coherent (live, indexed) pair for one decision. A mutable index's two
/// counters move independently under concurrent writers; reading them with
/// two separate calls can observe an impossible state (e.g. live > indexed,
/// or a fraction > 1) between an insert's increments. Segmented indexes
/// keep both packed in one atomic word and materialize this struct from a
/// single load (SegmentedIndex::live_stats), so every decision site prices
/// LinearCost and the tombstone correction from the same instant.
struct LiveStats {
  /// Points a query can report (the linear path's iteration count).
  size_t live = 0;
  /// Live + tombstoned-but-not-yet-compacted ids still occupying buckets.
  size_t indexed = 0;

  /// Fraction of indexed ids that are live (1.0 for a static index).
  double fraction() const {
    return indexed == 0
               ? 1.0
               : static_cast<double>(live) / static_cast<double>(indexed);
  }
};

/// The (alpha, beta) constants of Equations 1-2. Units are arbitrary but
/// must be shared: only the ratio beta/alpha affects the decision.
struct CostModel {
  /// Average cost of removing one duplicate (a VisitedSet insert).
  double alpha = 1.0;
  /// Average cost of one EXACT distance computation (the float kernels).
  double beta = 10.0;

  /// Quantized-verification split of the per-candidate cost. Under the
  /// int8 screen (engine option quantized_verify) every candidate pays a
  /// cheap screen pass and only the borderline fraction pays the full
  /// float32 rescore, so the effective per-candidate verification cost is
  ///
  ///     VerifyBeta() = beta_screen + rescore_fraction * beta.
  ///
  /// The defaults (0, 1) reproduce the single-beta model exactly — the
  /// decision arithmetic is unchanged unless a caller installs a split
  /// (the engine never does so silently, which keeps quantized-on and
  /// quantized-off strategy decisions — and thus LSH candidate sets —
  /// identical). Both strategies verify through the same screen, so
  /// VerifyBeta() replaces beta in Eq. 1, Eq. 2, and the tombstone
  /// correction alike; the decision stays exact either way, only its
  /// LSH-vs-linear pick shifts with the cheaper verify.
  double beta_screen = 0.0;
  double rescore_fraction = 1.0;

  /// Effective cost of verifying one candidate (screen + expected rescore).
  double VerifyBeta() const { return beta_screen + rescore_fraction * beta; }

  /// Eq. 1. `cand_size` may be the HLL estimate (query time) or the exact
  /// distinct count (analysis).
  double LshCost(uint64_t collisions, double cand_size) const {
    return alpha * static_cast<double>(collisions) + VerifyBeta() * cand_size;
  }

  /// Eq. 2. For a segmented index n is the LIVE point count: the linear
  /// path iterates live ids only, so tombstoned points cost nothing there.
  /// With a pushed-down predicate filter, `selectivity` is the fraction of
  /// live points that pass the filter: the filtered linear path enumerates
  /// filter survivors by word-skipping the composed bitmap, so only
  /// survivors reach the distance check.
  double LinearCost(size_t n, double selectivity = 1.0) const {
    return VerifyBeta() * static_cast<double>(n) * Clamp01(selectivity);
  }

  /// The one clamped live-fraction helper every discount flows through.
  ///
  /// `live_fraction` is live/indexed (tombstone share); `selectivity` is
  /// the fraction of LIVE points passing the pushed-down filter — it is
  /// measured on the composed filter∧¬tombstone bitmap, i.e. already
  /// conditioned on liveness. The expected fraction of indexed candidates
  /// that reach the exact distance check is therefore the clamped product:
  /// each point deleted AND filtered out is discounted exactly once
  /// (through live_fraction; the conditional selectivity never re-counts
  /// it). Deriving both the tombstone and the filter discount from this
  /// single value — instead of subtracting two independently computed
  /// corrections — is what keeps the combined correction from
  /// double-discounting and driving the LSH estimate negative.
  static double EffectiveLiveFraction(double live_fraction,
                                      double selectivity) {
    return Clamp01(Clamp01(live_fraction) * Clamp01(selectivity));
  }

  /// Tombstone correction for segmented indexes (engine/segmented_index.h).
  /// Dead ids still sit in buckets and sketches, so the summed ProbeEstimate
  /// overstates S3: of `cand_size` estimated distinct candidates only
  /// ~live_fraction reach the distance check (dead ones are dropped at S2,
  /// whose alpha cost is already fully counted in #collisions). Subtract
  /// this from LshCost before comparing against LinearCost(live_n).
  double TombstoneCorrection(double cand_size, double live_fraction) const {
    return DeadWeightCorrection(cand_size,
                                EffectiveLiveFraction(live_fraction, 1.0));
  }

  /// The LSH side of the hybrid decision with the tombstone and filter
  /// discounts applied — the single formula every decision site
  /// (HybridSearcher, ShardedEngine::QueryShard) compares against
  /// LinearCost(live_n, selectivity). Candidates that are dead or filtered
  /// are rejected by a bit test at S2/verify-screen whose cost is already
  /// inside alpha*#collisions + the screen share of VerifyBeta(); only the
  /// effective live fraction of them pays an exact distance. The defaults
  /// (live_fraction 1, selectivity 1) reduce to Eq. 1.
  double CorrectedLshCost(uint64_t collisions, double cand_size,
                          double live_fraction,
                          double selectivity = 1.0) const {
    return LshCost(collisions, cand_size) -
           DeadWeightCorrection(
               cand_size, EffectiveLiveFraction(live_fraction, selectivity));
  }

  /// CorrectedLshCost from one coherent LiveStats snapshot — the form the
  /// concurrent query paths use so the correction and the linear
  /// comparison cannot mix counter values from different instants.
  double CorrectedLshCost(uint64_t collisions, double cand_size,
                          const LiveStats& live,
                          double selectivity = 1.0) const {
    return CorrectedLshCost(collisions, cand_size, live.fraction(),
                            selectivity);
  }

  /// Model with alpha = 1 and beta = `beta_over_alpha` (the paper's
  /// pinned-ratio setup).
  static CostModel FromRatio(double beta_over_alpha) {
    return CostModel{1.0, beta_over_alpha};
  }

  /// beta / alpha.
  double Ratio() const { return beta / alpha; }

 private:
  static double Clamp01(double f) { return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f); }

  /// Cost of the exact distances NOT paid because (1 - effective_fraction)
  /// of the estimated candidates are rejected by bit tests. Private: the
  /// effective fraction must come from EffectiveLiveFraction so no call
  /// site can stack two independent corrections.
  double DeadWeightCorrection(double cand_size,
                              double effective_fraction) const {
    return VerifyBeta() * cand_size * (1.0 - effective_fraction);
  }
};

/// Measures alpha and beta empirically (paper §4.2's procedure). Degenerate
/// inputs fail with InvalidArgument instead of indexing out of range or
/// dividing by zero — calibration often runs on a caller-supplied sample
/// whose size the library cannot see past the callback.
class CostCalibrator {
 public:
  /// Seconds per dedup operation: timed VisitedSet inserts of `ops` random
  /// ids over a set of the given capacity, best of `repetitions` runs.
  static util::StatusOr<double> MeasureAlpha(size_t capacity, size_t ops,
                                             uint64_t seed,
                                             int repetitions = 3);

  /// Seconds per distance computation: times `distance_fn(i)` over point
  /// indices i < min(sample_size, n) for `ops` evaluations, best of
  /// `repetitions`. `n` is the number of points the callback can index (the
  /// dataset size); a paper-style sample_size of 10,000 is clamped to it,
  /// so the callback is never called out of range. The callback should
  /// compute one representative distance (e.g. sample point i against a
  /// fixed query) and return it; returns are accumulated into a sink so the
  /// calls cannot be optimized away. InvalidArgument when the dataset is
  /// empty (n == 0 or sample_size == 0) or ops/repetitions are zero.
  static util::StatusOr<double> MeasureBeta(
      const std::function<double(size_t)>& distance_fn, size_t n,
      size_t sample_size, size_t ops, int repetitions = 3);

  /// Convenience: a CostModel from both measurements. `sample_size` is
  /// clamped to `n` like MeasureBeta's.
  static util::StatusOr<CostModel> Calibrate(
      const std::function<double(size_t)>& distance_fn, size_t n,
      size_t sample_size, size_t dedup_capacity, size_t ops = 200000,
      uint64_t seed = 1);
};

}  // namespace core
}  // namespace hybridlsh

#endif  // HYBRIDLSH_CORE_COST_MODEL_H_
