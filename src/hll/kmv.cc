#include "hll/kmv.h"

#include <algorithm>

namespace hybridlsh {
namespace hll {

KmvSketch::KmvSketch(size_t k) : k_(k) {
  HLSH_CHECK(k >= 3);
  heap_.reserve(k);
}

util::StatusOr<KmvSketch> KmvSketch::Create(size_t k) {
  if (k < 3) {
    return util::Status::InvalidArgument("KMV sketch requires k >= 3");
  }
  return KmvSketch(k);
}

bool KmvSketch::Contains(uint64_t hash) const {
  return std::find(heap_.begin(), heap_.end(), hash) != heap_.end();
}

void KmvSketch::AddHash(uint64_t hash) {
  if (heap_.size() < k_) {
    if (Contains(hash)) return;
    heap_.push_back(hash);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (hash >= heap_.front() || Contains(hash)) return;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = hash;
  std::push_heap(heap_.begin(), heap_.end());
}

double KmvSketch::Estimate() const {
  if (heap_.size() < k_) {
    // Saw fewer than k distinct hashes: the sketch is lossless.
    return static_cast<double>(heap_.size());
  }
  // Normalize the k-th minimum to (0, 1]; estimator (k-1)/U_(k).
  const double kth = static_cast<double>(heap_.front());
  const double normalized =
      (kth + 1.0) / 18446744073709551616.0;  // 2^64, avoids division by zero
  return static_cast<double>(k_ - 1) / normalized;
}

util::Status KmvSketch::Merge(const KmvSketch& other) {
  if (k_ != other.k_) {
    return util::Status::FailedPrecondition(
        "cannot merge KMV sketches with different k");
  }
  for (uint64_t hash : other.heap_) AddHash(hash);
  return util::Status::Ok();
}

}  // namespace hll
}  // namespace hybridlsh
