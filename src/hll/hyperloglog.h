// HyperLogLog cardinality sketch (Flajolet, Fusy, Gandouet, Meunier 2007).
//
// This is the auxiliary structure the paper integrates into every LSH
// bucket (§2, §3): merging the sketches of the L query buckets estimates
// candSize — the number of *distinct* points colliding with the query —
// which plugs into the LSHCost model (Eq. 1).
//
// Implementation notes:
//   * One sketch holds m = 2^precision byte registers. The paper uses
//     m = 32..128, i.e. precision 5..7.
//   * Elements are fed as 64-bit hashes. The top `precision` bits select a
//     register; the rank (leading-zero count + 1) of the remaining bits is
//     the candidate register value. This realizes the paper's description
//     "generate a random pair {m_i, v_i}, m_i ~ Uniform([m]),
//     v_i ~ Geometric(1/2); update M[m_i] = max(M[m_i], v_i)".
//   * Estimate = alpha_m * m^2 / sum_j 2^{-M[j]}, with the standard
//     linear-counting correction below 2.5m. With 64-bit hashes no
//     large-range correction is required.
//   * Merge is register-wise max, which is exactly union semantics; the
//     paper relies on this to treat the L query buckets as partitions of
//     one stream.
//   * Merge and Estimate run on the dispatched SIMD register kernels
//     (util/simd.h): byte-max merge and a fused sum-of-2^-M + zero count.
//     The query-time EstimateProbe path (lsh/index.h) is built on these,
//     and the canonical accumulation order keeps estimates bit-identical
//     across instruction-set tiers.
//   * Standard error is 1.04 / sqrt(m)  (~9.2% at m=128).

#ifndef HYBRIDLSH_HLL_HYPERLOGLOG_H_
#define HYBRIDLSH_HLL_HYPERLOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace hybridlsh {
namespace hll {

/// Hashes a point id into the uniform 64-bit stream fed to bucket sketches.
/// Every component that inserts ids into an HLL (table build, on-demand
/// folding of small buckets, tests) must use this one function so that the
/// same id always contributes the same register update.
inline uint64_t PointHash(uint32_t id) { return util::HashU64(id); }

/// HyperLogLog sketch with byte registers.
class HyperLogLog {
 public:
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 18;

  /// Creates a sketch with m = 2^precision zero registers. `precision` must
  /// lie in [kMinPrecision, kMaxPrecision]; use Create() for validated
  /// construction from untrusted input.
  explicit HyperLogLog(int precision);

  /// Validated factory: rejects out-of-range precision instead of aborting.
  static util::StatusOr<HyperLogLog> Create(int precision);

  /// Feeds a pre-hashed element. All updates funnel through here.
  void AddHash(uint64_t hash) {
    const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
    // Rank of the remaining (64 - precision) bits: leading zeros + 1.
    const uint64_t rest = (hash << precision_) | (uint64_t{1} << (precision_ - 1));
    const uint8_t rank = static_cast<uint8_t>(CountLeadingZeros(rest) + 1);
    if (rank > registers_[index]) registers_[index] = rank;
  }

  /// Convenience: feeds a point id via PointHash.
  void AddPoint(uint32_t id) { AddHash(PointHash(id)); }

  /// Cardinality estimate with linear-counting small-range correction.
  double Estimate() const;

  /// Register-wise max-merge (union). Fails unless precisions match.
  util::Status Merge(const HyperLogLog& other);

  /// Resets every register to zero.
  void Clear();

  /// log2 of the register count.
  int precision() const { return precision_; }
  /// Number of registers m.
  size_t num_registers() const { return registers_.size(); }
  /// Theoretical standard error 1.04/sqrt(m).
  double StandardError() const;
  /// Raw register values (for tests and serialization).
  const std::vector<uint8_t>& registers() const { return registers_; }
  /// Heap bytes used by the registers.
  size_t MemoryBytes() const { return registers_.size(); }

  /// Serializes to [precision:1 byte][registers:m bytes].
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer produced by Serialize(). Rejects truncated input, bad
  /// precision, and register values that exceed the per-precision maximum
  /// rank (failure-injection tests rely on this).
  static util::StatusOr<HyperLogLog> Deserialize(
      std::span<const uint8_t> bytes);

  bool operator==(const HyperLogLog& other) const {
    return precision_ == other.precision_ && registers_ == other.registers_;
  }

 private:
  static int CountLeadingZeros(uint64_t x);
  /// Bias-correction constant alpha_m.
  static double Alpha(size_t m);

  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace hll
}  // namespace hybridlsh

#endif  // HYBRIDLSH_HLL_HYPERLOGLOG_H_
