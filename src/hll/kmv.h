// K-Minimum-Values (KMV / "bottom-k") cardinality sketch.
//
// The paper picks HyperLogLog because it is "near-optimal ... for a given
// fixed amount of memory" (§2). KMV is the natural alternative a reviewer
// would ask about: keep the k smallest 64-bit hashes; with U_(k) the k-th
// smallest hash normalized to (0,1), the unbiased estimator is
// (k - 1) / U_(k). Standard error ~ 1/sqrt(k-2), but each retained value
// costs 8 bytes versus HLL's 1 byte per register — the ablation bench
// (bench_ablation_sketch) quantifies accuracy per byte for the candSize
// estimation task.

#ifndef HYBRIDLSH_HLL_KMV_H_
#define HYBRIDLSH_HLL_KMV_H_

#include <cstdint>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace hybridlsh {
namespace hll {

/// Bottom-k sketch over 64-bit hashed elements.
class KmvSketch {
 public:
  /// Creates a sketch retaining the k smallest distinct hashes (k >= 3 for
  /// the estimator to have finite variance).
  explicit KmvSketch(size_t k);

  /// Validated factory for untrusted k.
  static util::StatusOr<KmvSketch> Create(size_t k);

  /// Feeds a pre-hashed element. Duplicate hashes are ignored (set
  /// semantics), mirroring HLL's idempotent updates.
  void AddHash(uint64_t hash);

  /// Convenience: feeds a point id via the shared PointHash stream.
  void AddPoint(uint32_t id) { AddHash(util::HashU64(id)); }

  /// Cardinality estimate. Exact (= number of retained values) while fewer
  /// than k distinct elements have been seen.
  double Estimate() const;

  /// Union-merge with another sketch of the same k.
  util::Status Merge(const KmvSketch& other);

  /// Retained-value budget k.
  size_t k() const { return k_; }
  /// Number of hashes currently retained (<= k).
  size_t size() const { return heap_.size(); }
  /// Heap bytes used by retained hashes.
  size_t MemoryBytes() const { return heap_.size() * sizeof(uint64_t); }

  /// Resets to the empty state.
  void Clear() { heap_.clear(); }

 private:
  bool Contains(uint64_t hash) const;

  size_t k_;
  // Max-heap of the smallest hashes seen so far (root = current k-th min).
  std::vector<uint64_t> heap_;
};

}  // namespace hll
}  // namespace hybridlsh

#endif  // HYBRIDLSH_HLL_KMV_H_
