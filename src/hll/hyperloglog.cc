#include "hll/hyperloglog.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/simd.h"

namespace hybridlsh {
namespace hll {

HyperLogLog::HyperLogLog(int precision)
    : precision_(precision),
      registers_(static_cast<size_t>(1) << precision, 0) {
  HLSH_CHECK(precision >= kMinPrecision && precision <= kMaxPrecision);
}

util::StatusOr<HyperLogLog> HyperLogLog::Create(int precision) {
  if (precision < kMinPrecision || precision > kMaxPrecision) {
    return util::Status::InvalidArgument(
        "HyperLogLog precision must be in [4, 18]");
  }
  return HyperLogLog(precision);
}

int HyperLogLog::CountLeadingZeros(uint64_t x) {
  // x always has the sentinel bit set by AddHash, so x != 0.
  return std::countl_zero(x);
}

double HyperLogLog::Alpha(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

double HyperLogLog::Estimate() const {
  // Fused sum-of-2^-M + zero count in one dispatched pass (util/simd.h).
  // Every tier follows the same canonical accumulation order, so the
  // estimate — and through it the hybrid LSH-vs-linear decision — is
  // bit-identical whether the process runs scalar-forced or vectorized.
  const size_t m = registers_.size();
  size_t zeros = 0;
  const double sum =
      util::simd::HllRegisterSum(registers_.data(), m, &zeros);
  const double md = static_cast<double>(m);
  const double raw = Alpha(m) * md * md / sum;
  if (raw <= 2.5 * md && zeros > 0) {
    // Linear counting is more accurate in the small range.
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

util::Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (precision_ != other.precision_) {
    return util::Status::FailedPrecondition(
        "cannot merge HyperLogLogs of different precision");
  }
  util::simd::HllMergeMax(registers_.data(), other.registers_.data(),
                          registers_.size());
  return util::Status::Ok();
}

void HyperLogLog::Clear() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

double HyperLogLog::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(1 + registers_.size());
  out.push_back(static_cast<uint8_t>(precision_));
  out.insert(out.end(), registers_.begin(), registers_.end());
  return out;
}

util::StatusOr<HyperLogLog> HyperLogLog::Deserialize(
    std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return util::Status::DataLoss("empty HyperLogLog buffer");
  }
  const int precision = bytes[0];
  if (precision < kMinPrecision || precision > kMaxPrecision) {
    return util::Status::DataLoss("HyperLogLog buffer has invalid precision");
  }
  const size_t m = static_cast<size_t>(1) << precision;
  if (bytes.size() != 1 + m) {
    return util::Status::DataLoss("HyperLogLog buffer has wrong length");
  }
  // Max attainable rank: 64 - precision + 1 (sentinel caps the zero run).
  const uint8_t max_rank = static_cast<uint8_t>(64 - precision + 1);
  HyperLogLog sketch(precision);
  for (size_t i = 0; i < m; ++i) {
    const uint8_t reg = bytes[1 + i];
    if (reg > max_rank) {
      return util::Status::DataLoss("HyperLogLog register value out of range");
    }
    sketch.registers_[i] = reg;
  }
  return sketch;
}

}  // namespace hll
}  // namespace hybridlsh
