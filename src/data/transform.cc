#include "data/transform.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/stats.h"

namespace hybridlsh {
namespace data {

void NormalizeUnitL2(DenseDataset* dataset) {
  const size_t dim = dataset->dim();
  for (size_t i = 0; i < dataset->size(); ++i) {
    float* point = dataset->mutable_point(i);
    const float norm = Norm(point, dim);
    if (norm == 0.0f) continue;
    for (size_t j = 0; j < dim; ++j) point[j] /= norm;
  }
}

void AffineTransform::ApplyToPoint(float* point) const {
  for (size_t j = 0; j < shift.size(); ++j) {
    point[j] = (point[j] - shift[j]) * scale[j];
  }
}

util::Status AffineTransform::Apply(DenseDataset* dataset) const {
  if (dataset->dim() != dim()) {
    return util::Status::InvalidArgument(
        "transform dimension mismatches dataset");
  }
  for (size_t i = 0; i < dataset->size(); ++i) {
    ApplyToPoint(dataset->mutable_point(i));
  }
  return util::Status::Ok();
}

util::StatusOr<AffineTransform> FitMinMax(const DenseDataset& dataset) {
  if (dataset.empty()) {
    return util::Status::InvalidArgument("cannot fit on an empty dataset");
  }
  const size_t dim = dataset.dim();
  std::vector<float> lo(dim, 3.4e38f), hi(dim, -3.4e38f);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const float* point = dataset.point(i);
    for (size_t j = 0; j < dim; ++j) {
      lo[j] = std::min(lo[j], point[j]);
      hi[j] = std::max(hi[j], point[j]);
    }
  }
  AffineTransform transform;
  transform.shift = lo;
  transform.scale.resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    const float range = hi[j] - lo[j];
    transform.scale[j] = range > 0 ? 1.0f / range : 0.0f;
  }
  return transform;
}

util::StatusOr<AffineTransform> FitStandardize(const DenseDataset& dataset) {
  if (dataset.empty()) {
    return util::Status::InvalidArgument("cannot fit on an empty dataset");
  }
  const size_t dim = dataset.dim();
  std::vector<util::RunningStat> stats(dim);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const float* point = dataset.point(i);
    for (size_t j = 0; j < dim; ++j) stats[j].Add(point[j]);
  }
  AffineTransform transform;
  transform.shift.resize(dim);
  transform.scale.resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    transform.shift[j] = static_cast<float>(stats[j].mean());
    const double sd = stats[j].stddev();
    transform.scale[j] = sd > 0 ? static_cast<float>(1.0 / sd) : 0.0f;
  }
  return transform;
}

util::StatusOr<std::vector<float>> DistanceQuantiles(
    const DenseDataset& dataset, Metric metric,
    const std::vector<double>& quantiles, size_t num_pairs, uint64_t seed) {
  if (dataset.size() < 2) {
    return util::Status::InvalidArgument("need at least two points");
  }
  if (metric != Metric::kL1 && metric != Metric::kL2 &&
      metric != Metric::kCosine) {
    return util::Status::InvalidArgument(
        "DistanceQuantiles supports dense metrics (L1, L2, cosine)");
  }
  util::Rng rng(seed);
  const size_t dim = dataset.dim();
  const int64_t max_id = static_cast<int64_t>(dataset.size()) - 1;
  std::vector<double> distances;
  distances.reserve(num_pairs);
  for (size_t p = 0; p < num_pairs; ++p) {
    const size_t a = static_cast<size_t>(rng.UniformInt(0, max_id));
    size_t b = static_cast<size_t>(rng.UniformInt(0, max_id));
    if (a == b) b = (b + 1) % dataset.size();
    switch (metric) {
      case Metric::kL1:
        distances.push_back(L1Distance(dataset.point(a), dataset.point(b), dim));
        break;
      case Metric::kL2:
        distances.push_back(L2Distance(dataset.point(a), dataset.point(b), dim));
        break;
      default:
        distances.push_back(
            CosineDistance(dataset.point(a), dataset.point(b), dim));
        break;
    }
  }
  std::vector<float> out;
  out.reserve(quantiles.size());
  for (double q : quantiles) {
    out.push_back(static_cast<float>(util::Percentile(distances, q)));
  }
  return out;
}

}  // namespace data
}  // namespace hybridlsh
