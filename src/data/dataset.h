// Point-set containers: dense real vectors, packed binary codes, and sparse
// binary sets.
//
// Every container exposes the same minimal surface the index templates rely
// on — `size()`, `point(i)` returning the family's Point type, and a
// dimension accessor — so LshIndex / HybridIndex work over any of them:
//
//   DenseDataset   point(i) -> const float*          (L1 / L2 / cosine)
//   BinaryDataset  point(i) -> const uint64_t*       (Hamming on packed codes)
//   SparseDataset  point(i) -> span<const uint32_t>  (Jaccard on id sets)
//
// Storage is backed by util::PublishedArray: one writer may Append points
// while query threads concurrently read already-published points (the
// serving engine's ingest-under-query path). A point's bytes are immutable
// once the size covering it is release-published, and buffer growth retires
// the old allocation instead of freeing it under readers. All *other*
// mutation (mutable_point, mutable_matrix, SetBit, load-time adoption)
// remains build-time only — not safe under concurrent readers.

#ifndef HYBRIDLSH_DATA_DATASET_H_
#define HYBRIDLSH_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/matrix.h"
#include "util/published_array.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

class DenseDataset;
class BinaryDataset;
class SparseDataset;

// --- Container serialization (engine snapshots). ---------------------------
// Each container round-trips through one Save/Load overload pair; the first
// field is the container's kind tag, so a snapshot loader can reject a
// dataset file of the wrong representation with InvalidArgument instead of
// misparsing it. SaveDataset(dense) persists the norm cache when present,
// so a restored engine keeps the cosine verification fast path without an
// O(n * dim) recompute.

constexpr uint32_t kDenseDatasetKind = 1;
constexpr uint32_t kBinaryDatasetKind = 2;
constexpr uint32_t kSparseDatasetKind = 3;

void SaveDataset(const DenseDataset& dataset, util::ByteWriter* writer);
void SaveDataset(const BinaryDataset& dataset, util::ByteWriter* writer);
void SaveDataset(const SparseDataset& dataset, util::ByteWriter* writer);

/// Parses a container written by the matching SaveDataset overload,
/// replacing *dataset. DataLoss on malformed input; InvalidArgument when
/// the payload holds a different container kind.
util::Status LoadDataset(util::ByteReader* reader, DenseDataset* dataset);
util::Status LoadDataset(util::ByteReader* reader, BinaryDataset* dataset);
util::Status LoadDataset(util::ByteReader* reader, SparseDataset* dataset);

/// The kind tag a SaveDataset overload writes for this container.
constexpr uint32_t DatasetKindOf(const DenseDataset&) {
  return kDenseDatasetKind;
}
constexpr uint32_t DatasetKindOf(const BinaryDataset&) {
  return kBinaryDatasetKind;
}
constexpr uint32_t DatasetKindOf(const SparseDataset&) {
  return kSparseDatasetKind;
}

/// Dense real-valued point set, one point per row.
class DenseDataset {
 public:
  using Point = const float*;

  DenseDataset() = default;

  /// Adopts a row-major matrix of points.
  explicit DenseDataset(util::FloatMatrix points) : points_(std::move(points)) {}

  /// Creates an n x dim zero dataset.
  DenseDataset(size_t n, size_t dim) : points_(n, dim) {}

  size_t size() const { return points_.rows(); }
  size_t dim() const { return points_.cols(); }
  bool empty() const { return points_.empty(); }

  Point point(size_t i) const { return points_.Row(i); }
  float* mutable_point(size_t i) {
    InvalidateNorms();
    return points_.MutableRow(i);
  }

  const util::FloatMatrix& matrix() const { return points_; }
  util::FloatMatrix& mutable_matrix() {
    InvalidateNorms();
    return points_;
  }

  /// Heap bytes held by the point storage and norm cache (including
  /// retired grow buffers). Safe concurrently with the writer.
  size_t MemoryBytes() const {
    return points_.MemoryBytes() + norms_.MemoryBytes();
  }

  /// Appends one point (dimension must match; sets dim on first append).
  /// Single-writer: safe concurrently with readers of published points.
  /// When the norm cache is current, the new point's norm is computed and
  /// appended in step, keeping the cosine fast path warm under live
  /// ingest; otherwise the cache stays invalid.
  void Append(std::span<const float> point);

  /// Pre-allocates capacity for `n` points so appends up to that count
  /// never reallocate (and thus never retire a buffer).
  void Reserve(size_t n) {
    points_.Reserve(n);
    norms_.Reserve(n);
  }

  // --- Per-point Euclidean norms (the cosine verification fast path). ------
  // With norms cached, the block verifier (core/kernels.h) prices a cosine
  // candidate at one dot product instead of a fused three-sum pass. In-place
  // mutation — mutable_point, mutable_matrix — invalidates the cache; call
  // PrecomputeNorms again to rebuild it. Plain scalar math, so the cached
  // values are identical no matter which SIMD tier is resolved.

  /// Computes and caches |point(i)| for every point. O(n * dim).
  /// Build-time only (rewrites published slots).
  void PrecomputeNorms();

  /// Whether the norm cache is populated and current. Under a concurrent
  /// Append this may transiently report false; callers then take the fused
  /// (uncached) verification path, which agrees on every candidate.
  bool has_norms() const { return norms_.size() == points_.rows(); }

  /// The cached norms, one per point. Only valid while has_norms().
  std::span<const float> norms() const {
    HLSH_DCHECK(has_norms());
    return norms_.span();
  }
  float norm(size_t i) const {
    HLSH_DCHECK(has_norms());
    return norms_[i];
  }

 private:
  friend void SaveDataset(const DenseDataset&, util::ByteWriter*);
  friend util::Status LoadDataset(util::ByteReader*, DenseDataset*);

  void InvalidateNorms() { norms_.Assign({}); }

  util::FloatMatrix points_;
  util::PublishedArray<float> norms_;  // empty = not cached
};

/// Packed binary codes, `width_bits` bits per point in 64-bit words.
/// This is the container for the paper's MNIST pipeline: points are reduced
/// to 64-bit SimHash fingerprints and searched under Hamming distance.
class BinaryDataset {
 public:
  using Point = const uint64_t*;

  BinaryDataset() = default;

  /// Creates n all-zero codes of `width_bits` bits each (must be > 0 and a
  /// multiple is not required; the last word is partially used).
  BinaryDataset(size_t n, size_t width_bits)
      : width_bits_(width_bits), words_per_code_((width_bits + 63) / 64) {
    HLSH_CHECK(width_bits > 0);
    words_.GrowTo(n * words_per_code_, 0);
  }

  /// Code count, derived from the published word count (safe from any
  /// thread; monotone under one appending writer).
  size_t size() const {
    return words_per_code_ == 0 ? 0 : words_.size() / words_per_code_;
  }
  /// Bits per code (the Hamming-space dimension).
  size_t width_bits() const { return width_bits_; }
  /// 64-bit words per code.
  size_t words_per_code() const { return words_per_code_; }
  bool empty() const { return size() == 0; }

  Point point(size_t i) const {
    HLSH_DCHECK(i < size());
    return words_.data() + i * words_per_code_;
  }
  uint64_t* mutable_point(size_t i) {
    HLSH_DCHECK(i < size());
    return words_.mutable_data() + i * words_per_code_;
  }

  /// Returns bit `bit` of code i.
  bool GetBit(size_t i, size_t bit) const {
    HLSH_DCHECK(bit < width_bits_);
    return (point(i)[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Sets bit `bit` of code i to `value`. Build-time only.
  void SetBit(size_t i, size_t bit, bool value) {
    HLSH_DCHECK(bit < width_bits_);
    uint64_t& word = mutable_point(i)[bit >> 6];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Appends one code (must point at words_per_code() words).
  /// Single-writer: safe concurrently with readers of published codes.
  void Append(const uint64_t* code) {
    HLSH_CHECK(width_bits_ > 0);
    words_.Append(code, words_per_code_);
  }

  /// Pre-allocates capacity for `n` codes.
  void Reserve(size_t n) { words_.Reserve(n * words_per_code_); }

  /// The packed storage (size() * words_per_code() words).
  std::span<const uint64_t> words() const { return words_.span(); }

  /// Heap bytes held by the packed code storage (including retired grow
  /// buffers). Safe concurrently with the writer.
  size_t MemoryBytes() const { return words_.MemoryBytes(); }

  /// Replaces the packed storage wholesale (bulk-load paths); the word
  /// count must be a multiple of words_per_code(). Build-time only.
  void AdoptWords(std::span<const uint64_t> words) {
    HLSH_CHECK(words_per_code_ != 0 && words.size() % words_per_code_ == 0);
    words_.Assign(words);
  }

 private:
  size_t width_bits_ = 0;
  size_t words_per_code_ = 0;
  util::PublishedArray<uint64_t> words_;
};

/// Sparse binary point set: each point is a strictly increasing sequence of
/// feature ids (CSR layout). The container for Jaccard / MinHash.
class SparseDataset {
 public:
  using Point = std::span<const uint32_t>;

  SparseDataset() { offsets_.PushBack(0); }

  /// Creates an empty dataset over feature ids [0, universe).
  explicit SparseDataset(uint32_t universe) : universe_(universe) {
    offsets_.PushBack(0);
  }

  /// Point count, derived from the published offset count (safe from any
  /// thread; monotone under one appending writer).
  size_t size() const { return offsets_.size() - 1; }
  /// Exclusive upper bound on feature ids (0 = unknown).
  uint32_t universe() const { return universe_; }
  bool empty() const { return size() == 0; }

  Point point(size_t i) const {
    HLSH_DCHECK(i + 1 < offsets_.size());
    const size_t* offsets = offsets_.data();
    return {indices_.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }

  /// Appends one point. Ids must be strictly increasing and below the
  /// universe bound when one was given. Single-writer: safe concurrently
  /// with readers of published points (the ids are filled and published
  /// before the covering offset).
  util::Status Append(std::span<const uint32_t> sorted_ids);

  /// Pre-allocates capacity for `n` more points of ~`avg_entries` ids each.
  void Reserve(size_t n, size_t avg_entries) {
    offsets_.Reserve(offsets_.size() + n);
    indices_.Reserve(indices_.size() + n * avg_entries);
  }

  /// Total number of stored ids across all points.
  size_t num_entries() const { return indices_.size(); }

  /// Heap bytes held by the CSR arrays (including retired grow buffers).
  /// Safe concurrently with the writer.
  size_t MemoryBytes() const {
    return indices_.MemoryBytes() + offsets_.MemoryBytes();
  }

 private:
  friend void SaveDataset(const SparseDataset&, util::ByteWriter*);
  friend util::Status LoadDataset(util::ByteReader*, SparseDataset*);

  uint32_t universe_ = 0;
  util::PublishedArray<uint32_t> indices_;
  util::PublishedArray<size_t> offsets_;
};

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_DATASET_H_
