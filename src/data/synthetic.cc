#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/status.h"

namespace hybridlsh {
namespace data {
namespace {

// Draws cluster sizes summing to n. skew = 0 gives equal sizes; skew > 0
// gives Zipf-like sizes (cluster c gets weight (c+1)^-skew).
std::vector<size_t> ClusterSizes(size_t n, size_t num_clusters, double skew,
                                 util::Rng* rng) {
  std::vector<double> weights(num_clusters);
  double total = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    weights[c] = std::pow(static_cast<double>(c + 1), -skew);
    total += weights[c];
  }
  std::vector<size_t> sizes(num_clusters, 0);
  size_t assigned = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    sizes[c] = static_cast<size_t>(weights[c] / total * static_cast<double>(n));
    assigned += sizes[c];
  }
  // Distribute the rounding remainder at random.
  while (assigned < n) {
    ++sizes[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_clusters) - 1))];
    ++assigned;
  }
  return sizes;
}

void NormalizeRow(float* row, size_t dim) {
  double norm = 0;
  for (size_t j = 0; j < dim; ++j) norm += static_cast<double>(row[j]) * row[j];
  norm = std::sqrt(norm);
  if (norm == 0) {
    row[0] = 1.0f;
    return;
  }
  for (size_t j = 0; j < dim; ++j) {
    row[j] = static_cast<float>(row[j] / norm);
  }
}

}  // namespace

DenseDataset MakeGaussianMixture(const GaussianMixtureConfig& config) {
  HLSH_CHECK(config.num_clusters >= 1);
  util::Rng rng(config.seed);
  const std::vector<size_t> sizes =
      ClusterSizes(config.n, config.num_clusters, config.cluster_size_skew, &rng);

  // Sample cluster centers and scales.
  util::FloatMatrix centers(config.num_clusters, config.dim);
  std::vector<double> scales(config.num_clusters);
  const double log_lo = std::log(config.scale_min);
  const double log_hi = std::log(config.scale_max);
  for (size_t c = 0; c < config.num_clusters; ++c) {
    for (size_t j = 0; j < config.dim; ++j) {
      const double coord =
          config.center_gaussian_sigma > 0
              ? rng.Gaussian(0.0, config.center_gaussian_sigma)
              : rng.Uniform(-config.center_box, config.center_box);
      centers.Set(c, j, static_cast<float>(coord));
    }
    if (config.scale_by_rank && config.num_clusters > 1) {
      // Cluster sizes descend with rank, so rank-0 (largest) is tightest.
      const double t = static_cast<double>(c) /
                       static_cast<double>(config.num_clusters - 1);
      scales[c] = std::exp(log_lo + (log_hi - log_lo) * t);
    } else {
      scales[c] = std::exp(rng.Uniform(log_lo, log_hi));
    }
  }

  DenseDataset dataset(config.n, config.dim);
  size_t row = 0;
  for (size_t c = 0; c < config.num_clusters; ++c) {
    for (size_t i = 0; i < sizes[c]; ++i, ++row) {
      float* out = dataset.mutable_point(row);
      const float* center = centers.Row(c);
      for (size_t j = 0; j < config.dim; ++j) {
        double value = center[j] + rng.Gaussian(0.0, scales[c]);
        if (config.quantize_step > 0) {
          value = std::round(value / config.quantize_step) * config.quantize_step;
        }
        out[j] = static_cast<float>(value);
      }
    }
  }
  HLSH_CHECK(row == config.n);
  return dataset;
}

DenseDataset MakeUniformCube(size_t n, size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  DenseDataset dataset(n, dim);
  for (size_t i = 0; i < n; ++i) {
    float* out = dataset.mutable_point(i);
    for (size_t j = 0; j < dim; ++j) out[j] = static_cast<float>(rng.NextDouble());
  }
  return dataset;
}

DenseDataset MakeCorelLike(size_t n, size_t dim, uint64_t seed) {
  GaussianMixtureConfig config;
  config.n = n;
  config.dim = dim;
  config.num_clusters = 80;
  config.cluster_size_skew = 0.8;  // a few large clusters + a long tail
  // With d = 32, intra-cluster L2 distances concentrate near
  // sigma * sqrt(2d) ~ 8 * sigma (0.28..0.48 here) and cross-cluster
  // distances near sqrt(2d) * center_sigma + cluster spread (~0.5..0.9):
  // the paper's radius sweep 0.35..0.60 therefore moves from "own cluster
  // core" to "several overlapping clusters", reproducing the Figure 2(d)
  // crossover where LSH outputs explode.
  config.scale_min = 0.035;
  config.scale_max = 0.06;
  config.center_gaussian_sigma = 0.05;  // overlapping color-histogram blobs
  config.seed = seed;
  return MakeGaussianMixture(config);
}

DenseDataset MakeCovtypeLike(size_t n, size_t dim, uint64_t seed) {
  GaussianMixtureConfig config;
  config.n = n;
  config.dim = dim;
  config.num_clusters = 60;
  config.cluster_size_skew = 1.3;  // dominant cover types hold ~1/3 of rows
  // Intra-cluster L1 distance concentrates near 1.13 * sigma * d ~ 61 *
  // sigma: the paper's sweep 3000..4000 progressively swallows whole
  // clusters. Scales follow rank so the *dominant* clusters are the dense
  // ones — CoverType's dominant cover types contain masses of identical
  // cartographic rows, the paper's worst case for LSH deduplication.
  config.scale_min = 4.0;
  config.scale_max = 80.0;
  config.scale_by_rank = true;
  config.center_box = 800.0;
  // CoverType features are integers; quantizing collapses the tight
  // dominant-cluster cores into exact duplicates.
  config.quantize_step = 40.0;
  config.seed = seed;
  return MakeGaussianMixture(config);
}

DenseDataset MakeWebspamLike(const WebspamLikeConfig& config) {
  HLSH_CHECK(config.dim >= 2);
  util::Rng rng(config.seed);
  DenseDataset dataset(config.n, config.dim);

  // The mega-cluster center: a fixed random direction.
  std::vector<float> center(config.dim);
  for (size_t j = 0; j < config.dim; ++j) {
    center[j] = static_cast<float>(rng.Gaussian());
  }
  NormalizeRow(center.data(), config.dim);

  const size_t cluster_count =
      static_cast<size_t>(config.cluster_fraction * static_cast<double>(config.n));
  for (size_t i = 0; i < config.n; ++i) {
    float* out = dataset.mutable_point(i);
    if (i < cluster_count) {
      // x = normalize(center + eps * u); pairwise cosine distances grow with
      // the eps of both endpoints, creating a density gradient inside the
      // cluster (a tight near-duplicate core plus a looser shell). The
      // log-uniform draw concentrates points in the core.
      const double eps = std::exp(
          rng.Uniform(std::log(config.eps_min), std::log(config.eps_max)));
      for (size_t j = 0; j < config.dim; ++j) {
        out[j] = center[j] + static_cast<float>(eps * rng.Gaussian() /
                                                std::sqrt(static_cast<double>(
                                                    config.dim)));
      }
    } else {
      // Diffuse background: random directions (near-orthogonal to
      // everything in high dimension, cosine distance ~ 1).
      for (size_t j = 0; j < config.dim; ++j) {
        out[j] = static_cast<float>(rng.Gaussian());
      }
    }
    NormalizeRow(out, config.dim);
  }
  return dataset;
}

DenseDataset MakeMnistLike(size_t n, size_t dim, size_t num_classes,
                           uint64_t seed) {
  util::Rng rng(seed);
  // Class prototypes: sparse "ink" patterns with ~20% active pixels.
  util::FloatMatrix prototypes(num_classes, dim);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t j = 0; j < dim; ++j) {
      prototypes.Set(c, j, rng.Bernoulli(0.2) ? 1.0f : 0.0f);
    }
  }
  DenseDataset dataset(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_classes) - 1));
    float* out = dataset.mutable_point(i);
    const float* proto = prototypes.Row(c);
    for (size_t j = 0; j < dim; ++j) {
      // Blur the prototype and flip a small fraction of pixels.
      float v = proto[j] + static_cast<float>(rng.Gaussian(0.0, 0.15));
      if (rng.Bernoulli(0.03)) v = 1.0f - v;
      out[j] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return dataset;
}

BinaryDataset MakeRandomCodes(size_t n, size_t width_bits, uint64_t seed) {
  util::Rng rng(seed);
  BinaryDataset dataset(n, width_bits);
  const size_t words = dataset.words_per_code();
  const size_t tail_bits = width_bits % 64;
  const uint64_t tail_mask =
      tail_bits == 0 ? ~uint64_t{0} : ((uint64_t{1} << tail_bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    uint64_t* code = dataset.mutable_point(i);
    for (size_t w = 0; w < words; ++w) code[w] = rng.NextU64();
    code[words - 1] &= tail_mask;  // keep unused high bits zero
  }
  return dataset;
}

SparseDataset MakeRandomSparse(size_t n, uint32_t universe, size_t avg_set_size,
                               uint64_t seed) {
  HLSH_CHECK(avg_set_size >= 1 && avg_set_size <= universe);
  util::Rng rng(seed);
  SparseDataset dataset(universe);
  for (size_t i = 0; i < n; ++i) {
    const size_t target = std::max<size_t>(
        1, std::min<size_t>(universe, static_cast<size_t>(rng.UniformInt(
                                          1, 2 * static_cast<int64_t>(
                                                     avg_set_size)))));
    auto ids = rng.SampleWithoutReplacement(universe,
                                            static_cast<uint32_t>(target));
    std::sort(ids.begin(), ids.end());
    HLSH_CHECK(dataset.Append(ids).ok());
  }
  return dataset;
}

std::vector<uint32_t> PlantNeighborsL2(DenseDataset* dataset, const float* query,
                                       double radius, size_t count,
                                       util::Rng* rng) {
  HLSH_CHECK(radius > 0);
  const size_t dim = dataset->dim();
  std::vector<uint32_t> ids;
  std::vector<float> point(dim);
  for (size_t i = 0; i < count; ++i) {
    // Random direction, distance uniform in (0.05r, 0.95r].
    std::vector<double> dir(dim);
    double norm = 0;
    for (size_t j = 0; j < dim; ++j) {
      dir[j] = rng->Gaussian();
      norm += dir[j] * dir[j];
    }
    norm = std::sqrt(norm);
    const double dist = radius * rng->Uniform(0.05, 0.95);
    for (size_t j = 0; j < dim; ++j) {
      point[j] = query[j] + static_cast<float>(dir[j] / norm * dist);
    }
    ids.push_back(static_cast<uint32_t>(dataset->size()));
    dataset->Append(point);
  }
  return ids;
}

std::vector<uint32_t> PlantNeighborsL1(DenseDataset* dataset, const float* query,
                                       double radius, size_t count,
                                       util::Rng* rng) {
  HLSH_CHECK(radius > 0);
  const size_t dim = dataset->dim();
  std::vector<uint32_t> ids;
  std::vector<float> point(dim);
  for (size_t i = 0; i < count; ++i) {
    // Exponential spacings normalized to the simplex give a uniform
    // direction on the L1 sphere; random signs pick the orthant.
    std::vector<double> mags(dim);
    double total = 0;
    for (size_t j = 0; j < dim; ++j) {
      mags[j] = -std::log(1.0 - rng->NextDouble());
      total += mags[j];
    }
    const double dist = radius * rng->Uniform(0.05, 0.95);
    for (size_t j = 0; j < dim; ++j) {
      const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
      point[j] = query[j] + static_cast<float>(sign * mags[j] / total * dist);
    }
    ids.push_back(static_cast<uint32_t>(dataset->size()));
    dataset->Append(point);
  }
  return ids;
}

std::vector<uint32_t> PlantNeighborsCosine(DenseDataset* dataset,
                                           const float* query, double radius,
                                           size_t count, util::Rng* rng) {
  HLSH_CHECK(radius > 0 && radius < 1);
  const size_t dim = dataset->dim();
  HLSH_CHECK(dim >= 2);
  // Normalize the query direction.
  std::vector<double> q_hat(dim);
  double q_norm = 0;
  for (size_t j = 0; j < dim; ++j) {
    q_hat[j] = query[j];
    q_norm += q_hat[j] * q_hat[j];
  }
  q_norm = std::sqrt(q_norm);
  HLSH_CHECK(q_norm > 0);
  for (size_t j = 0; j < dim; ++j) q_hat[j] /= q_norm;

  std::vector<uint32_t> ids;
  std::vector<float> point(dim);
  for (size_t i = 0; i < count; ++i) {
    // Random direction orthogonal to q (Gram-Schmidt).
    std::vector<double> u(dim);
    double dot = 0;
    for (size_t j = 0; j < dim; ++j) {
      u[j] = rng->Gaussian();
      dot += u[j] * q_hat[j];
    }
    double u_norm = 0;
    for (size_t j = 0; j < dim; ++j) {
      u[j] -= dot * q_hat[j];
      u_norm += u[j] * u[j];
    }
    u_norm = std::sqrt(u_norm);
    HLSH_CHECK(u_norm > 0);
    // Target cosine distance t in (0, radius); angle = arccos(1 - t).
    const double t = radius * rng->Uniform(0.05, 0.95);
    const double angle = std::acos(1.0 - t);
    const double scale = rng->Uniform(0.5, 2.0);  // cosine ignores norms
    for (size_t j = 0; j < dim; ++j) {
      point[j] = static_cast<float>(
          scale * (std::cos(angle) * q_hat[j] + std::sin(angle) * u[j] / u_norm));
    }
    ids.push_back(static_cast<uint32_t>(dataset->size()));
    dataset->Append(point);
  }
  return ids;
}

std::vector<uint32_t> PlantNeighborsHamming(BinaryDataset* dataset,
                                            const uint64_t* query,
                                            uint32_t radius, size_t count,
                                            util::Rng* rng) {
  HLSH_CHECK(radius >= 1);
  HLSH_CHECK(radius <= dataset->width_bits());
  const size_t words = dataset->words_per_code();
  std::vector<uint32_t> ids;
  std::vector<uint64_t> code(words);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(code.data(), query, words * sizeof(uint64_t));
    const uint32_t flips = static_cast<uint32_t>(
        rng->UniformInt(1, static_cast<int64_t>(radius)));
    const auto positions = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(dataset->width_bits()), flips);
    for (uint32_t bit : positions) code[bit >> 6] ^= uint64_t{1} << (bit & 63);
    ids.push_back(static_cast<uint32_t>(dataset->size()));
    dataset->Append(code.data());
  }
  return ids;
}

}  // namespace data
}  // namespace hybridlsh
