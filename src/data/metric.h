// Distance functions for every metric the paper evaluates.
//
// The paper runs rNNR under four metrics, each paired with its LSH family
// (§4): L2 (Corel, random-projection LSH), L1 (CoverType), cosine (Webspam,
// SimHash), and Hamming on 64-bit SimHash fingerprints (MNIST, bit
// sampling). Jaccard is included for the MinHash extension.
//
// These kernels are the beta-cost operation of the cost model (Eq. 1/2):
// both the linear-scan baseline and LSH candidate verification call them,
// so they are plain tight loops that the compiler auto-vectorizes.

#ifndef HYBRIDLSH_DATA_METRIC_H_
#define HYBRIDLSH_DATA_METRIC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hybridlsh {
namespace data {

/// Metric identifiers used to pair datasets with LSH families.
enum class Metric {
  kL1,
  kL2,
  kCosine,
  kHamming,
  kJaccard,
};

/// Stable display name ("L1", "L2", "cosine", "hamming", "jaccard").
std::string_view MetricName(Metric metric);

/// Dot product <a, b> over d dimensions.
float DotProduct(const float* a, const float* b, size_t d);

/// Euclidean norm of a.
float Norm(const float* a, size_t d);

/// L2 (Euclidean) distance.
float L2Distance(const float* a, const float* b, size_t d);

/// Squared L2 distance (avoids the sqrt when comparing against r^2).
float SquaredL2Distance(const float* a, const float* b, size_t d);

/// L1 (Manhattan) distance.
float L1Distance(const float* a, const float* b, size_t d);

/// Cosine distance 1 - cos(a, b), in [0, 2]. Zero vectors are treated as
/// orthogonal — distance 1, the midpoint of the range, not the maximum 2 —
/// so that queries never divide by zero.
float CosineDistance(const float* a, const float* b, size_t d);

/// Hamming distance between two packed bit codes of `words` 64-bit words.
uint32_t HammingDistance(const uint64_t* a, const uint64_t* b, size_t words);

/// Jaccard distance 1 - |A ∩ B| / |A ∪ B| between two strictly increasing
/// id sequences. Two empty sets have distance 0.
float JaccardDistance(std::span<const uint32_t> a, std::span<const uint32_t> b);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_METRIC_H_
