#include "data/attributes.h"

#include <algorithm>

namespace hybridlsh {
namespace data {

bool Predicate::Matches(const AttributeStore& store, size_t id) const {
  if (id >= store.size()) return false;
  for (const Term& term : all_of) {
    HLSH_DCHECK(term.column < store.num_columns());
    const uint32_t v = store.value(term.column, id);
    if (v < term.lo || v > term.hi) return false;
  }
  return true;
}

void EvaluateFilter(const AttributeStore& store, const Predicate& pred,
                    size_t id_limit, util::BitVector* filter) {
  filter->Resize(id_limit);
  const size_t rows = std::min(store.size(), id_limit);
  if (rows == 0) return;

  if (pred.all_of.empty()) {
    // Empty conjunction: every visible row passes.
    for (size_t i = 0; i < rows; ++i) filter->Set(i);
    return;
  }

  // Term-major within each 64-row block: the first term builds the word,
  // later terms AND into it, and a block that goes all-zero skips the
  // remaining terms. Column reads are sequential per term, so the access
  // pattern is streaming even with several conjuncts.
  std::vector<std::span<const uint32_t>> cols;
  cols.reserve(pred.all_of.size());
  for (const Predicate::Term& term : pred.all_of) {
    HLSH_DCHECK(term.column < store.num_columns());
    cols.push_back(store.column_span(term.column, rows));
  }

  for (size_t base = 0; base < rows; base += 64) {
    const size_t block = std::min<size_t>(64, rows - base);
    uint64_t word = 0;
    for (size_t t = 0; t < pred.all_of.size(); ++t) {
      const Predicate::Term& term = pred.all_of[t];
      const uint32_t* v = cols[t].data() + base;
      uint64_t term_word = 0;
      for (size_t j = 0; j < block; ++j) {
        term_word |= uint64_t{v[j] >= term.lo && v[j] <= term.hi} << j;
      }
      word = (t == 0) ? term_word : (word & term_word);
      if (word == 0) break;
    }
    if (word == 0) continue;
    uint64_t w = word;
    while (w != 0) {
      const size_t bit = static_cast<size_t>(__builtin_ctzll(w));
      filter->Set(base + bit);
      w &= w - 1;
    }
  }
}

}  // namespace data
}  // namespace hybridlsh
