#include "data/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace hybridlsh {
namespace data {
namespace {

util::Status CannotOpen(const std::string& path) {
  return util::Status::NotFound("cannot open file: " + path);
}

}  // namespace

util::Status WriteFvecs(const DenseDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return CannotOpen(path);
  const int32_t dim = static_cast<int32_t>(dataset.dim());
  for (size_t i = 0; i < dataset.size(); ++i) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(dataset.point(i)),
              static_cast<std::streamsize>(sizeof(float) * dataset.dim()));
  }
  if (!out) return util::Status::DataLoss("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<DenseDataset> ReadFvecs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CannotOpen(path);
  util::FloatMatrix matrix;
  std::vector<float> row;
  int32_t dim = 0;
  while (in.read(reinterpret_cast<char*>(&dim), sizeof(dim))) {
    if (dim <= 0) {
      return util::Status::DataLoss("fvecs row with non-positive dimension");
    }
    if (matrix.rows() > 0 && static_cast<size_t>(dim) != matrix.cols()) {
      return util::Status::DataLoss("fvecs rows have inconsistent dimensions");
    }
    row.resize(static_cast<size_t>(dim));
    if (!in.read(reinterpret_cast<char*>(row.data()),
                 static_cast<std::streamsize>(sizeof(float) * row.size()))) {
      return util::Status::DataLoss("fvecs file truncated mid-row");
    }
    matrix.AppendRow(row);
  }
  return DenseDataset(std::move(matrix));
}

util::Status WriteCsv(const DenseDataset& dataset, const std::string& path,
                      int precision) {
  std::ofstream out(path);
  if (!out) return CannotOpen(path);
  out.precision(precision);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const float* row = dataset.point(i);
    for (size_t j = 0; j < dataset.dim(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  if (!out) return util::Status::DataLoss("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<DenseDataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return CannotOpen(path);
  util::FloatMatrix matrix;
  std::string line;
  std::vector<float> row;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    row.clear();
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const float value = std::strtof(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return util::Status::DataLoss("csv parse error at line " +
                                      std::to_string(line_no));
      }
      row.push_back(value);
    }
    if (matrix.rows() > 0 && row.size() != matrix.cols()) {
      return util::Status::DataLoss("csv rows have inconsistent widths");
    }
    matrix.AppendRow(row);
  }
  return DenseDataset(std::move(matrix));
}

namespace {

// Parses one libsvm line into (index, value) pairs; indices are 1-based in
// the file. Returns false on malformed syntax.
bool ParseLibsvmLine(const std::string& line,
                     std::vector<std::pair<uint32_t, float>>* features) {
  features->clear();
  std::stringstream ss(line);
  std::string token;
  ss >> token;  // label, discarded
  while (ss >> token) {
    const size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    char* end = nullptr;
    const long index = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() + colon || index <= 0) return false;
    const float value = std::strtof(token.c_str() + colon + 1, &end);
    if (end == token.c_str() + colon + 1) return false;
    features->emplace_back(static_cast<uint32_t>(index), value);
  }
  return true;
}

}  // namespace

util::StatusOr<DenseDataset> ReadLibsvmDense(const std::string& path,
                                             size_t dim) {
  if (dim == 0) return util::Status::InvalidArgument("dim must be positive");
  std::ifstream in(path);
  if (!in) return CannotOpen(path);
  util::FloatMatrix matrix;
  std::string line;
  std::vector<std::pair<uint32_t, float>> features;
  std::vector<float> row(dim);
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!ParseLibsvmLine(line, &features)) {
      return util::Status::DataLoss("libsvm parse error at line " +
                                    std::to_string(line_no));
    }
    std::fill(row.begin(), row.end(), 0.0f);
    for (const auto& [index, value] : features) {
      if (index > dim) {
        return util::Status::OutOfRange("libsvm feature index " +
                                        std::to_string(index) +
                                        " exceeds dim at line " +
                                        std::to_string(line_no));
      }
      row[index - 1] = value;
    }
    matrix.AppendRow(row);
  }
  return DenseDataset(std::move(matrix));
}

util::StatusOr<SparseDataset> ReadLibsvmSparse(const std::string& path) {
  std::ifstream in(path);
  if (!in) return CannotOpen(path);
  SparseDataset dataset;
  std::string line;
  std::vector<std::pair<uint32_t, float>> features;
  std::vector<uint32_t> ids;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!ParseLibsvmLine(line, &features)) {
      return util::Status::DataLoss("libsvm parse error at line " +
                                    std::to_string(line_no));
    }
    ids.clear();
    for (const auto& [index, value] : features) {
      if (value != 0.0f) ids.push_back(index - 1);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    HLSH_RETURN_IF_ERROR(dataset.Append(ids));
  }
  return dataset;
}

util::Status WriteCodes(const BinaryDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return CannotOpen(path);
  const uint64_t header[2] = {dataset.size(), dataset.width_bits()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(dataset.words().data()),
            static_cast<std::streamsize>(dataset.words().size() *
                                         sizeof(uint64_t)));
  if (!out) return util::Status::DataLoss("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<BinaryDataset> ReadCodes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CannotOpen(path);
  uint64_t header[2];
  if (!in.read(reinterpret_cast<char*>(header), sizeof(header))) {
    return util::Status::DataLoss("codes file has no header");
  }
  const uint64_t n = header[0];
  const uint64_t width_bits = header[1];
  if (width_bits == 0 || width_bits > (uint64_t{1} << 24)) {
    return util::Status::DataLoss("codes header has invalid width");
  }
  BinaryDataset dataset(0, width_bits);
  std::vector<uint64_t> words(static_cast<size_t>(n) *
                              dataset.words_per_code());
  if (!in.read(reinterpret_cast<char*>(words.data()),
               static_cast<std::streamsize>(words.size() * sizeof(uint64_t)))) {
    return util::Status::DataLoss("codes file truncated");
  }
  // Must now be at EOF.
  char extra;
  if (in.read(&extra, 1)) {
    return util::Status::DataLoss("codes file has trailing bytes");
  }
  dataset.AdoptWords(words);
  return dataset;
}

}  // namespace data
}  // namespace hybridlsh
