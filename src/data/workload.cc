#include "data/workload.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/random.h"
#include "util/thread_pool.h"

namespace hybridlsh {
namespace data {

DenseSplit SplitQueries(const DenseDataset& dataset, size_t num_queries,
                        uint64_t seed) {
  HLSH_CHECK(num_queries <= dataset.size());
  util::Rng rng(seed);
  auto query_ids = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(dataset.size()), static_cast<uint32_t>(num_queries));
  std::sort(query_ids.begin(), query_ids.end());

  DenseSplit split;
  split.base = DenseDataset(dataset.size() - num_queries, dataset.dim());
  split.queries = DenseDataset(num_queries, dataset.dim());
  size_t base_row = 0, query_row = 0, next_query = 0;
  const size_t bytes = dataset.dim() * sizeof(float);
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (next_query < query_ids.size() && i == query_ids[next_query]) {
      std::memcpy(split.queries.mutable_point(query_row++), dataset.point(i),
                  bytes);
      ++next_query;
    } else {
      std::memcpy(split.base.mutable_point(base_row++), dataset.point(i), bytes);
    }
  }
  return split;
}

BinarySplit SplitQueriesBinary(const BinaryDataset& dataset, size_t num_queries,
                               uint64_t seed) {
  HLSH_CHECK(num_queries <= dataset.size());
  util::Rng rng(seed);
  auto query_ids = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(dataset.size()), static_cast<uint32_t>(num_queries));
  std::unordered_set<uint32_t> query_set(query_ids.begin(), query_ids.end());

  BinarySplit split;
  split.base = BinaryDataset(0, dataset.width_bits());
  split.queries = BinaryDataset(0, dataset.width_bits());
  // Preserve original order for determinism.
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (query_set.count(static_cast<uint32_t>(i))) {
      split.queries.Append(dataset.point(i));
    } else {
      split.base.Append(dataset.point(i));
    }
  }
  return split;
}

std::vector<uint32_t> RangeScanDense(const DenseDataset& dataset,
                                     const float* query, double radius,
                                     Metric metric) {
  std::vector<uint32_t> result;
  const size_t d = dataset.dim();
  switch (metric) {
    case Metric::kL2: {
      // Compare squared distances to avoid n square roots.
      const double r2 = radius * radius;
      for (size_t i = 0; i < dataset.size(); ++i) {
        if (SquaredL2Distance(dataset.point(i), query, d) <= r2) {
          result.push_back(static_cast<uint32_t>(i));
        }
      }
      break;
    }
    case Metric::kL1:
      for (size_t i = 0; i < dataset.size(); ++i) {
        if (L1Distance(dataset.point(i), query, d) <= radius) {
          result.push_back(static_cast<uint32_t>(i));
        }
      }
      break;
    case Metric::kCosine:
      for (size_t i = 0; i < dataset.size(); ++i) {
        if (CosineDistance(dataset.point(i), query, d) <= radius) {
          result.push_back(static_cast<uint32_t>(i));
        }
      }
      break;
    default:
      HLSH_CHECK(false && "RangeScanDense supports L1, L2 and cosine only");
  }
  return result;
}

std::vector<uint32_t> RangeScanBinary(const BinaryDataset& dataset,
                                      const uint64_t* query, uint32_t radius) {
  std::vector<uint32_t> result;
  const size_t words = dataset.words_per_code();
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (HammingDistance(dataset.point(i), query, words) <= radius) {
      result.push_back(static_cast<uint32_t>(i));
    }
  }
  return result;
}

std::vector<uint32_t> RangeScanSparse(const SparseDataset& dataset,
                                      SparseDataset::Point query,
                                      double radius) {
  std::vector<uint32_t> result;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (JaccardDistance(dataset.point(i), query) <= radius) {
      result.push_back(static_cast<uint32_t>(i));
    }
  }
  return result;
}

std::vector<std::vector<uint32_t>> GroundTruthDense(const DenseDataset& dataset,
                                                    const DenseDataset& queries,
                                                    double radius, Metric metric,
                                                    size_t num_threads) {
  std::vector<std::vector<uint32_t>> truth(queries.size());
  util::ParallelFor(0, queries.size(), num_threads, [&](size_t q) {
    truth[q] = RangeScanDense(dataset, queries.point(q), radius, metric);
  });
  return truth;
}

std::vector<std::vector<uint32_t>> GroundTruthBinary(
    const BinaryDataset& dataset, const BinaryDataset& queries, uint32_t radius,
    size_t num_threads) {
  std::vector<std::vector<uint32_t>> truth(queries.size());
  util::ParallelFor(0, queries.size(), num_threads, [&](size_t q) {
    truth[q] = RangeScanBinary(dataset, queries.point(q), radius);
  });
  return truth;
}

double Recall(const std::vector<uint32_t>& reported,
              const std::vector<uint32_t>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint32_t> reported_set(reported.begin(), reported.end());
  size_t hits = 0;
  for (uint32_t id : truth) hits += reported_set.count(id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace data
}  // namespace hybridlsh
