#include "data/dataset.h"

namespace hybridlsh {
namespace data {

util::Status SparseDataset::Append(std::span<const uint32_t> sorted_ids) {
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    if (i > 0 && sorted_ids[i] <= sorted_ids[i - 1]) {
      return util::Status::InvalidArgument(
          "sparse point ids must be strictly increasing");
    }
    if (universe_ != 0 && sorted_ids[i] >= universe_) {
      return util::Status::OutOfRange("sparse point id exceeds universe");
    }
  }
  indices_.insert(indices_.end(), sorted_ids.begin(), sorted_ids.end());
  offsets_.push_back(indices_.size());
  return util::Status::Ok();
}

}  // namespace data
}  // namespace hybridlsh
