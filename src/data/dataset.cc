#include "data/dataset.h"

#include <cmath>

#include "util/simd.h"

namespace hybridlsh {
namespace data {

void DenseDataset::PrecomputeNorms() {
  const size_t n = points_.rows();
  const size_t dim = points_.cols();
  norms_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Canonical-order dot (util/simd.h): the cached norm rounds exactly
    // like the fused cosine kernel's norm sums, so the verifier's cached
    // and uncached paths agree on every candidate, boundary included.
    const float* row = points_.Row(i);
    norms_[i] = std::sqrt(util::simd::DotF32Scalar(row, row, dim));
  }
}

util::Status SparseDataset::Append(std::span<const uint32_t> sorted_ids) {
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    if (i > 0 && sorted_ids[i] <= sorted_ids[i - 1]) {
      return util::Status::InvalidArgument(
          "sparse point ids must be strictly increasing");
    }
    if (universe_ != 0 && sorted_ids[i] >= universe_) {
      return util::Status::OutOfRange("sparse point id exceeds universe");
    }
  }
  indices_.insert(indices_.end(), sorted_ids.begin(), sorted_ids.end());
  offsets_.push_back(indices_.size());
  return util::Status::Ok();
}

}  // namespace data
}  // namespace hybridlsh
