#include "data/dataset.h"

#include <cmath>

#include "util/simd.h"

namespace hybridlsh {
namespace data {

void DenseDataset::PrecomputeNorms() {
  const size_t n = points_.rows();
  const size_t dim = points_.cols();
  std::vector<float> norms(n);
  for (size_t i = 0; i < n; ++i) {
    // Canonical-order dot (util/simd.h): the cached norm rounds exactly
    // like the fused cosine kernel's norm sums, so the verifier's cached
    // and uncached paths agree on every candidate, boundary included.
    const float* row = points_.Row(i);
    norms[i] = std::sqrt(util::simd::DotF32Scalar(row, row, dim));
  }
  norms_.Assign(norms);
}

void DenseDataset::Append(std::span<const float> point) {
  // Publish the norm before the row: has_norms() compares the two counts,
  // so readers either see a complete cache or fall back to the fused
  // verification path — never a norm slot that lags its point.
  if (has_norms()) {
    norms_.PushBack(static_cast<float>(std::sqrt(
        util::simd::DotF32Scalar(point.data(), point.data(), point.size()))));
  } else if (!norms_.empty()) {
    InvalidateNorms();  // stale partial cache (build-time state)
  }
  points_.AppendRow(point);
}

namespace {

/// Shared framing check for the LoadDataset overloads.
util::Status ExpectKind(util::ByteReader* reader, uint32_t want) {
  uint32_t kind = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&kind));
  if (kind != want) {
    return util::Status::InvalidArgument(
        "dataset payload holds a different container kind");
  }
  return util::Status::Ok();
}

}  // namespace

void SaveDataset(const DenseDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kDenseDatasetKind);
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.dim());
  writer->WriteArray<float>(dataset.points_.data());
  writer->WriteU8(dataset.has_norms() ? 1 : 0);
  if (dataset.has_norms()) {
    writer->WriteArray<float>(dataset.norms_.span());
  }
}

util::Status LoadDataset(util::ByteReader* reader, DenseDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kDenseDatasetKind));
  uint64_t rows = 0, cols = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&rows));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&cols));
  if (rows != 0 && cols == 0) {
    return util::Status::DataLoss("dense dataset has points of dimension 0");
  }
  // Bound both factors so rows * cols below cannot wrap uint64_t (the
  // actual sizes are further bounded by the buffer in ReadArray).
  if (rows > UINT32_MAX || cols > (uint64_t{1} << 24)) {
    return util::Status::DataLoss("dense dataset header has invalid shape");
  }
  std::vector<float> data;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<float>(static_cast<size_t>(rows * cols), &data));
  uint8_t has_norms = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU8(&has_norms));
  if (has_norms > 1) {
    return util::Status::DataLoss("dense dataset has an invalid norm flag");
  }
  std::vector<float> norms;
  if (has_norms == 1) {
    HLSH_RETURN_IF_ERROR(
        reader->ReadArray<float>(static_cast<size_t>(rows), &norms));
  }
  dataset->points_ = util::FloatMatrix(static_cast<size_t>(rows),
                                       static_cast<size_t>(cols),
                                       std::move(data));
  dataset->norms_.Assign(norms);
  return util::Status::Ok();
}

void SaveDataset(const BinaryDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kBinaryDatasetKind);
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.width_bits());
  writer->WriteArray<uint64_t>(dataset.words());
}

util::Status LoadDataset(util::ByteReader* reader, BinaryDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kBinaryDatasetKind));
  uint64_t n = 0, width_bits = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&n));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&width_bits));
  if (width_bits == 0 || width_bits > (uint64_t{1} << 24) ||
      n > UINT32_MAX) {
    return util::Status::DataLoss("binary dataset header has invalid shape");
  }
  const size_t words_per_code = (static_cast<size_t>(width_bits) + 63) / 64;
  std::vector<uint64_t> words;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(
      static_cast<size_t>(n) * words_per_code, &words));
  BinaryDataset loaded(0, static_cast<size_t>(width_bits));
  loaded.AdoptWords(words);
  *dataset = std::move(loaded);
  return util::Status::Ok();
}

void SaveDataset(const SparseDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kSparseDatasetKind);
  writer->WriteU32(dataset.universe());
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.num_entries());
  writer->WriteArray<uint32_t>(dataset.indices_.span());
  // offsets_ holds size_t; persist as fixed-width u64.
  for (const size_t offset : dataset.offsets_.span()) {
    writer->WriteU64(offset);
  }
}

util::Status LoadDataset(util::ByteReader* reader, SparseDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kSparseDatasetKind));
  uint32_t universe = 0;
  uint64_t n = 0, num_entries = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&universe));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&n));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_entries));
  if (n > UINT32_MAX) {
    return util::Status::DataLoss("sparse dataset header has invalid shape");
  }
  std::vector<uint32_t> indices;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<uint32_t>(static_cast<size_t>(num_entries), &indices));
  std::vector<uint64_t> offsets;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<uint64_t>(static_cast<size_t>(n) + 1, &offsets));
  if (offsets.front() != 0 || offsets.back() != num_entries) {
    return util::Status::DataLoss("sparse offsets do not bracket the entries");
  }
  std::vector<size_t> native_offsets(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i > 0 && offsets[i] < offsets[i - 1]) {
      return util::Status::DataLoss("sparse offsets are not monotone");
    }
    native_offsets[i] = static_cast<size_t>(offsets[i]);
  }
  // Re-validate the per-point invariants Append enforces: strictly
  // increasing ids below the universe bound.
  for (size_t p = 0; p + 1 < native_offsets.size(); ++p) {
    for (size_t j = native_offsets[p]; j < native_offsets[p + 1]; ++j) {
      if (j > native_offsets[p] && indices[j] <= indices[j - 1]) {
        return util::Status::DataLoss(
            "sparse point ids are not strictly increasing");
      }
      if (universe != 0 && indices[j] >= universe) {
        return util::Status::DataLoss("sparse point id exceeds universe");
      }
    }
  }
  SparseDataset loaded(universe);
  loaded.offsets_.Assign(native_offsets);
  loaded.indices_.Assign(indices);
  *dataset = std::move(loaded);
  return util::Status::Ok();
}

util::Status SparseDataset::Append(std::span<const uint32_t> sorted_ids) {
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    if (i > 0 && sorted_ids[i] <= sorted_ids[i - 1]) {
      return util::Status::InvalidArgument(
          "sparse point ids must be strictly increasing");
    }
    if (universe_ != 0 && sorted_ids[i] >= universe_) {
      return util::Status::OutOfRange("sparse point id exceeds universe");
    }
  }
  // Ids first, covering offset second: a reader that can see offset i+1
  // (release-published) also sees every id below it.
  indices_.Append(sorted_ids.data(), sorted_ids.size());
  offsets_.PushBack(indices_.size());
  return util::Status::Ok();
}

}  // namespace data
}  // namespace hybridlsh
