#include "data/dataset.h"

#include <cmath>

#include "util/simd.h"

namespace hybridlsh {
namespace data {

void DenseDataset::PrecomputeNorms() {
  const size_t n = points_.rows();
  const size_t dim = points_.cols();
  norms_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Canonical-order dot (util/simd.h): the cached norm rounds exactly
    // like the fused cosine kernel's norm sums, so the verifier's cached
    // and uncached paths agree on every candidate, boundary included.
    const float* row = points_.Row(i);
    norms_[i] = std::sqrt(util::simd::DotF32Scalar(row, row, dim));
  }
}

namespace {

/// Shared framing check for the LoadDataset overloads.
util::Status ExpectKind(util::ByteReader* reader, uint32_t want) {
  uint32_t kind = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&kind));
  if (kind != want) {
    return util::Status::InvalidArgument(
        "dataset payload holds a different container kind");
  }
  return util::Status::Ok();
}

}  // namespace

void SaveDataset(const DenseDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kDenseDatasetKind);
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.dim());
  writer->WriteArray<float>(dataset.points_.data());
  writer->WriteU8(dataset.has_norms() ? 1 : 0);
  if (dataset.has_norms()) {
    writer->WriteArray<float>(dataset.norms_);
  }
}

util::Status LoadDataset(util::ByteReader* reader, DenseDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kDenseDatasetKind));
  uint64_t rows = 0, cols = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&rows));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&cols));
  if (rows != 0 && cols == 0) {
    return util::Status::DataLoss("dense dataset has points of dimension 0");
  }
  // Bound both factors so rows * cols below cannot wrap uint64_t (the
  // actual sizes are further bounded by the buffer in ReadArray).
  if (rows > UINT32_MAX || cols > (uint64_t{1} << 24)) {
    return util::Status::DataLoss("dense dataset header has invalid shape");
  }
  std::vector<float> data;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<float>(static_cast<size_t>(rows * cols), &data));
  uint8_t has_norms = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU8(&has_norms));
  if (has_norms > 1) {
    return util::Status::DataLoss("dense dataset has an invalid norm flag");
  }
  std::vector<float> norms;
  if (has_norms == 1) {
    HLSH_RETURN_IF_ERROR(
        reader->ReadArray<float>(static_cast<size_t>(rows), &norms));
  }
  dataset->points_ = util::FloatMatrix(static_cast<size_t>(rows),
                                       static_cast<size_t>(cols),
                                       std::move(data));
  dataset->norms_ = std::move(norms);
  return util::Status::Ok();
}

void SaveDataset(const BinaryDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kBinaryDatasetKind);
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.width_bits());
  writer->WriteArray<uint64_t>(dataset.words());
}

util::Status LoadDataset(util::ByteReader* reader, BinaryDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kBinaryDatasetKind));
  uint64_t n = 0, width_bits = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&n));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&width_bits));
  if (width_bits == 0 || width_bits > (uint64_t{1} << 24) ||
      n > UINT32_MAX) {
    return util::Status::DataLoss("binary dataset header has invalid shape");
  }
  const size_t words_per_code = (static_cast<size_t>(width_bits) + 63) / 64;
  std::vector<uint64_t> words;
  HLSH_RETURN_IF_ERROR(reader->ReadArray<uint64_t>(
      static_cast<size_t>(n) * words_per_code, &words));
  BinaryDataset loaded(static_cast<size_t>(n),
                       static_cast<size_t>(width_bits));
  loaded.mutable_words() = std::move(words);
  *dataset = std::move(loaded);
  return util::Status::Ok();
}

void SaveDataset(const SparseDataset& dataset, util::ByteWriter* writer) {
  writer->WriteU32(kSparseDatasetKind);
  writer->WriteU32(dataset.universe());
  writer->WriteU64(dataset.size());
  writer->WriteU64(dataset.num_entries());
  writer->WriteArray<uint32_t>(dataset.indices_);
  // offsets_ holds size_t; persist as fixed-width u64.
  for (const size_t offset : dataset.offsets_) {
    writer->WriteU64(offset);
  }
}

util::Status LoadDataset(util::ByteReader* reader, SparseDataset* dataset) {
  HLSH_RETURN_IF_ERROR(ExpectKind(reader, kSparseDatasetKind));
  uint32_t universe = 0;
  uint64_t n = 0, num_entries = 0;
  HLSH_RETURN_IF_ERROR(reader->ReadU32(&universe));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&n));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&num_entries));
  if (n > UINT32_MAX) {
    return util::Status::DataLoss("sparse dataset header has invalid shape");
  }
  std::vector<uint32_t> indices;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<uint32_t>(static_cast<size_t>(num_entries), &indices));
  std::vector<uint64_t> offsets;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<uint64_t>(static_cast<size_t>(n) + 1, &offsets));
  if (offsets.front() != 0 || offsets.back() != num_entries) {
    return util::Status::DataLoss("sparse offsets do not bracket the entries");
  }
  SparseDataset loaded(universe);
  loaded.offsets_.resize(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i > 0 && offsets[i] < offsets[i - 1]) {
      return util::Status::DataLoss("sparse offsets are not monotone");
    }
    loaded.offsets_[i] = static_cast<size_t>(offsets[i]);
  }
  // Re-validate the per-point invariants Append enforces: strictly
  // increasing ids below the universe bound.
  for (size_t p = 0; p + 1 < offsets.size(); ++p) {
    for (size_t j = loaded.offsets_[p]; j < loaded.offsets_[p + 1]; ++j) {
      if (j > loaded.offsets_[p] && indices[j] <= indices[j - 1]) {
        return util::Status::DataLoss(
            "sparse point ids are not strictly increasing");
      }
      if (universe != 0 && indices[j] >= universe) {
        return util::Status::DataLoss("sparse point id exceeds universe");
      }
    }
  }
  loaded.indices_ = std::move(indices);
  *dataset = std::move(loaded);
  return util::Status::Ok();
}

util::Status SparseDataset::Append(std::span<const uint32_t> sorted_ids) {
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    if (i > 0 && sorted_ids[i] <= sorted_ids[i - 1]) {
      return util::Status::InvalidArgument(
          "sparse point ids must be strictly increasing");
    }
    if (universe_ != 0 && sorted_ids[i] >= universe_) {
      return util::Status::OutOfRange("sparse point id exceeds universe");
    }
  }
  indices_.insert(indices_.end(), sorted_ids.begin(), sorted_ids.end());
  offsets_.push_back(indices_.size());
  return util::Status::Ok();
}

}  // namespace data
}  // namespace hybridlsh
