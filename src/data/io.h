// Dataset file formats.
//
// The library can ingest the public datasets the paper uses when they are
// available, and round-trips synthetic datasets to disk for reproducible
// experiment reruns:
//
//   * fvecs / ivecs  — the TEXMEX format (SIFT et al.): per row, an int32
//     dimension followed by that many float32 / int32 values.
//   * libsvm         — sparse text rows "label idx:val idx:val ..." with
//     1-based indices (CoverType and Webspam ship in this format).
//   * csv            — comma-separated floats, one point per line.
//   * codes          — packed binary codes: a 16-byte header
//     [n:uint64][width_bits:uint64] followed by the code words.
//
// All readers validate sizes and return DataLoss/InvalidArgument on
// malformed input instead of aborting.

#ifndef HYBRIDLSH_DATA_IO_H_
#define HYBRIDLSH_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

/// Writes a dense dataset in fvecs format.
util::Status WriteFvecs(const DenseDataset& dataset, const std::string& path);

/// Reads an fvecs file. All rows must share one dimension.
util::StatusOr<DenseDataset> ReadFvecs(const std::string& path);

/// Writes a dense dataset as CSV with `precision` significant digits.
util::Status WriteCsv(const DenseDataset& dataset, const std::string& path,
                      int precision = 9);

/// Reads a CSV of floats; all rows must share one width.
util::StatusOr<DenseDataset> ReadCsv(const std::string& path);

/// Reads a libsvm file into a dense dataset of `dim` columns (features at
/// 1-based indices above dim are rejected). Labels are discarded.
util::StatusOr<DenseDataset> ReadLibsvmDense(const std::string& path,
                                             size_t dim);

/// Reads a libsvm file into a sparse dataset (feature presence only, values
/// discarded; indices converted to 0-based).
util::StatusOr<SparseDataset> ReadLibsvmSparse(const std::string& path);

/// Writes packed binary codes.
util::Status WriteCodes(const BinaryDataset& dataset, const std::string& path);

/// Reads packed binary codes written by WriteCodes.
util::StatusOr<BinaryDataset> ReadCodes(const std::string& path);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_IO_H_
