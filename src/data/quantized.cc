#include "data/quantized.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace hybridlsh {
namespace data {

namespace {

constexpr uint64_t kMirrorMagic = 0x31726f7272696d71ull;  // "qmirror1"

}  // namespace

QuantizedMirror QuantizedMirror::Build(const DenseDataset& dataset) {
  QuantizedMirror mirror;
  const size_t dim = dataset.dim();
  if (dim == 0 || dim > kMaxDim) return mirror;
  mirror.dim_ = dim;

  // Calibrate: the scale comes from the data's own maximum, so no
  // calibrated element is ever clamped and |x - scale*q| <= scale/2 holds
  // for every element the error bound covers.
  double max_abs = 0.0;
  const size_t n = dataset.size();
  for (size_t i = 0; i < n; ++i) {
    const float* point = dataset.point(i);
    for (size_t d = 0; d < dim; ++d) {
      const double a = std::fabs(static_cast<double>(point[d]));
      if (std::isfinite(a) && a > max_abs) max_abs = a;
    }
  }
  mirror.scale_ = max_abs / 127.0;

  mirror.codes_.Reserve(n * dim);
  mirror.exact_only_.Reserve(n);
  for (size_t i = 0; i < n; ++i) mirror.AppendRow(dataset.point(i));
  return mirror;
}

void QuantizedMirror::AppendRow(const float* point) {
  if (dim_ == 0) return;
  thread_local std::vector<int8_t> staged;
  staged.resize(dim_);
  uint8_t exact_only = scale_ > 0.0 ? 0 : 1;
  const double inv = scale_ > 0.0 ? 1.0 / scale_ : 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const double x = static_cast<double>(point[d]);
    if (!std::isfinite(x)) {
      staged[d] = 0;
      exact_only = 1;
      continue;
    }
    const long long q = std::llround(x * inv);
    if (q > 127 || q < -127) {
      // Outside the calibrated range (post-calibration insert): clamp and
      // route this row to the exact rescore unconditionally.
      staged[d] = static_cast<int8_t>(q > 0 ? 127 : -127);
      exact_only = 1;
    } else {
      staged[d] = static_cast<int8_t>(q);
    }
  }
  // Codes first, counter, flag last: the acquire-loaded flag count is the
  // reader-visible row count, so observing row i implies its codes AND a
  // counter that already includes row i's flag.
  codes_.Append(staged.data(), dim_);
  if (exact_only != 0) {
    std::atomic_ref<size_t>(exact_count_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  exact_only_.PushBack(exact_only);
}

void QuantizedMirror::Save(util::ByteWriter* writer) const {
  writer->WriteU64(kMirrorMagic);
  writer->WriteU64(static_cast<uint64_t>(dim_));
  writer->WriteF64(scale_);
  writer->WriteU64(static_cast<uint64_t>(size()));
  writer->WriteArray<int8_t>(codes_.span());
  writer->WriteArray<uint8_t>(exact_only_.span());
}

util::StatusOr<QuantizedMirror> QuantizedMirror::Load(
    util::ByteReader* reader, size_t expect_dim, size_t expect_rows_max) {
  uint64_t magic = 0, dim = 0, rows = 0;
  double scale = 0.0;
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&magic));
  if (magic != kMirrorMagic) {
    return util::Status::DataLoss("quantized mirror: bad magic");
  }
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&dim));
  HLSH_RETURN_IF_ERROR(reader->ReadF64(&scale));
  HLSH_RETURN_IF_ERROR(reader->ReadU64(&rows));
  if (dim == 0 || dim > kMaxDim || dim != expect_dim) {
    return util::Status::DataLoss("quantized mirror: dim mismatch");
  }
  if (rows > expect_rows_max || !std::isfinite(scale) || scale < 0.0) {
    return util::Status::DataLoss("quantized mirror: invalid header");
  }
  std::vector<int8_t> codes;
  std::vector<uint8_t> flags;
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<int8_t>(static_cast<size_t>(rows * dim), &codes));
  HLSH_RETURN_IF_ERROR(
      reader->ReadArray<uint8_t>(static_cast<size_t>(rows), &flags));
  QuantizedMirror mirror;
  mirror.dim_ = dim;
  mirror.scale_ = scale;
  for (const uint8_t flag : flags) {
    if (flag != 0) ++mirror.exact_count_;
  }
  mirror.codes_.Assign(codes);
  mirror.exact_only_.Assign(flags);
  return mirror;
}

}  // namespace data
}  // namespace hybridlsh
