// Dataset preprocessing transforms.
//
// Real ingestion pipelines condition vectors before indexing: cosine/
// SimHash needs unit norms only for interpretability (SimHash itself is
// scale-invariant), L2/L1 radii are usually calibrated on standardized or
// min-max-scaled features, and distance-to-radius calibration needs
// distance quantiles. Each transform here is deterministic, validated, and
// returns parameters so the *same* transform can be applied to queries —
// transforming the base set but not the queries is the classic rNNR bug.

#ifndef HYBRIDLSH_DATA_TRANSFORM_H_
#define HYBRIDLSH_DATA_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

/// Scales every point to unit L2 norm in place. Zero vectors are left
/// untouched (cosine treats them as maximally distant already).
void NormalizeUnitL2(DenseDataset* dataset);

/// Per-dimension affine parameters produced by the fitting transforms.
struct AffineTransform {
  /// x' = (x - shift) * scale, per dimension.
  std::vector<float> shift;
  std::vector<float> scale;

  size_t dim() const { return shift.size(); }

  /// Applies to one point in place.
  void ApplyToPoint(float* point) const;

  /// Applies to every point; fails on dimension mismatch.
  util::Status Apply(DenseDataset* dataset) const;
};

/// Fits a min-max scaler mapping each dimension of `dataset` onto [0, 1].
/// Constant dimensions map to 0. Fails on an empty dataset.
util::StatusOr<AffineTransform> FitMinMax(const DenseDataset& dataset);

/// Fits a standardizer (zero mean, unit variance per dimension; constant
/// dimensions get scale 0). Fails on an empty dataset.
util::StatusOr<AffineTransform> FitStandardize(const DenseDataset& dataset);

/// Estimates distance quantiles between random point pairs — the standard
/// way to pick meaningful rNNR radii for an unfamiliar dataset (e.g. the
/// 1% quantile as a "near" radius). Returns the quantile values aligned
/// with `quantiles` (each in [0,1]). Uses `num_pairs` sampled pairs.
util::StatusOr<std::vector<float>> DistanceQuantiles(
    const DenseDataset& dataset, Metric metric,
    const std::vector<double>& quantiles, size_t num_pairs = 10000,
    uint64_t seed = 1);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_TRANSFORM_H_
