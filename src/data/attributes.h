// Columnar per-point attribute store and the predicate language of the
// filtered query pipeline.
//
// An AttributeStore is a table parallel to a dataset: row i holds the
// attributes of point id i. Filtered search (engine/query_pipeline.h)
// evaluates a Predicate over the published prefix into a BitVector — one
// bit per id, bit set iff the row passes — which is then composed
// word-wise with the tombstone bitmap and pushed into the verify kernels.
// Evaluating up front rather than per candidate is what makes the filter a
// pushdown: candidates pay one bit test instead of a row gather plus
// comparisons, and the linear path can enumerate survivors by
// word-skipping the composed bitmap.
//
// Concurrency matches the dataset containers (util/published_array.h): one
// writer appends rows while query threads read concurrently. The row count
// is release-published after every column's value is written, so a reader
// that observes size() >= id also observes id's attribute values; ids at
// or past the published size simply fail every predicate ("not visible
// yet" is indistinguishable from "not inserted yet", which is exactly the
// tombstone bitmap's staleness contract in reverse).

#ifndef HYBRIDLSH_DATA_ATTRIBUTES_H_
#define HYBRIDLSH_DATA_ATTRIBUTES_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bit_vector.h"
#include "util/published_array.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

/// Columnar store of uint32 attributes, one row per point id. Columns are
/// declared up front (AddColumn before the first AppendRow); rows are
/// appended by the single writer in id order, in lockstep with the
/// dataset's Append.
class AttributeStore {
 public:
  AttributeStore() = default;

  /// Declares a named column and returns its index. Must be called before
  /// the first AppendRow (HLSH_CHECK otherwise): readers identify columns
  /// by index, and a column growing mid-stream would have no values for
  /// already-published rows.
  size_t AddColumn(std::string name) {
    HLSH_CHECK(rows_.load(std::memory_order_relaxed) == 0 &&
               "AddColumn after the first AppendRow");
    names_.push_back(std::move(name));
    columns_.emplace_back();
    return names_.size() - 1;
  }

  size_t num_columns() const { return names_.size(); }

  const std::string& column_name(size_t column) const {
    HLSH_DCHECK(column < names_.size());
    return names_[column];
  }

  /// Index of the named column, or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const {
    for (size_t c = 0; c < names_.size(); ++c) {
      if (names_[c] == name) return c;
    }
    return std::nullopt;
  }

  /// Published row count; acquire-ordered, so values of any row below the
  /// returned count are visible to this thread.
  size_t size() const { return rows_.load(std::memory_order_acquire); }

  /// Appends one row; values[c] is column c's value (values.size() must
  /// equal num_columns()). Single writer. The row becomes visible to
  /// readers only once every column holds it.
  void AppendRow(std::span<const uint32_t> values) {
    HLSH_CHECK(values.size() == columns_.size() &&
               "AppendRow arity mismatch");
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].Append(&values[c], 1);
    }
    rows_.fetch_add(1, std::memory_order_release);
  }

  /// Value of `column` at `row`; row must be below a size() this thread
  /// has observed.
  uint32_t value(size_t column, size_t row) const {
    HLSH_DCHECK(column < columns_.size());
    return columns_[column].data()[row];
  }

  /// Raw column prefix of length `rows` (for the batched evaluator;
  /// `rows` must be below an observed size()).
  std::span<const uint32_t> column_span(size_t column, size_t rows) const {
    HLSH_DCHECK(column < columns_.size());
    return {columns_[column].data(), rows};
  }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& c : columns_) total += c.MemoryBytes();
    return total;
  }

 private:
  std::vector<std::string> names_;
  std::vector<util::PublishedArray<uint32_t>> columns_;
  std::atomic<size_t> rows_{0};
};

/// A conjunction of closed-interval terms over attribute columns: a row
/// passes iff for every term, lo <= value(column, row) <= hi. Equality is
/// lo == hi; an empty conjunction passes every row (the "no predicate"
/// spec normally short-circuits before evaluation, but the semantics stay
/// total).
struct Predicate {
  struct Term {
    size_t column = 0;
    uint32_t lo = 0;
    uint32_t hi = std::numeric_limits<uint32_t>::max();
  };

  std::vector<Term> all_of;

  static Predicate Equals(size_t column, uint32_t value) {
    Predicate p;
    p.all_of.push_back(Term{column, value, value});
    return p;
  }

  static Predicate Between(size_t column, uint32_t lo, uint32_t hi) {
    Predicate p;
    p.all_of.push_back(Term{column, lo, hi});
    return p;
  }

  /// Adds a conjunct; returns *this for chaining.
  Predicate& And(const Term& term) {
    all_of.push_back(term);
    return *this;
  }

  /// Whether row `id` passes. The post-filter reference semantics: ids at
  /// or past the store's published size fail (their attributes are not
  /// visible yet). InvalidArgument-free by construction — an
  /// out-of-range column index is a programming error (HLSH_DCHECK).
  bool Matches(const AttributeStore& store, size_t id) const;
};

/// Evaluates `pred` over rows [0, min(store.size(), id_limit)) into
/// *filter, resized to id_limit bits: bit i set iff row i passes. Rows in
/// [store.size(), id_limit) fail, matching Predicate::Matches. The loop is
/// word-blocked (64 rows per word, term-major within the block) so the
/// evaluation cost is a handful of compares per row with no byte-level
/// bit twiddling; at bench scale this is the O(n) prologue that the
/// pushdown amortizes against the saved distance computations.
void EvaluateFilter(const AttributeStore& store, const Predicate& pred,
                    size_t id_limit, util::BitVector* filter);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_ATTRIBUTES_H_
