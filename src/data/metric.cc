#include "data/metric.h"

#include <bit>
#include <cmath>

namespace hybridlsh {
namespace data {

std::string_view MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL1:
      return "L1";
    case Metric::kL2:
      return "L2";
    case Metric::kCosine:
      return "cosine";
    case Metric::kHamming:
      return "hamming";
    case Metric::kJaccard:
      return "jaccard";
  }
  return "unknown";
}

float DotProduct(const float* a, const float* b, size_t d) {
  float sum = 0.0f;
  for (size_t i = 0; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

float Norm(const float* a, size_t d) {
  return std::sqrt(DotProduct(a, a, d));
}

float SquaredL2Distance(const float* a, const float* b, size_t d) {
  float sum = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float L2Distance(const float* a, const float* b, size_t d) {
  return std::sqrt(SquaredL2Distance(a, b, d));
}

float L1Distance(const float* a, const float* b, size_t d) {
  float sum = 0.0f;
  for (size_t i = 0; i < d; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

float CosineDistance(const float* a, const float* b, size_t d) {
  float dot = 0.0f, norm_a = 0.0f, norm_b = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  const float denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom == 0.0f) return 1.0f;
  // Clamp for numerical safety: cos in [-1, 1].
  float cos = dot / denom;
  if (cos > 1.0f) cos = 1.0f;
  if (cos < -1.0f) cos = -1.0f;
  return 1.0f - cos;
}

uint32_t HammingDistance(const uint64_t* a, const uint64_t* b, size_t words) {
  uint32_t total = 0;
  for (size_t i = 0; i < words; ++i) {
    total += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

float JaccardDistance(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  if (a.empty() && b.empty()) return 0.0f;
  size_t i = 0, j = 0, intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t union_size = a.size() + b.size() - intersection;
  return 1.0f - static_cast<float>(intersection) / static_cast<float>(union_size);
}

}  // namespace data
}  // namespace hybridlsh
