// Query workloads and exact ground truth.
//
// The paper's protocol (§4): "For each dataset, we randomly remove 100
// points and use it as the query set, and report the average of 5 runs of
// algorithms on the query set." SplitQueries implements the removal;
// GroundTruth computes the exact rNNR answer by (parallel) linear scan so
// that recall and output-size plots (Figure 3 left) can be produced.

#ifndef HYBRIDLSH_DATA_WORKLOAD_H_
#define HYBRIDLSH_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

/// A dataset with `num_queries` points removed and used as queries.
struct DenseSplit {
  DenseDataset base;
  DenseDataset queries;
};

/// Randomly removes `num_queries` points (paper protocol). Requires
/// num_queries <= dataset.size().
DenseSplit SplitQueries(const DenseDataset& dataset, size_t num_queries,
                        uint64_t seed);

/// Binary-code variant of SplitQueries.
struct BinarySplit {
  BinaryDataset base;
  BinaryDataset queries;
};
BinarySplit SplitQueriesBinary(const BinaryDataset& dataset, size_t num_queries,
                               uint64_t seed);

/// Exact rNNR answer for one dense query by linear scan: ids of all points
/// with distance(point, query) <= radius under `metric` (kL1, kL2 or
/// kCosine), in increasing id order.
std::vector<uint32_t> RangeScanDense(const DenseDataset& dataset,
                                     const float* query, double radius,
                                     Metric metric);

/// Exact rNNR answer for one binary query under Hamming distance.
std::vector<uint32_t> RangeScanBinary(const BinaryDataset& dataset,
                                      const uint64_t* query, uint32_t radius);

/// Exact rNNR answer for one sparse query under Jaccard distance.
std::vector<uint32_t> RangeScanSparse(const SparseDataset& dataset,
                                      SparseDataset::Point query, double radius);

/// Ground truth for a dense query set, parallelized over queries.
std::vector<std::vector<uint32_t>> GroundTruthDense(const DenseDataset& dataset,
                                                    const DenseDataset& queries,
                                                    double radius, Metric metric,
                                                    size_t num_threads = 1);

/// Ground truth for a binary query set, parallelized over queries.
std::vector<std::vector<uint32_t>> GroundTruthBinary(
    const BinaryDataset& dataset, const BinaryDataset& queries, uint32_t radius,
    size_t num_threads = 1);

/// Fraction of `truth` ids present in `reported` (1.0 when truth is empty).
/// `reported` need not be sorted; `truth` must be the exact answer set.
double Recall(const std::vector<uint32_t>& reported,
              const std::vector<uint32_t>& truth);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_WORKLOAD_H_
