// Int8 quantized mirror of a DenseDataset for screened verification.
//
// Candidate verification is memory-bandwidth-bound (BENCH_kernels.json):
// the float kernels stall on loads, not arithmetic. The mirror stores every
// dataset row as int8 codes under ONE global symmetric scale
//
//   scale = max_i max_d |x[i][d]| / 127,      q = round(x / scale)
//
// so the verifier touches 4x fewer bytes per candidate. A single global
// scale — rather than the per-dimension scales common in ANN quantizers —
// is deliberate: integer SIMD accumulates sum_d f(qx[d], qy[d]) in one
// int32 register chain, and only a uniform scale lets that whole sum be
// mapped back with one multiply (L1 = scale * S1, L2^2 = scale^2 * S2,
// dot = scale^2 * Sdot), which is what the conservative error bound in
// core/kernels.cc::VerifyBlockQuantized needs. Per-dimension scales would
// force the fold-back inside the loop and erase the bandwidth win.
//
// Error contract: calibration never clamps — the scale is derived from the
// data's own maximum, so every calibrated element obeys
// |x - scale * q| <= scale / 2. Rows appended AFTER calibration may fall
// outside the calibrated range; those are stored clamped and flagged
// `exact_only`, and the verifier routes them straight to the exact float
// rescore (so the bound never has to cover them).
//
// Concurrency matches the dataset containers: one writer (the engine's
// writer mutex) appends rows; readers are lock-free. Codes are published
// before the row's exact_only flag, and the reader-visible row count is
// the flag array's acquire-loaded size — a reader that observes row i also
// observes its codes. Candidate ids at or beyond size_acquire() (a racing
// reader that saw the index insert before the mirror append) are treated
// as borderline by the verifier, which keeps results exact.

#ifndef HYBRIDLSH_DATA_QUANTIZED_H_
#define HYBRIDLSH_DATA_QUANTIZED_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "data/dataset.h"
#include "util/published_array.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hybridlsh {
namespace data {

class QuantizedMirror {
 public:
  /// Largest mirrored dimensionality: keeps every screen sum (elements
  /// bounded by 254^2) inside an int32 accumulator.
  static constexpr size_t kMaxDim = 16384;

  QuantizedMirror() = default;

  /// Calibrates the global scale over `dataset`'s current rows and
  /// quantizes all of them. Build/load-time only (no concurrent readers).
  /// Returns a disabled mirror (enabled() == false) when the dataset shape
  /// is not mirrorable (dim 0 or above kMaxDim).
  static QuantizedMirror Build(const DenseDataset& dataset);

  /// Whether the mirror holds codes worth screening with. A zero scale
  /// (all-zero calibration set) keeps the mirror disabled: every screen
  /// would be borderline anyway.
  bool enabled() const { return dim_ != 0 && scale_ > 0.0; }

  /// Quantizes one row of `dim()` floats and appends it. Writer-side;
  /// must be serialized with other writer calls (the engine holds its
  /// writer mutex). Rows outside the calibrated range (or non-finite) are
  /// clamped and flagged exact_only.
  void AppendRow(const float* point);

  size_t dim() const { return dim_; }
  double scale() const { return scale_; }

  /// Reader-visible row count; orders the covered codes and flags.
  size_t size_acquire() const { return exact_only_.size_acquire(); }
  /// Row count without ordering (writer side / tests).
  size_t size() const { return exact_only_.size(); }

  /// Codes for row `i` (valid below a size from size_acquire()).
  const int8_t* row(size_t i) const { return codes_.data() + i * dim_; }

  /// True when row `i` must skip the screen and go straight to the exact
  /// float kernels.
  bool exact_only(size_t i) const { return exact_only_.data()[i] != 0; }

  /// Number of exact_only rows, loaded AFTER size_acquire(): the writer
  /// bumps this counter before publishing the row, so a reader that
  /// observes N rows and then reads 0 here knows none of those N rows is
  /// flagged — the verifier can skip the per-candidate flag gather.
  size_t exact_only_count() const {
    // atomic_ref<const T> lands in C++26; the cast only adds atomicity.
    return std::atomic_ref<size_t>(const_cast<size_t&>(exact_count_))
        .load(std::memory_order_relaxed);
  }

  /// Raw base pointers for a verification loop: one acquire load each,
  /// hoisted out of the per-candidate path. Rows below a size obtained
  /// from size_acquire() BEFORE these calls stay valid for the pointers'
  /// lifetime even across concurrent appends (growth retires, never frees,
  /// superseded buffers).
  const int8_t* codes_data() const { return codes_.data(); }
  const uint8_t* exact_only_data() const { return exact_only_.data(); }

  /// Heap bytes held by codes + flags (including retired grow buffers).
  size_t MemoryBytes() const {
    return codes_.MemoryBytes() + exact_only_.MemoryBytes();
  }

  /// Serializes the mirror (snapshot sidecar). Format: magic, dim, scale,
  /// row count, codes, flags.
  void Save(util::ByteWriter* writer) const;

  /// Parses a mirror written by Save. Validates shape against `expect_dim`
  /// and `expect_rows_max` (the restored dataset's bounds).
  static util::StatusOr<QuantizedMirror> Load(util::ByteReader* reader,
                                              size_t expect_dim,
                                              size_t expect_rows_max);

 private:
  size_t dim_ = 0;
  double scale_ = 0.0;
  size_t exact_count_ = 0;  // accessed via std::atomic_ref
  util::PublishedArray<int8_t> codes_;       // rows * dim_, row-major
  util::PublishedArray<uint8_t> exact_only_; // 1 = always rescore exactly
};

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_QUANTIZED_H_
