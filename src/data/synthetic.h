// Synthetic dataset generators reproducing the paper's four data regimes.
//
// The paper evaluates on Corel Images, CoverType, Webspam, and MNIST. Those
// files are not available offline, so each generator below synthesizes a
// point set with the same size, dimension, metric, and — most importantly —
// the *local-density profile* that drives the paper's results (see
// DESIGN.md §2 "Dataset substitutions"):
//
//   * MakeCorelLike    — smooth Gaussian mixture (L2; Figure 2d regime).
//   * MakeCovtypeLike  — skewed, heavy-tailed mixture with integer-scale
//                        features (L1; Figure 2c regime).
//   * MakeWebspamLike  — one tight mega-cluster holding roughly half the
//                        points plus a diffuse remainder, on the unit
//                        sphere (cosine; Figures 2b and 3: max output
//                        size ~ n/2 at tiny radii, min output ~ 0).
//   * MakeMnistLike    — clustered near-binary vectors meant to be reduced
//                        to 64-bit SimHash fingerprints and searched under
//                        Hamming distance (Figure 2a regime).
//
// All generators are deterministic in the seed.

#ifndef HYBRIDLSH_DATA_SYNTHETIC_H_
#define HYBRIDLSH_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/metric.h"
#include "util/random.h"

namespace hybridlsh {
namespace data {

/// Configuration for the generic Gaussian-mixture generator.
struct GaussianMixtureConfig {
  size_t n = 10000;
  size_t dim = 32;
  size_t num_clusters = 50;
  /// Per-cluster point counts follow a Zipf(s) distribution; 0 = uniform.
  double cluster_size_skew = 0.0;
  /// Cluster standard deviations are drawn log-uniformly from this range,
  /// giving the "diverse local density patterns" of the paper's Figure 1.
  double scale_min = 0.5;
  double scale_max = 2.0;
  /// If true, scales are assigned by cluster rank instead of at random:
  /// the largest cluster gets scale_min, the smallest scale_max. Models
  /// data whose dominant classes are dense/duplicated (CoverType).
  bool scale_by_rank = false;
  /// Cluster centers are uniform in [-center_box, center_box]^dim...
  double center_box = 10.0;
  /// ...unless this is > 0, in which case centers are N(0, sigma^2 I):
  /// with small sigma the clusters overlap, so growing the search radius
  /// sweeps from "own cluster" to "several clusters" (Corel's regime).
  double center_gaussian_sigma = 0.0;
  /// If > 0, every feature is rounded to a multiple of this step. Mimics
  /// integer-valued data (CoverType), which collapses cluster cores into
  /// exact duplicates — the paper's worst case for LSH deduplication.
  double quantize_step = 0.0;
  uint64_t seed = 1;
};

/// Samples a Gaussian mixture per the config.
DenseDataset MakeGaussianMixture(const GaussianMixtureConfig& config);

/// Uniform points in [0, 1]^dim (featureless baseline for tests).
DenseDataset MakeUniformCube(size_t n, size_t dim, uint64_t seed);

/// Corel-Images-like set: n x dim smooth mixture, L2 regime.
/// Defaults mirror the paper (n = 68,040, d = 32).
DenseDataset MakeCorelLike(size_t n = 68040, size_t dim = 32, uint64_t seed = 1);

/// CoverType-like set: skewed mixture with feature scales of order 100 so
/// that interesting L1 radii fall near the paper's 3000-4000 range.
/// Defaults mirror the paper (n = 581,012, d = 54).
DenseDataset MakeCovtypeLike(size_t n = 581012, size_t dim = 54,
                             uint64_t seed = 1);

/// Configuration for the Webspam-like generator.
struct WebspamLikeConfig {
  size_t n = 350000;
  size_t dim = 254;
  /// Fraction of points inside the mega-cluster.
  double cluster_fraction = 0.55;
  /// Perturbation magnitudes within the mega-cluster, drawn log-uniformly
  /// from [eps_min, eps_max]: the log draw concentrates mass at small eps,
  /// giving a dense near-duplicate core (spam pages are copies of each
  /// other) whose pairwise cosine distances straddle the paper's radius
  /// range r in [0.05, 0.10].
  double eps_min = 0.02;
  double eps_max = 0.40;
  uint64_t seed = 1;
};

/// Webspam-like set on the unit sphere under cosine distance.
DenseDataset MakeWebspamLike(const WebspamLikeConfig& config = {});

/// MNIST-like set: `num_classes` prototype clusters of near-binary pixel
/// vectors. Defaults mirror the paper (n = 60,000, d = 780).
DenseDataset MakeMnistLike(size_t n = 60000, size_t dim = 780,
                           size_t num_classes = 10, uint64_t seed = 1);

/// Random packed binary codes with each bit i.i.d. Bernoulli(1/2).
BinaryDataset MakeRandomCodes(size_t n, size_t width_bits, uint64_t seed);

/// Random sparse sets: each point samples `avg_set_size` ids (geometrically
/// varied) from [0, universe). For MinHash / Jaccard tests.
SparseDataset MakeRandomSparse(size_t n, uint32_t universe, size_t avg_set_size,
                               uint64_t seed);

// --- Planted neighbors -----------------------------------------------------
// Appends `count` points at controlled distance <= radius (and > 0) from
// `query`, so recall tests can assert on guaranteed-nonempty result sets.
// Returns the ids of the appended points.

/// L2: neighbors uniform in the radius ball (by scaled Gaussian direction).
std::vector<uint32_t> PlantNeighborsL2(DenseDataset* dataset, const float* query,
                                       double radius, size_t count,
                                       util::Rng* rng);

/// L1: neighbors at L1 distance uniform in (0, radius] (exponential-simplex
/// direction with random signs).
std::vector<uint32_t> PlantNeighborsL1(DenseDataset* dataset, const float* query,
                                       double radius, size_t count,
                                       util::Rng* rng);

/// Cosine: neighbors at cosine distance uniform in (0, radius] (rotation of
/// the query toward a random orthogonal direction). Requires radius < 1.
std::vector<uint32_t> PlantNeighborsCosine(DenseDataset* dataset,
                                           const float* query, double radius,
                                           size_t count, util::Rng* rng);

/// Hamming: appends codes obtained from `query` by flipping 1..radius
/// distinct random bits.
std::vector<uint32_t> PlantNeighborsHamming(BinaryDataset* dataset,
                                            const uint64_t* query,
                                            uint32_t radius, size_t count,
                                            util::Rng* rng);

}  // namespace data
}  // namespace hybridlsh

#endif  // HYBRIDLSH_DATA_SYNTHETIC_H_
