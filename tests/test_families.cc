// Property tests for lsh/families.h: for every family, the *empirical*
// collision rate of a single atomic hash function at a planted distance
// must match CollisionProbability(distance). This is the LSH-sensitivity
// property (Definition 2 of the paper) that all parameter tuning rests on.

#include "lsh/families.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/metric.h"
#include "util/random.h"

namespace hybridlsh {
namespace lsh {
namespace {

constexpr int kTrials = 4000;  // SE of a Bernoulli mean ~ 0.0079

// Empirical collision rate of single-function signatures over fresh
// function samples.
template <typename Family>
double EmpiricalCollisionRate(const Family& family, typename Family::Point a,
                              typename Family::Point b, uint64_t seed) {
  util::Rng rng(seed);
  int collisions = 0;
  int32_t slot_a, slot_b;
  for (int t = 0; t < kTrials; ++t) {
    const auto fns = family.Sample(1, &rng);
    family.Signature(fns, a, {&slot_a, 1});
    family.Signature(fns, b, {&slot_b, 1});
    collisions += (slot_a == slot_b);
  }
  return static_cast<double>(collisions) / kTrials;
}

// --- SimHash ---------------------------------------------------------------

TEST(SimHashFamilyTest, CollisionRateMatchesTheoryAtPlantedAngles) {
  const size_t dim = 24;
  SimHashFamily family(dim);
  util::Rng rng(7);
  // Build a pair at a planted angle in a 2D subspace.
  for (double cosine_dist : {0.05, 0.2, 0.5, 1.0, 1.5}) {
    std::vector<float> a(dim, 0.0f), b(dim, 0.0f);
    const double angle = std::acos(1.0 - cosine_dist);
    a[0] = 1.0f;
    b[0] = static_cast<float>(std::cos(angle));
    b[1] = static_cast<float>(std::sin(angle));
    const double expected = family.CollisionProbability(cosine_dist);
    const double observed =
        EmpiricalCollisionRate(family, a.data(), b.data(), 100 + cosine_dist);
    EXPECT_NEAR(observed, expected, 0.035) << "cosine_dist=" << cosine_dist;
  }
}

TEST(SimHashFamilyTest, SignatureIsScaleInvariant) {
  SimHashFamily family(8);
  util::Rng rng(1);
  const auto fns = family.Sample(16, &rng);
  std::vector<float> x(8), x2(8);
  for (int j = 0; j < 8; ++j) {
    x[j] = static_cast<float>(rng.Gaussian());
    x2[j] = 3.5f * x[j];
  }
  std::vector<int32_t> sig(16), sig2(16);
  family.Signature(fns, x.data(), sig);
  family.Signature(fns, x2.data(), sig2);
  EXPECT_EQ(sig, sig2);
}

TEST(SimHashFamilyTest, ProbeCostsMatchSignature) {
  SimHashFamily family(8);
  util::Rng rng(2);
  const auto fns = family.Sample(8, &rng);
  std::vector<float> x(8, 0.5f);
  std::vector<int32_t> sig(8), sig2(8);
  std::vector<double> costs(8);
  family.Signature(fns, x.data(), sig);
  family.SignatureWithProbeCosts(fns, x.data(), sig2, costs);
  EXPECT_EQ(sig, sig2);
  for (double c : costs) EXPECT_GE(c, 0.0);
}

TEST(SimHashFamilyTest, MetricAndProbeKind) {
  SimHashFamily family(4);
  EXPECT_EQ(family.metric(), data::Metric::kCosine);
  EXPECT_EQ(family.probe_kind(), ProbeKind::kFlip);
  const float a[] = {1, 0, 0, 0};
  const float b[] = {0, 1, 0, 0};
  EXPECT_FLOAT_EQ(family.Distance(a, b), 1.0f);
}

// --- PStable (Gaussian / L2) -------------------------------------------------

TEST(PStableL2FamilyTest, CollisionRateMatchesTheory) {
  const size_t dim = 16;
  const double w = 4.0;
  PStableFamily family = PStableFamily::L2(dim, w);
  util::Rng rng(11);
  for (double dist : {1.0, 2.0, 4.0, 8.0}) {
    // Any direction works: 2-stable projections see only ||a-b||_2.
    std::vector<float> a(dim), b(dim);
    for (size_t j = 0; j < dim; ++j) a[j] = static_cast<float>(rng.Gaussian());
    b = a;
    b[3] += static_cast<float>(dist);
    const double expected = family.CollisionProbability(dist);
    const double observed =
        EmpiricalCollisionRate(family, a.data(), b.data(), 200 + dist);
    EXPECT_NEAR(observed, expected, 0.035) << "dist=" << dist;
  }
}

TEST(PStableL1FamilyTest, CollisionRateMatchesTheory) {
  const size_t dim = 16;
  const double w = 4.0;
  PStableFamily family = PStableFamily::L1(dim, w);
  util::Rng rng(13);
  for (double dist : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<float> a(dim), b(dim);
    for (size_t j = 0; j < dim; ++j) a[j] = static_cast<float>(rng.Gaussian());
    b = a;
    // Spread the L1 distance over several coordinates.
    b[0] += static_cast<float>(dist / 2);
    b[5] -= static_cast<float>(dist / 4);
    b[9] += static_cast<float>(dist / 4);
    const double expected = family.CollisionProbability(dist);
    const double observed =
        EmpiricalCollisionRate(family, a.data(), b.data(), 300 + dist);
    EXPECT_NEAR(observed, expected, 0.035) << "dist=" << dist;
  }
}

TEST(PStableFamilyTest, FactoriesSetMetric) {
  EXPECT_EQ(PStableFamily::L2(4, 1.0).metric(), data::Metric::kL2);
  EXPECT_EQ(PStableFamily::L1(4, 1.0).metric(), data::Metric::kL1);
  EXPECT_EQ(PStableFamily::L2(4, 1.0).kind(), StableKind::kGaussian);
  EXPECT_EQ(PStableFamily::L1(4, 1.0).kind(), StableKind::kCauchy);
}

TEST(PStableFamilyTest, DistanceMatchesMetric) {
  const float a[] = {0, 0};
  const float b[] = {3, 4};
  EXPECT_FLOAT_EQ(PStableFamily::L2(2, 1.0).Distance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(PStableFamily::L1(2, 1.0).Distance(a, b), 7.0f);
}

TEST(PStableFamilyTest, ProbeCostsArePositionsInWindow) {
  PStableFamily family = PStableFamily::L2(4, 2.0);
  util::Rng rng(3);
  const auto fns = family.Sample(6, &rng);
  const float x[] = {0.3f, -1.2f, 0.8f, 2.1f};
  std::vector<int32_t> sig(6), sig2(6);
  std::vector<double> down(6), up(6);
  family.Signature(fns, x, sig);
  family.SignatureWithProbeCosts(fns, x, sig2, down, up);
  EXPECT_EQ(sig, sig2);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_GE(down[i], 0.0);
    EXPECT_LT(down[i], 1.0);
    EXPECT_NEAR(down[i] + up[i], 1.0, 1e-9);
  }
}

TEST(PStableFamilyTest, SlotShiftsWithOffset) {
  // Moving a point by exactly w along a projection direction shifts the
  // slot by the projection of the move: verify slots differ for far points.
  PStableFamily family = PStableFamily::L2(2, 1.0);
  util::Rng rng(4);
  const auto fns = family.Sample(8, &rng);
  const float a[] = {0, 0};
  const float b[] = {100, 100};
  std::vector<int32_t> sig_a(8), sig_b(8);
  family.Signature(fns, a, sig_a);
  family.Signature(fns, b, sig_b);
  EXPECT_NE(sig_a, sig_b);
}

// --- Bit sampling ------------------------------------------------------------

TEST(BitSamplingFamilyTest, CollisionRateMatchesTheory) {
  const size_t width = 64;
  BitSamplingFamily family(width);
  util::Rng rng(17);
  for (uint32_t dist : {4u, 16u, 32u, 48u}) {
    uint64_t a = rng.NextU64();
    uint64_t b = a;
    // Flip exactly `dist` low bits.
    for (uint32_t i = 0; i < dist; ++i) b ^= uint64_t{1} << i;
    const double expected = family.CollisionProbability(dist);
    const double observed = EmpiricalCollisionRate(family, &a, &b, 400 + dist);
    EXPECT_NEAR(observed, expected, 0.035) << "dist=" << dist;
  }
}

TEST(BitSamplingFamilyTest, SignatureReadsBits) {
  BitSamplingFamily family(128);
  BitSamplingFamily::Functions fns;
  fns.positions = {0, 63, 64, 127};
  uint64_t code[2] = {(uint64_t{1} << 63) | 1, uint64_t{1} << 63};
  std::vector<int32_t> sig(4);
  family.Signature(fns, code, sig);
  EXPECT_EQ(sig, (std::vector<int32_t>{1, 1, 0, 1}));
}

TEST(BitSamplingFamilyTest, DistanceIsHamming) {
  BitSamplingFamily family(64);
  const uint64_t a = 0, b = 0xff;
  EXPECT_DOUBLE_EQ(family.Distance(&a, &b), 8.0);
}

TEST(BitSamplingFamilyTest, FlipCostsAreUniform) {
  BitSamplingFamily family(64);
  util::Rng rng(5);
  const auto fns = family.Sample(4, &rng);
  const uint64_t code = 42;
  std::vector<int32_t> sig(4);
  std::vector<double> costs(4);
  family.SignatureWithProbeCosts(fns, &code, sig, costs);
  for (double c : costs) EXPECT_EQ(c, 1.0);
}

// --- MinHash -----------------------------------------------------------------

TEST(MinHashFamilyTest, CollisionRateMatchesTheory) {
  MinHashFamily family;
  // Jaccard distance 0.5: |A ∩ B| = 10, |A ∪ B| = 20.
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < 15; ++i) a.push_back(i);        // 0..14
  for (uint32_t i = 5; i < 20; ++i) b.push_back(i);        // 5..19
  const double j = data::JaccardDistance(a, b);
  ASSERT_NEAR(j, 0.5, 1e-6);
  const double expected = family.CollisionProbability(j);
  const double observed = EmpiricalCollisionRate(
      family, data::SparseDataset::Point(a), data::SparseDataset::Point(b), 19);
  EXPECT_NEAR(observed, expected, 0.035);
}

TEST(MinHashFamilyTest, IdenticalSetsAlwaysCollide) {
  MinHashFamily family;
  std::vector<uint32_t> a{2, 7, 9, 40};
  const double observed = EmpiricalCollisionRate(
      family, data::SparseDataset::Point(a), data::SparseDataset::Point(a), 23);
  EXPECT_DOUBLE_EQ(observed, 1.0);
}

TEST(MinHashFamilyTest, EmptySetsCollideOnlyWithEachOther) {
  MinHashFamily family;
  util::Rng rng(6);
  const auto fns = family.Sample(3, &rng);
  std::vector<uint32_t> empty, nonempty{1, 2};
  std::vector<int32_t> sig_e(3), sig_n(3);
  family.Signature(fns, empty, sig_e);
  family.Signature(fns, nonempty, sig_n);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sig_e[i], std::numeric_limits<int32_t>::max());
    EXPECT_NE(sig_e[i], sig_n[i]);
  }
}

TEST(MinHashFamilyTest, DistanceIsJaccard) {
  MinHashFamily family;
  std::vector<uint32_t> a{1, 2, 3};
  std::vector<uint32_t> b{2, 3, 4, 5};
  EXPECT_FLOAT_EQ(family.Distance(a, b), 0.6f);
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
