// Tests for core/hybrid_searcher.h — the paper's Algorithm 2.
//
// Key properties verified here:
//   * the linear path returns the exact rNNR answer;
//   * the LSH path never reports a point outside the radius and meets the
//     1 - delta recall guarantee;
//   * the hybrid decision picks linear for "hard" (dense) queries and LSH
//     for "easy" (sparse) ones on a Webspam-like density mix (Figure 1's
//     q1 / q2 scenario);
//   * hybrid recall >= LSH recall (the paper's closing observation in §4.2);
//   * forced strategies, stats plumbing, estimate-only mode, multi-probe
//     execution, and the covering-LSH searcher all behave.

#include "core/hybrid_searcher.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace core {
namespace {

using data::DenseDataset;

// Webspam-like mix: half the points in a tight cosine cluster, half
// diffuse. Queries 0..9 are cluster members ("hard"), 10..19 background
// ("easy").
class HybridCosineTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 64;
  static constexpr double kRadius = 0.10;

  void SetUp() override {
    data::WebspamLikeConfig config;
    config.n = 6000;
    config.dim = kDim;
    config.cluster_fraction = 0.5;
    // Tight near-duplicate core: cluster pairs sit well inside r = 0.10, so
    // they collide in most of the 50 tables (the paper's q2 scenario). At
    // this n the hybrid decision needs that density to prefer linear.
    config.eps_min = 0.02;
    config.eps_max = 0.20;
    config.seed = 13;
    dataset_ = data::MakeWebspamLike(config);

    queries_ = DenseDataset(0, kDim);
    for (int q = 0; q < 10; ++q) {  // cluster members
      queries_.Append(std::span<const float>(dataset_.point(q * 250), kDim));
    }
    for (int q = 0; q < 10; ++q) {  // background
      queries_.Append(
          std::span<const float>(dataset_.point(3000 + q * 250), kDim));
    }

    CosineIndex::Options options;
    options.num_tables = 50;
    options.delta = 0.1;
    options.radius = kRadius;
    options.seed = 17;
    options.num_build_threads = 8;
    auto index = CosineIndex::Build(lsh::SimHashFamily(kDim), dataset_, options);
    HLSH_CHECK(index.ok());
    index_ = std::make_unique<CosineIndex>(std::move(*index));
  }

  SearcherOptions Opts(double ratio = 10.0) const {
    SearcherOptions options;
    options.cost_model = CostModel::FromRatio(ratio);  // paper: 10 for Webspam
    return options;
  }

  DenseDataset dataset_;
  DenseDataset queries_;
  std::unique_ptr<CosineIndex> index_;
};

TEST_F(HybridCosineTest, LinearPathIsExact) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  for (size_t q = 0; q < queries_.size(); q += 5) {
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.QueryLinear(queries_.point(q), kRadius, &out, &stats);
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, data::RangeScanDense(dataset_, queries_.point(q), kRadius,
                                        data::Metric::kCosine));
    EXPECT_EQ(stats.strategy, Strategy::kLinear);
    EXPECT_EQ(stats.output_size, out.size());
  }
}

TEST_F(HybridCosineTest, LshPathReportsOnlyTrueNeighbors) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  for (size_t q = 0; q < queries_.size(); ++q) {
    std::vector<uint32_t> out;
    searcher.QueryLsh(queries_.point(q), kRadius, &out);
    for (uint32_t id : out) {
      EXPECT_LE(data::CosineDistance(dataset_.point(id), queries_.point(q),
                                     kDim),
                kRadius + 1e-6);
    }
  }
}

TEST_F(HybridCosineTest, LshPathMeetsRecallGuarantee) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  size_t found = 0, total = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset_, queries_.point(q),
                                            kRadius, data::Metric::kCosine);
    std::vector<uint32_t> out;
    searcher.QueryLsh(queries_.point(q), kRadius, &out);
    found += static_cast<size_t>(data::Recall(out, truth) *
                                 static_cast<double>(truth.size()) +
                                 0.5);
    total += truth.size();
  }
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.85);
}

TEST_F(HybridCosineTest, DecisionSeparatesHardAndEasyQueries) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  int cluster_linear = 0, background_linear = 0;
  for (size_t q = 0; q < 10; ++q) {
    const QueryStats stats = searcher.EstimateOnly(queries_.point(q));
    cluster_linear += (stats.strategy == Strategy::kLinear);
  }
  for (size_t q = 10; q < 20; ++q) {
    const QueryStats stats = searcher.EstimateOnly(queries_.point(q));
    background_linear += (stats.strategy == Strategy::kLinear);
  }
  // Dense cluster queries should usually trigger linear search; diffuse
  // background queries should stay on LSH.
  EXPECT_GE(cluster_linear, 7) << "hard queries misrouted to LSH";
  EXPECT_LE(background_linear, 3) << "easy queries misrouted to linear";
}

TEST_F(HybridCosineTest, HybridRecallAtLeastLshRecall) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  double hybrid_recall = 0, lsh_recall = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset_, queries_.point(q),
                                            kRadius, data::Metric::kCosine);
    std::vector<uint32_t> hybrid_out, lsh_out;
    searcher.Query(queries_.point(q), kRadius, &hybrid_out);
    searcher.QueryLsh(queries_.point(q), kRadius, &lsh_out);
    hybrid_recall += data::Recall(hybrid_out, truth);
    lsh_recall += data::Recall(lsh_out, truth);
  }
  // The hybrid answers hard queries exactly, so its recall dominates
  // (paper: "hybrid search gives higher recall ratio than LSH-based
  // search"). Tiny slack for per-query randomness.
  EXPECT_GE(hybrid_recall, lsh_recall - 1e-9);
}

TEST_F(HybridCosineTest, HybridStatsAreConsistent) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  for (size_t q = 0; q < queries_.size(); ++q) {
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.Query(queries_.point(q), kRadius, &out, &stats);
    EXPECT_EQ(stats.output_size, out.size());
    EXPECT_GT(stats.linear_cost, 0.0);
    EXPECT_GE(stats.total_seconds, stats.estimate_seconds);
    if (stats.strategy == Strategy::kLsh) {
      EXPECT_LT(stats.lsh_cost, stats.linear_cost);
      EXPECT_GE(stats.cand_actual, stats.output_size);
    } else {
      EXPECT_GE(stats.lsh_cost, stats.linear_cost);
      // Linear path answers exactly.
      std::sort(out.begin(), out.end());
      EXPECT_EQ(out, data::RangeScanDense(dataset_, queries_.point(q), kRadius,
                                          data::Metric::kCosine));
    }
  }
}

TEST_F(HybridCosineTest, ForcedStrategiesBypassDecision) {
  SearcherOptions lsh_only = Opts();
  lsh_only.forced = ForcedStrategy::kAlwaysLsh;
  SearcherOptions linear_only = Opts();
  linear_only.forced = ForcedStrategy::kAlwaysLinear;
  CosineSearcher lsh_searcher(index_.get(), &dataset_, lsh_only);
  CosineSearcher linear_searcher(index_.get(), &dataset_, linear_only);
  for (size_t q = 0; q < queries_.size(); q += 4) {
    std::vector<uint32_t> out;
    QueryStats stats;
    lsh_searcher.Query(queries_.point(q), kRadius, &out, &stats);
    EXPECT_EQ(stats.strategy, Strategy::kLsh);
    out.clear();
    linear_searcher.Query(queries_.point(q), kRadius, &out, &stats);
    EXPECT_EQ(stats.strategy, Strategy::kLinear);
  }
}

TEST_F(HybridCosineTest, ExtremeRatiosForceEachPath) {
  // beta/alpha -> infinity makes LSH always cheaper (collisions get free);
  // beta/alpha -> 0 makes the candidate term dominate so dense queries go
  // linear. Check the decision responds to the model.
  CosineSearcher cheap_dedup(index_.get(), &dataset_, Opts(1e9));
  const QueryStats s1 = cheap_dedup.EstimateOnly(queries_.point(0));
  // With enormous beta, LshCost ~ beta*cand < beta*n unless cand ~ n.
  EXPECT_EQ(s1.strategy, Strategy::kLsh);

  CosineSearcher pricey_dedup(index_.get(), &dataset_, Opts(1e-9));
  const QueryStats s2 = pricey_dedup.EstimateOnly(queries_.point(0));
  // With beta ~ 0, LinearCost ~ 0 while collisions still cost: linear wins.
  EXPECT_EQ(s2.strategy, Strategy::kLinear);
}

TEST_F(HybridCosineTest, EstimateOnlyMatchesQueryDecision) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  for (size_t q = 0; q < queries_.size(); ++q) {
    const QueryStats estimate = searcher.EstimateOnly(queries_.point(q));
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.Query(queries_.point(q), kRadius, &out, &stats);
    EXPECT_EQ(estimate.strategy, stats.strategy);
    EXPECT_EQ(estimate.collisions, stats.collisions);
    EXPECT_DOUBLE_EQ(estimate.cand_estimate, stats.cand_estimate);
  }
}

TEST_F(HybridCosineTest, CandEstimateTracksActual) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  for (size_t q = 0; q < queries_.size(); ++q) {
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.QueryLsh(queries_.point(q), kRadius, &out, &stats);
    const QueryStats estimate = searcher.EstimateOnly(queries_.point(q));
    if (stats.cand_actual < 50) continue;
    const double rel_err =
        std::abs(estimate.cand_estimate -
                 static_cast<double>(stats.cand_actual)) /
        static_cast<double>(stats.cand_actual);
    EXPECT_LT(rel_err, 0.3) << "query " << q;
  }
}

TEST_F(HybridCosineTest, ZeroRadiusReportsOnlyExactDuplicates) {
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  std::vector<uint32_t> out;
  // Query 0 is dataset point 0: cosine distance 0 to itself.
  searcher.Query(queries_.point(0), 0.0, &out);
  for (uint32_t id : out) {
    EXPECT_LE(data::CosineDistance(dataset_.point(id), queries_.point(0), kDim),
              1e-6);
  }
}

TEST_F(HybridCosineTest, RadiusBeyondTuningStillNeverFalsePositive) {
  // The cost model is radius-blind: an index tuned for r = 0.10 gives no
  // recall promise at r = 0.5 (the paper ties w/k to the target radius).
  // What must still hold at any radius: every reported id is a true
  // neighbor, and the linear path stays exact.
  CosineSearcher searcher(index_.get(), &dataset_, Opts());
  std::vector<uint32_t> out;
  QueryStats stats;
  searcher.Query(queries_.point(0), 0.5, &out, &stats);
  for (uint32_t id : out) {
    EXPECT_LE(data::CosineDistance(dataset_.point(id), queries_.point(0), kDim),
              0.5 + 1e-6);
  }
  out.clear();
  searcher.QueryLinear(queries_.point(0), 0.5, &out, &stats);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, data::RangeScanDense(dataset_, queries_.point(0), 0.5,
                                      data::Metric::kCosine));
}

// --- Multi-probe searcher ----------------------------------------------------

TEST(HybridMultiProbeTest, FewerTablesWithProbesStillRecall) {
  const size_t dim = 16;
  const double radius = 0.4;
  DenseDataset dataset = data::MakeCorelLike(3000, dim, 21);
  util::Rng rng(22);
  DenseDataset queries(0, dim);
  for (int q = 0; q < 10; ++q) {
    std::vector<float> query(dim);
    for (size_t j = 0; j < dim; ++j) query[j] = dataset.point(q * 200)[j];
    data::PlantNeighborsL2(&dataset, query.data(), radius, 6, &rng);
    queries.Append(query);
  }

  // 10 tables (vs the paper's 50) but 8 probes per table.
  L2Index::Options options;
  options.num_tables = 10;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 23;
  options.num_build_threads = 4;
  auto index =
      L2Index::Build(lsh::PStableFamily::L2(dim, 2 * radius), dataset, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions single = {};
  single.cost_model = CostModel::FromRatio(6.0);
  SearcherOptions probing = single;
  probing.probes_per_table = 8;

  L2Searcher searcher1(&*index, &dataset, single);
  L2Searcher searcher8(&*index, &dataset, probing);

  double recall1 = 0, recall8 = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset, queries.point(q), radius,
                                            data::Metric::kL2);
    std::vector<uint32_t> out1, out8;
    searcher1.QueryLsh(queries.point(q), radius, &out1);
    searcher8.QueryLsh(queries.point(q), radius, &out8);
    recall1 += data::Recall(out1, truth);
    recall8 += data::Recall(out8, truth);
  }
  EXPECT_GE(recall8, recall1);            // probing can only help recall
  EXPECT_GT(recall8 / queries.size(), 0.85);  // and reaches high recall
}

// --- Covering LSH searcher ---------------------------------------------------

TEST(HybridCoveringTest, NoFalseNegativesThroughFullStack) {
  const uint32_t radius = 4;
  data::BinaryDataset dataset = data::MakeRandomCodes(2000, 64, 31);
  util::Rng rng(32);
  data::BinaryDataset queries(0, 64);
  for (int q = 0; q < 10; ++q) {
    const uint64_t query = dataset.point(q * 150)[0];
    data::PlantNeighborsHamming(&dataset, &query, radius, 5, &rng);
    queries.Append(&query);
  }

  lsh::CoveringLshIndex::Options options;
  options.radius = radius;
  options.seed = 33;
  options.num_build_threads = 8;
  auto index = lsh::CoveringLshIndex::Build(dataset, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(1.0);
  CoveringSearcher searcher(&*index, &dataset, searcher_options);

  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanBinary(dataset, queries.point(q), radius);
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.Query(queries.point(q), radius, &out, &stats);
    std::sort(out.begin(), out.end());
    // Hybrid over covering LSH is *exact* regardless of the chosen path:
    // linear is exact by construction, covering-LSH has no false negatives
    // and S3 removes false positives.
    EXPECT_EQ(out, truth) << "query " << q << " strategy "
                          << StrategyName(stats.strategy);
  }
}

}  // namespace
}  // namespace core
}  // namespace hybridlsh
