// Save/Load round-trip tests for LshIndex across every family, plus
// failure injection on the index file format.
//
// The round-trip criterion is strict: the loaded index must produce
// byte-identical query keys and cost estimates for every query — i.e., it
// IS the same index, not a statistically equivalent one.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"
#include "util/serialize.h"

namespace hybridlsh {
namespace {

class IndexSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hybridlsh_idx_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  // Verifies Save+Load produces identical keys and probe estimates.
  template <typename Index, typename Queries>
  void ExpectIdenticalBehaviour(const Index& original, const Index& loaded,
                                const Queries& queries) {
    EXPECT_EQ(loaded.k(), original.k());
    EXPECT_EQ(loaded.num_tables(), original.num_tables());
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.stats().total_buckets, original.stats().total_buckets);
    EXPECT_EQ(loaded.stats().total_sketches, original.stats().total_sketches);

    auto scratch_a = original.MakeScratchSketch();
    auto scratch_b = loaded.MakeScratchSketch();
    std::vector<uint64_t> keys_a, keys_b;
    for (size_t q = 0; q < queries.size(); ++q) {
      original.QueryKeys(queries.point(q), &keys_a);
      loaded.QueryKeys(queries.point(q), &keys_b);
      ASSERT_EQ(keys_a, keys_b) << "query " << q;
      const auto est_a = original.EstimateProbe(keys_a, &scratch_a);
      const auto est_b = loaded.EstimateProbe(keys_b, &scratch_b);
      EXPECT_EQ(est_a.collisions, est_b.collisions);
      EXPECT_DOUBLE_EQ(est_a.cand_estimate, est_b.cand_estimate);
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IndexSerializationTest, L2RoundTrip) {
  const data::DenseDataset dataset = data::MakeCorelLike(2000, 16, 1);
  L2Index::Options options;
  options.num_tables = 20;
  options.k = 6;
  options.seed = 2;
  auto index =
      L2Index::Build(lsh::PStableFamily::L2(16, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("l2.idx")).ok());
  auto loaded = L2Index::Load(Path("l2.idx"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->family().kind(), lsh::StableKind::kGaussian);
  EXPECT_DOUBLE_EQ(loaded->family().w(), 1.0);
  ExpectIdenticalBehaviour(*index, *loaded, dataset);
}

TEST_F(IndexSerializationTest, L1RoundTrip) {
  const data::DenseDataset dataset = data::MakeCovtypeLike(2000, 20, 3);
  L1Index::Options options;
  options.num_tables = 10;
  options.k = 8;
  options.seed = 4;
  auto index =
      L1Index::Build(lsh::PStableFamily::L1(20, 400.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("l1.idx")).ok());
  auto loaded = L1Index::Load(Path("l1.idx"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->family().kind(), lsh::StableKind::kCauchy);
  ExpectIdenticalBehaviour(*index, *loaded, dataset);
}

TEST_F(IndexSerializationTest, CosineRoundTrip) {
  const data::DenseDataset dataset =
      data::MakeWebspamLike({.n = 2000, .dim = 32, .seed = 5});
  CosineIndex::Options options;
  options.num_tables = 15;
  options.k = 12;
  options.seed = 6;
  auto index = CosineIndex::Build(lsh::SimHashFamily(32), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("cos.idx")).ok());
  auto loaded = CosineIndex::Load(Path("cos.idx"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->family().dim(), 32u);
  ExpectIdenticalBehaviour(*index, *loaded, dataset);
}

TEST_F(IndexSerializationTest, HammingRoundTrip) {
  const data::BinaryDataset dataset = data::MakeRandomCodes(3000, 64, 7);
  HammingIndex::Options options;
  options.num_tables = 25;
  options.k = 10;
  options.seed = 8;
  auto index =
      HammingIndex::Build(lsh::BitSamplingFamily(64), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("ham.idx")).ok());
  auto loaded = HammingIndex::Load(Path("ham.idx"));
  ASSERT_TRUE(loaded.ok());
  ExpectIdenticalBehaviour(*index, *loaded, dataset);
}

TEST_F(IndexSerializationTest, MinHashRoundTrip) {
  const data::SparseDataset dataset = data::MakeRandomSparse(1000, 500, 20, 9);
  JaccardIndex::Options options;
  options.num_tables = 10;
  options.k = 4;
  options.seed = 10;
  auto index = JaccardIndex::Build(lsh::MinHashFamily(), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("jac.idx")).ok());
  auto loaded = JaccardIndex::Load(Path("jac.idx"));
  ASSERT_TRUE(loaded.ok());
  ExpectIdenticalBehaviour(*index, *loaded, dataset);
}

TEST_F(IndexSerializationTest, LoadedIndexServesHybridQueries) {
  // End-to-end: a loaded index plugged into a HybridSearcher answers with
  // the same results as the original.
  const size_t dim = 16;
  const double radius = 0.4;
  const data::DenseDataset dataset = data::MakeCorelLike(3000, dim, 11);
  L2Index::Options options;
  options.num_tables = 30;
  options.k = 7;
  options.seed = 12;
  auto index = L2Index::Build(lsh::PStableFamily::L2(dim, 2 * radius), dataset,
                              options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("hybrid.idx")).ok());
  auto loaded = L2Index::Load(Path("hybrid.idx"));
  ASSERT_TRUE(loaded.ok());

  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(6.0);
  L2Searcher original(&*index, &dataset, searcher_options);
  L2Searcher restored(&*loaded, &dataset, searcher_options);
  std::vector<uint32_t> out_a, out_b;
  for (size_t q = 0; q < 20; ++q) {
    out_a.clear();
    out_b.clear();
    original.Query(dataset.point(q * 100), radius, &out_a);
    restored.Query(dataset.point(q * 100), radius, &out_b);
    EXPECT_EQ(out_a, out_b) << "query " << q;
  }
}

TEST_F(IndexSerializationTest, IdBaseRoundTrip) {
  // A shard-offset index (Options::id_base) must reload with the offset
  // intact: both the accessor and the global ids stored in the buckets.
  constexpr size_t kDim = 8;
  constexpr uint32_t kBase = 1000;
  const data::DenseDataset dataset = data::MakeCorelLike(500, kDim, 7);
  L2Index::Options options;
  options.num_tables = 8;
  options.k = 5;
  options.seed = 11;
  options.id_base = kBase;
  auto index =
      L2Index::Build(lsh::PStableFamily::L2(kDim, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("idbase.idx")).ok());
  auto loaded = L2Index::Load(Path("idbase.idx"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->id_base(), kBase);
  ExpectIdenticalBehaviour(*index, *loaded, dataset);

  // The bucket ids themselves carry the offset after reload.
  util::VisitedSet original_ids(kBase + dataset.size());
  util::VisitedSet loaded_ids(kBase + dataset.size());
  std::vector<uint64_t> keys;
  for (size_t q = 0; q < 10; ++q) {
    index->QueryKeys(dataset.point(q), &keys);
    original_ids.Reset();
    loaded_ids.Reset();
    index->CollectCandidates(keys, &original_ids);
    loaded->CollectCandidates(keys, &loaded_ids);
    auto a = original_ids.touched();
    auto b = loaded_ids.touched();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_FALSE(a.empty());  // the home bucket holds at least point q
    EXPECT_EQ(a, b) << "query " << q;
    for (uint32_t id : a) EXPECT_GE(id, kBase);
  }
}

TEST_F(IndexSerializationTest, RejectsWrongFamily) {
  const data::DenseDataset dataset = data::MakeCorelLike(500, 8, 13);
  L2Index::Options options;
  options.num_tables = 5;
  options.k = 4;
  auto index = L2Index::Build(lsh::PStableFamily::L2(8, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("l2.idx")).ok());
  // Loading a p-stable index as a SimHash index must fail cleanly.
  EXPECT_EQ(CosineIndex::Load(Path("l2.idx")).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(IndexSerializationTest, RejectsGarbageFile) {
  std::ofstream out(Path("garbage.idx"), std::ios::binary);
  out << "this is not an index";
  out.close();
  EXPECT_EQ(L2Index::Load(Path("garbage.idx")).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IndexSerializationTest, RejectsTruncatedFile) {
  const data::DenseDataset dataset = data::MakeCorelLike(500, 8, 14);
  L2Index::Options options;
  options.num_tables = 5;
  options.k = 4;
  auto index = L2Index::Build(lsh::PStableFamily::L2(8, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("l2.idx")).ok());
  const auto size = std::filesystem::file_size(Path("l2.idx"));
  std::filesystem::resize_file(Path("l2.idx"), size / 2);
  EXPECT_FALSE(L2Index::Load(Path("l2.idx")).ok());
}

TEST_F(IndexSerializationTest, RejectsTrailingGarbage) {
  const data::DenseDataset dataset = data::MakeCorelLike(500, 8, 15);
  L2Index::Options options;
  options.num_tables = 5;
  options.k = 4;
  auto index = L2Index::Build(lsh::PStableFamily::L2(8, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("l2.idx")).ok());
  std::ofstream out(Path("l2.idx"), std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_FALSE(L2Index::Load(Path("l2.idx")).ok());
}

TEST_F(IndexSerializationTest, MissingFileIsNotFound) {
  EXPECT_EQ(L2Index::Load(Path("missing.idx")).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(IndexSerializationTest, TruncationAtEveryByteRejectsCleanly) {
  // Regression (fuzz-lite): an index file cut at ANY byte — i.e. at every
  // field boundary and inside every field — must fail with a clean Status,
  // never parse, and never crash. A small index keeps the loop fast.
  const data::DenseDataset dataset = data::MakeCorelLike(48, 4, 16);
  L2Index::Options options;
  options.num_tables = 3;
  options.k = 3;
  options.seed = 17;
  auto index = L2Index::Build(lsh::PStableFamily::L2(4, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Save(Path("full.idx")).ok());
  auto bytes = util::ReadFileBytes(Path("full.idx"));
  ASSERT_TRUE(bytes.ok());
  ASSERT_GT(bytes->size(), 0u);

  for (size_t len = 0; len < bytes->size(); ++len) {
    ASSERT_TRUE(util::WriteFileBytes(
                    Path("cut.idx"),
                    std::span<const uint8_t>(bytes->data(), len))
                    .ok());
    const auto loaded = L2Index::Load(Path("cut.idx"));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes parsed";
    // Short reads surface as DataLoss (or InvalidArgument for a cut that
    // garbles a validated field) — never OK, never an abort.
    const util::StatusCode code = loaded.status().code();
    ASSERT_TRUE(code == util::StatusCode::kDataLoss ||
                code == util::StatusCode::kInvalidArgument)
        << "prefix " << len << ": " << loaded.status().ToString();
  }
}

TEST_F(IndexSerializationTest, SaveIsAtomicOverExistingFile) {
  // Save writes through a temp file + rename: a pre-existing index at the
  // same path is replaced atomically, stray temp files from an interrupted
  // earlier Save are overwritten, and no temp residue is left behind.
  const data::DenseDataset dataset = data::MakeCorelLike(300, 8, 18);
  L2Index::Options options;
  options.num_tables = 4;
  options.k = 4;
  auto index = L2Index::Build(lsh::PStableFamily::L2(8, 1.0), dataset, options);
  ASSERT_TRUE(index.ok());

  // Simulate an interrupted previous Save: a garbage temp file.
  {
    std::ofstream tmp(Path("idx.bin.tmp"), std::ios::binary);
    tmp << "partial garbage from a crashed writer";
  }
  ASSERT_TRUE(index->Save(Path("idx.bin")).ok());
  EXPECT_FALSE(std::filesystem::exists(Path("idx.bin.tmp")));
  ASSERT_TRUE(L2Index::Load(Path("idx.bin")).ok());

  // Overwriting with a different index leaves a fully-valid file.
  options.seed = 99;
  auto other =
      L2Index::Build(lsh::PStableFamily::L2(8, 1.0), dataset, options);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other->Save(Path("idx.bin")).ok());
  auto reloaded = L2Index::Load(Path("idx.bin"));
  ASSERT_TRUE(reloaded.ok());
  std::vector<uint64_t> keys_a, keys_b;
  other->QueryKeys(dataset.point(0), &keys_a);
  reloaded->QueryKeys(dataset.point(0), &keys_b);
  EXPECT_EQ(keys_a, keys_b);
}

TEST_F(IndexSerializationTest, GoldenV1FileLoadsWithZeroIdBase) {
  // Format-compatibility contract: v1 files (no id_base field) stay
  // loadable forever, defaulting id_base to 0 and answering queries
  // identically to a fresh v2 build with the same parameters and seed. The
  // golden file was built from MakeRandomCodes(256, 64, 21) with the
  // options below — bit sampling and integer codes keep it byte-stable
  // across platforms (no libm in either sampling path).
  const std::string golden =
      std::string(HLSH_TESTDATA_DIR) + "/golden_v1_hamming.idx";
  auto loaded = HammingIndex::Load(golden);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->id_base(), 0u);

  const data::BinaryDataset dataset = data::MakeRandomCodes(256, 64, 21);
  HammingIndex::Options options;
  options.num_tables = 6;
  options.k = 8;
  options.seed = 42;
  auto fresh =
      HammingIndex::Build(lsh::BitSamplingFamily(64), dataset, options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->id_base(), 0u);
  ExpectIdenticalBehaviour(*fresh, *loaded, dataset);

  // Candidate sets match too — the v1 payload carries the same buckets.
  util::VisitedSet fresh_ids(dataset.size());
  util::VisitedSet golden_ids(dataset.size());
  std::vector<uint64_t> keys;
  for (size_t q = 0; q < 32; ++q) {
    fresh->QueryKeys(dataset.point(q * 8), &keys);
    fresh_ids.Reset();
    golden_ids.Reset();
    fresh->CollectCandidates(keys, &fresh_ids);
    loaded->CollectCandidates(keys, &golden_ids);
    EXPECT_EQ(fresh_ids.touched(), golden_ids.touched()) << "query " << q;
  }
}

}  // namespace
}  // namespace hybridlsh
