// Unit tests for data/dataset.h containers.

#include "data/dataset.h"

#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace data {
namespace {

TEST(DenseDatasetTest, DefaultIsEmpty) {
  DenseDataset dataset;
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.size(), 0u);
}

TEST(DenseDatasetTest, SizedConstruction) {
  DenseDataset dataset(5, 3);
  EXPECT_EQ(dataset.size(), 5u);
  EXPECT_EQ(dataset.dim(), 3u);
  EXPECT_EQ(dataset.point(4)[2], 0.0f);
}

TEST(DenseDatasetTest, AdoptsMatrix) {
  util::FloatMatrix m(2, 2, {1, 2, 3, 4});
  DenseDataset dataset(std::move(m));
  EXPECT_EQ(dataset.point(1)[0], 3.0f);
}

TEST(DenseDatasetTest, MutablePointWritesThrough) {
  DenseDataset dataset(2, 2);
  dataset.mutable_point(1)[1] = 7.0f;
  EXPECT_EQ(dataset.point(1)[1], 7.0f);
}

TEST(DenseDatasetTest, AppendGrows) {
  DenseDataset dataset;
  const std::vector<float> p{1, 2};
  dataset.Append(p);
  dataset.Append(p);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.dim(), 2u);
}

TEST(BinaryDatasetTest, DefaultIsEmpty) {
  BinaryDataset dataset;
  EXPECT_TRUE(dataset.empty());
}

TEST(BinaryDatasetTest, WordLayout) {
  BinaryDataset d64(3, 64), d65(3, 65), d128(3, 128);
  EXPECT_EQ(d64.words_per_code(), 1u);
  EXPECT_EQ(d65.words_per_code(), 2u);
  EXPECT_EQ(d128.words_per_code(), 2u);
}

TEST(BinaryDatasetTest, SetAndGetBit) {
  BinaryDataset dataset(2, 100);
  dataset.SetBit(1, 0, true);
  dataset.SetBit(1, 63, true);
  dataset.SetBit(1, 64, true);
  dataset.SetBit(1, 99, true);
  EXPECT_TRUE(dataset.GetBit(1, 0));
  EXPECT_TRUE(dataset.GetBit(1, 63));
  EXPECT_TRUE(dataset.GetBit(1, 64));
  EXPECT_TRUE(dataset.GetBit(1, 99));
  EXPECT_FALSE(dataset.GetBit(1, 1));
  EXPECT_FALSE(dataset.GetBit(0, 0));  // other row untouched
  dataset.SetBit(1, 63, false);
  EXPECT_FALSE(dataset.GetBit(1, 63));
}

TEST(BinaryDatasetTest, AppendGrows) {
  BinaryDataset dataset(0, 64);
  const uint64_t code = 0xdeadbeefULL;
  dataset.Append(&code);
  dataset.Append(&code);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.point(1)[0], code);
}

TEST(BinaryDatasetTest, PointsAreContiguous) {
  BinaryDataset dataset(3, 128);
  EXPECT_EQ(dataset.point(1), dataset.point(0) + 2);
  EXPECT_EQ(dataset.point(2), dataset.point(0) + 4);
}

TEST(SparseDatasetTest, DefaultIsEmpty) {
  SparseDataset dataset;
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.num_entries(), 0u);
}

TEST(SparseDatasetTest, AppendAndRead) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> a{1, 5, 9};
  const std::vector<uint32_t> b{2};
  ASSERT_TRUE(dataset.Append(a).ok());
  ASSERT_TRUE(dataset.Append(b).ok());
  EXPECT_EQ(dataset.size(), 2u);
  ASSERT_EQ(dataset.point(0).size(), 3u);
  EXPECT_EQ(dataset.point(0)[1], 5u);
  ASSERT_EQ(dataset.point(1).size(), 1u);
  EXPECT_EQ(dataset.point(1)[0], 2u);
  EXPECT_EQ(dataset.num_entries(), 4u);
}

TEST(SparseDatasetTest, AppendEmptyPoint) {
  SparseDataset dataset(10);
  ASSERT_TRUE(dataset.Append({}).ok());
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_TRUE(dataset.point(0).empty());
}

TEST(SparseDatasetTest, RejectsUnsortedIds) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> bad{5, 1};
  EXPECT_EQ(dataset.Append(bad).code(), util::StatusCode::kInvalidArgument);
}

TEST(SparseDatasetTest, RejectsDuplicateIds) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> bad{3, 3};
  EXPECT_FALSE(dataset.Append(bad).ok());
}

TEST(SparseDatasetTest, RejectsIdsBeyondUniverse) {
  SparseDataset dataset(10);
  const std::vector<uint32_t> bad{3, 10};
  EXPECT_EQ(dataset.Append(bad).code(), util::StatusCode::kOutOfRange);
}

TEST(SparseDatasetTest, UnboundedUniverseAcceptsAnyId) {
  SparseDataset dataset;  // universe 0 = unknown
  const std::vector<uint32_t> ids{1000000};
  EXPECT_TRUE(dataset.Append(ids).ok());
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
