// Unit tests for data/dataset.h containers.

#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels.h"
#include "data/metric.h"
#include "util/serialize.h"

namespace hybridlsh {
namespace data {
namespace {

TEST(DenseDatasetTest, DefaultIsEmpty) {
  DenseDataset dataset;
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.size(), 0u);
}

TEST(DenseDatasetTest, SizedConstruction) {
  DenseDataset dataset(5, 3);
  EXPECT_EQ(dataset.size(), 5u);
  EXPECT_EQ(dataset.dim(), 3u);
  EXPECT_EQ(dataset.point(4)[2], 0.0f);
}

TEST(DenseDatasetTest, AdoptsMatrix) {
  util::FloatMatrix m(2, 2, {1, 2, 3, 4});
  DenseDataset dataset(std::move(m));
  EXPECT_EQ(dataset.point(1)[0], 3.0f);
}

TEST(DenseDatasetTest, MutablePointWritesThrough) {
  DenseDataset dataset(2, 2);
  dataset.mutable_point(1)[1] = 7.0f;
  EXPECT_EQ(dataset.point(1)[1], 7.0f);
}

TEST(DenseDatasetTest, AppendGrows) {
  DenseDataset dataset;
  const std::vector<float> p{1, 2};
  dataset.Append(p);
  dataset.Append(p);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.dim(), 2u);
}

TEST(BinaryDatasetTest, DefaultIsEmpty) {
  BinaryDataset dataset;
  EXPECT_TRUE(dataset.empty());
}

TEST(BinaryDatasetTest, WordLayout) {
  BinaryDataset d64(3, 64), d65(3, 65), d128(3, 128);
  EXPECT_EQ(d64.words_per_code(), 1u);
  EXPECT_EQ(d65.words_per_code(), 2u);
  EXPECT_EQ(d128.words_per_code(), 2u);
}

TEST(BinaryDatasetTest, SetAndGetBit) {
  BinaryDataset dataset(2, 100);
  dataset.SetBit(1, 0, true);
  dataset.SetBit(1, 63, true);
  dataset.SetBit(1, 64, true);
  dataset.SetBit(1, 99, true);
  EXPECT_TRUE(dataset.GetBit(1, 0));
  EXPECT_TRUE(dataset.GetBit(1, 63));
  EXPECT_TRUE(dataset.GetBit(1, 64));
  EXPECT_TRUE(dataset.GetBit(1, 99));
  EXPECT_FALSE(dataset.GetBit(1, 1));
  EXPECT_FALSE(dataset.GetBit(0, 0));  // other row untouched
  dataset.SetBit(1, 63, false);
  EXPECT_FALSE(dataset.GetBit(1, 63));
}

TEST(BinaryDatasetTest, AppendGrows) {
  BinaryDataset dataset(0, 64);
  const uint64_t code = 0xdeadbeefULL;
  dataset.Append(&code);
  dataset.Append(&code);
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.point(1)[0], code);
}

TEST(BinaryDatasetTest, PointsAreContiguous) {
  BinaryDataset dataset(3, 128);
  EXPECT_EQ(dataset.point(1), dataset.point(0) + 2);
  EXPECT_EQ(dataset.point(2), dataset.point(0) + 4);
}

TEST(SparseDatasetTest, DefaultIsEmpty) {
  SparseDataset dataset;
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.num_entries(), 0u);
}

TEST(SparseDatasetTest, AppendAndRead) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> a{1, 5, 9};
  const std::vector<uint32_t> b{2};
  ASSERT_TRUE(dataset.Append(a).ok());
  ASSERT_TRUE(dataset.Append(b).ok());
  EXPECT_EQ(dataset.size(), 2u);
  ASSERT_EQ(dataset.point(0).size(), 3u);
  EXPECT_EQ(dataset.point(0)[1], 5u);
  ASSERT_EQ(dataset.point(1).size(), 1u);
  EXPECT_EQ(dataset.point(1)[0], 2u);
  EXPECT_EQ(dataset.num_entries(), 4u);
}

TEST(SparseDatasetTest, AppendEmptyPoint) {
  SparseDataset dataset(10);
  ASSERT_TRUE(dataset.Append({}).ok());
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_TRUE(dataset.point(0).empty());
}

TEST(SparseDatasetTest, RejectsUnsortedIds) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> bad{5, 1};
  EXPECT_EQ(dataset.Append(bad).code(), util::StatusCode::kInvalidArgument);
}

TEST(SparseDatasetTest, RejectsDuplicateIds) {
  SparseDataset dataset(100);
  const std::vector<uint32_t> bad{3, 3};
  EXPECT_FALSE(dataset.Append(bad).ok());
}

TEST(SparseDatasetTest, RejectsIdsBeyondUniverse) {
  SparseDataset dataset(10);
  const std::vector<uint32_t> bad{3, 10};
  EXPECT_EQ(dataset.Append(bad).code(), util::StatusCode::kOutOfRange);
}

TEST(SparseDatasetTest, UnboundedUniverseAcceptsAnyId) {
  SparseDataset dataset;  // universe 0 = unknown
  const std::vector<uint32_t> ids{1000000};
  EXPECT_TRUE(dataset.Append(ids).ok());
}

// --- Norm-cache invalidation under mutation (satellite audit). --------------

TEST(DenseNormCacheTest, MutationAfterPrecomputeFallsBackToFreshNorm) {
  // Regression: cosine verification must never price a mutated point with
  // its stale cached norm. Point 0 starts at (1,0,0,0) — orthogonal to the
  // query, cosine distance 1 — then mutates to (0,0.1,0,0), parallel to the
  // query, cosine distance 0. With the stale norm (1.0 instead of 0.1) the
  // fast path would compute distance 0.9 and miss the point.
  DenseDataset dataset(2, 4);
  dataset.mutable_point(0)[0] = 1.0f;
  dataset.mutable_point(1)[2] = 1.0f;
  dataset.PrecomputeNorms();
  ASSERT_TRUE(dataset.has_norms());

  const std::vector<float> query{0.0f, 1.0f, 0.0f, 0.0f};
  const std::vector<uint32_t> ids{0, 1};
  const double radius = 0.5;
  std::vector<uint32_t> out;
  core::kernels::VerifyBlock(dataset, Metric::kCosine, query.data(), ids,
                             radius, &out);
  EXPECT_TRUE(out.empty());  // both points orthogonal to the query

  float* point = dataset.mutable_point(0);
  EXPECT_FALSE(dataset.has_norms());  // mutable access invalidated the cache
  point[0] = 0.0f;
  point[1] = 0.1f;

  out.clear();
  core::kernels::VerifyBlock(dataset, Metric::kCosine, query.data(), ids,
                             radius, &out);
  EXPECT_EQ(out, std::vector<uint32_t>{0});

  // Recomputing caches the NEW norm and must not change the answer.
  dataset.PrecomputeNorms();
  EXPECT_FLOAT_EQ(dataset.norm(0), 0.1f);
  out.clear();
  core::kernels::VerifyBlock(dataset, Metric::kCosine, query.data(), ids,
                             radius, &out);
  EXPECT_EQ(out, std::vector<uint32_t>{0});
}

TEST(DenseNormCacheTest, MutableMatrixAccessInvalidates) {
  DenseDataset dataset(3, 2);
  dataset.PrecomputeNorms();
  ASSERT_TRUE(dataset.has_norms());
  dataset.mutable_matrix();
  EXPECT_FALSE(dataset.has_norms());
}

// --- Container serialization (snapshot payloads). ---------------------------

template <typename Dataset>
Dataset RoundTrip(const Dataset& dataset) {
  util::ByteWriter writer;
  SaveDataset(dataset, &writer);
  util::ByteReader reader(writer.bytes());
  Dataset loaded;
  EXPECT_TRUE(LoadDataset(&reader, &loaded).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  return loaded;
}

TEST(DatasetSerializationTest, DenseRoundTripsWithNormCache) {
  DenseDataset dataset(3, 2);
  dataset.mutable_point(0)[0] = 1.5f;
  dataset.mutable_point(1)[1] = -2.0f;
  dataset.mutable_point(2)[0] = 0.25f;
  dataset.PrecomputeNorms();

  const DenseDataset loaded = RoundTrip(dataset);
  ASSERT_EQ(loaded.size(), dataset.size());
  ASSERT_EQ(loaded.dim(), dataset.dim());
  EXPECT_TRUE(std::ranges::equal(loaded.matrix().data(), dataset.matrix().data()));
  // The norm cache travels with the points — no recompute on restore.
  ASSERT_TRUE(loaded.has_norms());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.norm(i), dataset.norm(i));
  }
}

TEST(DatasetSerializationTest, DenseWithoutNormsStaysUncached) {
  DenseDataset dataset(2, 2);
  dataset.mutable_point(1)[0] = 3.0f;
  const DenseDataset loaded = RoundTrip(dataset);
  EXPECT_FALSE(loaded.has_norms());
  EXPECT_EQ(loaded.point(1)[0], 3.0f);
}

TEST(DatasetSerializationTest, BinaryRoundTrips) {
  BinaryDataset dataset(3, 96);
  dataset.SetBit(0, 5, true);
  dataset.SetBit(1, 70, true);
  dataset.SetBit(2, 95, true);
  const BinaryDataset loaded = RoundTrip(dataset);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.width_bits(), 96u);
  EXPECT_TRUE(std::ranges::equal(loaded.words(), dataset.words()));
}

TEST(DatasetSerializationTest, SparseRoundTrips) {
  SparseDataset dataset(1000);
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{1, 5, 900}).ok());
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{}).ok());
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{0, 999}).ok());
  const SparseDataset loaded = RoundTrip(dataset);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.universe(), 1000u);
  for (size_t p = 0; p < loaded.size(); ++p) {
    const auto a = dataset.point(p);
    const auto b = loaded.point(p);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(DatasetSerializationTest, RejectsWrongContainerKind) {
  BinaryDataset binary(2, 64);
  util::ByteWriter writer;
  SaveDataset(binary, &writer);
  util::ByteReader reader(writer.bytes());
  DenseDataset dense;
  EXPECT_EQ(LoadDataset(&reader, &dense).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(DatasetSerializationTest, RejectsTruncatedPayload) {
  DenseDataset dataset(4, 4);
  dataset.PrecomputeNorms();
  util::ByteWriter writer;
  SaveDataset(dataset, &writer);
  for (size_t len = 0; len < writer.size(); ++len) {
    util::ByteReader reader(
        std::span<const uint8_t>(writer.bytes().data(), len));
    DenseDataset loaded;
    const util::Status status = LoadDataset(&reader, &loaded);
    const bool clean_failure =
        !status.ok() || !reader.ExpectEnd().ok();
    EXPECT_TRUE(clean_failure) << "prefix length " << len;
  }
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
