// Unit tests for util/matrix.h.

#include "util/matrix.h"

#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(FloatMatrixTest, DefaultIsEmpty) {
  FloatMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(FloatMatrixTest, ZeroInitialized) {
  FloatMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0f);
  }
}

TEST(FloatMatrixTest, SetAndAt) {
  FloatMatrix m(2, 2);
  m.Set(0, 1, 5.0f);
  m.Set(1, 0, -2.5f);
  EXPECT_EQ(m.At(0, 1), 5.0f);
  EXPECT_EQ(m.At(1, 0), -2.5f);
  EXPECT_EQ(m.At(0, 0), 0.0f);
}

TEST(FloatMatrixTest, AdoptsFlatVector) {
  FloatMatrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
}

TEST(FloatMatrixDeathTest, AdoptRejectsWrongSize) {
  EXPECT_DEATH(FloatMatrix(2, 3, std::vector<float>{1, 2}), "HLSH_CHECK");
}

TEST(FloatMatrixTest, RowPointersAreContiguous) {
  FloatMatrix m(3, 2, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(m.Row(1), m.Row(0) + 2);
  EXPECT_EQ(m.Row(2), m.Row(0) + 4);
  EXPECT_EQ(m.Row(1)[1], 3.0f);
}

TEST(FloatMatrixTest, RowSpanHasColsExtent) {
  FloatMatrix m(2, 5);
  EXPECT_EQ(m.RowSpan(0).size(), 5u);
}

TEST(FloatMatrixTest, AppendRowGrows) {
  FloatMatrix m;
  const std::vector<float> r0{1, 2, 3};
  const std::vector<float> r1{4, 5, 6};
  m.AppendRow(r0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  m.AppendRow(r1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.At(1, 2), 6.0f);
}

TEST(FloatMatrixDeathTest, AppendRowRejectsWidthMismatch) {
  FloatMatrix m(1, 3);
  const std::vector<float> bad{1, 2};
  EXPECT_DEATH(m.AppendRow(bad), "HLSH_CHECK");
}

TEST(FloatMatrixTest, MutableRowWritesThrough) {
  FloatMatrix m(2, 2);
  m.MutableRow(1)[0] = 9.0f;
  EXPECT_EQ(m.At(1, 0), 9.0f);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
