// Unit tests for util/stats.h.

#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
  // sample var 32/7.
  RunningStat s;
  for (double v : {2, 4, 4, 4, 5, 5, 7, 9}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10;
    (i < 40 ? left : right).Add(v);
    all.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1);
  a.Add(3);
  a.Merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, ResetRestoresEmptyState) {
  RunningStat s;
  s.Add(1);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatTest, NumericallyStableOnLargeOffsets) {
  // Naive sum-of-squares would lose precision at offset 1e9.
  RunningStat s;
  for (double v : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.Add(v);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, SingleValue) {
  EXPECT_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 1.0), 42.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Sorted {10, 20}: p=0.5 -> 15.
  EXPECT_DOUBLE_EQ(Percentile({20, 10}, 0.5), 15.0);
}

TEST(PercentileTest, ExtremesAreMinAndMax) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  std::vector<double> v{1, 2, 3};
  EXPECT_EQ(Percentile(v, -0.5), 1.0);
  EXPECT_EQ(Percentile(v, 1.5), 3.0);
}

TEST(SummaryTest, OfEmpty) {
  const Summary s = Summary::Of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, OfKnownSample) {
  const Summary s = Summary::Of({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(SummaryTest, ToStringContainsFields) {
  const Summary s = Summary::Of({1, 2, 3});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=3"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("p90="), std::string::npos);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
