// Tests for data/workload.h: query splitting, exact range scans, ground
// truth, and recall.

#include "data/workload.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace hybridlsh {
namespace data {
namespace {

TEST(SplitQueriesTest, SizesAddUp) {
  const DenseDataset dataset = MakeUniformCube(1000, 4, 1);
  const DenseSplit split = SplitQueries(dataset, 100, 7);
  EXPECT_EQ(split.base.size(), 900u);
  EXPECT_EQ(split.queries.size(), 100u);
  EXPECT_EQ(split.base.dim(), 4u);
  EXPECT_EQ(split.queries.dim(), 4u);
}

TEST(SplitQueriesTest, PartitionIsExact) {
  const DenseDataset dataset = MakeUniformCube(50, 2, 2);
  const DenseSplit split = SplitQueries(dataset, 10, 3);
  // Every original point appears exactly once across base + queries.
  std::multiset<std::pair<float, float>> original, recombined;
  for (size_t i = 0; i < dataset.size(); ++i) {
    original.insert({dataset.point(i)[0], dataset.point(i)[1]});
  }
  for (size_t i = 0; i < split.base.size(); ++i) {
    recombined.insert({split.base.point(i)[0], split.base.point(i)[1]});
  }
  for (size_t i = 0; i < split.queries.size(); ++i) {
    recombined.insert({split.queries.point(i)[0], split.queries.point(i)[1]});
  }
  EXPECT_EQ(original, recombined);
}

TEST(SplitQueriesTest, DeterministicInSeed) {
  const DenseDataset dataset = MakeUniformCube(100, 3, 1);
  const DenseSplit a = SplitQueries(dataset, 20, 5);
  const DenseSplit b = SplitQueries(dataset, 20, 5);
  EXPECT_TRUE(std::ranges::equal(a.queries.matrix().data(), b.queries.matrix().data()));
}

TEST(SplitQueriesBinaryTest, SizesAddUp) {
  const BinaryDataset dataset = MakeRandomCodes(200, 64, 1);
  const BinarySplit split = SplitQueriesBinary(dataset, 20, 3);
  EXPECT_EQ(split.base.size(), 180u);
  EXPECT_EQ(split.queries.size(), 20u);
}

TEST(RangeScanDenseTest, L2FindsExactBall) {
  DenseDataset dataset(0, 2);
  dataset.Append(std::vector<float>{0, 0});     // dist 0
  dataset.Append(std::vector<float>{3, 4});     // dist 5
  dataset.Append(std::vector<float>{1, 0});     // dist 1
  dataset.Append(std::vector<float>{10, 10});   // far
  const std::vector<float> query{0, 0};
  const auto result = RangeScanDense(dataset, query.data(), 5.0, Metric::kL2);
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(RangeScanDenseTest, BoundaryIsInclusive) {
  DenseDataset dataset(0, 1);
  dataset.Append(std::vector<float>{2.0f});
  const std::vector<float> query{0.0f};
  EXPECT_EQ(RangeScanDense(dataset, query.data(), 2.0, Metric::kL2).size(), 1u);
  EXPECT_EQ(RangeScanDense(dataset, query.data(), 1.999, Metric::kL2).size(),
            0u);
}

TEST(RangeScanDenseTest, L1AndL2Differ) {
  DenseDataset dataset(0, 2);
  dataset.Append(std::vector<float>{1, 1});  // L2 = 1.41, L1 = 2
  const std::vector<float> query{0, 0};
  EXPECT_EQ(RangeScanDense(dataset, query.data(), 1.5, Metric::kL2).size(), 1u);
  EXPECT_EQ(RangeScanDense(dataset, query.data(), 1.5, Metric::kL1).size(), 0u);
}

TEST(RangeScanDenseTest, CosineMetric) {
  DenseDataset dataset(0, 2);
  dataset.Append(std::vector<float>{1, 0});      // dist 0
  dataset.Append(std::vector<float>{1, 0.1f});   // tiny angle
  dataset.Append(std::vector<float>{0, 1});      // dist 1
  const std::vector<float> query{1, 0};
  const auto result =
      RangeScanDense(dataset, query.data(), 0.05, Metric::kCosine);
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 1}));
}

TEST(RangeScanBinaryTest, FindsWithinHammingRadius) {
  BinaryDataset dataset(0, 64);
  const uint64_t base = 0xff00ff00ff00ff00ULL;
  uint64_t c0 = base;           // dist 0
  uint64_t c1 = base ^ 0b111;   // dist 3
  uint64_t c2 = base ^ ((uint64_t{1} << 40) - 1);  // dist 40-ish
  dataset.Append(&c0);
  dataset.Append(&c1);
  dataset.Append(&c2);
  const auto result = RangeScanBinary(dataset, &base, 3);
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 1}));
}

TEST(RangeScanSparseTest, FindsWithinJaccardRadius) {
  SparseDataset dataset(100);
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{1, 2, 3}).ok());
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{1, 2, 4}).ok());   // J dist 0.5
  ASSERT_TRUE(dataset.Append(std::vector<uint32_t>{50, 60}).ok());    // J dist 1
  const std::vector<uint32_t> query{1, 2, 3};
  const auto result = RangeScanSparse(dataset, query, 0.5);
  EXPECT_EQ(result, (std::vector<uint32_t>{0, 1}));
}

TEST(GroundTruthDenseTest, MatchesPerQueryScan) {
  const DenseDataset dataset = MakeCorelLike(2000, 8, 1);
  const DenseSplit split = SplitQueries(dataset, 10, 2);
  const auto truth =
      GroundTruthDense(split.base, split.queries, 0.5, Metric::kL2, 4);
  ASSERT_EQ(truth.size(), 10u);
  for (size_t q = 0; q < 10; ++q) {
    EXPECT_EQ(truth[q], RangeScanDense(split.base, split.queries.point(q), 0.5,
                                       Metric::kL2));
  }
}

TEST(GroundTruthBinaryTest, MatchesPerQueryScan) {
  const BinaryDataset dataset = MakeRandomCodes(500, 64, 1);
  const BinarySplit split = SplitQueriesBinary(dataset, 5, 2);
  const auto truth = GroundTruthBinary(split.base, split.queries, 20, 4);
  ASSERT_EQ(truth.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(truth[q], RangeScanBinary(split.base, split.queries.point(q), 20));
  }
}

TEST(RecallTest, PerfectRecall) {
  EXPECT_DOUBLE_EQ(Recall({3, 1, 2}, {1, 2, 3}), 1.0);
}

TEST(RecallTest, PartialRecall) {
  EXPECT_DOUBLE_EQ(Recall({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(RecallTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(Recall({5, 6}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Recall({}, {}), 1.0);
}

TEST(RecallTest, ExtraReportedIdsDoNotHurt) {
  EXPECT_DOUBLE_EQ(Recall({1, 2, 3, 99, 100}, {1, 2, 3}), 1.0);
}

TEST(RecallTest, ZeroRecall) {
  EXPECT_DOUBLE_EQ(Recall({9, 8}, {1, 2}), 0.0);
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
