// Tests for util/simd.h + core/kernels.h — the vectorized kernel subsystem.
//
// Two layers of guarantees:
//   * accuracy: every kernel matches the plain scalar reference in
//     data/metric.h within float tolerance, across odd dimensions and
//     unaligned row offsets;
//   * determinism: every dispatch tier returns BIT-identical values to the
//     canonical scalar tier (the property the scalar-vs-vectorized query
//     equivalence rests on), verified by swapping the resolved tier
//     mid-process via SetResolvedTierForTest.
//
// End-to-end: hybrid query results (ids and chosen strategy) are identical
// between scalar-forced and vectorized runs on all three dataset
// containers, through the monolithic searcher, a churned segmented index,
// and the sharded engine.

#include "core/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"
#include "engine/sharded_engine.h"
#include "util/random.h"
#include "util/simd.h"

namespace hybridlsh {
namespace core {
namespace {

using util::simd::Tier;

/// Restores the process-wide resolved tier when a test scope ends.
class TierGuard {
 public:
  TierGuard() : saved_(util::simd::ResolvedTier()) {}
  ~TierGuard() { util::simd::SetResolvedTierForTest(saved_); }

 private:
  Tier saved_;
};

/// The tiers this CPU can actually run, scalar first (util/simd.h).
std::vector<Tier> SupportedTiers() { return util::simd::SupportedTiers(); }

std::vector<float> RandomFloats(size_t n, util::Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return v;
}

// --- Tier resolution. --------------------------------------------------------

TEST(SimdTierTest, ParseTierNamesAndAuto) {
  Tier tier = Tier::kAvx2;
  EXPECT_TRUE(util::simd::ParseTier("scalar", &tier));
  EXPECT_EQ(tier, Tier::kScalar);
  EXPECT_TRUE(util::simd::ParseTier("sse2", &tier));
  EXPECT_EQ(tier, Tier::kSse2);
  EXPECT_TRUE(util::simd::ParseTier("avx2", &tier));
  EXPECT_EQ(tier, Tier::kAvx2);
  EXPECT_FALSE(util::simd::ParseTier("auto", &tier));
  EXPECT_FALSE(util::simd::ParseTier("", &tier));
  EXPECT_FALSE(util::simd::ParseTier(nullptr, &tier));
  EXPECT_FALSE(util::simd::ParseTier("definitely-not-a-tier", &tier));
}

TEST(SimdTierTest, TierNames) {
  EXPECT_EQ(util::simd::TierName(Tier::kScalar), "scalar");
  EXPECT_EQ(util::simd::TierName(Tier::kSse2), "sse2");
  EXPECT_EQ(util::simd::TierName(Tier::kAvx2), "avx2");
}

TEST(SimdTierTest, DispatchFollowsResolvedTier) {
  TierGuard guard;
  for (Tier tier : SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    EXPECT_EQ(util::simd::ResolvedTier(), tier);
    EXPECT_EQ(kernels::Kernels().tier, tier);
  }
}

TEST(SimdTierTest, KernelsForTierClampsToCpuSupport) {
  // Requesting more than the CPU supports degrades, never crashes.
  const kernels::KernelTable& table = kernels::KernelsForTier(Tier::kAvx2);
  EXPECT_LE(table.tier, util::simd::MaxSupportedTier());
}

// --- Distance kernels vs. the scalar reference and across tiers. -------------

class KernelPropertyTest : public ::testing::Test {
 protected:
  // Odd dims, sub-block dims, and multi-block dims with remainders.
  const std::vector<size_t> dims_ = {1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};
};

TEST_F(KernelPropertyTest, DenseKernelsMatchScalarReference) {
  util::Rng rng(41);
  for (const size_t dim : dims_) {
    for (int rep = 0; rep < 4; ++rep) {
      // +1 offset exercises unaligned row starts (matrix rows with odd
      // dims are rarely 32-byte aligned).
      const std::vector<float> buf_a = RandomFloats(dim + 1, &rng);
      const std::vector<float> buf_b = RandomFloats(dim + 1, &rng);
      const float* a = buf_a.data() + (rep % 2);
      const float* b = buf_b.data() + (rep % 2);

      const float ref_l1 = data::L1Distance(a, b, dim);
      const float ref_l2sq = data::SquaredL2Distance(a, b, dim);
      const float ref_dot = data::DotProduct(a, b, dim);
      const float ref_cos = data::CosineDistance(a, b, dim);

      for (Tier tier : SupportedTiers()) {
        const kernels::KernelTable& table = kernels::KernelsForTier(tier);
        const float tol = 1e-4f * static_cast<float>(dim);
        EXPECT_NEAR(table.l1(a, b, dim), ref_l1, tol) << "dim " << dim;
        EXPECT_NEAR(table.l2sq(a, b, dim), ref_l2sq, tol) << "dim " << dim;
        EXPECT_NEAR(table.dot(a, b, dim), ref_dot, tol) << "dim " << dim;
        EXPECT_NEAR(table.cosine(a, b, dim), ref_cos, 1e-4f) << "dim " << dim;
      }
    }
  }
}

TEST_F(KernelPropertyTest, AllTiersAreBitIdenticalToCanonicalScalar) {
  util::Rng rng(42);
  const kernels::KernelTable& scalar = kernels::KernelsForTier(Tier::kScalar);
  for (const size_t dim : dims_) {
    for (int rep = 0; rep < 4; ++rep) {
      const std::vector<float> buf_a = RandomFloats(dim + 1, &rng);
      const std::vector<float> buf_b = RandomFloats(dim + 1, &rng);
      const float* a = buf_a.data() + (rep % 2);
      const float* b = buf_b.data() + (rep % 2);
      for (Tier tier : SupportedTiers()) {
        const kernels::KernelTable& table = kernels::KernelsForTier(tier);
        // Exact equality, not NEAR: the canonical 8-lane accumulation
        // order must make every tier produce the same bits.
        EXPECT_EQ(table.l1(a, b, dim), scalar.l1(a, b, dim))
            << util::simd::TierName(tier) << " dim " << dim;
        EXPECT_EQ(table.l2sq(a, b, dim), scalar.l2sq(a, b, dim))
            << util::simd::TierName(tier) << " dim " << dim;
        EXPECT_EQ(table.dot(a, b, dim), scalar.dot(a, b, dim))
            << util::simd::TierName(tier) << " dim " << dim;
        EXPECT_EQ(table.cosine(a, b, dim), scalar.cosine(a, b, dim))
            << util::simd::TierName(tier) << " dim " << dim;
      }
    }
  }
}

TEST_F(KernelPropertyTest, CosineZeroVectorIsOrthogonal) {
  const std::vector<float> zero(16, 0.0f);
  util::Rng rng(43);
  const std::vector<float> v = RandomFloats(16, &rng);
  for (Tier tier : SupportedTiers()) {
    const kernels::KernelTable& table = kernels::KernelsForTier(tier);
    EXPECT_EQ(table.cosine(zero.data(), v.data(), 16), 1.0f);
    EXPECT_EQ(table.cosine(v.data(), zero.data(), 16), 1.0f);
    EXPECT_EQ(table.cosine(zero.data(), zero.data(), 16), 1.0f);
  }
  // Matches the scalar reference's documented zero-vector behavior.
  EXPECT_EQ(data::CosineDistance(zero.data(), v.data(), 16), 1.0f);
}

TEST_F(KernelPropertyTest, HammingMatchesReferenceExactly) {
  util::Rng rng(44);
  for (const size_t words : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                             size_t{8}, size_t{9}}) {
    std::vector<uint64_t> a(words), b(words);
    for (size_t i = 0; i < words; ++i) {
      a[i] = rng.NextU64();
      b[i] = rng.NextU64();
    }
    const uint32_t ref = data::HammingDistance(a.data(), b.data(), words);
    for (Tier tier : SupportedTiers()) {
      EXPECT_EQ(kernels::KernelsForTier(tier).hamming(a.data(), b.data(), words),
                ref);
    }
  }
}

// --- Projection kernels (LSH step S1). ---------------------------------------

class ProjectionKernelTest : public ::testing::Test {
 protected:
  const std::vector<size_t> dims_ = {1, 3, 7, 8, 9, 16, 17, 33, 64, 100};
  const std::vector<size_t> ks_ = {1, 2, 5, 16};
};

TEST_F(ProjectionKernelTest, MatvecMatchesCanonicalScalarDot) {
  // The scalar projection kernel IS k canonical 8-lane dots — the anchor
  // every other tier and the blocked form must reproduce bitwise.
  util::Rng rng(51);
  const kernels::ProjectionKernelTable& scalar =
      kernels::ProjectionKernelsForTier(Tier::kScalar);
  for (const size_t dim : dims_) {
    for (const size_t k : ks_) {
      const std::vector<float> matrix = RandomFloats(k * dim, &rng);
      const std::vector<float> query = RandomFloats(dim, &rng);
      std::vector<float> out(k, -1.0f);
      scalar.matvec(matrix.data(), k, dim, query.data(), out.data());
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(out[i], util::simd::DotF32Scalar(matrix.data() + i * dim,
                                                   query.data(), dim))
            << "dim " << dim << " k " << k << " row " << i;
      }
    }
  }
}

TEST_F(ProjectionKernelTest, AllTiersAndBothFormsBitIdentical) {
  // Signatures, probe costs, and the LSH-vs-linear decision all derive
  // from these floats, so exact equality — across tiers AND between the
  // single-query and blocked forms — is the property the hash-once
  // pipeline's determinism rests on.
  util::Rng rng(52);
  const kernels::ProjectionKernelTable& scalar =
      kernels::ProjectionKernelsForTier(Tier::kScalar);
  for (const size_t dim : dims_) {
    for (const size_t k : ks_) {
      const std::vector<float> matrix = RandomFloats(k * dim, &rng);
      // Batch sizes around the AVX2 2-query interleave: odd tail, exact
      // pairs, singleton.
      for (const size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
        std::vector<std::vector<float>> queries;
        std::vector<const float*> query_ptrs;
        for (size_t q = 0; q < count; ++q) {
          queries.push_back(RandomFloats(dim, &rng));
          query_ptrs.push_back(queries.back().data());
        }
        std::vector<float> reference(count * k);
        for (size_t q = 0; q < count; ++q) {
          scalar.matvec(matrix.data(), k, dim, query_ptrs[q],
                        reference.data() + q * k);
        }
        for (Tier tier : SupportedTiers()) {
          const kernels::ProjectionKernelTable& table =
              kernels::ProjectionKernelsForTier(tier);
          std::vector<float> single(k);
          for (size_t q = 0; q < count; ++q) {
            table.matvec(matrix.data(), k, dim, query_ptrs[q], single.data());
            for (size_t i = 0; i < k; ++i) {
              EXPECT_EQ(single[i], reference[q * k + i])
                  << util::simd::TierName(tier) << " matvec dim " << dim
                  << " k " << k << " query " << q;
            }
          }
          std::vector<float> blocked(count * k, -1.0f);
          table.matvec_block(matrix.data(), k, dim, query_ptrs.data(), count,
                             blocked.data());
          for (size_t i = 0; i < count * k; ++i) {
            EXPECT_EQ(blocked[i], reference[i])
                << util::simd::TierName(tier) << " blocked dim " << dim
                << " k " << k << " count " << count;
          }
        }
      }
    }
  }
}

// --- HLL register kernels. ---------------------------------------------------

TEST(HllKernelTest, MergeMatchesReferenceAcrossTiersAndPrecisions) {
  util::Rng rng(45);
  for (const int precision : {4, 5, 7, 11, 14}) {
    const size_t m = size_t{1} << precision;
    std::vector<uint8_t> dst(m), src(m);
    for (size_t i = 0; i < m; ++i) {
      dst[i] = static_cast<uint8_t>(rng.NextU64() % 60);
      src[i] = static_cast<uint8_t>(rng.NextU64() % 60);
    }
    std::vector<uint8_t> expected(m);
    for (size_t i = 0; i < m; ++i) expected[i] = std::max(dst[i], src[i]);

    for (Tier tier : SupportedTiers()) {
      std::vector<uint8_t> got = dst;
      kernels::KernelsForTier(tier).hll_merge(got.data(), src.data(), m);
      EXPECT_EQ(got, expected) << util::simd::TierName(tier) << " m=" << m;
    }
  }
}

TEST(HllKernelTest, FusedSumBitIdenticalAcrossTiers) {
  util::Rng rng(46);
  for (const int precision : {4, 7, 11, 14}) {
    const size_t m = size_t{1} << precision;
    std::vector<uint8_t> regs(m);
    size_t expected_zeros = 0;
    for (size_t i = 0; i < m; ++i) {
      regs[i] = (rng.NextU64() % 4 == 0) ? 0 : static_cast<uint8_t>(rng.NextU64() % 58);
      expected_zeros += (regs[i] == 0);
    }
    size_t scalar_zeros = 0;
    const double scalar_sum = util::simd::HllRegisterSumScalar(
        regs.data(), m, &scalar_zeros);
    EXPECT_EQ(scalar_zeros, expected_zeros);

    for (Tier tier : SupportedTiers()) {
      size_t zeros = 0;
      const double sum =
          kernels::KernelsForTier(tier).hll_sum(regs.data(), m, &zeros);
      EXPECT_EQ(zeros, expected_zeros) << util::simd::TierName(tier);
      EXPECT_EQ(sum, scalar_sum) << util::simd::TierName(tier);  // bitwise
    }
  }
}

TEST(HllKernelTest, SketchEstimateIdenticalAcrossTiers) {
  TierGuard guard;
  hll::HyperLogLog sketch(7);
  for (uint32_t id = 0; id < 5000; ++id) sketch.AddPoint(id);
  util::simd::SetResolvedTierForTest(Tier::kScalar);
  const double scalar_estimate = sketch.Estimate();
  for (Tier tier : SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    EXPECT_EQ(sketch.Estimate(), scalar_estimate)
        << util::simd::TierName(tier);
  }
}

// --- Block verification. -----------------------------------------------------

class VerifyBlockTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 24;  // odd block count: 3 full, no tail... 24 = 3*8
  void SetUp() override {
    dataset_ = data::MakeCorelLike(600, kDim, 47);
    query_ = RandomFloats(kDim, &rng_);
    for (uint32_t id = 0; id < dataset_.size(); id += 2) ids_.push_back(id);
  }

  double ReferenceDistance(data::Metric metric, uint32_t id) const {
    switch (metric) {
      case data::Metric::kL1:
        return data::L1Distance(dataset_.point(id), query_.data(), kDim);
      case data::Metric::kL2:
        return data::L2Distance(dataset_.point(id), query_.data(), kDim);
      case data::Metric::kCosine:
        return data::CosineDistance(dataset_.point(id), query_.data(), kDim);
      default:
        ADD_FAILURE();
        return 0;
    }
  }

  /// A radius that captures ~30% of the candidates, placed midway between
  /// two order statistics so no candidate sits exactly on the boundary.
  double PickRadius(data::Metric metric) const {
    std::vector<double> dists;
    for (const uint32_t id : ids_) dists.push_back(ReferenceDistance(metric, id));
    std::sort(dists.begin(), dists.end());
    const size_t k = dists.size() * 3 / 10;
    return (dists[k] + dists[k + 1]) / 2.0;
  }

  std::vector<uint32_t> Naive(data::Metric metric, double radius) const {
    std::vector<uint32_t> out;
    for (const uint32_t id : ids_) {
      if (ReferenceDistance(metric, id) <= radius) out.push_back(id);
    }
    return out;
  }

  util::Rng rng_{48};
  data::DenseDataset dataset_;
  std::vector<float> query_;
  std::vector<uint32_t> ids_;
};

TEST_F(VerifyBlockTest, MatchesNaiveVerificationPerMetric) {
  TierGuard guard;
  for (const data::Metric metric :
       {data::Metric::kL2, data::Metric::kL1, data::Metric::kCosine}) {
    const double radius = PickRadius(metric);
    const std::vector<uint32_t> expected = Naive(metric, radius);
    ASSERT_FALSE(expected.empty());
    ASSERT_LT(expected.size(), ids_.size());
    for (Tier tier : SupportedTiers()) {
      util::simd::SetResolvedTierForTest(tier);
      std::vector<uint32_t> got;
      const size_t reported = kernels::VerifyBlock(
          dataset_, metric, query_.data(), ids_, radius, &got);
      EXPECT_EQ(reported, got.size());
      EXPECT_EQ(got, expected)
          << data::MetricName(metric) << " " << util::simd::TierName(tier);
    }
  }
}

TEST_F(VerifyBlockTest, RangeEqualsBlockOverIota) {
  const double radius = PickRadius(data::Metric::kL2);
  std::vector<uint32_t> all_ids(dataset_.size());
  for (uint32_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
  std::vector<uint32_t> via_block, via_range;
  kernels::VerifyBlock(dataset_, data::Metric::kL2, query_.data(), all_ids,
                       radius, &via_block);
  kernels::VerifyRange(dataset_, data::Metric::kL2, query_.data(), 0,
                       static_cast<uint32_t>(dataset_.size()), radius,
                       &via_range);
  EXPECT_FALSE(via_block.empty());
  EXPECT_EQ(via_block, via_range);
}

TEST_F(VerifyBlockTest, CosineNormFastPathMatchesFusedPath) {
  const double radius = PickRadius(data::Metric::kCosine);
  std::vector<uint32_t> fused;
  ASSERT_FALSE(dataset_.has_norms());
  kernels::VerifyBlock(dataset_, data::Metric::kCosine, query_.data(), ids_,
                       radius, &fused);
  dataset_.PrecomputeNorms();
  ASSERT_TRUE(dataset_.has_norms());
  std::vector<uint32_t> with_norms;
  kernels::VerifyBlock(dataset_, data::Metric::kCosine, query_.data(), ids_,
                       radius, &with_norms);
  EXPECT_FALSE(with_norms.empty());
  EXPECT_EQ(fused, with_norms);
}

TEST_F(VerifyBlockTest, BinaryBlockMatchesNaive) {
  data::BinaryDataset codes = data::MakeRandomCodes(400, 64, 49);
  const uint64_t query = codes.point(7)[0];
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < codes.size(); ++id) ids.push_back(id);
  std::vector<uint32_t> expected;
  for (const uint32_t id : ids) {
    if (data::HammingDistance(codes.point(id), &query, 1) <= 20) {
      expected.push_back(id);
    }
  }
  TierGuard guard;
  for (Tier tier : SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    std::vector<uint32_t> got;
    kernels::VerifyBlock(codes, &query, ids, 20.0, &got);
    EXPECT_EQ(got, expected) << util::simd::TierName(tier);
    got.clear();
    kernels::VerifyRange(codes, &query, 0, static_cast<uint32_t>(codes.size()),
                         20.0, &got);
    EXPECT_EQ(got, expected) << util::simd::TierName(tier);
  }
}

// --- Norm cache lifecycle (data/dataset.h). ----------------------------------

TEST(DenseNormCacheTest, PrecomputeAndInvalidate) {
  data::DenseDataset dataset = data::MakeCorelLike(100, 16, 50);
  EXPECT_FALSE(dataset.has_norms());
  dataset.PrecomputeNorms();
  ASSERT_TRUE(dataset.has_norms());
  for (size_t i = 0; i < dataset.size(); i += 17) {
    EXPECT_FLOAT_EQ(dataset.norm(i), data::Norm(dataset.point(i), 16));
  }

  // Append keeps a current cache warm by computing the new point's norm in
  // step (the serving engine relies on this under live ingest)...
  const std::vector<float> extra(16, 0.5f);
  dataset.Append(extra);
  ASSERT_TRUE(dataset.has_norms());
  EXPECT_FLOAT_EQ(dataset.norm(dataset.size() - 1),
                  data::Norm(extra.data(), 16));

  // ...but any in-place mutable access invalidates.
  dataset.mutable_point(0)[0] += 1.0f;
  EXPECT_FALSE(dataset.has_norms());
  dataset.PrecomputeNorms();
  dataset.mutable_matrix();
  EXPECT_FALSE(dataset.has_norms());
}

// --- End-to-end equivalence: scalar-forced vs vectorized. --------------------

/// Runs `queries` through a fresh searcher under `tier` and returns each
/// query's sorted ids plus the strategy that answered it.
template <typename Index, typename Dataset, typename QuerySet>
std::vector<std::pair<std::vector<uint32_t>, Strategy>> RunUnderTier(
    const Index& index, const Dataset& dataset, const QuerySet& queries,
    double radius, Tier tier) {
  util::simd::SetResolvedTierForTest(tier);
  SearcherOptions options;
  options.cost_model = CostModel::FromRatio(6.0);
  HybridSearcher<Index, Dataset> searcher(&index, &dataset, options);
  std::vector<std::pair<std::vector<uint32_t>, Strategy>> results;
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<uint32_t> out;
    QueryStats stats;
    searcher.Query(queries.point(q), radius, &out, &stats);
    std::sort(out.begin(), out.end());
    results.emplace_back(std::move(out), stats.strategy);
  }
  return results;
}

template <typename Index, typename Dataset, typename QuerySet>
void ExpectTierEquivalence(const Index& index, const Dataset& dataset,
                           const QuerySet& queries, double radius) {
  TierGuard guard;
  const auto scalar =
      RunUnderTier(index, dataset, queries, radius, Tier::kScalar);
  for (Tier tier : SupportedTiers()) {
    const auto got = RunUnderTier(index, dataset, queries, radius, tier);
    ASSERT_EQ(got.size(), scalar.size());
    for (size_t q = 0; q < got.size(); ++q) {
      EXPECT_EQ(got[q].first, scalar[q].first)
          << "query " << q << " tier " << util::simd::TierName(tier);
      EXPECT_EQ(got[q].second, scalar[q].second)
          << "strategy diverged, query " << q << " tier "
          << util::simd::TierName(tier);
    }
  }
}

TEST(TierEquivalenceTest, DenseL2) {
  data::DenseDataset dataset = data::MakeCorelLike(3000, 32, 51);
  data::DenseDataset queries(0, 32);
  for (int q = 0; q < 8; ++q) {
    queries.Append(std::span<const float>(dataset.point(q * 300), 32));
  }
  L2Index::Options options;
  options.num_tables = 20;
  options.radius = 0.45;
  options.seed = 52;
  auto index =
      L2Index::Build(lsh::PStableFamily::L2(32, 0.9), dataset, options);
  ASSERT_TRUE(index.ok());
  ExpectTierEquivalence(*index, dataset, queries, 0.45);
}

TEST(TierEquivalenceTest, DenseL1) {
  data::DenseDataset dataset = data::MakeCovtypeLike(2500, 20, 53);
  data::DenseDataset queries(0, 20);
  for (int q = 0; q < 8; ++q) {
    queries.Append(std::span<const float>(dataset.point(q * 250), 20));
  }
  L1Index::Options options;
  options.num_tables = 20;
  options.radius = 2.0;
  options.seed = 54;
  auto index =
      L1Index::Build(lsh::PStableFamily::L1(20, 8.0), dataset, options);
  ASSERT_TRUE(index.ok());
  ExpectTierEquivalence(*index, dataset, queries, 2.0);
}

TEST(TierEquivalenceTest, DenseCosineWithNorms) {
  data::WebspamLikeConfig config;
  config.n = 2500;
  config.dim = 48;
  config.seed = 55;
  data::DenseDataset dataset = data::MakeWebspamLike(config);
  data::DenseDataset queries(0, 48);
  for (int q = 0; q < 8; ++q) {
    queries.Append(std::span<const float>(dataset.point(q * 300), 48));
  }
  CosineIndex::Options options;
  options.num_tables = 20;
  options.radius = 0.15;
  options.seed = 56;
  auto index =
      CosineIndex::Build(lsh::SimHashFamily(48), dataset, options);
  ASSERT_TRUE(index.ok());
  // Exercise the precomputed-norm fast path under every tier.
  dataset.PrecomputeNorms();
  ExpectTierEquivalence(*index, dataset, queries, 0.15);
}

TEST(TierEquivalenceTest, BinaryHamming) {
  data::BinaryDataset dataset = data::MakeRandomCodes(2500, 64, 57);
  data::BinaryDataset queries(0, 64);
  util::Rng rng(58);
  for (int q = 0; q < 8; ++q) {
    const uint64_t code = dataset.point(q * 300)[0];
    data::PlantNeighborsHamming(&dataset, &code, 6, 4, &rng);
    queries.Append(&code);
  }
  HammingIndex::Options options;
  options.num_tables = 20;
  options.radius = 6.0;
  options.seed = 59;
  auto index =
      HammingIndex::Build(lsh::BitSamplingFamily(64), dataset, options);
  ASSERT_TRUE(index.ok());
  ExpectTierEquivalence(*index, dataset, queries, 6.0);
}

TEST(TierEquivalenceTest, SparseJaccard) {
  data::SparseDataset dataset = data::MakeRandomSparse(1500, 4000, 40, 60);
  JaccardIndex::Options options;
  options.num_tables = 20;
  options.k = 2;
  options.seed = 61;
  auto index = JaccardIndex::Build(lsh::MinHashFamily(), dataset, options);
  ASSERT_TRUE(index.ok());
  // Query with dataset members (the sparse container has no cheap copy).
  struct QueryView {
    const data::SparseDataset* dataset;
    size_t size() const { return 8; }
    data::SparseDataset::Point point(size_t q) const {
      return dataset->point(q * 150);
    }
  };
  ExpectTierEquivalence(*index, dataset, QueryView{&dataset}, 0.6);
}

TEST(TierEquivalenceTest, SegmentedIndexWithChurn) {
  data::DenseDataset dataset = data::MakeCorelLike(2000, 24, 62);
  using Segmented = engine::SegmentedIndex<lsh::PStableFamily>;
  Segmented::Options options;
  options.index.num_tables = 15;
  options.index.radius = 0.45;
  options.index.seed = 63;
  options.active_seal_threshold = 256;
  auto index = Segmented::Build(lsh::PStableFamily::L2(24, 0.9), &dataset, 0,
                                dataset.size(), options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->EnableUpdates(&dataset).ok());
  // Churn: re-insert some points, delete others, leave the active segment
  // non-empty so hash-map and CSR segments both verify.
  for (uint32_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(index->Insert(dataset.point(i)).ok());
  }
  for (uint32_t id = 100; id < 200; ++id) {
    ASSERT_TRUE(index->Remove(id).ok());
  }
  data::DenseDataset queries(0, 24);
  for (int q = 0; q < 6; ++q) {
    queries.Append(std::span<const float>(dataset.point(q * 250 + 3), 24));
  }
  ExpectTierEquivalence(*index, dataset, queries, 0.45);
}

TEST(TierEquivalenceTest, ShardedEngineBatch) {
  TierGuard guard;
  data::DenseDataset dataset = data::MakeCorelLike(3000, 32, 64);
  data::DenseDataset queries(0, 32);
  for (int q = 0; q < 10; ++q) {
    queries.Append(std::span<const float>(dataset.point(q * 280), 32));
  }
  using Engine = engine::ShardedEngine<lsh::PStableFamily>;
  Engine::Options options;
  options.num_shards = 3;
  options.num_threads = 2;
  options.index.num_tables = 15;
  options.index.radius = 0.45;
  options.index.seed = 65;
  options.searcher.cost_model = CostModel::FromRatio(6.0);
  auto engine =
      Engine::Build(lsh::PStableFamily::L2(32, 0.9), dataset, options);
  ASSERT_TRUE(engine.ok());

  std::vector<std::vector<uint32_t>> scalar_results;
  util::simd::SetResolvedTierForTest(Tier::kScalar);
  for (auto& result : engine->QueryBatch(queries, 0.45)) {
    std::sort(result.neighbors.begin(), result.neighbors.end());
    scalar_results.push_back(std::move(result.neighbors));
  }
  for (Tier tier : SupportedTiers()) {
    util::simd::SetResolvedTierForTest(tier);
    auto results = engine->QueryBatch(queries, 0.45);
    ASSERT_EQ(results.size(), scalar_results.size());
    for (size_t q = 0; q < results.size(); ++q) {
      std::sort(results[q].neighbors.begin(), results[q].neighbors.end());
      EXPECT_EQ(results[q].neighbors, scalar_results[q])
          << "query " << q << " tier " << util::simd::TierName(tier);
    }
  }
}

// --- Satellite: EstimateOnly now times the whole call. -----------------------

TEST(EstimateOnlyTimingTest, TotalSecondsIsPopulated) {
  data::DenseDataset dataset = data::MakeCorelLike(1000, 16, 66);
  L2Index::Options options;
  options.num_tables = 10;
  options.radius = 0.45;
  options.seed = 67;
  auto index =
      L2Index::Build(lsh::PStableFamily::L2(16, 0.9), dataset, options);
  ASSERT_TRUE(index.ok());
  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(6.0);
  L2Searcher searcher(&*index, &dataset, searcher_options);
  const QueryStats stats = searcher.EstimateOnly(dataset.point(0));
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.total_seconds, stats.estimate_seconds);
}

}  // namespace
}  // namespace core
}  // namespace hybridlsh
