// Round-trip and failure-injection tests for data/io.h.

#include "data/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"

namespace hybridlsh {
namespace data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hybridlsh_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, FvecsRoundTrip) {
  const DenseDataset original = MakeUniformCube(50, 7, 1);
  ASSERT_TRUE(WriteFvecs(original, Path("d.fvecs")).ok());
  auto restored = ReadFvecs(Path("d.fvecs"));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), original.size());
  ASSERT_EQ(restored->dim(), original.dim());
  EXPECT_TRUE(std::ranges::equal(restored->matrix().data(), original.matrix().data()));
}

TEST_F(IoTest, FvecsMissingFileIsNotFound) {
  EXPECT_EQ(ReadFvecs(Path("missing.fvecs")).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(IoTest, FvecsTruncatedFileIsDataLoss) {
  const DenseDataset original = MakeUniformCube(10, 4, 1);
  ASSERT_TRUE(WriteFvecs(original, Path("d.fvecs")).ok());
  // Chop the last 3 bytes.
  std::filesystem::resize_file(Path("d.fvecs"),
                               std::filesystem::file_size(Path("d.fvecs")) - 3);
  EXPECT_EQ(ReadFvecs(Path("d.fvecs")).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IoTest, FvecsInconsistentDimsIsDataLoss) {
  std::ofstream out(Path("bad.fvecs"), std::ios::binary);
  const int32_t d1 = 2, d2 = 3;
  const float vals[3] = {1, 2, 3};
  out.write(reinterpret_cast<const char*>(&d1), 4);
  out.write(reinterpret_cast<const char*>(vals), 8);
  out.write(reinterpret_cast<const char*>(&d2), 4);
  out.write(reinterpret_cast<const char*>(vals), 12);
  out.close();
  EXPECT_EQ(ReadFvecs(Path("bad.fvecs")).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IoTest, FvecsNegativeDimIsDataLoss) {
  std::ofstream out(Path("bad.fvecs"), std::ios::binary);
  const int32_t d = -1;
  out.write(reinterpret_cast<const char*>(&d), 4);
  out.close();
  EXPECT_FALSE(ReadFvecs(Path("bad.fvecs")).ok());
}

TEST_F(IoTest, CsvRoundTrip) {
  const DenseDataset original = MakeUniformCube(20, 3, 2);
  ASSERT_TRUE(WriteCsv(original, Path("d.csv")).ok());
  auto restored = ReadCsv(Path("d.csv"));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 20u);
  ASSERT_EQ(restored->dim(), 3u);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(restored->point(i)[j], original.point(i)[j], 1e-6f);
    }
  }
}

TEST_F(IoTest, CsvSkipsEmptyLines) {
  std::ofstream out(Path("d.csv"));
  out << "1.0,2.0\n\n3.0,4.0\n";
  out.close();
  auto restored = ReadCsv(Path("d.csv"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
}

TEST_F(IoTest, CsvRejectsGarbage) {
  std::ofstream out(Path("d.csv"));
  out << "1.0,abc\n";
  out.close();
  EXPECT_EQ(ReadCsv(Path("d.csv")).status().code(), util::StatusCode::kDataLoss);
}

TEST_F(IoTest, CsvRejectsRaggedRows) {
  std::ofstream out(Path("d.csv"));
  out << "1,2,3\n4,5\n";
  out.close();
  EXPECT_FALSE(ReadCsv(Path("d.csv")).ok());
}

TEST_F(IoTest, LibsvmDenseParsesFeatures) {
  std::ofstream out(Path("d.svm"));
  out << "+1 1:0.5 3:2.5\n";
  out << "-1 2:1.5\n";
  out.close();
  auto dataset = ReadLibsvmDense(Path("d.svm"), 3);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->size(), 2u);
  EXPECT_FLOAT_EQ(dataset->point(0)[0], 0.5f);
  EXPECT_FLOAT_EQ(dataset->point(0)[1], 0.0f);
  EXPECT_FLOAT_EQ(dataset->point(0)[2], 2.5f);
  EXPECT_FLOAT_EQ(dataset->point(1)[1], 1.5f);
}

TEST_F(IoTest, LibsvmDenseRejectsIndexBeyondDim) {
  std::ofstream out(Path("d.svm"));
  out << "1 5:1.0\n";
  out.close();
  EXPECT_EQ(ReadLibsvmDense(Path("d.svm"), 3).status().code(),
            util::StatusCode::kOutOfRange);
}

TEST_F(IoTest, LibsvmDenseRejectsMalformedPair) {
  std::ofstream out(Path("d.svm"));
  out << "1 :3\n";
  out.close();
  EXPECT_EQ(ReadLibsvmDense(Path("d.svm"), 3).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IoTest, LibsvmDenseRejectsZeroDim) {
  EXPECT_EQ(ReadLibsvmDense(Path("whatever"), 0).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(IoTest, LibsvmSparseParsesPresence) {
  std::ofstream out(Path("d.svm"));
  out << "+1 3:1.0 1:2.0\n";  // unsorted on purpose
  out << "-1 7:0.0\n";        // zero value dropped
  out.close();
  auto dataset = ReadLibsvmSparse(Path("d.svm"));
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->size(), 2u);
  ASSERT_EQ(dataset->point(0).size(), 2u);
  EXPECT_EQ(dataset->point(0)[0], 0u);  // 1-based 1 -> 0
  EXPECT_EQ(dataset->point(0)[1], 2u);  // 1-based 3 -> 2
  EXPECT_TRUE(dataset->point(1).empty());
}

TEST_F(IoTest, CodesRoundTrip) {
  const BinaryDataset original = MakeRandomCodes(30, 96, 4);
  ASSERT_TRUE(WriteCodes(original, Path("d.codes")).ok());
  auto restored = ReadCodes(Path("d.codes"));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 30u);
  EXPECT_EQ(restored->width_bits(), 96u);
  EXPECT_TRUE(std::ranges::equal(restored->words(), original.words()));
}

TEST_F(IoTest, CodesTruncatedIsDataLoss) {
  const BinaryDataset original = MakeRandomCodes(30, 64, 4);
  ASSERT_TRUE(WriteCodes(original, Path("d.codes")).ok());
  std::filesystem::resize_file(Path("d.codes"),
                               std::filesystem::file_size(Path("d.codes")) - 8);
  EXPECT_EQ(ReadCodes(Path("d.codes")).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IoTest, CodesTrailingBytesIsDataLoss) {
  const BinaryDataset original = MakeRandomCodes(5, 64, 4);
  ASSERT_TRUE(WriteCodes(original, Path("d.codes")).ok());
  std::ofstream out(Path("d.codes"), std::ios::app | std::ios::binary);
  out << "x";
  out.close();
  EXPECT_FALSE(ReadCodes(Path("d.codes")).ok());
}

TEST_F(IoTest, CodesEmptyFileIsDataLoss) {
  std::ofstream(Path("d.codes")).close();
  EXPECT_EQ(ReadCodes(Path("d.codes")).status().code(),
            util::StatusCode::kDataLoss);
}

TEST_F(IoTest, CodesAbsurdWidthIsDataLoss) {
  std::ofstream out(Path("d.codes"), std::ios::binary);
  const uint64_t header[2] = {1, uint64_t{1} << 40};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.close();
  EXPECT_FALSE(ReadCodes(Path("d.codes")).ok());
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
