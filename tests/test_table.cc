// Tests for lsh/table.h: bucket grouping, sketch materialization policy,
// and the small-bucket on-demand trick.

#include "lsh/table.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace lsh {
namespace {

LshTable::Options SmallThreshold(size_t threshold) {
  LshTable::Options options;
  options.hll_precision = 7;
  options.small_bucket_threshold = threshold;
  return options;
}

TEST(LshTableTest, EmptyBuild) {
  LshTable table;
  table.Build({}, SmallThreshold(0));
  EXPECT_EQ(table.num_buckets(), 0u);
  EXPECT_EQ(table.num_points(), 0u);
  EXPECT_TRUE(table.Lookup(42).empty());
}

TEST(LshTableTest, GroupsIdsByKey) {
  // Points 0,2,4 -> key 10; 1,3 -> key 20; 5 -> key 30.
  const std::vector<uint64_t> keys{10, 20, 10, 20, 10, 30};
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  EXPECT_EQ(table.num_buckets(), 3u);
  EXPECT_EQ(table.num_points(), 6u);
  EXPECT_EQ(table.max_bucket_size(), 3u);

  auto bucket10 = table.Lookup(10);
  std::vector<uint32_t> ids10(bucket10.ids.begin(), bucket10.ids.end());
  std::sort(ids10.begin(), ids10.end());
  EXPECT_EQ(ids10, (std::vector<uint32_t>{0, 2, 4}));

  auto bucket30 = table.Lookup(30);
  EXPECT_EQ(bucket30.size(), 1u);
  EXPECT_EQ(bucket30.ids[0], 5u);
}

TEST(LshTableTest, LookupMissReturnsEmpty) {
  const std::vector<uint64_t> keys{1, 1, 2};
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  const auto view = table.Lookup(999);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.sketch, nullptr);
}

TEST(LshTableTest, ThresholdZeroSketchesEverything) {
  const std::vector<uint64_t> keys{1, 1, 2};
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  EXPECT_EQ(table.num_sketches(), 2u);
  EXPECT_NE(table.Lookup(1).sketch, nullptr);
  EXPECT_NE(table.Lookup(2).sketch, nullptr);
}

TEST(LshTableTest, ThresholdSkipsSmallBuckets) {
  // Bucket 1 has 3 ids, bucket 2 has 1: threshold 2 sketches only bucket 1.
  const std::vector<uint64_t> keys{1, 1, 1, 2};
  LshTable table;
  table.Build(keys, SmallThreshold(2));
  EXPECT_EQ(table.num_sketches(), 1u);
  EXPECT_NE(table.Lookup(1).sketch, nullptr);
  EXPECT_EQ(table.Lookup(2).sketch, nullptr);
}

TEST(LshTableTest, AutoThresholdUsesRegisterCount) {
  // m = 2^7 = 128: buckets below 128 ids get no sketch under kThresholdAuto.
  std::vector<uint64_t> keys;
  for (int i = 0; i < 127; ++i) keys.push_back(1);
  for (int i = 0; i < 128; ++i) keys.push_back(2);
  LshTable table;
  LshTable::Options options;  // defaults: precision 7, auto threshold
  table.Build(keys, options);
  EXPECT_EQ(table.num_sketches(), 1u);
  EXPECT_EQ(table.Lookup(1).sketch, nullptr);
  EXPECT_NE(table.Lookup(2).sketch, nullptr);
}

TEST(LshTableTest, SketchEstimatesBucketSize) {
  std::vector<uint64_t> keys(5000, 7);  // one big bucket
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  const auto view = table.Lookup(7);
  ASSERT_NE(view.sketch, nullptr);
  EXPECT_NEAR(view.sketch->Estimate(), 5000.0,
              5000.0 * 4 * view.sketch->StandardError());
}

TEST(LshTableTest, SketchMatchesDirectConstruction) {
  // The bucket sketch must be byte-identical to hashing the same ids into a
  // fresh HLL — required for on-demand folding to agree with materialized
  // sketches.
  const std::vector<uint64_t> keys{5, 9, 5, 5, 9};
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  hll::HyperLogLog expected(7);
  expected.AddPoint(0);
  expected.AddPoint(2);
  expected.AddPoint(3);
  EXPECT_EQ(*table.Lookup(5).sketch, expected);
}

TEST(LshTableTest, RebuildReplacesContent) {
  LshTable table;
  table.Build(std::vector<uint64_t>{1, 1}, SmallThreshold(0));
  table.Build(std::vector<uint64_t>{2}, SmallThreshold(0));
  EXPECT_TRUE(table.Lookup(1).empty());
  EXPECT_EQ(table.Lookup(2).size(), 1u);
  EXPECT_EQ(table.num_points(), 1u);
}

TEST(LshTableTest, MemoryAccounting) {
  std::vector<uint64_t> keys(1000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i % 10;
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  EXPECT_GT(table.MemoryBytes(), 1000 * sizeof(uint32_t));
  EXPECT_EQ(table.SketchBytes(), 10u * 128u);  // 10 sketches at m=128
  // No sketches -> no sketch bytes.
  LshTable lean;
  lean.Build(keys, SmallThreshold(SIZE_MAX));
  EXPECT_EQ(lean.SketchBytes(), 0u);
  EXPECT_LT(lean.MemoryBytes(), table.MemoryBytes());
}

TEST(LshTableTest, ManyDistinctKeys) {
  std::vector<uint64_t> keys(500);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 1315423911ULL;
  LshTable table;
  table.Build(keys, SmallThreshold(0));
  EXPECT_EQ(table.num_buckets(), 500u);
  EXPECT_EQ(table.max_bucket_size(), 1u);
  for (size_t i = 0; i < keys.size(); i += 53) {
    const auto view = table.Lookup(keys[i]);
    ASSERT_EQ(view.size(), 1u);
    EXPECT_EQ(view.ids[0], i);
  }
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
