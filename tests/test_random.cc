// Unit and statistical property tests for util/random.h.
//
// Statistical assertions use generous tolerances (several standard errors)
// so they are deterministic for the fixed seeds used here.

#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256ssTest, IsDeterministic) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ssTest, JumpDecorrelatesStreams) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256ssTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256ss>);
  EXPECT_EQ(Xoshiro256ss::min(), 0u);
  EXPECT_EQ(Xoshiro256ss::max(), ~uint64_t{0});
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  // SE = 1/sqrt(12n) ~ 0.0009; allow 5 SE.
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit in 1000 draws
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(7);
  // Chi-square over 10 cells, 100k draws: expected 10k per cell.
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 9)];
  double chi2 = 0;
  for (int c : counts) {
    const double diff = c - n / 10.0;
    chi2 += diff * diff / (n / 10.0);
  }
  // 9 dof: P(chi2 > 27.9) ~ 0.001.
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(2024);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);  // SE ~ 0.0022, 9 SE slack
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, GaussianTailProbability) {
  Rng rng(77);
  const int n = 100000;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i) beyond2 += (std::abs(rng.Gaussian()) > 2.0);
  // P(|Z| > 2) = 0.0455.
  EXPECT_NEAR(beyond2 / static_cast<double>(n), 0.0455, 0.006);
}

TEST(RngTest, CauchyQuartilesAtPlusMinusOne) {
  // Cauchy has no mean; test the quartiles instead (exactly -1 and +1).
  Rng rng(31);
  const int n = 100001;
  std::vector<double> draws(n);
  for (int i = 0; i < n; ++i) draws[i] = rng.Cauchy();
  std::sort(draws.begin(), draws.end());
  EXPECT_NEAR(draws[n / 4], -1.0, 0.05);
  EXPECT_NEAR(draws[n / 2], 0.0, 0.03);
  EXPECT_NEAR(draws[3 * n / 4], 1.0, 0.05);
}

TEST(RngTest, CauchyLocationScale) {
  Rng rng(32);
  const int n = 100001;
  std::vector<double> draws(n);
  for (int i = 0; i < n; ++i) draws[i] = rng.Cauchy(4.0, 3.0);
  std::sort(draws.begin(), draws.end());
  EXPECT_NEAR(draws[n / 2], 4.0, 0.1);          // median = location
  EXPECT_NEAR(draws[3 * n / 4], 4.0 + 3.0, 0.2);  // Q3 = loc + scale
}

TEST(RngTest, GeometricHalfDistribution) {
  Rng rng(55);
  const int n = 1 << 20;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < n; ++i) {
    const uint32_t v = rng.GeometricHalf();
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 65u);
    if (v <= 9) ++counts[v];
  }
  for (int k = 1; k <= 6; ++k) {
    const double expected = n * std::pow(0.5, k);
    EXPECT_NEAR(counts[k] / expected, 1.0, 0.05) << "k=" << k;
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(4);
  const auto sample = rng.SampleWithoutReplacement(1000, 50);
  ASSERT_EQ(sample.size(), 50u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint32_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(4);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(4);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

// Determinism across Rng facade: same seed, same stream of mixed calls.
TEST(RngTest, FacadeIsDeterministic) {
  Rng a(999), b(999);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
    EXPECT_EQ(a.Gaussian(), b.Gaussian());
    EXPECT_EQ(a.Cauchy(), b.Cauchy());
    EXPECT_EQ(a.GeometricHalf(), b.GeometricHalf());
  }
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
  Rng rng(GetParam());
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST_P(RngSeedSweep, GaussianVarianceStableAcrossSeeds) {
  Rng rng(GetParam());
  const int n = 50000;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1234567, 0xdeadbeef,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace util
}  // namespace hybridlsh
