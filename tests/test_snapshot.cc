// Tests for the engine snapshot/restore subsystem (engine/snapshot.h,
// ShardedEngine::SaveSnapshot / OpenSnapshot, OpenSnapshotEngine).
//
// The round-trip criterion is strict, mirroring the index-serialization
// suite: a restored engine must answer every query with bit-identical
// result sets AND identical per-shard LSH-vs-linear decisions — it IS the
// saved engine, including tombstones, mid-ingest segments, the norm cache,
// and the calibrated cost model. Restores must evaluate zero hash
// functions, and no crash or corruption scenario may ever surface a wrong
// answer instead of a clean Status.

#include "engine/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"
#include "engine/search_engine.h"
#include "engine/sharded_engine.h"

namespace hybridlsh {
namespace engine {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("hybridlsh_snap_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  /// Strict equivalence over a query set: identical result sets (order
  /// included) and identical per-shard strategy decisions and estimates.
  template <typename EngineT, typename Queries>
  void ExpectIdenticalServing(EngineT& live, EngineT& restored,
                              const Queries& queries, double radius) {
    ASSERT_EQ(restored.num_shards(), live.num_shards());
    ASSERT_EQ(restored.size(), live.size());
    std::vector<uint32_t> out_a, out_b;
    ShardedQueryStats stats_a, stats_b;
    for (size_t q = 0; q < queries.size(); ++q) {
      out_a.clear();
      out_b.clear();
      live.Query(queries.point(q), radius, &out_a, &stats_a);
      restored.Query(queries.point(q), radius, &out_b, &stats_b);
      ASSERT_EQ(out_a, out_b) << "query " << q;
      ASSERT_EQ(stats_a.per_shard.size(), stats_b.per_shard.size());
      for (size_t s = 0; s < stats_a.per_shard.size(); ++s) {
        EXPECT_EQ(stats_a.per_shard[s].strategy, stats_b.per_shard[s].strategy)
            << "query " << q << " shard " << s;
        EXPECT_EQ(stats_a.per_shard[s].collisions,
                  stats_b.per_shard[s].collisions);
        EXPECT_DOUBLE_EQ(stats_a.per_shard[s].cand_estimate,
                         stats_b.per_shard[s].cand_estimate);
      }
      EXPECT_EQ(stats_a.lsh_shards, stats_b.lsh_shards) << "query " << q;
      EXPECT_EQ(stats_a.linear_shards, stats_b.linear_shards);
    }
  }

  size_t CountEpochDirs(const std::string& root) const {
    size_t count = 0;
    for (const auto& entry : fs::directory_iterator(root)) {
      if (entry.path().filename().string().rfind("snapshot-", 0) == 0) {
        ++count;
      }
    }
    return count;
  }

  fs::path root_;
};

// --- Dense / L2: the full churn round-trip ----------------------------------

using L2Engine = ShardedEngine<lsh::PStableFamily>;

constexpr size_t kDim = 16;
constexpr double kRadius = 0.4;

L2Engine::Options DenseOptions(size_t num_shards) {
  L2Engine::Options options;
  options.num_shards = num_shards;
  options.index.num_tables = 20;
  options.index.k = 7;
  options.index.seed = 43;
  options.active_seal_threshold = 64;  // small: force seals during churn
  options.searcher.cost_model = core::CostModel{1.25, 7.5};  // "calibrated"
  return options;
}

/// Builds a 3-shard L2 engine over `dataset` and churns it: extra points
/// inserted (spilling into active segments), every 7th id tombstoned.
L2Engine BuildChurnedDenseEngine(data::DenseDataset* dataset,
                                 const data::DenseDataset& extra) {
  auto engine =
      L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius), dataset,
                      DenseOptions(3));
  HLSH_CHECK(engine.ok());
  std::vector<float> staging(kDim);
  for (size_t i = 0; i < extra.size(); ++i) {
    staging.assign(extra.point(i), extra.point(i) + kDim);
    HLSH_CHECK(engine->Insert(staging.data()).ok());
  }
  for (uint32_t id = 0; id < dataset->size(); id += 7) {
    HLSH_CHECK(engine->Remove(id).ok());
  }
  return std::move(*engine);
}

TEST_F(SnapshotTest, DenseChurnRoundTripIsBitIdentical) {
  const data::DenseDataset full = data::MakeCorelLike(2501, kDim, 41);
  const data::DenseSplit split = data::SplitQueries(full, 25, 42);
  data::DenseDataset dataset = split.base;
  const data::DenseDataset extra = data::MakeCorelLike(300, kDim, 44);

  L2Engine live = BuildChurnedDenseEngine(&dataset, extra);
  const size_t live_size_before = live.size();
  ASSERT_TRUE(live.SaveSnapshot(Dir("snap")).ok());
  EXPECT_EQ(live.size(), live_size_before);  // sealing loses nothing

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectIdenticalServing(live, *restored, split.queries, kRadius);

  // The restored engine is mutable and routes inserts identically: feeding
  // both engines the same new point keeps them bit-identical.
  const data::DenseDataset more = data::MakeCorelLike(40, kDim, 45);
  std::vector<float> staging(kDim);
  for (size_t i = 0; i < more.size(); ++i) {
    staging.assign(more.point(i), more.point(i) + kDim);
    auto id_live = live.Insert(staging.data());
    auto id_restored = restored->Insert(staging.data());
    ASSERT_TRUE(id_live.ok());
    ASSERT_TRUE(id_restored.ok());
    EXPECT_EQ(*id_live, *id_restored);
  }
  ASSERT_TRUE(live.Remove(3).ok());
  ASSERT_TRUE(restored->Remove(3).ok());
  ExpectIdenticalServing(live, *restored, split.queries, kRadius);
}

TEST_F(SnapshotTest, RestoredOptionsCarryTheCostModelAndConfig) {
  const data::DenseDataset full = data::MakeCorelLike(600, kDim, 51);
  data::DenseDataset dataset = full;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, DenseOptions(2));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->options().searcher.cost_model.alpha, 1.25);
  EXPECT_DOUBLE_EQ(restored->options().searcher.cost_model.beta, 7.5);
  EXPECT_EQ(restored->options().index.num_tables, 20);
  EXPECT_EQ(restored->options().index.k, 7);
  EXPECT_EQ(restored->options().active_seal_threshold, 64u);
  EXPECT_EQ(restored->num_shards(), 2u);
  EXPECT_EQ(restored->num_threads(), live->num_threads());

  // Thread override: a snapshot from a big machine restores on one thread.
  data::DenseDataset small_dataset;
  snapshot::OpenOptions open_options;
  open_options.num_threads = 1;
  auto small = L2Engine::OpenSnapshot(Dir("snap"), &small_dataset,
                                      open_options);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->num_threads(), 1u);
}

TEST_F(SnapshotTest, RestoreEvaluatesZeroHashFunctions) {
  const data::DenseDataset full = data::MakeCorelLike(800, kDim, 46);
  data::DenseDataset dataset = full;
  const data::DenseDataset extra = data::MakeCorelLike(100, kDim, 47);
  L2Engine live = BuildChurnedDenseEngine(&dataset, extra);
  ASSERT_TRUE(live.SaveSnapshot(Dir("snap")).ok());

  lsh::SetHashEvalCounting(true);
  const uint64_t before = lsh::HashEvalCountForTest();
  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(lsh::HashEvalCountForTest(), before)
      << "restore must not evaluate hash functions";

  // Sanity: the counter does count — one query hashes L tables per shard.
  std::vector<uint32_t> out;
  restored->Query(restored_dataset.point(0), kRadius, &out);
  EXPECT_GT(lsh::HashEvalCountForTest(), before);
  lsh::SetHashEvalCounting(false);
}

TEST_F(SnapshotTest, CosineSnapshotKeepsTheNormCache) {
  data::DenseDataset dataset = data::MakeWebspamLike({.n = 700, .dim = 24,
                                                      .seed = 48});
  dataset.PrecomputeNorms();
  using CosineEngine = ShardedEngine<lsh::SimHashFamily>;
  CosineEngine::Options options;
  options.num_shards = 2;
  options.index.num_tables = 12;
  options.index.k = 10;
  options.index.seed = 5;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  auto live = CosineEngine::Build(lsh::SimHashFamily(24), &dataset, options);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  data::DenseDataset restored_dataset;
  auto restored = CosineEngine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  // The cache came back from disk — no PrecomputeNorms call happened here.
  ASSERT_TRUE(restored_dataset.has_norms());
  for (size_t i = 0; i < restored_dataset.size(); i += 97) {
    EXPECT_EQ(restored_dataset.norm(i), dataset.norm(i));
  }
  ExpectIdenticalServing(*live, *restored, dataset, 0.2);
}

// --- Binary / Hamming and sparse / Jaccard containers -----------------------

TEST_F(SnapshotTest, BinaryRoundTripWithTombstones) {
  using HammingEngine = ShardedEngine<lsh::BitSamplingFamily>;
  data::BinaryDataset dataset = data::MakeRandomCodes(900, 64, 61);
  HammingEngine::Options options;
  options.num_shards = 3;
  options.index.num_tables = 15;
  options.index.k = 9;
  options.index.seed = 62;
  options.searcher.cost_model = core::CostModel::FromRatio(1.0);
  auto live = HammingEngine::Build(lsh::BitSamplingFamily(64), &dataset,
                                   options);
  ASSERT_TRUE(live.ok());
  for (uint32_t id = 0; id < 900; id += 11) {
    ASSERT_TRUE(live->Remove(id).ok());
  }
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  data::BinaryDataset restored_dataset;
  auto restored = HammingEngine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored_dataset.width_bits(), 64u);
  ExpectIdenticalServing(*live, *restored, dataset, 14.0);
}

TEST_F(SnapshotTest, SparseRoundTripWithChurn) {
  using JaccardEngine = ShardedEngine<lsh::MinHashFamily>;
  data::SparseDataset dataset = data::MakeRandomSparse(700, 5000, 30, 81);
  const data::SparseDataset extra = data::MakeRandomSparse(150, 5000, 30, 82);
  JaccardEngine::Options options;
  options.num_shards = 2;
  options.index.num_tables = 10;
  options.index.k = 4;
  options.index.seed = 83;
  options.active_seal_threshold = 32;
  options.searcher.cost_model = core::CostModel::FromRatio(10.0);
  auto live = JaccardEngine::Build(lsh::MinHashFamily(), &dataset, options);
  ASSERT_TRUE(live.ok());
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(live->Insert(extra.point(i)).ok());
  }
  for (uint32_t id = 1; id < 700; id += 13) {
    ASSERT_TRUE(live->Remove(id).ok());
  }
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  data::SparseDataset restored_dataset;
  auto restored = JaccardEngine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectIdenticalServing(*live, *restored, dataset, 0.7);
}

// --- Crash safety and corruption --------------------------------------------

TEST_F(SnapshotTest, InterruptedNewerSnapshotNeverCorruptsThePrevious) {
  const data::DenseDataset full = data::MakeCorelLike(500, kDim, 71);
  data::DenseDataset dataset = full;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, DenseOptions(2));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  // A writer died mid-epoch: partial data files, truncated manifest, and a
  // stray CURRENT.tmp — everything short of the atomic CURRENT rename.
  const fs::path orphan = fs::path(Dir("snap")) / "snapshot-000099";
  fs::create_directories(orphan);
  std::ofstream(orphan / "functions.bin", std::ios::binary) << "partial";
  std::ofstream(orphan / "MANIFEST", std::ios::binary) << "trunc";
  std::ofstream(fs::path(Dir("snap")) / "CURRENT.tmp", std::ios::binary)
      << "snapshot-000099\n";

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectIdenticalServing(*live, *restored, dataset, kRadius);

  // The next successful snapshot garbage-collects the orphan.
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_EQ(CountEpochDirs(Dir("snap")), 1u);
}

TEST_F(SnapshotTest, SecondSnapshotSupersedesAndCollectsTheFirst) {
  const data::DenseDataset full = data::MakeCorelLike(700, kDim, 72);
  data::DenseDataset dataset = full;
  const data::DenseDataset extra = data::MakeCorelLike(120, kDim, 73);
  L2Engine live = BuildChurnedDenseEngine(&dataset, extra);
  ASSERT_TRUE(live.SaveSnapshot(Dir("snap")).ok());

  // Mutate, snapshot again: CURRENT moves, old epoch is GC'd.
  for (uint32_t id = 1; id < 100; id += 9) {
    ASSERT_TRUE(live.Remove(id).ok());
  }
  ASSERT_TRUE(live.SaveSnapshot(Dir("snap")).ok());
  EXPECT_EQ(CountEpochDirs(Dir("snap")), 1u);

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_TRUE(restored.ok());
  const data::DenseSplit split = data::SplitQueries(full, 20, 74);
  ExpectIdenticalServing(live, *restored, split.queries, kRadius);
}

TEST_F(SnapshotTest, CorruptionInAnyFileIsRejectedCleanly) {
  const data::DenseDataset full = data::MakeCorelLike(400, kDim, 75);
  const std::vector<std::string> files = {
      snapshot::kManifestFile, snapshot::kFunctionsFile,
      snapshot::kDatasetFile, snapshot::kTombstonesFile,
      snapshot::ShardFileName(0), snapshot::ShardFileName(1)};
  for (const std::string& victim : files) {
    data::DenseDataset dataset = full;
    auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                                &dataset, DenseOptions(2));
    ASSERT_TRUE(live.ok());
    const std::string root = Dir("snap_" + victim);
    ASSERT_TRUE(live->SaveSnapshot(root).ok());

    // Locate the single epoch dir and flip one byte mid-file.
    fs::path epoch;
    for (const auto& entry : fs::directory_iterator(root)) {
      if (entry.is_directory()) epoch = entry.path();
    }
    ASSERT_FALSE(epoch.empty());
    const fs::path target = epoch / victim;
    ASSERT_TRUE(fs::exists(target)) << victim;
    {
      std::fstream file(target, std::ios::binary | std::ios::in |
                                    std::ios::out);
      file.seekg(0, std::ios::end);
      const std::streamoff size = static_cast<std::streamoff>(file.tellg());
      ASSERT_GT(size, 16);
      char byte = 0;
      file.seekg(size / 2);
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x5a);
      file.seekp(size / 2);
      file.write(&byte, 1);
    }

    data::DenseDataset restored_dataset;
    auto restored = L2Engine::OpenSnapshot(root, &restored_dataset);
    ASSERT_FALSE(restored.ok()) << victim << " corruption parsed";
    EXPECT_EQ(restored.status().code(), util::StatusCode::kDataLoss)
        << victim << ": " << restored.status().ToString();
  }
}

TEST_F(SnapshotTest, TruncatedShardFileIsRejected) {
  const data::DenseDataset full = data::MakeCorelLike(400, kDim, 76);
  data::DenseDataset dataset = full;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, DenseOptions(2));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());
  fs::path epoch;
  for (const auto& entry : fs::directory_iterator(Dir("snap"))) {
    if (entry.is_directory()) epoch = entry.path();
  }
  const fs::path shard = epoch / snapshot::ShardFileName(1);
  fs::resize_file(shard, fs::file_size(shard) / 2);

  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), util::StatusCode::kDataLoss);
}

TEST_F(SnapshotTest, MissingSnapshotIsNotFound) {
  data::DenseDataset restored_dataset;
  auto restored = L2Engine::OpenSnapshot(Dir("nothing"), &restored_dataset);
  EXPECT_EQ(restored.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SnapshotTest, WrongFamilyIsInvalidArgument) {
  const data::DenseDataset full = data::MakeCorelLike(300, kDim, 77);
  data::DenseDataset dataset = full;
  auto live = L2Engine::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                              &dataset, DenseOptions(1));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->SaveSnapshot(Dir("snap")).ok());

  data::DenseDataset restored_dataset;
  auto wrong = ShardedEngine<lsh::SimHashFamily>::OpenSnapshot(
      Dir("snap"), &restored_dataset);
  EXPECT_EQ(wrong.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, MmapLoadServesIdentically) {
  const data::DenseDataset full = data::MakeCorelLike(900, kDim, 78);
  data::DenseDataset dataset = full;
  const data::DenseDataset extra = data::MakeCorelLike(90, kDim, 79);
  L2Engine live = BuildChurnedDenseEngine(&dataset, extra);
  ASSERT_TRUE(live.SaveSnapshot(Dir("snap")).ok());

  snapshot::OpenOptions open_options;
  open_options.use_mmap = true;
  data::DenseDataset restored_dataset;
  auto restored =
      L2Engine::OpenSnapshot(Dir("snap"), &restored_dataset, open_options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const data::DenseSplit split = data::SplitQueries(full, 20, 80);
  ExpectIdenticalServing(live, *restored, split.queries, kRadius);
}

// --- The type-erased facade --------------------------------------------------

TEST_F(SnapshotTest, FacadeRoundTripRestoresTheRightTypedEngine) {
  data::DenseDataset dataset =
      data::MakeWebspamLike({.n = 900, .dim = 24, .seed = 91});
  dataset.PrecomputeNorms();
  EngineOptions options;
  options.num_shards = 2;
  options.num_tables = 12;
  options.k = 10;
  options.seed = 92;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  auto live = BuildMutableEngine(data::Metric::kCosine, &dataset, options);
  ASSERT_TRUE(live.ok());
  for (uint32_t id = 0; id < 200; id += 17) {
    ASSERT_TRUE((*live)->Remove(id).ok());
  }
  ASSERT_TRUE((*live)->SaveSnapshot(Dir("snap")).ok());

  auto restored = OpenSnapshotEngine(Dir("snap"));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->metric(), data::Metric::kCosine);
  EXPECT_EQ((*restored)->family_tag(), lsh::SimHashFamily::kFamilyTag);
  EXPECT_EQ((*restored)->size(), (*live)->size());
  EXPECT_EQ((*restored)->num_shards(), 2u);

  const double radius = 0.2;
  std::vector<uint32_t> out_a, out_b;
  for (size_t q = 0; q < 40; ++q) {
    out_a.clear();
    out_b.clear();
    ASSERT_TRUE((*live)->Query(dataset.point(q * 20), radius, &out_a).ok());
    ASSERT_TRUE(
        (*restored)->Query(dataset.point(q * 20), radius, &out_b).ok());
    EXPECT_EQ(out_a, out_b) << "query " << q;
  }

  // The restored facade owns its dataset and stays fully mutable.
  std::vector<float> point(24, 0.125f);
  auto id = (*restored)->Insert(point.data());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, dataset.size());
  ASSERT_TRUE((*restored)->Remove(*id).ok());
  ASSERT_TRUE((*restored)->Compact().ok());

  // And it snapshots again through the facade.
  ASSERT_TRUE((*restored)->SaveSnapshot(Dir("snap2")).ok());
  auto again = OpenSnapshotEngine(Dir("snap2"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), (*restored)->size());
}

TEST_F(SnapshotTest, FacadeDispatchesEveryMetric) {
  // One engine per metric family; each snapshot must restore through the
  // facade to an engine of the right metric that answers a self-query.
  EngineOptions options;
  options.num_shards = 2;
  options.num_tables = 8;
  options.k = 6;
  options.seed = 7;

  {
    data::BinaryDataset codes = data::MakeRandomCodes(400, 64, 93);
    auto live = BuildMutableEngine(data::Metric::kHamming, &codes, options);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->SaveSnapshot(Dir("ham")).ok());
    auto restored = OpenSnapshotEngine(Dir("ham"));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ((*restored)->metric(), data::Metric::kHamming);
    std::vector<uint32_t> out;
    ASSERT_TRUE((*restored)->Query(codes.point(5), 10.0, &out).ok());
    EXPECT_TRUE(std::find(out.begin(), out.end(), 5u) != out.end());
  }
  {
    data::SparseDataset sparse = data::MakeRandomSparse(400, 4000, 25, 94);
    options.k = 4;
    auto live = BuildMutableEngine(data::Metric::kJaccard, &sparse, options);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->SaveSnapshot(Dir("jac")).ok());
    auto restored = OpenSnapshotEngine(Dir("jac"));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ((*restored)->metric(), data::Metric::kJaccard);
    std::vector<uint32_t> out;
    ASSERT_TRUE((*restored)->Query(sparse.point(7), 0.7, &out).ok());
    EXPECT_TRUE(std::find(out.begin(), out.end(), 7u) != out.end());
  }
  {
    const data::DenseDataset dense = data::MakeCorelLike(400, kDim, 95);
    EngineOptions l2_options = options;
    l2_options.k = 7;
    l2_options.pstable_w = 2 * kRadius;
    auto live = BuildEngine(data::Metric::kL2, &dense, l2_options);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->SaveSnapshot(Dir("l2")).ok());
    auto restored = OpenSnapshotEngine(Dir("l2"));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ((*restored)->metric(), data::Metric::kL2);
    std::vector<uint32_t> out;
    ASSERT_TRUE((*restored)->Query(dense.point(3), kRadius, &out).ok());
    EXPECT_TRUE(std::find(out.begin(), out.end(), 3u) != out.end());
  }
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
