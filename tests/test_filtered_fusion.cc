// Property suite for the composable query pipeline: pushed-down predicate
// filters and multi-subquery fusion.
//
// The load-bearing property: a filtered query is BIT-IDENTICAL to running
// the same query unfiltered and post-filtering its results — same ids, same
// order — across the static searcher, the segmented searcher, and the
// sharded engine, through churn (inserts + removes + compaction) and under
// concurrent readers. Bit-identity is asserted under the forced strategies
// (kAlwaysLsh / kAlwaysLinear), where both runs walk identical candidate
// sets; auto mode is bracketed between them, exactly like the engine's
// existing equivalence tests. Fusion tests pin the deterministic RRF /
// LINEAR merge: the engine's fused output must equal what a caller gets by
// composing single-subquery results and FuseScoredLists by hand.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_query.h"
#include "core/fusion.h"
#include "core/hybridlsh.h"
#include "data/attributes.h"
#include "engine/query_pipeline.h"
#include "engine/search_engine.h"
#include "engine/sharded_engine.h"

namespace hybridlsh {
namespace engine {
namespace {

constexpr size_t kDim = 16;
constexpr double kRadius = 0.4;
constexpr size_t kCategories = 8;

uint32_t CategoryOf(size_t id) {
  return static_cast<uint32_t>((id * 2654435761u) >> 16) % kCategories;
}
uint32_t ScoreOf(size_t id) { return static_cast<uint32_t>((id * 97) % 1000); }

/// Fills *store (fresh, not movable: it holds an atomic row count) with a
/// "category" and a "score" column, rows for ids [0, n).
void FillAttributes(data::AttributeStore* store, size_t n) {
  store->AddColumn("category");
  store->AddColumn("score");
  for (size_t id = 0; id < n; ++id) {
    const uint32_t row[2] = {CategoryOf(id), ScoreOf(id)};
    store->AppendRow(row);
  }
}

void AppendRowFor(data::AttributeStore* store, size_t id) {
  const uint32_t row[2] = {CategoryOf(id), ScoreOf(id)};
  store->AppendRow(row);
}

/// The reference semantics: keep ids whose predicate bit is set.
std::vector<uint32_t> PostFilter(const std::vector<uint32_t>& ids,
                                 const util::BitVector& filter) {
  std::vector<uint32_t> kept;
  for (const uint32_t id : ids) {
    if (id < filter.size() && filter.Get(id)) kept.push_back(id);
  }
  return kept;
}

std::vector<uint32_t> Sorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

class FilteredFusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const data::DenseDataset full = data::MakeCorelLike(3001, kDim, 51);
    const data::DenseSplit split = data::SplitQueries(full, 15, 52);
    dataset_ = split.base;
    queries_ = split.queries;
    FillAttributes(&attributes_, dataset_.size());

    index_options_.num_tables = 25;
    index_options_.k = 7;
    index_options_.seed = 53;
    searcher_options_.cost_model = core::CostModel::FromRatio(6.0);
  }

  static lsh::PStableFamily Family() {
    return lsh::PStableFamily::L2(kDim, 2 * kRadius);
  }

  using Engine = ShardedEngine<lsh::PStableFamily>;

  Engine::Options ShardOptions(
      size_t num_shards,
      core::ForcedStrategy forced = core::ForcedStrategy::kAuto) const {
    Engine::Options options;
    options.num_shards = num_shards;
    options.index = index_options_;
    options.searcher = searcher_options_;
    options.searcher.forced = forced;
    return options;
  }

  Engine MakeEngine(size_t num_shards,
                    core::ForcedStrategy forced = core::ForcedStrategy::kAuto) {
    auto engine =
        Engine::Build(Family(), dataset_, ShardOptions(num_shards, forced));
    HLSH_CHECK(engine.ok());
    engine->AttachAttributes(&attributes_);
    return std::move(*engine);
  }

  /// Predicate bits only (the post-filter reference never composes
  /// tombstones: query results are live by construction).
  util::BitVector PredicateBits(const data::Predicate& pred,
                                size_t id_limit) const {
    util::BitVector bits;
    data::EvaluateFilter(attributes_, pred, id_limit, &bits);
    return bits;
  }

  double ScalarL2(const float* a, const float* b) const {
    return data::L2Distance(a, b, kDim);
  }

  data::DenseDataset dataset_;
  data::DenseDataset queries_;
  data::AttributeStore attributes_;
  L2Index::Options index_options_;
  core::SearcherOptions searcher_options_;
};

// --- Filter evaluation. -----------------------------------------------------

TEST_F(FilteredFusionTest, EvaluateFilterMatchesRowwiseReference) {
  data::Predicate pred = data::Predicate::Equals(0, 3);
  pred.And({1, 100, 700});
  // id_limit past the store's rows: the overhang must stay clear.
  const size_t id_limit = dataset_.size() + 77;
  util::BitVector bits;
  data::EvaluateFilter(attributes_, pred, id_limit, &bits);
  ASSERT_EQ(bits.size(), id_limit);
  for (size_t id = 0; id < id_limit; ++id) {
    EXPECT_EQ(bits.Get(id), pred.Matches(attributes_, id)) << "id " << id;
  }
  // Empty conjunction: every visible row passes, overhang fails.
  util::BitVector all;
  data::EvaluateFilter(attributes_, data::Predicate{}, id_limit, &all);
  EXPECT_EQ(all.Count(), attributes_.size());
}

// --- Pushdown bit-identity: static searcher. --------------------------------

TEST_F(FilteredFusionTest, StaticSearcherPushdownBitIdentical) {
  auto index = L2Index::Build(Family(), dataset_, index_options_);
  ASSERT_TRUE(index.ok());
  const data::Predicate pred = data::Predicate::Equals(0, 2);
  const util::BitVector filter = PredicateBits(pred, dataset_.size());

  for (const auto forced :
       {core::ForcedStrategy::kAlwaysLsh, core::ForcedStrategy::kAlwaysLinear}) {
    core::SearcherOptions options = searcher_options_;
    options.forced = forced;
    L2Searcher searcher(&*index, &dataset_, options);
    std::vector<uint32_t> unfiltered, pushed;
    for (size_t q = 0; q < queries_.size(); ++q) {
      unfiltered.clear();
      pushed.clear();
      searcher.Query(queries_.point(q), kRadius, &unfiltered);
      core::QueryStats stats;
      searcher.QueryFiltered(queries_.point(q), kRadius, &filter, &pushed,
                             &stats);
      EXPECT_EQ(pushed, PostFilter(unfiltered, filter))
          << "forced=" << static_cast<int>(forced) << " query=" << q;
    }
  }
}

TEST_F(FilteredFusionTest, StaticSearcherAutoBracketsForcedStrategies) {
  auto index = L2Index::Build(Family(), dataset_, index_options_);
  ASSERT_TRUE(index.ok());
  const data::Predicate pred = data::Predicate::Equals(0, 5);
  const util::BitVector filter = PredicateBits(pred, dataset_.size());

  auto run = [&](core::ForcedStrategy forced, size_t q) {
    core::SearcherOptions options = searcher_options_;
    options.forced = forced;
    L2Searcher searcher(&*index, &dataset_, options);
    std::vector<uint32_t> out;
    searcher.QueryFiltered(queries_.point(q), kRadius, &filter, &out);
    return Sorted(std::move(out));
  };
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto lsh = run(core::ForcedStrategy::kAlwaysLsh, q);
    const auto linear = run(core::ForcedStrategy::kAlwaysLinear, q);
    const auto aut = run(core::ForcedStrategy::kAuto, q);
    // Linear is exact; LSH may miss. Auto picks one of the two.
    EXPECT_TRUE(aut == lsh || aut == linear) << "query=" << q;
    EXPECT_TRUE(std::includes(linear.begin(), linear.end(), lsh.begin(),
                              lsh.end()))
        << "query=" << q;
  }
}

// --- Pushdown bit-identity: sharded engine. ---------------------------------

TEST_F(FilteredFusionTest, ShardedEnginePushdownBitIdentical) {
  const data::Predicate pred = data::Predicate::Equals(0, 1);
  for (size_t num_shards : {1u, 3u, 8u}) {
    for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                              core::ForcedStrategy::kAlwaysLinear}) {
      auto engine = MakeEngine(num_shards, forced);
      const util::BitVector filter = PredicateBits(pred, dataset_.size());
      QuerySpec spec = QuerySpec::Radius(kRadius);
      spec.predicate = &pred;
      auto scratch = engine.MakeQueryScratch();
      std::vector<uint32_t> unfiltered, pushed, pushed_concurrent;
      for (size_t q = 0; q < queries_.size(); ++q) {
        unfiltered.clear();
        pushed.clear();
        pushed_concurrent.clear();
        engine.Query(queries_.point(q), kRadius, &unfiltered);
        ShardedQueryStats stats;
        ASSERT_TRUE(
            engine.Query(queries_.point(q), spec, &pushed, &stats).ok());
        ASSERT_TRUE(engine
                        .QueryConcurrent(queries_.point(q), spec,
                                         &pushed_concurrent, &scratch)
                        .ok());
        const auto expected = PostFilter(unfiltered, filter);
        EXPECT_EQ(pushed, expected)
            << "shards=" << num_shards << " forced=" << static_cast<int>(forced)
            << " query=" << q;
        EXPECT_EQ(pushed_concurrent, expected);
        EXPECT_TRUE(stats.filtered);
        EXPECT_EQ(stats.filter_survivors,
                  filter.Count());  // no tombstones yet: composition is a no-op
      }
    }
  }
}

TEST_F(FilteredFusionTest, ShardedEngineChurnPushdownStaysExact) {
  data::DenseDataset mutable_dataset = dataset_;
  const data::DenseDataset extra = data::MakeCorelLike(400, kDim, 99);
  for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                            core::ForcedStrategy::kAlwaysLinear}) {
    data::DenseDataset working = mutable_dataset;
    data::AttributeStore attributes;
    FillAttributes(&attributes, working.size());
    auto built = Engine::Build(Family(), &working, ShardOptions(3, forced));
    ASSERT_TRUE(built.ok());
    Engine engine = std::move(*built);
    engine.AttachAttributes(&attributes);

    // Churn: append 400 points (attribute rows in lockstep), remove every
    // 7th original id and every 5th inserted one, then quiesce.
    for (size_t i = 0; i < extra.size(); ++i) {
      auto id = engine.Insert(extra.point(i));
      ASSERT_TRUE(id.ok());
      AppendRowFor(&attributes, *id);
    }
    for (size_t id = 0; id < dataset_.size(); id += 7) {
      ASSERT_TRUE(engine.Remove(static_cast<uint32_t>(id)).ok());
    }
    for (size_t i = 0; i < extra.size(); i += 5) {
      ASSERT_TRUE(
          engine.Remove(static_cast<uint32_t>(dataset_.size() + i)).ok());
    }
    engine.DrainMaintenance();
    engine.CompactAll();

    const data::Predicate pred = data::Predicate::Between(1, 0, 499);
    util::BitVector filter;
    data::EvaluateFilter(attributes, pred, working.size(), &filter);
    QuerySpec spec = QuerySpec::Radius(kRadius);
    spec.predicate = &pred;
    std::vector<uint32_t> unfiltered, pushed;
    for (size_t q = 0; q < queries_.size(); ++q) {
      unfiltered.clear();
      pushed.clear();
      engine.Query(queries_.point(q), kRadius, &unfiltered);
      ASSERT_TRUE(engine.Query(queries_.point(q), spec, &pushed).ok());
      EXPECT_EQ(pushed, PostFilter(unfiltered, filter))
          << "forced=" << static_cast<int>(forced) << " query=" << q;
    }
  }
}

TEST_F(FilteredFusionTest, ConcurrentFilteredQueriesStaySound) {
  data::DenseDataset working = dataset_;
  data::AttributeStore attributes;
  FillAttributes(&attributes, working.size());
  auto built = Engine::Build(Family(), &working, ShardOptions(4));
  ASSERT_TRUE(built.ok());
  Engine engine = std::move(*built);
  engine.AttachAttributes(&attributes);

  const data::DenseDataset extra = data::MakeCorelLike(2000, kDim, 100);
  const data::Predicate pred = data::Predicate::Equals(0, 4);
  std::atomic<bool> stop{false};

  // Writer: inserts (attribute rows in lockstep, same writer thread) and
  // removes, racing the readers below.
  std::thread writer([&] {
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed) && next < extra.size()) {
      auto id = engine.Insert(extra.point(next));
      ASSERT_TRUE(id.ok());
      AppendRowFor(&attributes, *id);
      if (next % 3 == 0) {
        ASSERT_TRUE(engine.Remove(static_cast<uint32_t>(next)).ok());
      }
      ++next;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto scratch = engine.MakeQueryScratch();
      QuerySpec spec = QuerySpec::Radius(kRadius);
      spec.predicate = &pred;
      std::vector<uint32_t> out;
      std::vector<core::FusedHit> fused_out;
      for (int iter = 0; iter < 60; ++iter) {
        const size_t q = (static_cast<size_t>(r) + iter) % queries_.size();
        out.clear();
        ASSERT_TRUE(
            engine.QueryConcurrent(queries_.point(q), spec, &out, &scratch)
                .ok());
        for (const uint32_t id : out) {
          // Soundness under churn: every reported id was visible, passes
          // the predicate, and is a true rNNR hit (rows are immutable
          // once appended, so these checks cannot race the writer).
          ASSERT_LT(id, working.size());
          EXPECT_EQ(CategoryOf(id), 4u);
          EXPECT_LE(data::L2Distance(queries_.point(q), working.point(id),
                                     kDim),
                    kRadius + 1e-6);
        }
        if (iter % 16 == 0) {
          QuerySpec fused = spec;
          fused.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
          fused.subqueries.push_back({kRadius * 1.5, 0.5, std::nullopt, false});
          fused_out.clear();
          ASSERT_TRUE(engine
                          .QueryFusedConcurrent(queries_.point(q), fused,
                                                &fused_out, &scratch)
                          .ok());
          for (const core::FusedHit& hit : fused_out) {
            ASSERT_LT(hit.id, working.size());
            EXPECT_EQ(CategoryOf(hit.id), 4u);
            EXPECT_GT(hit.score, 0.0);
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
}

// --- Selectivity edge cases. ------------------------------------------------

TEST_F(FilteredFusionTest, EmptySelectivityReturnsNothing) {
  auto engine = MakeEngine(3);
  data::Predicate pred = data::Predicate::Equals(0, 2);
  pred.And({0, 3, 3});  // category 2 AND 3: contradiction
  QuerySpec spec = QuerySpec::Radius(kRadius);
  spec.predicate = &pred;
  std::vector<uint32_t> out;
  ShardedQueryStats stats;
  ASSERT_TRUE(engine.Query(queries_.point(0), spec, &out, &stats).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(stats.filtered);
  EXPECT_EQ(stats.filter_survivors, 0u);
  EXPECT_EQ(stats.filter_selectivity, 0.0);
  // Zero survivors price the linear side at 0: every shard should scan.
  EXPECT_EQ(stats.linear_shards, engine.num_shards());
}

TEST_F(FilteredFusionTest, TotalSelectivityMatchesUnfiltered) {
  const data::Predicate pred = data::Predicate::Between(1, 0, 999);  // all
  for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                            core::ForcedStrategy::kAlwaysLinear}) {
    auto engine = MakeEngine(3, forced);
    QuerySpec spec = QuerySpec::Radius(kRadius);
    spec.predicate = &pred;
    std::vector<uint32_t> unfiltered, pushed;
    for (size_t q = 0; q < queries_.size(); ++q) {
      unfiltered.clear();
      pushed.clear();
      engine.Query(queries_.point(q), kRadius, &unfiltered);
      ShardedQueryStats stats;
      ASSERT_TRUE(engine.Query(queries_.point(q), spec, &pushed, &stats).ok());
      EXPECT_EQ(pushed, unfiltered);
      EXPECT_DOUBLE_EQ(stats.filter_selectivity, 1.0);
    }
  }
}

// --- Deterministic fusion: core merge. --------------------------------------

TEST_F(FilteredFusionTest, RrfMergeHandComputedAndStable) {
  std::vector<core::ScoredList> lists(2);
  lists[0].weight = 1.0;
  lists[0].ids = {10, 20, 30};
  lists[0].distances = {0.1, 0.2, 0.3};
  lists[1].weight = 2.0;
  lists[1].ids = {20, 40};
  lists[1].distances = {0.05, 0.05};  // tie: rank by id, 20 before 40
  core::FusionOptions options;  // RRF, k = 60
  std::vector<core::FusedHit> out;
  ASSERT_TRUE(core::FuseScoredLists(lists, options, nullptr, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  const double k = options.rrf_k;
  // id 20: rank 2 in list 0, rank 1 in list 1 (tie broken by id).
  EXPECT_EQ(out[0].id, 20u);
  EXPECT_DOUBLE_EQ(out[0].score, 1.0 / (k + 2) + 2.0 / (k + 1));
  EXPECT_EQ(out[1].id, 40u);
  EXPECT_DOUBLE_EQ(out[1].score, 2.0 / (k + 2));
  EXPECT_EQ(out[2].id, 10u);
  EXPECT_DOUBLE_EQ(out[2].score, 1.0 / (k + 1));
  EXPECT_EQ(out[3].id, 30u);
  EXPECT_DOUBLE_EQ(out[3].score, 1.0 / (k + 3));

  // Duplicate id within one list: rejected, not silently double-counted.
  lists[1].ids = {40, 40};
  EXPECT_EQ(core::FuseScoredLists(lists, options, nullptr, &out).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(FilteredFusionTest, LinearMergeHandComputedWithStableTieBreak) {
  std::vector<core::ScoredList> lists(2);
  lists[0].weight = 1.0;
  lists[0].ids = {7, 3};
  lists[0].distances = {1.0, 3.0};
  lists[1].weight = 1.0;
  lists[1].ids = {3};
  lists[1].distances = {3.0};
  core::FusionOptions options;
  options.mode = core::FusionMode::kLinear;
  std::vector<core::FusedHit> out;
  ASSERT_TRUE(core::FuseScoredLists(lists, options, nullptr, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  // id 3: 1/(1+3) + 1/(1+3) = 0.5 == id 7's 1/(1+1) = 0.5 -> tie broken
  // ascending by id.
  EXPECT_DOUBLE_EQ(out[0].score, out[1].score);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_EQ(out[1].id, 7u);
}

// --- Deterministic fusion: engine path == hand-composed. --------------------

TEST_F(FilteredFusionTest, EngineFusedTwoRadiiEqualsHandComposition) {
  auto engine = MakeEngine(3);
  const data::Predicate pred = data::Predicate::Between(1, 0, 599);
  const double radii[2] = {kRadius, kRadius * 1.5};
  const double weights[2] = {1.0, 0.5};

  QuerySpec fused;
  fused.predicate = &pred;
  for (int j = 0; j < 2; ++j) {
    fused.subqueries.push_back({radii[j], weights[j], std::nullopt, false});
  }

  for (size_t q = 0; q < queries_.size(); ++q) {
    // Hand composition: one single-subquery spec per clause, scalar L2
    // distances, FuseScoredLists.
    std::vector<core::ScoredList> lists(2);
    for (int j = 0; j < 2; ++j) {
      QuerySpec single = QuerySpec::Radius(radii[j]);
      single.predicate = &pred;
      lists[j].weight = weights[j];
      ASSERT_TRUE(engine.Query(queries_.point(q), single, &lists[j].ids).ok());
      for (const uint32_t id : lists[j].ids) {
        lists[j].distances.push_back(
            ScalarL2(queries_.point(q), dataset_.point(id)));
      }
    }
    std::vector<core::FusedHit> expected;
    ASSERT_TRUE(
        core::FuseScoredLists(lists, fused.fusion, nullptr, &expected).ok());

    std::vector<core::FusedHit> got, again;
    ShardedQueryStats stats;
    ASSERT_TRUE(engine.QueryFused(queries_.point(q), fused, &got, &stats).ok());
    ASSERT_TRUE(engine.QueryFused(queries_.point(q), fused, &again).ok());
    ASSERT_EQ(got.size(), expected.size()) << "query=" << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "query=" << q << " pos=" << i;
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
      // Determinism: the same spec twice is bit-identical.
      EXPECT_EQ(got[i].id, again[i].id);
      EXPECT_EQ(got[i].score, again[i].score);
    }
    EXPECT_EQ(stats.fusion_subqueries, 2u);
  }
}

TEST_F(FilteredFusionTest, EngineFusedMetricOverrideScansExactly) {
  auto engine = MakeEngine(2);
  const double cosine_radius = 0.15;
  QuerySpec fused;
  fused.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
  fused.subqueries.push_back(
      {cosine_radius, 1.0, data::Metric::kCosine, false});

  const float* query = queries_.point(0);
  std::vector<core::FusedHit> got;
  ASSERT_TRUE(engine.QueryFused(query, fused, &got).ok());

  // Hand composition: clause 0 is the engine's own L2 result; clause 1 is
  // an exact cosine scan of every id.
  std::vector<core::ScoredList> lists(2);
  lists[0].weight = 1.0;
  engine.Query(query, kRadius, &lists[0].ids);
  for (const uint32_t id : lists[0].ids) {
    lists[0].distances.push_back(ScalarL2(query, dataset_.point(id)));
  }
  lists[1].weight = 1.0;
  for (uint32_t id = 0; id < dataset_.size(); ++id) {
    const double d = data::CosineDistance(query, dataset_.point(id), kDim);
    if (d <= cosine_radius) {
      lists[1].ids.push_back(id);
      lists[1].distances.push_back(d);
    }
  }
  std::vector<core::FusedHit> expected;
  ASSERT_TRUE(
      core::FuseScoredLists(lists, fused.fusion, nullptr, &expected).ok());
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << "pos=" << i;
    EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
  }
}

TEST_F(FilteredFusionTest, EngineFusedAttributeOnlyClause) {
  auto engine = MakeEngine(3);
  const data::Predicate pred = data::Predicate::Equals(0, 6);
  QuerySpec fused;
  fused.predicate = &pred;
  fused.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
  fused.subqueries.push_back({0.0, 0.25, std::nullopt, true});

  const float* query = queries_.point(1);
  std::vector<core::FusedHit> got;
  ASSERT_TRUE(engine.QueryFused(query, fused, &got).ok());
  ASSERT_FALSE(got.empty());

  const util::BitVector filter = PredicateBits(pred, dataset_.size());
  std::vector<core::ScoredList> lists(2);
  lists[0].weight = 1.0;
  QuerySpec single = QuerySpec::Radius(kRadius);
  single.predicate = &pred;
  ASSERT_TRUE(engine.Query(query, single, &lists[0].ids).ok());
  for (const uint32_t id : lists[0].ids) {
    lists[0].distances.push_back(ScalarL2(query, dataset_.point(id)));
  }
  lists[1].weight = 0.25;
  filter.ForEachSetBitInRange(0, filter.size(), [&](size_t id) {
    lists[1].ids.push_back(static_cast<uint32_t>(id));
    lists[1].distances.push_back(0.0);
  });
  std::vector<core::FusedHit> expected;
  ASSERT_TRUE(
      core::FuseScoredLists(lists, fused.fusion, nullptr, &expected).ok());
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << "pos=" << i;
    EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
  }
}

// --- Spec validation. -------------------------------------------------------

TEST_F(FilteredFusionTest, SpecValidationRejectsBadSpecs) {
  auto engine = MakeEngine(2);
  const data::Predicate pred = data::Predicate::Equals(0, 1);
  std::vector<uint32_t> out;
  std::vector<core::FusedHit> fused_out;

  // Fused spec through the id-list entry point.
  QuerySpec fused = QuerySpec::Radius(kRadius);
  fused.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
  EXPECT_EQ(engine.Query(queries_.point(0), fused, &out).code(),
            util::StatusCode::kInvalidArgument);
  // Non-fused spec through QueryFused.
  EXPECT_EQ(
      engine.QueryFused(queries_.point(0), QuerySpec::Radius(kRadius),
                        &fused_out)
          .code(),
      util::StatusCode::kInvalidArgument);
  // attribute_only without a predicate.
  QuerySpec attr_only;
  attr_only.subqueries.push_back({0.0, 1.0, std::nullopt, true});
  attr_only.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
  EXPECT_EQ(engine.QueryFused(queries_.point(0), attr_only, &fused_out).code(),
            util::StatusCode::kInvalidArgument);
  // Predicate without an attached store.
  engine.AttachAttributes(nullptr);
  QuerySpec filtered = QuerySpec::Radius(kRadius);
  filtered.predicate = &pred;
  EXPECT_EQ(engine.Query(queries_.point(0), filtered, &out).code(),
            util::StatusCode::kFailedPrecondition);
}

// --- Batch paths. -----------------------------------------------------------

TEST_F(FilteredFusionTest, EngineBatchSharesOneFilter) {
  auto engine = MakeEngine(3);
  const data::Predicate pred = data::Predicate::Equals(0, 3);
  QuerySpec spec = QuerySpec::Radius(kRadius);
  spec.predicate = &pred;
  auto batch = engine.QueryBatch(queries_, spec);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries_.size());
  std::vector<uint32_t> single;
  for (size_t q = 0; q < queries_.size(); ++q) {
    single.clear();
    ASSERT_TRUE(engine.Query(queries_.point(q), spec, &single).ok());
    EXPECT_EQ((*batch)[q].neighbors, single) << "query=" << q;
    EXPECT_TRUE((*batch)[q].stats.filtered);
    EXPECT_EQ((*batch)[q].stats.filter_seconds, 0.0);  // prebuilt + shared
  }
}

TEST_F(FilteredFusionTest, BatchRunnerFilteredMatchesSearcher) {
  auto index = L2Index::Build(Family(), dataset_, index_options_);
  ASSERT_TRUE(index.ok());
  const data::Predicate pred = data::Predicate::Equals(0, 2);
  const util::BitVector filter = PredicateBits(pred, dataset_.size());
  util::ThreadPool pool(3);
  core::BatchRunner<L2Index, data::DenseDataset> runner(
      &*index, &dataset_, searcher_options_, &pool);
  const auto results = runner.RunFiltered(queries_, kRadius, &filter);
  ASSERT_EQ(results.size(), queries_.size());
  L2Searcher searcher(&*index, &dataset_, searcher_options_);
  std::vector<uint32_t> expected;
  for (size_t q = 0; q < queries_.size(); ++q) {
    expected.clear();
    searcher.QueryFiltered(queries_.point(q), kRadius, &filter, &expected);
    EXPECT_EQ(results[q].neighbors, expected) << "query=" << q;
  }
}

// --- Facade. ----------------------------------------------------------------

TEST_F(FilteredFusionTest, FacadeSpecQueriesRouteAndValidate) {
  EngineOptions facade_options;
  facade_options.num_shards = 2;
  facade_options.num_tables = index_options_.num_tables;
  facade_options.k = index_options_.k;
  facade_options.seed = index_options_.seed;
  facade_options.radius = kRadius;
  facade_options.searcher = searcher_options_;
  // Pin one strategy: bit-identity is only defined strategy-for-strategy
  // (auto mode may legitimately flip to the filtered linear scan).
  facade_options.searcher.forced = core::ForcedStrategy::kAlwaysLinear;
  auto built =
      BuildEngine(data::Metric::kL2, AnyDataset{&dataset_}, facade_options);
  ASSERT_TRUE(built.ok());
  SearchEngine& facade = **built;
  ASSERT_TRUE(facade.AttachAttributes(&attributes_).ok());

  const data::Predicate pred = data::Predicate::Equals(0, 2);
  const util::BitVector filter = PredicateBits(pred, dataset_.size());
  QuerySpec spec = QuerySpec::Radius(kRadius);
  spec.predicate = &pred;
  std::vector<uint32_t> unfiltered, pushed;
  ASSERT_TRUE(
      facade.Query(queries_.point(0), kRadius, &unfiltered).ok());
  ASSERT_TRUE(facade.Query(queries_.point(0), spec, &pushed).ok());
  EXPECT_EQ(pushed, PostFilter(unfiltered, filter));

  QuerySpec fused = spec;
  fused.subqueries.push_back({kRadius, 1.0, std::nullopt, false});
  fused.subqueries.push_back({0.0, 0.5, std::nullopt, true});
  std::vector<core::FusedHit> hits;
  ASSERT_TRUE(facade.QueryFused(queries_.point(0), fused, &hits).ok());
  EXPECT_FALSE(hits.empty());

  // Wrong point representation is rejected, same as the radius overloads.
  const uint64_t code[1] = {0};
  EXPECT_EQ(facade.Query(code, spec, &pushed).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(facade.QueryFused(code, fused, &hits).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
