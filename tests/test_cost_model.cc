// Tests for core/cost_model.h: the Eq. 1/2 arithmetic and the calibration
// procedure (paper §4.2).

#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/metric.h"
#include "data/synthetic.h"

namespace hybridlsh {
namespace core {
namespace {

TEST(CostModelTest, LshCostIsEquationOne) {
  const CostModel model{2.0, 5.0};
  // 2*100 + 5*30 = 350.
  EXPECT_DOUBLE_EQ(model.LshCost(100, 30.0), 350.0);
}

TEST(CostModelTest, LinearCostIsEquationTwo) {
  const CostModel model{2.0, 5.0};
  EXPECT_DOUBLE_EQ(model.LinearCost(1000), 5000.0);
}

TEST(CostModelTest, FromRatioSetsAlphaOne) {
  const CostModel model = CostModel::FromRatio(10.0);
  EXPECT_DOUBLE_EQ(model.alpha, 1.0);
  EXPECT_DOUBLE_EQ(model.beta, 10.0);
  EXPECT_DOUBLE_EQ(model.Ratio(), 10.0);
}

TEST(CostModelTest, DecisionBoundary) {
  // With beta/alpha = 10 and n = 1000: LinearCost = 10000. A query with
  // 5000 collisions and 400 candidates costs 5000 + 4000 = 9000 -> LSH
  // wins; with 700 candidates it costs 12000 -> linear wins.
  const CostModel model = CostModel::FromRatio(10.0);
  EXPECT_LT(model.LshCost(5000, 400), model.LinearCost(1000));
  EXPECT_GT(model.LshCost(5000, 700), model.LinearCost(1000));
}

TEST(CostModelTest, LiveStatsFraction) {
  EXPECT_EQ((LiveStats{75, 100}).fraction(), 0.75);
  EXPECT_EQ((LiveStats{100, 100}).fraction(), 1.0);
  EXPECT_EQ((LiveStats{0, 100}).fraction(), 0.0);
  // Empty index: no correction (fraction 1.0), never a divide by zero.
  EXPECT_EQ((LiveStats{0, 0}).fraction(), 1.0);
}

TEST(CostModelTest, CorrectedLshCostFromLiveStatsMatchesFractionForm) {
  const CostModel model{1.0, 10.0};
  const LiveStats live{60, 80};  // fraction 0.75
  EXPECT_EQ(model.CorrectedLshCost(500, 120.0, live),
            model.CorrectedLshCost(500, 120.0, live.fraction()));
  // No tombstones: the coherent overload reduces to plain Eq. 1.
  EXPECT_EQ(model.CorrectedLshCost(500, 120.0, LiveStats{80, 80}),
            model.LshCost(500, 120.0));
}

TEST(CostModelTest, EffectiveLiveFractionIsClampedProduct) {
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(0.5, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(1.0, 0.01), 0.01);
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(0.8, 1.0), 0.8);
  // Out-of-range inputs (transient counter races, degenerate selectivity
  // estimates) clamp instead of amplifying.
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(1.5, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(-0.1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::EffectiveLiveFraction(0.5, -1.0), 0.0);
}

TEST(CostModelTest, SelectivityDiscountsLinearCost) {
  const CostModel model{1.0, 10.0};
  EXPECT_DOUBLE_EQ(model.LinearCost(1000, 0.01), 100.0);
  EXPECT_DOUBLE_EQ(model.LinearCost(1000, 1.0), model.LinearCost(1000));
  EXPECT_DOUBLE_EQ(model.LinearCost(1000, 2.0), model.LinearCost(1000));
}

TEST(CostModelTest, NoDoubleDiscountOfTombstonesAndSelectivity) {
  // Selectivity is measured on the composed (predicate ∧ ¬tombstone)
  // bitmap — conditioned on live — so the two discounts must combine as
  // one product, not stack twice. With live fraction 0.5 and selectivity
  // 0.5, the surviving share of candidates is 0.25: the correction
  // removes beta * cand * (1 - 0.25), never beta * cand * more.
  const CostModel model{1.0, 10.0};
  const double corrected = model.CorrectedLshCost(100, 40.0, 0.5, 0.5);
  const double expected = model.LshCost(100, 40.0) - 10.0 * 40.0 * 0.75;
  EXPECT_DOUBLE_EQ(corrected, expected);
}

TEST(CostModelTest, OnePercentSelectivityMakesFilteredLinearWin) {
  // The decision the pushdown exists for: a query whose unfiltered LSH
  // path beats the unfiltered scan flips to the filtered linear scan at
  // 1% selectivity, because only survivors pay exact distances.
  const CostModel model = CostModel::FromRatio(10.0);
  const size_t n = 100000;
  const uint64_t collisions = 20000;
  const double cand = 5000.0;
  // Unfiltered: LSH 20000 + 50000 = 70000 < linear 1000000.
  EXPECT_LT(model.CorrectedLshCost(collisions, cand, 1.0, 1.0),
            model.LinearCost(n, 1.0));
  // 1% selectivity: linear drops to 10000; LSH keeps paying alpha per
  // collision (the bucket walk can't skip) = 20000 + 500 > 10000.
  EXPECT_GT(model.CorrectedLshCost(collisions, cand, 1.0, 0.01),
            model.LinearCost(n, 0.01));
}

TEST(CostCalibratorTest, AlphaIsPositiveAndSmall) {
  const auto alpha = CostCalibrator::MeasureAlpha(100000, 200000, 1);
  ASSERT_TRUE(alpha.ok());
  EXPECT_GT(*alpha, 0.0);
  EXPECT_LT(*alpha, 1e-6);  // a bit-probe insert is well under a microsecond
}

TEST(CostCalibratorTest, BetaScalesWithDimension) {
  const data::DenseDataset small = data::MakeUniformCube(1000, 8, 1);
  const data::DenseDataset big = data::MakeUniformCube(1000, 512, 1);
  const std::vector<float> query_small(8, 0.5f);
  const std::vector<float> query_big(512, 0.5f);
  const auto beta_small = CostCalibrator::MeasureBeta(
      [&](size_t i) {
        return data::L2Distance(small.point(i), query_small.data(), 8);
      },
      small.size(), small.size(), 50000);
  const auto beta_big = CostCalibrator::MeasureBeta(
      [&](size_t i) {
        return data::L2Distance(big.point(i), query_big.data(), 512);
      },
      big.size(), big.size(), 50000);
  ASSERT_TRUE(beta_small.ok());
  ASSERT_TRUE(beta_big.ok());
  EXPECT_GT(*beta_small, 0.0);
  // 64x the dimension must cost clearly more per distance (allowing lots of
  // noise: just require 4x).
  EXPECT_GT(*beta_big, 4 * *beta_small);
}

TEST(CostCalibratorTest, CalibrateProducesUsableModel) {
  const data::DenseDataset dataset = data::MakeUniformCube(5000, 64, 2);
  const std::vector<float> query(64, 0.5f);
  const auto model = CostCalibrator::Calibrate(
      [&](size_t i) {
        return data::L2Distance(dataset.point(i), query.data(), 64);
      },
      dataset.size(), dataset.size(), dataset.size(), 100000, 3);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->alpha, 0.0);
  EXPECT_GT(model->beta, 0.0);
  // A 64-dim float distance costs more than a bitvector insert.
  EXPECT_GT(model->Ratio(), 1.0);
}

TEST(CostCalibratorTest, BetaClampsOversizedSampleToDataset) {
  // Regression: a paper-style sample_size of 10,000 on a 100-point dataset
  // used to index distance_fn out of range. The clamp confines it to n.
  const data::DenseDataset dataset = data::MakeUniformCube(100, 8, 3);
  const std::vector<float> query(8, 0.5f);
  size_t max_index = 0;
  const auto beta = CostCalibrator::MeasureBeta(
      [&](size_t i) {
        max_index = std::max(max_index, i);
        return data::L2Distance(dataset.point(i), query.data(), 8);
      },
      dataset.size(), /*sample_size=*/10000, 5000);
  ASSERT_TRUE(beta.ok());
  EXPECT_GT(*beta, 0.0);
  EXPECT_LT(max_index, dataset.size());
}

TEST(CostCalibratorTest, EmptyInputsAreInvalidArgument) {
  // Regression: sample_size == 0 used to divide by zero (i % 0); an empty
  // dataset (n == 0) must fail the same way, not abort.
  const auto distance_fn = [](size_t) { return 1.0; };
  EXPECT_EQ(CostCalibrator::MeasureBeta(distance_fn, /*n=*/0, 100, 100)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(CostCalibrator::MeasureBeta(distance_fn, 100, /*sample_size=*/0,
                                        100)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(CostCalibrator::MeasureBeta(distance_fn, 100, 100, /*ops=*/0)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(CostCalibrator::MeasureAlpha(/*capacity=*/0, 100, 1)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(CostCalibrator::Calibrate(distance_fn, /*n=*/0, 100, 100)
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace core
}  // namespace hybridlsh
