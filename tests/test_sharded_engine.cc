// Tests for engine/sharded_engine.h: the shard fan-out must be candidate-
// equivalent to a monolithic LshIndex built with the same (seed, k, L) —
// forced-LSH and forced-linear results are identical for any shard count,
// and the auto decision is bracketed between them.

#include "engine/sharded_engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace engine {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool IsSubset(const std::vector<uint32_t>& sub,
              const std::vector<uint32_t>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

class ShardedEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr double kRadius = 0.4;

  void SetUp() override {
    // 4001 points before the split so shard counts like 3 and 7 never
    // divide the base size evenly.
    const data::DenseDataset full = data::MakeCorelLike(4001, kDim, 41);
    const data::DenseSplit split = data::SplitQueries(full, 25, 42);
    dataset_ = split.base;
    queries_ = split.queries;

    index_options_.num_tables = 25;
    index_options_.k = 7;
    index_options_.seed = 43;
    searcher_options_.cost_model = core::CostModel::FromRatio(6.0);

    L2Index::Options mono_options = index_options_;
    mono_options.num_build_threads = 4;
    auto index = L2Index::Build(Family(), dataset_, mono_options);
    HLSH_CHECK(index.ok());
    index_ = std::make_unique<L2Index>(std::move(*index));
  }

  static lsh::PStableFamily Family() {
    return lsh::PStableFamily::L2(kDim, 2 * kRadius);
  }

  ShardedEngine<lsh::PStableFamily> MakeEngine(
      size_t num_shards,
      core::ForcedStrategy forced = core::ForcedStrategy::kAuto) {
    typename ShardedEngine<lsh::PStableFamily>::Options options;
    options.num_shards = num_shards;
    options.index = index_options_;
    options.searcher = searcher_options_;
    options.searcher.forced = forced;
    auto engine = ShardedEngine<lsh::PStableFamily>::Build(Family(), dataset_,
                                                           options);
    HLSH_CHECK(engine.ok());
    return std::move(*engine);
  }

  /// Monolithic results for every query under `forced`.
  std::vector<std::vector<uint32_t>> Monolithic(core::ForcedStrategy forced) {
    core::SearcherOptions options = searcher_options_;
    options.forced = forced;
    L2Searcher searcher(index_.get(), &dataset_, options);
    std::vector<std::vector<uint32_t>> results(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q) {
      searcher.Query(queries_.point(q), kRadius, &results[q]);
    }
    return results;
  }

  data::DenseDataset dataset_;
  data::DenseDataset queries_;
  L2Index::Options index_options_;
  core::SearcherOptions searcher_options_;
  std::unique_ptr<L2Index> index_;
};

TEST_F(ShardedEngineTest, ForcedLshMatchesMonolithicAnyShardCount) {
  const auto mono = Monolithic(core::ForcedStrategy::kAlwaysLsh);
  for (size_t num_shards : {1, 2, 3, 7, 8}) {
    auto engine = MakeEngine(num_shards, core::ForcedStrategy::kAlwaysLsh);
    EXPECT_EQ(engine.num_shards(), num_shards);
    std::vector<uint32_t> out;
    for (size_t q = 0; q < queries_.size(); ++q) {
      out.clear();
      engine.Query(queries_.point(q), kRadius, &out);
      EXPECT_EQ(Sorted(out), Sorted(mono[q]))
          << "shards=" << num_shards << " query=" << q;
    }
  }
}

TEST_F(ShardedEngineTest, ForcedLinearMatchesGroundTruth) {
  for (size_t num_shards : {1, 2, 8}) {
    auto engine = MakeEngine(num_shards, core::ForcedStrategy::kAlwaysLinear);
    std::vector<uint32_t> out;
    for (size_t q = 0; q < queries_.size(); ++q) {
      out.clear();
      ShardedQueryStats stats;
      engine.Query(queries_.point(q), kRadius, &out, &stats);
      // Per-shard linear scans emit increasing ids; shard order preserves
      // the global order, so `out` is already sorted.
      const auto truth = data::RangeScanDense(dataset_, queries_.point(q),
                                              kRadius, data::Metric::kL2);
      EXPECT_EQ(out, truth) << "shards=" << num_shards << " query=" << q;
      EXPECT_EQ(stats.linear_shards, engine.num_shards());
      EXPECT_EQ(stats.lsh_shards, 0u);
    }
  }
}

TEST_F(ShardedEngineTest, SingleShardAutoMatchesMonolithicDecision) {
  const auto mono = Monolithic(core::ForcedStrategy::kAuto);
  auto engine = MakeEngine(1);
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries_.size(); ++q) {
    out.clear();
    engine.Query(queries_.point(q), kRadius, &out);
    EXPECT_EQ(Sorted(out), Sorted(mono[q])) << "query " << q;
  }
}

TEST_F(ShardedEngineTest, AutoIsBracketedByForcedStrategies) {
  // A shard that falls back to linear reports *more* of its range than the
  // LSH path would, never less; so auto is a superset of forced-LSH and a
  // subset of the exact answer.
  const auto lsh_sets = Monolithic(core::ForcedStrategy::kAlwaysLsh);
  auto engine = MakeEngine(4);
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries_.size(); ++q) {
    out.clear();
    engine.Query(queries_.point(q), kRadius, &out);
    const auto sorted = Sorted(out);
    const auto truth = data::RangeScanDense(dataset_, queries_.point(q),
                                            kRadius, data::Metric::kL2);
    EXPECT_TRUE(IsSubset(Sorted(lsh_sets[q]), sorted)) << "query " << q;
    EXPECT_TRUE(IsSubset(sorted, truth)) << "query " << q;
  }
}

TEST_F(ShardedEngineTest, ShardRangesPartitionTheDataset) {
  auto engine = MakeEngine(7);
  size_t expected_base = 0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const auto [lo, hi] = engine.shard_range(s);
    EXPECT_EQ(lo, expected_base);
    EXPECT_GT(hi, lo);
    EXPECT_EQ(engine.shard_index(s).size(), hi - lo);
    EXPECT_EQ(engine.shard_index(s).id_base(), lo);
    expected_base = hi;
  }
  EXPECT_EQ(expected_base, dataset_.size());
  // Balanced: sizes differ by at most one.
  const size_t first = engine.shard_index(0).size();
  for (size_t s = 1; s < engine.num_shards(); ++s) {
    const size_t size = engine.shard_index(s).size();
    EXPECT_TRUE(size == first || size + 1 == first);
  }
}

TEST_F(ShardedEngineTest, ShardCountClampedToDatasetSize) {
  data::DenseDataset tiny(5, kDim);
  typename ShardedEngine<lsh::PStableFamily>::Options options;
  options.num_shards = 8;
  options.index = index_options_;
  options.searcher = searcher_options_;
  auto engine =
      ShardedEngine<lsh::PStableFamily>::Build(Family(), tiny, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->num_shards(), 5u);
  EXPECT_EQ(engine->size(), 5u);
}

TEST_F(ShardedEngineTest, StatsAggregateAcrossShards) {
  auto engine = MakeEngine(4);
  std::vector<uint32_t> out;
  ShardedQueryStats stats;
  engine.Query(queries_.point(0), kRadius, &out, &stats);
  EXPECT_EQ(stats.num_shards, 4u);
  ASSERT_EQ(stats.per_shard.size(), 4u);
  EXPECT_EQ(stats.lsh_shards + stats.linear_shards, 4u);
  EXPECT_EQ(stats.output_size, out.size());
  size_t per_shard_output = 0;
  for (const core::QueryStats& shard : stats.per_shard) {
    per_shard_output += shard.output_size;
  }
  EXPECT_EQ(per_shard_output, out.size());
  EXPECT_GT(stats.total_seconds, 0.0);

  EXPECT_EQ(engine.stats().num_points, dataset_.size());
  EXPECT_EQ(engine.stats().num_shards, 4u);
  EXPECT_GT(engine.stats().memory_bytes, 0u);
}

TEST_F(ShardedEngineTest, HashOncePlanEvaluatesLSignaturesPerQuery) {
  // The tentpole guarantee: S1 runs once per query, not once per shard.
  // With 4 shards and L = 25 tables, exactly 25 signature evaluations are
  // observed per query — the plan is computed on shard 0's functions and
  // walked by all 4 shards.
  auto engine = MakeEngine(4);
  const uint64_t L = index_options_.num_tables;
  std::vector<uint32_t> out;
  ShardedQueryStats stats;

  lsh::SetHashEvalCounting(true);
  const uint64_t before = lsh::HashEvalCountForTest();
  engine.Query(queries_.point(0), kRadius, &out, &stats);
  const uint64_t after = lsh::HashEvalCountForTest();
  lsh::SetHashEvalCounting(false);

  EXPECT_EQ(after - before, L);
  EXPECT_EQ(stats.hash_evals, L);
  EXPECT_EQ(stats.plan_reuse, 4u);  // every shard walk consumed the plan
  EXPECT_GE(stats.hash_seconds, 0.0);
  // Per-shard stats reflect hash-once: no shard evaluated anything itself.
  for (const core::QueryStats& shard : stats.per_shard) {
    EXPECT_EQ(shard.hash_evals, 0u);
    EXPECT_EQ(shard.plan_reuse, 1u);
  }
  // Engine-lifetime counters accumulate the same accounting.
  EXPECT_EQ(engine.stats().hash_evals, L);
  EXPECT_EQ(engine.stats().plan_reuse, 4u);
}

TEST_F(ShardedEngineTest, ForcedLinearSkipsHashingEntirely) {
  auto engine = MakeEngine(3, core::ForcedStrategy::kAlwaysLinear);
  std::vector<uint32_t> out;
  ShardedQueryStats stats;

  lsh::SetHashEvalCounting(true);
  const uint64_t before = lsh::HashEvalCountForTest();
  engine.Query(queries_.point(0), kRadius, &out, &stats);
  const uint64_t after = lsh::HashEvalCountForTest();
  lsh::SetHashEvalCounting(false);

  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(stats.hash_evals, 0u);
  EXPECT_EQ(stats.plan_reuse, 0u);
  EXPECT_EQ(stats.hash_seconds, 0.0);
  EXPECT_EQ(engine.stats().hash_evals, 0u);
}

TEST_F(ShardedEngineTest, BatchHashesOncePerQueryThroughBlockedKernels) {
  // The batch path pushes all queries through ComputePlanBatch (blocked
  // projection form): still exactly L evaluations per query, and every
  // result identical to the single-query plan path.
  auto engine = MakeEngine(4);
  const uint64_t L = index_options_.num_tables;

  lsh::SetHashEvalCounting(true);
  const uint64_t before = lsh::HashEvalCountForTest();
  const auto batch = engine.QueryBatch(queries_, kRadius);
  const uint64_t after = lsh::HashEvalCountForTest();
  lsh::SetHashEvalCounting(false);

  EXPECT_EQ(after - before, L * queries_.size());
  ASSERT_EQ(batch.size(), queries_.size());
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries_.size(); ++q) {
    EXPECT_EQ(batch[q].stats.hash_evals, L);
    EXPECT_EQ(batch[q].stats.plan_reuse, 4u);
    out.clear();
    engine.Query(queries_.point(q), kRadius, &out);
    EXPECT_EQ(Sorted(batch[q].neighbors), Sorted(out)) << "query " << q;
  }
}

TEST_F(ShardedEngineTest, BatchMatchesSingleQueries) {
  auto engine = MakeEngine(3);
  double wall_seconds = 0;
  const auto batch = engine.QueryBatch(queries_, kRadius, &wall_seconds);
  ASSERT_EQ(batch.size(), queries_.size());
  EXPECT_GT(wall_seconds, 0.0);
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries_.size(); ++q) {
    out.clear();
    engine.Query(queries_.point(q), kRadius, &out);
    EXPECT_EQ(Sorted(batch[q].neighbors), Sorted(out)) << "query " << q;
    EXPECT_EQ(batch[q].stats.lsh_shards + batch[q].stats.linear_shards, 3u);
  }
}

TEST_F(ShardedEngineTest, MultiProbeFanOutMatchesMonolithic) {
  core::SearcherOptions probing = searcher_options_;
  probing.probes_per_table = 4;
  probing.forced = core::ForcedStrategy::kAlwaysLsh;
  L2Searcher searcher(index_.get(), &dataset_, probing);

  typename ShardedEngine<lsh::PStableFamily>::Options options;
  options.num_shards = 5;
  options.index = index_options_;
  options.searcher = probing;
  auto engine = ShardedEngine<lsh::PStableFamily>::Build(Family(), dataset_,
                                                         options);
  ASSERT_TRUE(engine.ok());

  std::vector<uint32_t> expected;
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries_.size(); ++q) {
    expected.clear();
    out.clear();
    searcher.Query(queries_.point(q), kRadius, &expected);
    engine->Query(queries_.point(q), kRadius, &out);
    EXPECT_EQ(Sorted(out), Sorted(expected)) << "query " << q;
  }
}

TEST_F(ShardedEngineTest, RejectsEmptyDataset) {
  data::DenseDataset empty(0, kDim);
  typename ShardedEngine<lsh::PStableFamily>::Options options;
  options.index = index_options_;
  auto engine =
      ShardedEngine<lsh::PStableFamily>::Build(Family(), empty, options);
  EXPECT_FALSE(engine.ok());
}

// A second family + container: Hamming over packed binary codes.
TEST(ShardedEngineHammingTest, ForcedLshMatchesMonolithic) {
  const data::BinaryDataset full = data::MakeRandomCodes(2007, 64, 51);
  const data::BinarySplit split = data::SplitQueriesBinary(full, 20, 52);
  const uint32_t radius = 12;

  HammingIndex::Options options;
  options.num_tables = 20;
  options.k = 10;
  options.seed = 53;
  lsh::BitSamplingFamily family(64);
  auto index = HammingIndex::Build(family, split.base, options);
  ASSERT_TRUE(index.ok());

  core::SearcherOptions searcher_options;
  searcher_options.cost_model = core::CostModel::FromRatio(10.0);
  searcher_options.forced = core::ForcedStrategy::kAlwaysLsh;
  HammingSearcher searcher(&*index, &split.base, searcher_options);

  for (size_t num_shards : {1, 4, 6}) {
    typename ShardedEngine<lsh::BitSamplingFamily>::Options engine_options;
    engine_options.num_shards = num_shards;
    engine_options.index = options;
    engine_options.searcher = searcher_options;
    auto engine = ShardedEngine<lsh::BitSamplingFamily>::Build(
        family, split.base, engine_options);
    ASSERT_TRUE(engine.ok());

    std::vector<uint32_t> expected;
    std::vector<uint32_t> out;
    for (size_t q = 0; q < split.queries.size(); ++q) {
      expected.clear();
      out.clear();
      searcher.Query(split.queries.point(q), radius, &expected);
      engine->Query(split.queries.point(q), radius, &out);
      EXPECT_EQ(Sorted(out), Sorted(expected))
          << "shards=" << num_shards << " query=" << q;
    }
  }
}

// --- Mutable lifecycle through the sharded engine. -------------------------

TEST_F(ShardedEngineTest, ChurnMatchesStaticRebuildAcrossShardCounts) {
  const data::DenseDataset incoming = data::MakeCorelLike(1000, kDim, 77);

  for (size_t num_shards : {3, 7}) {
    for (const auto forced : {core::ForcedStrategy::kAlwaysLsh,
                              core::ForcedStrategy::kAlwaysLinear}) {
      // Each (shard count, strategy) run replays the same churn: Insert
      // routing is round-robin and the remove sequence is seeded, so the
      // final live set is identical across runs.
      data::DenseDataset dataset = dataset_;  // grows with inserts
      typename ShardedEngine<lsh::PStableFamily>::Options options;
      options.num_shards = num_shards;
      options.index = index_options_;
      options.active_seal_threshold = 128;
      options.max_sealed_segments = 2;
      options.searcher = searcher_options_;
      options.searcher.probes_per_table = 3;  // multi-probe on
      options.searcher.forced = forced;
      auto built = ShardedEngine<lsh::PStableFamily>::Build(Family(), &dataset,
                                                            options);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      auto engine = std::move(*built);
      EXPECT_TRUE(engine.updates_enabled());

      util::Rng rng(91 + num_shards);
      const size_t initial_n = dataset.size();
      for (size_t i = 0; i < 600; ++i) {
        auto id = engine.Insert(incoming.point(i));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        EXPECT_EQ(*id, initial_n + i);
        if (i % 3 == 0) {
          const uint32_t victim = static_cast<uint32_t>(
              rng.UniformInt(0, static_cast<int64_t>(dataset.size() - 1)));
          ASSERT_TRUE(engine.Remove(victim).ok());
        }
      }
      engine.CompactAll();
      for (size_t i = 600; i < incoming.size(); ++i) {
        ASSERT_TRUE(engine.Insert(incoming.point(i)).ok());
      }

      // Static rebuild over the live set, queried under the same strategy.
      std::vector<uint32_t> live_ids;
      for (size_t s = 0; s < engine.num_shards(); ++s) {
        engine.shard_index(s).ForEachLiveId(
            [&](uint32_t id) { live_ids.push_back(id); });
      }
      std::sort(live_ids.begin(), live_ids.end());
      ASSERT_EQ(live_ids.size(), engine.size());
      data::DenseDataset live(0, kDim);
      for (const uint32_t id : live_ids) {
        live.Append(std::span<const float>(dataset.point(id), kDim));
      }
      auto rebuilt = L2Index::Build(Family(), live, index_options_);
      ASSERT_TRUE(rebuilt.ok());
      core::SearcherOptions rebuilt_options = options.searcher;
      L2Searcher searcher(&*rebuilt, &live, rebuilt_options);

      std::vector<uint32_t> expected;
      std::vector<uint32_t> out;
      for (size_t q = 0; q < queries_.size(); ++q) {
        expected.clear();
        out.clear();
        searcher.Query(queries_.point(q), kRadius, &expected);
        for (uint32_t& id : expected) id = live_ids[id];
        engine.Query(queries_.point(q), kRadius, &out);
        EXPECT_EQ(Sorted(out), Sorted(expected))
            << "shards=" << num_shards << " query=" << q
            << " forced=" << static_cast<int>(forced);
      }
    }
  }
}

TEST_F(ShardedEngineTest, UpdateRoutingAndGuards) {
  data::DenseDataset dataset = dataset_;
  typename ShardedEngine<lsh::PStableFamily>::Options options;
  options.num_shards = 4;
  options.index = index_options_;
  options.searcher = searcher_options_;

  // Read-only build: Insert rejected until EnableUpdates; Remove works.
  auto engine = ShardedEngine<lsh::PStableFamily>::Build(
      Family(), static_cast<const data::DenseDataset&>(dataset), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->updates_enabled());
  EXPECT_FALSE(engine->Insert(dataset.point(0)).ok());
  EXPECT_TRUE(engine->Remove(5).ok());
  EXPECT_EQ(engine->size(), dataset.size() - 1);

  // A foreign dataset is rejected; the indexed one is accepted.
  data::DenseDataset other(3, kDim);
  EXPECT_FALSE(engine->EnableUpdates(&other).ok());
  ASSERT_TRUE(engine->EnableUpdates(&dataset).ok());

  // Inserts spread round-robin and land on the owning shard for Remove.
  const data::DenseDataset incoming = data::MakeCorelLike(8, kDim, 93);
  std::vector<uint32_t> inserted;
  for (size_t i = 0; i < 8; ++i) {
    auto id = engine->Insert(incoming.point(i));
    ASSERT_TRUE(id.ok());
    inserted.push_back(*id);
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(engine->shard_index(s).lifecycle().active_points, 2u);
  }
  for (const uint32_t id : inserted) EXPECT_TRUE(engine->Remove(id).ok());

  // Ids that were never handed out are rejected.
  EXPECT_FALSE(
      engine->Remove(static_cast<uint32_t>(dataset.size()) + 10).ok());

  // Compaction drops all tombstones and keeps the engine serving.
  engine->CompactAll();
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(engine->shard_index(s).lifecycle().tombstones, 0u);
  }
  std::vector<uint32_t> out;
  engine->Query(queries_.point(0), kRadius, &out);
  const auto truth = data::RangeScanDense(dataset_, queries_.point(0),
                                          kRadius, data::Metric::kL2);
  for (uint32_t id : out) {
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), id));
  }
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
