// Tests for data/synthetic.h: determinism, shape, and the density profiles
// the paper's experiments depend on.

#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/metric.h"
#include "data/workload.h"

namespace hybridlsh {
namespace data {
namespace {

TEST(GaussianMixtureTest, ShapeMatchesConfig) {
  GaussianMixtureConfig config;
  config.n = 500;
  config.dim = 8;
  config.num_clusters = 5;
  const DenseDataset dataset = MakeGaussianMixture(config);
  EXPECT_EQ(dataset.size(), 500u);
  EXPECT_EQ(dataset.dim(), 8u);
}

TEST(GaussianMixtureTest, DeterministicInSeed) {
  GaussianMixtureConfig config;
  config.n = 100;
  config.dim = 4;
  config.seed = 7;
  const DenseDataset a = MakeGaussianMixture(config);
  const DenseDataset b = MakeGaussianMixture(config);
  EXPECT_TRUE(std::ranges::equal(a.matrix().data(), b.matrix().data()));
}

TEST(GaussianMixtureTest, DifferentSeedsDiffer) {
  GaussianMixtureConfig config;
  config.n = 100;
  config.dim = 4;
  config.seed = 1;
  const DenseDataset a = MakeGaussianMixture(config);
  config.seed = 2;
  const DenseDataset b = MakeGaussianMixture(config);
  EXPECT_FALSE(std::ranges::equal(a.matrix().data(), b.matrix().data()));
}

TEST(GaussianMixtureTest, SkewProducesUnevenClusters) {
  // With strong skew the first cluster must dominate. Verify indirectly:
  // points are emitted cluster by cluster, so a heavily skewed config has
  // many early points close together.
  GaussianMixtureConfig config;
  config.n = 2000;
  config.dim = 4;
  config.num_clusters = 10;
  config.cluster_size_skew = 2.0;
  config.scale_min = config.scale_max = 0.5;
  config.center_box = 100.0;
  const DenseDataset dataset = MakeGaussianMixture(config);
  // First cluster holds >= 40% of mass under Zipf(2) over 10 clusters
  // (weight 1 / sum ~ 1/1.55 ~ 0.65); check the first 40% of points are
  // mutually close relative to the box size.
  float max_dist = 0;
  for (size_t i = 1; i < 800; i += 37) {
    max_dist = std::max(max_dist,
                        L2Distance(dataset.point(0), dataset.point(i), 4));
  }
  EXPECT_LT(max_dist, 20.0f);  // within one cluster, not across the 200-box
}

TEST(MakeUniformCubeTest, RangeAndShape) {
  const DenseDataset dataset = MakeUniformCube(200, 5, 3);
  EXPECT_EQ(dataset.size(), 200u);
  EXPECT_EQ(dataset.dim(), 5u);
  for (size_t i = 0; i < dataset.size(); ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_GE(dataset.point(i)[j], 0.0f);
      EXPECT_LT(dataset.point(i)[j], 1.0f);
    }
  }
}

TEST(MakeCorelLikeTest, DefaultsMirrorPaperShape) {
  const DenseDataset dataset = MakeCorelLike(2000, 32, 1);
  EXPECT_EQ(dataset.size(), 2000u);
  EXPECT_EQ(dataset.dim(), 32u);
}

TEST(MakeCovtypeLikeTest, FeatureScaleSupportsPaperRadii) {
  // The paper sweeps L1 radii 3000-4000 on CoverType; same-cluster pairs
  // should often fall below 4000 while cross-cluster pairs exceed it.
  const DenseDataset dataset = MakeCovtypeLike(5000, 54, 1);
  std::vector<float> dists;
  for (size_t i = 0; i < 200; ++i) {
    dists.push_back(
        L1Distance(dataset.point(i), dataset.point(i + 1), dataset.dim()));
  }
  std::sort(dists.begin(), dists.end());
  EXPECT_LT(dists.front(), 4000.0f);  // some pairs within paper radii
  // And the dataset is not degenerate: far pairs exist too.
  float max_dist = 0;
  for (size_t i = 0; i < 200; ++i) {
    max_dist = std::max(max_dist, L1Distance(dataset.point(i),
                                             dataset.point(4999 - i), 54));
  }
  EXPECT_GT(max_dist, 4000.0f);
}

TEST(MakeWebspamLikeTest, PointsAreUnitNorm) {
  WebspamLikeConfig config;
  config.n = 500;
  config.dim = 64;
  const DenseDataset dataset = MakeWebspamLike(config);
  for (size_t i = 0; i < dataset.size(); i += 17) {
    EXPECT_NEAR(Norm(dataset.point(i), 64), 1.0f, 1e-4f);
  }
}

TEST(MakeWebspamLikeTest, HasDenseCoreAndDiffuseBackground) {
  // The paper's Figure 3 regime at r = 0.10: the maximum output size over a
  // query sample approaches n/2 (the mega-cluster) while the minimum is
  // near zero (background queries).
  WebspamLikeConfig config;
  config.n = 4000;
  config.dim = 128;
  config.cluster_fraction = 0.5;
  const DenseDataset dataset = MakeWebspamLike(config);

  size_t max_out = 0, min_out = dataset.size();
  for (size_t q = 0; q < 40; ++q) {
    const auto out =
        RangeScanDense(dataset, dataset.point(q * 100), 0.10, Metric::kCosine);
    max_out = std::max(max_out, out.size());
    min_out = std::min(min_out, out.size());
  }
  EXPECT_GT(max_out, 1000u);  // approaches cluster_fraction * n = 2000
  EXPECT_LT(min_out, 50u);    // background queries see almost nothing
}

TEST(MakeWebspamLikeTest, OutputSizeVariesInsideCluster) {
  // Density gradient: different cluster members see very different output
  // sizes at the same radius (max >> min), as in Figure 3 (left).
  WebspamLikeConfig config;
  config.n = 3000;
  config.dim = 128;
  const DenseDataset dataset = MakeWebspamLike(config);
  size_t min_out = dataset.size(), max_out = 0;
  for (size_t q = 0; q < 60; ++q) {
    const auto out =
        RangeScanDense(dataset, dataset.point(q * 40), 0.07, Metric::kCosine);
    min_out = std::min(min_out, out.size());
    max_out = std::max(max_out, out.size());
  }
  EXPECT_GT(max_out, 4 * std::max<size_t>(min_out, 1));
}

TEST(MakeMnistLikeTest, ValuesInUnitInterval) {
  const DenseDataset dataset = MakeMnistLike(300, 100, 10, 1);
  EXPECT_EQ(dataset.size(), 300u);
  for (size_t i = 0; i < dataset.size(); i += 7) {
    for (size_t j = 0; j < 100; ++j) {
      EXPECT_GE(dataset.point(i)[j], 0.0f);
      EXPECT_LE(dataset.point(i)[j], 1.0f);
    }
  }
}

TEST(MakeMnistLikeTest, HasClassStructure) {
  // Same-class points (same prototype) should be closer on average than
  // random pairs. With 2 classes and many points, nearest neighbors of a
  // point are overwhelmingly same-class.
  const DenseDataset dataset = MakeMnistLike(400, 100, 2, 3);
  // Within the dataset, distances should be bimodal; verify spread.
  float min_d = 1e9f, max_d = 0;
  for (size_t i = 1; i < 100; ++i) {
    const float d = L2Distance(dataset.point(0), dataset.point(i), 100);
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_LT(min_d, 0.7f * max_d);  // close same-class pairs exist
}

TEST(MakeRandomCodesTest, ShapeAndTailMask) {
  const BinaryDataset codes = MakeRandomCodes(100, 70, 1);
  EXPECT_EQ(codes.size(), 100u);
  EXPECT_EQ(codes.width_bits(), 70u);
  EXPECT_EQ(codes.words_per_code(), 2u);
  // Bits beyond width must be zero.
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(codes.point(i)[1] >> 6, 0u) << "row " << i;
  }
}

TEST(MakeRandomCodesTest, BitsAreBalanced) {
  const BinaryDataset codes = MakeRandomCodes(2000, 64, 5);
  size_t ones = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    ones += static_cast<size_t>(__builtin_popcountll(codes.point(i)[0]));
  }
  const double frac = static_cast<double>(ones) / (2000.0 * 64.0);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(MakeRandomSparseTest, SortedAndInUniverse) {
  const SparseDataset dataset = MakeRandomSparse(200, 1000, 20, 2);
  EXPECT_EQ(dataset.size(), 200u);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const auto point = dataset.point(i);
    EXPECT_GE(point.size(), 1u);
    for (size_t j = 1; j < point.size(); ++j) {
      EXPECT_LT(point[j - 1], point[j]);
    }
    EXPECT_LT(point.back(), 1000u);
  }
}

TEST(PlantNeighborsL2Test, AllWithinRadius) {
  util::Rng rng(1);
  DenseDataset dataset = MakeUniformCube(100, 8, 1);
  const std::vector<float> query(8, 0.5f);
  const auto ids = PlantNeighborsL2(&dataset, query.data(), 0.3, 10, &rng);
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(dataset.size(), 110u);
  for (uint32_t id : ids) {
    const float d = L2Distance(dataset.point(id), query.data(), 8);
    EXPECT_GT(d, 0.0f);
    EXPECT_LE(d, 0.3f);
  }
}

TEST(PlantNeighborsL1Test, AllWithinRadius) {
  util::Rng rng(1);
  DenseDataset dataset = MakeUniformCube(100, 8, 1);
  const std::vector<float> query(8, 0.5f);
  const auto ids = PlantNeighborsL1(&dataset, query.data(), 2.0, 10, &rng);
  for (uint32_t id : ids) {
    const float d = L1Distance(dataset.point(id), query.data(), 8);
    EXPECT_GT(d, 0.0f);
    EXPECT_LE(d, 2.0f);
  }
}

TEST(PlantNeighborsCosineTest, AllWithinRadius) {
  util::Rng rng(1);
  DenseDataset dataset = MakeWebspamLike({.n = 100, .dim = 32, .seed = 1});
  std::vector<float> query(32);
  for (size_t j = 0; j < 32; ++j) query[j] = dataset.point(0)[j];
  const auto ids = PlantNeighborsCosine(&dataset, query.data(), 0.2, 10, &rng);
  for (uint32_t id : ids) {
    const float d = CosineDistance(dataset.point(id), query.data(), 32);
    EXPECT_GT(d, 0.0f);
    EXPECT_LE(d, 0.2f + 1e-5f);
  }
}

TEST(PlantNeighborsHammingTest, AllWithinRadius) {
  util::Rng rng(1);
  BinaryDataset dataset = MakeRandomCodes(50, 64, 1);
  const uint64_t query = dataset.point(0)[0];
  const auto ids = PlantNeighborsHamming(&dataset, &query, 5, 10, &rng);
  EXPECT_EQ(dataset.size(), 60u);
  for (uint32_t id : ids) {
    const uint32_t d = HammingDistance(dataset.point(id), &query, 1);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 5u);
  }
}

}  // namespace
}  // namespace data
}  // namespace hybridlsh
