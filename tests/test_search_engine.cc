// Tests for engine/search_engine.h: the type-erased facade must serve
// multiple LSH families through one runtime interface, reject mismatched
// point representations, and build through the metric-keyed registry.

#include "engine/search_engine.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace engine {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.num_shards = 3;
  options.num_tables = 20;
  options.k = 7;
  options.seed = 61;
  options.searcher.cost_model = core::CostModel::FromRatio(6.0);
  return options;
}

class SearchEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr double kDenseRadius = 0.4;
  static constexpr double kHammingRadius = 12;

  void SetUp() override {
    const data::DenseDataset full = data::MakeCorelLike(2003, kDim, 71);
    const data::DenseSplit split = data::SplitQueries(full, 15, 72);
    dense_ = split.base;
    dense_queries_ = split.queries;

    const data::BinaryDataset codes = data::MakeRandomCodes(1502, 64, 73);
    const data::BinarySplit binary_split = data::SplitQueriesBinary(codes, 15, 74);
    binary_ = binary_split.base;
    binary_queries_ = binary_split.queries;
  }

  data::DenseDataset dense_;
  data::DenseDataset dense_queries_;
  data::BinaryDataset binary_;
  data::BinaryDataset binary_queries_;
};

TEST_F(SearchEngineTest, ServesTwoFamiliesThroughOneInterface) {
  EngineOptions options = BaseOptions();
  options.pstable_w = 2 * kDenseRadius;
  auto l2 = BuildEngine(data::Metric::kL2, &dense_, options);
  ASSERT_TRUE(l2.ok()) << l2.status().ToString();
  auto hamming = BuildEngine(data::Metric::kHamming, &binary_, BaseOptions());
  ASSERT_TRUE(hamming.ok()) << hamming.status().ToString();

  // One runtime-polymorphic collection, two LSH families.
  std::vector<SearchEngine*> engines = {l2->get(), hamming->get()};
  EXPECT_EQ(engines[0]->metric(), data::Metric::kL2);
  EXPECT_EQ(engines[0]->family_tag(), lsh::PStableFamily::kFamilyTag);
  EXPECT_EQ(engines[1]->metric(), data::Metric::kHamming);
  EXPECT_EQ(engines[1]->family_tag(), lsh::BitSamplingFamily::kFamilyTag);
  for (SearchEngine* engine : engines) {
    EXPECT_EQ(engine->num_shards(), 3u);
    EXPECT_GT(engine->size(), 0u);
    EXPECT_GT(engine->stats().memory_bytes, 0u);
  }

  // Each engine answers through its typed overload with exact-scan ids.
  std::vector<uint32_t> out;
  for (size_t q = 0; q < dense_queries_.size(); ++q) {
    out.clear();
    ASSERT_TRUE(engines[0]
                    ->Query(dense_queries_.point(q), kDenseRadius, &out)
                    .ok());
    const auto truth = data::RangeScanDense(dense_, dense_queries_.point(q),
                                            kDenseRadius, data::Metric::kL2);
    for (uint32_t id : out) {
      EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), id));
    }
  }
  for (size_t q = 0; q < binary_queries_.size(); ++q) {
    out.clear();
    ASSERT_TRUE(engines[1]
                    ->Query(binary_queries_.point(q), kHammingRadius, &out)
                    .ok());
    const auto truth = data::RangeScanBinary(
        binary_, binary_queries_.point(q),
        static_cast<uint32_t>(kHammingRadius));
    for (uint32_t id : out) {
      EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), id));
    }
  }
}

TEST_F(SearchEngineTest, FacadeMatchesDirectShardedEngine) {
  EngineOptions options = BaseOptions();
  options.pstable_w = 2 * kDenseRadius;
  auto facade = BuildEngine(data::Metric::kL2, &dense_, options);
  ASSERT_TRUE(facade.ok());

  ShardedEngine<lsh::PStableFamily>::Options direct_options;
  direct_options.num_shards = options.num_shards;
  direct_options.index.num_tables = options.num_tables;
  direct_options.index.k = options.k;
  direct_options.index.seed = options.seed;
  direct_options.searcher = options.searcher;
  auto direct = ShardedEngine<lsh::PStableFamily>::Build(
      lsh::PStableFamily::L2(kDim, options.pstable_w), dense_, direct_options);
  ASSERT_TRUE(direct.ok());

  std::vector<uint32_t> expected;
  std::vector<uint32_t> out;
  for (size_t q = 0; q < dense_queries_.size(); ++q) {
    expected.clear();
    out.clear();
    direct->Query(dense_queries_.point(q), kDenseRadius, &expected);
    ASSERT_TRUE(
        (*facade)->Query(dense_queries_.point(q), kDenseRadius, &out).ok());
    EXPECT_EQ(Sorted(out), Sorted(expected)) << "query " << q;
  }
}

TEST_F(SearchEngineTest, BatchMatchesSingleQueriesThroughFacade) {
  EngineOptions options = BaseOptions();
  options.pstable_w = 2 * kDenseRadius;
  auto engine = BuildEngine(data::Metric::kL2, &dense_, options);
  ASSERT_TRUE(engine.ok());

  double wall_seconds = 0;
  auto batch = (*engine)->QueryBatch(dense_queries_, kDenseRadius, &wall_seconds);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), dense_queries_.size());
  EXPECT_GT(wall_seconds, 0.0);
  std::vector<uint32_t> out;
  for (size_t q = 0; q < dense_queries_.size(); ++q) {
    out.clear();
    ASSERT_TRUE(
        (*engine)->Query(dense_queries_.point(q), kDenseRadius, &out).ok());
    EXPECT_EQ(Sorted((*batch)[q].neighbors), Sorted(out)) << "query " << q;
  }
}

TEST_F(SearchEngineTest, JaccardSparseEngineServesThirdFamily) {
  const data::SparseDataset sparse = data::MakeRandomSparse(800, 5000, 30, 81);
  EngineOptions options = BaseOptions();
  options.num_shards = 2;
  auto engine = BuildEngine(data::Metric::kJaccard, &sparse, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->family_tag(), lsh::MinHashFamily::kFamilyTag);

  std::vector<uint32_t> out;
  const double radius = 0.7;
  ASSERT_TRUE((*engine)->Query(sparse.point(0), radius, &out).ok());
  const auto truth = data::RangeScanSparse(sparse, sparse.point(0), radius);
  for (uint32_t id : out) {
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), id));
  }
  // Point 0 is in the dataset, distance 0 to itself.
  EXPECT_TRUE(std::find(out.begin(), out.end(), 0u) != out.end());
}

TEST_F(SearchEngineTest, RejectsMismatchedPointRepresentation) {
  EngineOptions options = BaseOptions();
  options.pstable_w = 2 * kDenseRadius;
  auto l2 = BuildEngine(data::Metric::kL2, &dense_, options);
  ASSERT_TRUE(l2.ok());

  std::vector<uint32_t> out;
  const util::Status binary_on_dense =
      (*l2)->Query(binary_queries_.point(0), kDenseRadius, &out);
  EXPECT_EQ(binary_on_dense.code(), util::StatusCode::kInvalidArgument);
  const util::Status sparse_on_dense = (*l2)->Query(
      std::span<const uint32_t>(), kDenseRadius, &out);
  EXPECT_EQ(sparse_on_dense.code(), util::StatusCode::kInvalidArgument);
  auto batch = (*l2)->QueryBatch(binary_queries_, kDenseRadius);
  EXPECT_EQ(batch.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST_F(SearchEngineTest, RejectsMismatchedDatasetContainer) {
  auto engine = BuildEngine(data::Metric::kHamming, &dense_, BaseOptions());
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SearchEngineTest, PStableRequiresWindowOrRadius) {
  EngineOptions options = BaseOptions();  // pstable_w == 0, radius == 0
  auto engine = BuildEngine(data::Metric::kL2, &dense_, options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kInvalidArgument);

  // Radius alone is enough: w defaults to the paper's 2r.
  options.radius = kDenseRadius;
  auto derived = BuildEngine(data::Metric::kL2, &dense_, options);
  EXPECT_TRUE(derived.ok()) << derived.status().ToString();
}

TEST_F(SearchEngineTest, MutableLifecycleThroughTheFacade) {
  data::BinaryDataset dataset = binary_;  // grows with inserts
  auto built =
      BuildMutableEngine(data::Metric::kHamming, &dataset, BaseOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built->get();

  // Only the matching point representation inserts.
  EXPECT_FALSE(engine->Insert(dense_queries_.point(0)).ok());

  const data::BinaryDataset incoming = data::MakeRandomCodes(300, 64, 91);
  const size_t initial_n = dataset.size();
  for (size_t i = 0; i < incoming.size(); ++i) {
    auto id = engine->Insert(incoming.point(i));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, initial_n + i);
  }
  for (uint32_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(engine->Remove(id).ok());
  }
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(engine->size(), initial_n + incoming.size() - 100);

  // Post-churn queries: correct ids only, removed ids never reported.
  std::vector<uint32_t> out;
  for (size_t q = 0; q < binary_queries_.size(); ++q) {
    out.clear();
    ASSERT_TRUE(
        engine->Query(binary_queries_.point(q), kHammingRadius, &out).ok());
    const auto truth = data::RangeScanBinary(
        dataset, binary_queries_.point(q),
        static_cast<uint32_t>(kHammingRadius));
    for (uint32_t id : out) {
      EXPECT_GE(id, 100u);
      EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), id));
    }
  }
}

TEST_F(SearchEngineTest, ConstBuildIsReadOnlyUntilEnableUpdates) {
  data::BinaryDataset dataset = binary_;
  auto engine = BuildEngine(data::Metric::kHamming, &dataset, BaseOptions());
  ASSERT_TRUE(engine.ok());

  // Insert needs a mutable dataset; Remove and Compact never do.
  EXPECT_EQ((*engine)->Insert(dataset.point(0)).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*engine)->Remove(0).ok());
  ASSERT_TRUE((*engine)->Compact().ok());
  EXPECT_EQ((*engine)->size(), dataset.size() - 1);

  // The wrong container type cannot arm updates; the right one can.
  data::DenseDataset wrong(4, 8);
  EXPECT_FALSE((*engine)->EnableUpdates(&wrong).ok());
  ASSERT_TRUE((*engine)->EnableUpdates(&dataset).ok());
  EXPECT_TRUE((*engine)->Insert(dataset.point(1)).ok());
}

// Keep last in this file: replaces the kCosine builtin for the remainder of
// the test process.
TEST_F(SearchEngineTest, ZRegistryAcceptsExternalFactories) {
  RegisterEngineFactory(
      data::Metric::kCosine,
      +[](AnyDataset, const EngineOptions&)
          -> util::StatusOr<std::unique_ptr<SearchEngine>> {
        return util::Status::Unimplemented("custom cosine factory");
      });
  auto engine = BuildEngine(data::Metric::kCosine, &dense_, BaseOptions());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kUnimplemented);
  EXPECT_EQ(engine.status().message(), "custom cosine factory");
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
