// Unit tests for util/thread_pool.h.

#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace util {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 8, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(5, 5, 4, [](size_t) { FAIL(); });
  ParallelFor(7, 3, 4, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(0, 10, 1, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // inline path preserves order
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> counter{0};
  ParallelFor(0, 3, 16, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<long> sum{0};
  ParallelFor(100, 200, 4, [&sum](size_t i) { sum += static_cast<long>(i); });
  long expected = 0;
  for (long i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace util
}  // namespace hybridlsh
