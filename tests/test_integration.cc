// End-to-end integration tests: the paper's four evaluation regimes, each
// run through the full stack (generator -> split -> index build with the
// paper's parameters -> hybrid search -> recall against exact ground
// truth). These are scaled-down versions of the Figure 2 benchmarks with
// correctness assertions instead of timing plots.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace {

using core::CostModel;
using core::QueryStats;
using core::SearcherOptions;
using core::Strategy;

// Aggregate recall of the hybrid searcher over a query set.
template <typename Searcher, typename Queries, typename Truth>
double HybridRecall(Searcher* searcher, const Queries& queries, double radius,
                    const Truth& truth) {
  double total = 0;
  std::vector<uint32_t> out;
  for (size_t q = 0; q < queries.size(); ++q) {
    out.clear();
    searcher->Query(queries.point(q), radius, &out);
    total += data::Recall(out, truth[q]);
  }
  return total / static_cast<double>(queries.size());
}

TEST(IntegrationTest, CorelRegimeL2) {
  // Corel Images: L2, w = 2r, k = 7 (paper §4.1).
  const size_t dim = 32;
  const double radius = 0.45;
  const data::DenseDataset full = data::MakeCorelLike(8000, dim, 101);
  const data::DenseSplit split = data::SplitQueries(full, 20, 102);

  L2Index::Options options;
  options.num_tables = 50;
  options.k = 7;
  options.seed = 103;
  options.num_build_threads = 8;
  auto index = L2Index::Build(lsh::PStableFamily::L2(dim, 2 * radius),
                              split.base, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(6.0);  // paper: Corel = 6
  L2Searcher searcher(&*index, &split.base, searcher_options);

  const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                            data::Metric::kL2, 8);
  size_t nonempty = 0;
  for (const auto& t : truth) nonempty += !t.empty();
  ASSERT_GT(nonempty, 5u) << "radius too small for this regime";

  EXPECT_GT(HybridRecall(&searcher, split.queries, radius, truth), 0.85);
}

TEST(IntegrationTest, CovtypeRegimeL1) {
  // CoverType: L1, w = 4r, k = 8 (paper §4.1).
  const size_t dim = 54;
  const double radius = 900.0;
  const data::DenseDataset full = data::MakeCovtypeLike(8000, dim, 111);
  const data::DenseSplit split = data::SplitQueries(full, 20, 112);

  L1Index::Options options;
  options.num_tables = 50;
  options.k = 8;
  options.seed = 113;
  options.num_build_threads = 8;
  auto index = L1Index::Build(lsh::PStableFamily::L1(dim, 4 * radius),
                              split.base, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(10.0);  // paper: 10
  L1Searcher searcher(&*index, &split.base, searcher_options);

  const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                            data::Metric::kL1, 8);
  size_t nonempty = 0;
  for (const auto& t : truth) nonempty += !t.empty();
  ASSERT_GT(nonempty, 5u);

  EXPECT_GT(HybridRecall(&searcher, split.queries, radius, truth), 0.85);
}

TEST(IntegrationTest, WebspamRegimeCosine) {
  // Webspam: cosine via SimHash, auto k at delta = 0.1 (paper §4.1), with
  // the hard/easy query mix that motivates the hybrid.
  const size_t dim = 128;
  const double radius = 0.08;
  data::WebspamLikeConfig config;
  config.n = 8000;
  config.dim = dim;
  config.eps_min = 0.03;
  config.eps_max = 0.30;
  config.seed = 121;
  const data::DenseDataset full = data::MakeWebspamLike(config);
  const data::DenseSplit split = data::SplitQueries(full, 20, 122);

  CosineIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 123;
  options.num_build_threads = 8;
  auto index = CosineIndex::Build(lsh::SimHashFamily(dim), split.base, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(10.0);  // paper: 10
  CosineSearcher searcher(&*index, &split.base, searcher_options);

  const auto truth = data::GroundTruthDense(split.base, split.queries, radius,
                                            data::Metric::kCosine, 8);

  // Recall and strategy mix: at least one of each strategy should fire on
  // this density profile.
  double recall = 0;
  int linear_calls = 0;
  std::vector<uint32_t> out;
  QueryStats stats;
  for (size_t q = 0; q < split.queries.size(); ++q) {
    out.clear();
    searcher.Query(split.queries.point(q), radius, &out, &stats);
    recall += data::Recall(out, truth[q]);
    linear_calls += (stats.strategy == Strategy::kLinear);
  }
  recall /= static_cast<double>(split.queries.size());
  EXPECT_GT(recall, 0.9);  // boosted by exact linear answers on hard queries
  EXPECT_GT(linear_calls, 0) << "no hard queries routed to linear";
  EXPECT_LT(linear_calls, 20) << "no easy queries routed to LSH";
}

TEST(IntegrationTest, MnistRegimeHammingFingerprints) {
  // MNIST: dense pixels -> 64-bit SimHash fingerprints -> bit-sampling LSH
  // under Hamming distance, radii 12..17 (paper §4, Figure 2a).
  const size_t dim = 196;
  const uint32_t radius = 14;
  const data::DenseDataset pixels = data::MakeMnistLike(8000, dim, 10, 131);
  const lsh::Fingerprinter fingerprinter(dim, 64, 132);
  auto codes = fingerprinter.Transform(pixels);
  ASSERT_TRUE(codes.ok());
  const data::BinarySplit split = data::SplitQueriesBinary(*codes, 20, 133);

  HammingIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 134;
  options.num_build_threads = 8;
  auto index = HammingIndex::Build(lsh::BitSamplingFamily(64), split.base,
                                   options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(1.0);  // paper: MNIST = 1
  HammingSearcher searcher(&*index, &split.base, searcher_options);

  const auto truth = data::GroundTruthBinary(split.base, split.queries, radius, 8);
  size_t nonempty = 0;
  for (const auto& t : truth) nonempty += !t.empty();
  ASSERT_GT(nonempty, 5u);

  EXPECT_GT(HybridRecall(&searcher, split.queries, radius, truth), 0.85);
}

TEST(IntegrationTest, HybridNeverSlowerThanWorstPureStrategy) {
  // Sanity on the headline claim at small scale: hybrid total time is
  // bounded by ~max(pure LSH, pure linear) per query set (it pays only the
  // O(mL) estimate on top of whichever path it picks).
  const size_t dim = 64;
  const double radius = 0.08;
  data::WebspamLikeConfig config;
  config.n = 6000;
  config.dim = dim;
  config.eps_min = 0.02;
  config.eps_max = 0.25;
  config.seed = 141;
  const data::DenseDataset dataset = data::MakeWebspamLike(config);

  CosineIndex::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 142;
  options.num_build_threads = 8;
  auto index = CosineIndex::Build(lsh::SimHashFamily(dim), dataset, options);
  ASSERT_TRUE(index.ok());

  SearcherOptions searcher_options;
  searcher_options.cost_model = CostModel::FromRatio(10.0);
  CosineSearcher searcher(&*index, &dataset, searcher_options);

  double hybrid_s = 0, lsh_s = 0, linear_s = 0;
  std::vector<uint32_t> out;
  QueryStats stats;
  for (size_t q = 0; q < 40; ++q) {
    const float* query = dataset.point(q * 150);
    out.clear();
    searcher.Query(query, radius, &out, &stats);
    hybrid_s += stats.total_seconds;
    out.clear();
    searcher.QueryLsh(query, radius, &out, &stats);
    lsh_s += stats.total_seconds;
    out.clear();
    searcher.QueryLinear(query, radius, &out, &stats);
    linear_s += stats.total_seconds;
  }
  // Generous 2x margin: timing noise at micro scale, plus the estimate
  // overhead.
  EXPECT_LT(hybrid_s, 2.0 * std::max(lsh_s, linear_s));
}

}  // namespace
}  // namespace hybridlsh
