// Tests for lsh/planner.h: feasibility, optimality against the paper's
// fixed-L rule, and model monotonicity properties.

#include "lsh/planner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lsh/params.h"

namespace hybridlsh {
namespace lsh {
namespace {

PlannerInput DefaultInput() {
  PlannerInput input;
  input.p_near = 0.9;
  input.p_far = 0.55;
  input.near_fraction = 0.01;
  input.n = 100000;
  input.delta = 0.1;
  input.beta_over_alpha = 10.0;
  return input;
}

TEST(PlannerTest, RejectsInvalidInputs) {
  PlannerInput input = DefaultInput();
  input.p_near = 0.0;
  EXPECT_FALSE(PlanParameters(input).ok());
  input = DefaultInput();
  input.p_near = 1.5;
  EXPECT_FALSE(PlanParameters(input).ok());
  input = DefaultInput();
  input.delta = 0.0;
  EXPECT_FALSE(PlanParameters(input).ok());
  input = DefaultInput();
  input.near_fraction = 1.5;
  EXPECT_FALSE(PlanParameters(input).ok());
  input = DefaultInput();
  input.n = 0;
  EXPECT_FALSE(PlanParameters(input).ok());
}

TEST(PlannerTest, PlanMeetsRecallConstraint) {
  const auto plan = PlanParameters(DefaultInput());
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->expected_recall, 1.0 - DefaultInput().delta - 1e-9);
  EXPECT_GE(plan->k, 1);
  EXPECT_GE(plan->num_tables, 1);
}

TEST(PlannerTest, NeverWorseThanPaperRuleUnderModel) {
  // The paper's setting: L = 50, k from AutoK. When that plan actually
  // meets the recall constraint, the planner must find one at most as
  // expensive. (The ceil in AutoK can push the paper plan *below* the
  // 1 - delta recall target — it is then cheaper precisely because it is
  // infeasible, and the comparison would be apples to oranges; the planner
  // must stay feasible in those cases.)
  for (double p_near : {0.7, 0.85, 0.95}) {
    PlannerInput input = DefaultInput();
    input.p_near = p_near;
    auto paper_k = AutoK(p_near, 50, input.delta);
    ASSERT_TRUE(paper_k.ok());
    const Plan paper_plan = EvaluatePlan(input, *paper_k, 50);
    const auto planned = PlanParameters(input);
    ASSERT_TRUE(planned.ok());
    EXPECT_GE(planned->expected_recall, 1.0 - input.delta - 1e-9);
    if (paper_plan.expected_recall >= 1.0 - input.delta - 1e-9) {
      EXPECT_LE(planned->expected_cost, paper_plan.expected_cost + 1e-9)
          << "p_near=" << p_near;
    }
  }
}

TEST(PlannerTest, EvaluatePlanRecallMatchesClosedForm) {
  const PlannerInput input = DefaultInput();
  const Plan plan = EvaluatePlan(input, 10, 50);
  const double per_table = std::pow(input.p_near, 10);
  EXPECT_NEAR(plan.expected_recall, 1.0 - std::pow(1.0 - per_table, 50), 1e-12);
}

TEST(PlannerTest, CertainCollisionIsTrivial) {
  PlannerInput input = DefaultInput();
  input.p_near = 1.0;
  const auto plan = PlanParameters(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->expected_recall, 1.0);
  EXPECT_EQ(plan->num_tables, 1);
}

TEST(PlannerTest, LooserDeltaNeverCostsMore) {
  PlannerInput strict = DefaultInput();
  strict.delta = 0.05;
  PlannerInput loose = DefaultInput();
  loose.delta = 0.3;
  const auto strict_plan = PlanParameters(strict);
  const auto loose_plan = PlanParameters(loose);
  ASSERT_TRUE(strict_plan.ok() && loose_plan.ok());
  EXPECT_LE(loose_plan->expected_cost, strict_plan->expected_cost + 1e-9);
}

TEST(PlannerTest, MoreSelectiveFamilyNeverCostsMore) {
  // Lower p_far (better separation) can only reduce the optimal cost.
  PlannerInput blurry = DefaultInput();
  blurry.p_far = 0.8;
  PlannerInput sharp = DefaultInput();
  sharp.p_far = 0.3;
  const auto blurry_plan = PlanParameters(blurry);
  const auto sharp_plan = PlanParameters(sharp);
  ASSERT_TRUE(blurry_plan.ok() && sharp_plan.ok());
  EXPECT_LE(sharp_plan->expected_cost, blurry_plan->expected_cost + 1e-9);
}

TEST(PlannerTest, DenseOutputsRaiseCost) {
  // More near neighbors means more mandatory candidates: cost grows with
  // the output density.
  PlannerInput sparse = DefaultInput();
  sparse.near_fraction = 0.001;
  PlannerInput dense = DefaultInput();
  dense.near_fraction = 0.3;
  const auto sparse_plan = PlanParameters(sparse);
  const auto dense_plan = PlanParameters(dense);
  ASSERT_TRUE(sparse_plan.ok() && dense_plan.ok());
  EXPECT_GT(dense_plan->expected_cost, sparse_plan->expected_cost);
}

TEST(PlannerTest, InfeasibleBoundsFail) {
  PlannerInput input = DefaultInput();
  input.p_near = 0.3;  // weak family
  input.max_tables = 2;
  input.max_k = 20;
  // With at most 2 tables and p^k tiny, 1-delta = 0.9 is unreachable
  // except at k = 1... p=0.3, k=1, L=2: 1-(0.7)^2 = 0.51 < 0.9.
  EXPECT_EQ(PlanParameters(input).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, CostDecomposesIntoCollisionsAndCandidates) {
  const PlannerInput input = DefaultInput();
  const Plan plan = EvaluatePlan(input, 8, 40);
  EXPECT_NEAR(plan.expected_cost,
              plan.expected_collisions +
                  input.beta_over_alpha * plan.expected_candidates,
              1e-9);
  EXPECT_GT(plan.expected_collisions, 0.0);
  EXPECT_GT(plan.expected_candidates, 0.0);
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
