// Tests for core/batch_query.h: parallel batches must match sequential
// hybrid queries exactly.

#include "core/batch_query.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"

namespace hybridlsh {
namespace core {
namespace {

class BatchQueryTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr double kRadius = 0.4;

  void SetUp() override {
    const data::DenseDataset full = data::MakeCorelLike(4000, kDim, 41);
    const data::DenseSplit split = data::SplitQueries(full, 30, 42);
    dataset_ = split.base;
    queries_ = split.queries;

    L2Index::Options options;
    options.num_tables = 30;
    options.k = 7;
    options.seed = 43;
    options.num_build_threads = 4;
    auto index = L2Index::Build(lsh::PStableFamily::L2(kDim, 2 * kRadius),
                                dataset_, options);
    HLSH_CHECK(index.ok());
    index_ = std::make_unique<L2Index>(std::move(*index));

    options_.cost_model = CostModel::FromRatio(6.0);
  }

  data::DenseDataset dataset_;
  data::DenseDataset queries_;
  std::unique_ptr<L2Index> index_;
  SearcherOptions options_;
};

TEST_F(BatchQueryTest, MatchesSequentialSingleThread) {
  const auto batch = BatchQuery(*index_, dataset_, queries_, kRadius, options_, 1);
  ASSERT_EQ(batch.size(), queries_.size());

  L2Searcher searcher(index_.get(), &dataset_, options_);
  std::vector<uint32_t> expected;
  for (size_t q = 0; q < queries_.size(); ++q) {
    expected.clear();
    QueryStats stats;
    searcher.Query(queries_.point(q), kRadius, &expected, &stats);
    EXPECT_EQ(batch[q].neighbors, expected) << "query " << q;
    EXPECT_EQ(batch[q].stats.strategy, stats.strategy);
  }
}

TEST_F(BatchQueryTest, ThreadCountDoesNotChangeResults) {
  const auto batch1 = BatchQuery(*index_, dataset_, queries_, kRadius, options_, 1);
  const auto batch4 = BatchQuery(*index_, dataset_, queries_, kRadius, options_, 4);
  const auto batch16 =
      BatchQuery(*index_, dataset_, queries_, kRadius, options_, 16);
  ASSERT_EQ(batch1.size(), batch4.size());
  ASSERT_EQ(batch1.size(), batch16.size());
  for (size_t q = 0; q < batch1.size(); ++q) {
    EXPECT_EQ(batch1[q].neighbors, batch4[q].neighbors);
    EXPECT_EQ(batch1[q].neighbors, batch16[q].neighbors);
    EXPECT_EQ(batch1[q].stats.strategy, batch4[q].stats.strategy);
  }
}

TEST_F(BatchQueryTest, MoreThreadsThanQueries) {
  // 30 queries, 64 threads: chunks beyond the range must be skipped.
  const auto batch =
      BatchQuery(*index_, dataset_, queries_, kRadius, options_, 64);
  ASSERT_EQ(batch.size(), queries_.size());
  const auto batch1 = BatchQuery(*index_, dataset_, queries_, kRadius, options_, 1);
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(batch[q].neighbors, batch1[q].neighbors);
  }
}

TEST_F(BatchQueryTest, EmptyQuerySet) {
  const data::DenseDataset empty_queries(0, kDim);
  const auto batch =
      BatchQuery(*index_, dataset_, empty_queries, kRadius, options_, 4);
  EXPECT_TRUE(batch.empty());
}

TEST_F(BatchQueryTest, SummaryAggregates) {
  const auto batch = BatchQuery(*index_, dataset_, queries_, kRadius, options_, 4);
  const BatchSummary summary = Summarize(batch);
  EXPECT_EQ(summary.num_queries, queries_.size());
  EXPECT_GE(summary.max_output, summary.min_output);
  EXPECT_GE(summary.avg_output, static_cast<double>(summary.min_output));
  EXPECT_LE(summary.avg_output, static_cast<double>(summary.max_output));
  EXPECT_GE(summary.pct_linear_calls(), 0.0);
  EXPECT_LE(summary.pct_linear_calls(), 100.0);
  size_t linear = 0;
  for (const auto& result : batch) {
    linear += result.stats.strategy == Strategy::kLinear;
  }
  EXPECT_EQ(summary.linear_calls, linear);
}

TEST_F(BatchQueryTest, RunnerReusesWorkersAcrossBatches) {
  util::ThreadPool pool(4);
  BatchRunner<L2Index, data::DenseDataset> runner(index_.get(), &dataset_,
                                                  options_, &pool);
  EXPECT_EQ(runner.num_workers(), 4u);
  const auto expected =
      BatchQuery(*index_, dataset_, queries_, kRadius, options_, 1);
  for (int round = 0; round < 3; ++round) {
    const auto batch = runner.Run(queries_, kRadius);
    ASSERT_EQ(batch.size(), expected.size());
    for (size_t q = 0; q < batch.size(); ++q) {
      EXPECT_EQ(batch[q].neighbors, expected[q].neighbors)
          << "round " << round << " query " << q;
    }
  }
}

TEST_F(BatchQueryTest, WallSecondsIsElapsedNotSummed) {
  double wall_seconds = 0;
  const auto batch = BatchQuery(*index_, dataset_, queries_, kRadius, options_,
                                4, &wall_seconds);
  EXPECT_GT(wall_seconds, 0.0);
  const BatchSummary summary = Summarize(batch, wall_seconds);
  EXPECT_EQ(summary.wall_seconds, wall_seconds);
  EXPECT_GT(summary.qps(), 0.0);
  // total_seconds sums per-query time across concurrent workers; it is an
  // aggregate CPU measure and can exceed elapsed time, never the reverse
  // beyond scheduling noise. Only sanity-check positivity here.
  EXPECT_GT(summary.total_seconds, 0.0);
}

TEST(BatchSummaryTest, EmptyBatch) {
  const BatchSummary summary = Summarize({});
  EXPECT_EQ(summary.num_queries, 0u);
  EXPECT_EQ(summary.pct_linear_calls(), 0.0);
  EXPECT_EQ(summary.qps(), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace hybridlsh
