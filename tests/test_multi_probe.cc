// Tests for lsh/multi_probe.h: ordering, validity, and exhaustion of the
// perturbation-set generator.

#include "lsh/multi_probe.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hybridlsh {
namespace lsh {
namespace {

double TotalCost(const ProbeSet& set) {
  double total = 0;
  for (const ProbeAtom& atom : set) total += atom.cost;
  return total;
}

TEST(GenerateProbeSetsTest, EmptyAtomsGiveNoSets) {
  EXPECT_TRUE(GenerateProbeSets({}, 10).empty());
}

TEST(GenerateProbeSetsTest, ZeroMaxSetsGiveNoSets) {
  const std::vector<ProbeAtom> atoms{{0, +1, 0.5}};
  EXPECT_TRUE(GenerateProbeSets(atoms, 0).empty());
}

TEST(GenerateProbeSetsTest, FlipAtomsEnumerateSubsetsInCostOrder) {
  // Flip atoms with costs 0.1, 0.2, 0.4 over distinct slots: subsets in
  // cost order are {a}=.1 {b}=.2 {ab}=.3 {c}=.4 {ac}=.5 {bc}=.6 {abc}=.7.
  const std::vector<ProbeAtom> atoms{{0, +1, 0.1}, {1, +1, 0.2}, {2, +1, 0.4}};
  const auto sets = GenerateProbeSets(atoms, 10);
  ASSERT_EQ(sets.size(), 7u);
  const std::vector<double> expected{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(TotalCost(sets[i]), expected[i], 1e-9) << "set " << i;
  }
}

TEST(GenerateProbeSetsTest, CostsAreNonDecreasing) {
  std::vector<ProbeAtom> atoms;
  for (uint32_t i = 0; i < 8; ++i) {
    atoms.push_back({i, -1, 0.05 + 0.1 * i});
    atoms.push_back({i, +1, 0.95 - 0.1 * i});
  }
  const auto sets = GenerateProbeSets(atoms, 40);
  ASSERT_GT(sets.size(), 10u);
  for (size_t i = 1; i < sets.size(); ++i) {
    EXPECT_GE(TotalCost(sets[i]), TotalCost(sets[i - 1]) - 1e-9);
  }
}

TEST(GenerateProbeSetsTest, NeverMovesOneSlotBothWays) {
  std::vector<ProbeAtom> atoms;
  for (uint32_t i = 0; i < 6; ++i) {
    atoms.push_back({i, -1, 0.1 * (i + 1)});
    atoms.push_back({i, +1, 1.0 - 0.1 * (i + 1)});
  }
  const auto sets = GenerateProbeSets(atoms, 100);
  for (const ProbeSet& set : sets) {
    std::set<uint32_t> slots;
    for (const ProbeAtom& atom : set) {
      EXPECT_TRUE(slots.insert(atom.slot).second)
          << "slot " << atom.slot << " appears twice";
    }
  }
}

TEST(GenerateProbeSetsTest, TwoSidedKnownOrder) {
  // Atoms sorted by cost: (s0,-1,.1) (s1,-1,.3) (s1,+1,.7) (s0,+1,.9).
  // Valid sets in cost order: {.1} {.3} {.1,.3}=.4 {.7} {.1,.7}=.8 {.9} ...
  const std::vector<ProbeAtom> atoms{
      {0, -1, 0.1}, {1, -1, 0.3}, {1, +1, 0.7}, {0, +1, 0.9}};
  const auto sets = GenerateProbeSets(atoms, 6);
  ASSERT_GE(sets.size(), 5u);
  EXPECT_NEAR(TotalCost(sets[0]), 0.1, 1e-9);
  EXPECT_NEAR(TotalCost(sets[1]), 0.3, 1e-9);
  EXPECT_NEAR(TotalCost(sets[2]), 0.4, 1e-9);
  EXPECT_NEAR(TotalCost(sets[3]), 0.7, 1e-9);
  EXPECT_NEAR(TotalCost(sets[4]), 0.8, 1e-9);
  // {s1-, s1+} (cost 1.0) must never appear.
  for (const auto& set : sets) {
    if (set.size() == 2 && set[0].slot == set[1].slot) {
      FAIL() << "conflicting set emitted";
    }
  }
}

TEST(GenerateProbeSetsTest, RespectsMaxSets) {
  std::vector<ProbeAtom> atoms;
  for (uint32_t i = 0; i < 10; ++i) atoms.push_back({i, +1, 0.1 * (i + 1)});
  EXPECT_EQ(GenerateProbeSets(atoms, 5).size(), 5u);
  EXPECT_EQ(GenerateProbeSets(atoms, 1).size(), 1u);
}

TEST(GenerateProbeSetsTest, ExhaustsSmallPools) {
  // One atom: only one non-empty subset exists.
  const std::vector<ProbeAtom> atoms{{0, +1, 0.5}};
  EXPECT_EQ(GenerateProbeSets(atoms, 10).size(), 1u);
}

TEST(GenerateProbeSetsTest, FirstSetIsCheapestAtom) {
  const std::vector<ProbeAtom> atoms{
      {3, +1, 0.9}, {1, -1, 0.05}, {2, +1, 0.5}};
  const auto sets = GenerateProbeSets(atoms, 1);
  ASSERT_EQ(sets.size(), 1u);
  ASSERT_EQ(sets[0].size(), 1u);
  EXPECT_EQ(sets[0][0].slot, 1u);
  EXPECT_EQ(sets[0][0].delta, -1);
}

TEST(GenerateProbeSetsTest, EqualCostsAreAllEmitted) {
  // Uniform costs (bit-sampling case): all subsets appear, ordered by size.
  const std::vector<ProbeAtom> atoms{{0, +1, 1.0}, {1, +1, 1.0}, {2, +1, 1.0}};
  const auto sets = GenerateProbeSets(atoms, 7);
  ASSERT_EQ(sets.size(), 7u);
  EXPECT_EQ(sets[0].size(), 1u);
  EXPECT_EQ(sets[1].size(), 1u);
  EXPECT_EQ(sets[2].size(), 1u);
  EXPECT_EQ(sets[6].size(), 3u);
}

TEST(GenerateProbeSetsTest, DuplicateCostsAcrossSlotsStayValid) {
  // Several atoms tie exactly (degenerate queries land on window
  // boundaries): every emitted set must still be slot-unique and the cost
  // sequence non-decreasing, regardless of how the ties sort.
  std::vector<ProbeAtom> atoms;
  for (uint32_t i = 0; i < 5; ++i) {
    atoms.push_back({i, -1, 0.25});
    atoms.push_back({i, +1, 0.25});
  }
  const auto sets = GenerateProbeSets(atoms, 50);
  ASSERT_GT(sets.size(), 5u);
  for (size_t i = 0; i < sets.size(); ++i) {
    std::set<uint32_t> slots;
    for (const ProbeAtom& atom : sets[i]) {
      EXPECT_TRUE(slots.insert(atom.slot).second);
    }
    if (i > 0) EXPECT_GE(TotalCost(sets[i]), TotalCost(sets[i - 1]) - 1e-9);
  }
}

// --- GenerateProbeSetsInto: the scratch-reusing form used per query. -----

TEST(GenerateProbeSetsIntoTest, MatchesAllocatingFormExactly) {
  std::vector<ProbeAtom> atoms;
  for (uint32_t i = 0; i < 7; ++i) {
    atoms.push_back({i, -1, 0.05 + 0.11 * i});
    atoms.push_back({i, +1, 0.97 - 0.12 * i});
  }
  const auto expected = GenerateProbeSets(atoms, 30);

  ProbeGenScratch scratch;
  std::vector<ProbeSet> out;
  const size_t count = GenerateProbeSetsInto(atoms, 30, &scratch, &out);
  ASSERT_EQ(count, expected.size());
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(out[i].size(), expected[i].size()) << "set " << i;
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_EQ(out[i][j].slot, expected[i][j].slot);
      EXPECT_EQ(out[i][j].delta, expected[i][j].delta);
      EXPECT_DOUBLE_EQ(out[i][j].cost, expected[i][j].cost);
    }
  }
}

TEST(GenerateProbeSetsIntoTest, ReusedScratchStaysDeterministic) {
  // Same scratch across many tables/queries (the per-query pattern): every
  // call must reproduce the fresh-scratch output and keep costs
  // non-decreasing, independent of what the previous call left behind.
  std::vector<ProbeAtom> big;
  for (uint32_t i = 0; i < 9; ++i) big.push_back({i, +1, 0.1 * (i + 1)});
  const std::vector<ProbeAtom> small{{0, -1, 0.4}, {1, +1, 0.2}, {2, -1, 0.6}};
  const auto expect_big = GenerateProbeSets(big, 25);
  const auto expect_small = GenerateProbeSets(small, 25);

  ProbeGenScratch scratch;
  std::vector<ProbeSet> out;
  for (int round = 0; round < 4; ++round) {
    const auto& atoms = (round % 2 == 0) ? big : small;
    const auto& expected = (round % 2 == 0) ? expect_big : expect_small;
    const size_t count = GenerateProbeSetsInto(atoms, 25, &scratch, &out);
    ASSERT_EQ(count, expected.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(TotalCost(out[i]), TotalCost(expected[i]), 1e-12);
      if (i > 0) EXPECT_GE(TotalCost(out[i]), TotalCost(out[i - 1]) - 1e-9);
    }
  }
}

TEST(GenerateProbeSetsIntoTest, PoolExhaustionShrinksReusedOutput) {
  // A big emission followed by a tiny pool must resize *out down — stale
  // sets from the previous query may not leak into this one.
  std::vector<ProbeAtom> big;
  for (uint32_t i = 0; i < 6; ++i) big.push_back({i, +1, 0.1 * (i + 1)});
  const std::vector<ProbeAtom> tiny{{0, +1, 0.5}};

  ProbeGenScratch scratch;
  std::vector<ProbeSet> out;
  ASSERT_GT(GenerateProbeSetsInto(big, 40, &scratch, &out), 1u);
  const size_t count = GenerateProbeSetsInto(tiny, 40, &scratch, &out);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0][0].slot, 0u);
}

TEST(GenerateProbeSetsIntoTest, EmptyAtomsClearReusedOutput) {
  const std::vector<ProbeAtom> atoms{{0, +1, 0.3}, {1, +1, 0.4}};
  ProbeGenScratch scratch;
  std::vector<ProbeSet> out;
  ASSERT_GT(GenerateProbeSetsInto(atoms, 10, &scratch, &out), 0u);
  EXPECT_EQ(GenerateProbeSetsInto({}, 10, &scratch, &out), 0u);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
