// Integration-level tests for lsh/index.h across all families:
//   * Build validation and determinism;
//   * the (1 - delta) recall guarantee with auto-tuned k on planted
//     neighbors (the property the paper's parameter rule must deliver);
//   * EstimateProbe: exact collision counts and HLL candSize accuracy,
//     including the small-bucket on-demand path;
//   * multi-probe candidate growth.

#include "lsh/index.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/workload.h"
#include "lsh/families.h"

namespace hybridlsh {
namespace lsh {
namespace {

using data::BinaryDataset;
using data::DenseDataset;

// Shared L2 fixture: mixture data + planted neighbors around 20 queries.
class L2IndexTest : public ::testing::Test {
 protected:
  static constexpr double kRadius = 0.4;
  static constexpr size_t kDim = 16;

  void SetUp() override {
    dataset_ = data::MakeCorelLike(4000, kDim, 1);
    util::Rng rng(99);
    queries_ = DenseDataset(0, kDim);
    for (int q = 0; q < 20; ++q) {
      std::vector<float> query(kDim);
      const size_t base = static_cast<size_t>(rng.UniformInt(0, 3999));
      for (size_t j = 0; j < kDim; ++j) query[j] = dataset_.point(base)[j];
      data::PlantNeighborsL2(&dataset_, query.data(), kRadius, 8, &rng);
      queries_.Append(query);
    }
  }

  LshIndex<PStableFamily>::Options AutoOptions() const {
    LshIndex<PStableFamily>::Options options;
    options.num_tables = 50;
    options.k = 0;
    options.delta = 0.1;
    options.radius = kRadius;
    options.seed = 42;
    options.num_build_threads = 4;
    return options;
  }

  PStableFamily Family() const {
    return PStableFamily::L2(kDim, 2 * kRadius);  // paper: w = 2r
  }

  DenseDataset dataset_;
  DenseDataset queries_;
};

TEST_F(L2IndexTest, BuildValidatesOptions) {
  auto options = AutoOptions();
  options.num_tables = 0;
  EXPECT_FALSE(LshIndex<PStableFamily>::Build(Family(), dataset_, options).ok());

  options = AutoOptions();
  options.hll_precision = 1;
  EXPECT_FALSE(LshIndex<PStableFamily>::Build(Family(), dataset_, options).ok());

  options = AutoOptions();
  options.radius = 0;  // k auto without radius
  EXPECT_FALSE(LshIndex<PStableFamily>::Build(Family(), dataset_, options).ok());

  options = AutoOptions();
  options.k = -3;
  EXPECT_FALSE(LshIndex<PStableFamily>::Build(Family(), dataset_, options).ok());

  const DenseDataset empty(0, kDim);
  EXPECT_FALSE(
      LshIndex<PStableFamily>::Build(Family(), empty, AutoOptions()).ok());
}

TEST_F(L2IndexTest, StatsArePopulated) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  const auto& stats = index->stats();
  EXPECT_EQ(stats.num_points, dataset_.size());
  EXPECT_EQ(stats.num_tables, 50);
  EXPECT_GT(stats.k, 0);
  EXPECT_GT(stats.p1_at_radius, 0.5);
  // The ceil in the paper's k rule can land slightly under 1 - delta.
  EXPECT_GT(stats.recall_lower_bound, 0.75);
  EXPECT_GT(stats.total_buckets, 50u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST_F(L2IndexTest, ExplicitKOverridesAuto) {
  auto options = AutoOptions();
  options.k = 5;
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->k(), 5);
  EXPECT_EQ(index->stats().p1_at_radius, 0.0);  // not derived
}

TEST_F(L2IndexTest, DeterministicAcrossRebuilds) {
  auto a = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  auto b = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<uint64_t> keys_a, keys_b;
  for (size_t q = 0; q < queries_.size(); ++q) {
    a->QueryKeys(queries_.point(q), &keys_a);
    b->QueryKeys(queries_.point(q), &keys_b);
    EXPECT_EQ(keys_a, keys_b);
  }
}

TEST_F(L2IndexTest, RecallMeetsGuaranteeOnPlantedNeighbors) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  util::VisitedSet visited(dataset_.size());
  std::vector<uint64_t> keys;
  size_t found = 0, total = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset_, queries_.point(q),
                                            kRadius, data::Metric::kL2);
    ASSERT_GE(truth.size(), 8u);  // planted neighbors exist
    visited.Reset();
    index->QueryKeys(queries_.point(q), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) {
      found += visited.Contains(id);
    }
    total += truth.size();
  }
  const double recall = static_cast<double>(found) / static_cast<double>(total);
  // Guarantee is >= 1 - delta = 0.9 per point; allow sampling noise.
  EXPECT_GT(recall, 0.85) << "found " << found << "/" << total;
}

TEST_F(L2IndexTest, EstimateProbeCollisionsAreExact) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  auto scratch = index->MakeScratchSketch();
  util::VisitedSet visited(dataset_.size());
  std::vector<uint64_t> keys;
  for (size_t q = 0; q < queries_.size(); ++q) {
    index->QueryKeys(queries_.point(q), &keys);
    const auto estimate = index->EstimateProbe(keys, &scratch);
    visited.Reset();
    const uint64_t collected = index->CollectCandidates(keys, &visited);
    EXPECT_EQ(estimate.collisions, collected);
  }
}

TEST_F(L2IndexTest, RepeatedProbeKeysCountEachBucketOnce) {
  // Multi-probe key lists can repeat a bucket beyond the home-key padding:
  // distinct perturbations may collide on one key. Every repeat within a
  // table must be skipped, or collisions double-count and the merged HLL
  // re-merges the same sketch.
  auto options = AutoOptions();
  options.k = 6;
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, options);
  ASSERT_TRUE(index.ok());

  std::vector<uint64_t> home, other;
  index->QueryKeys(queries_.point(0), &home);
  index->QueryKeys(dataset_.point(0), &other);  // non-empty buckets
  const size_t L = home.size();

  // Per table: [home, other, other] — a repeated NON-home probe.
  std::vector<uint64_t> keys(L * 3);
  uint64_t expected = 0;
  for (size_t t = 0; t < L; ++t) {
    keys[t * 3] = home[t];
    keys[t * 3 + 1] = other[t];
    keys[t * 3 + 2] = other[t];
    expected += index->Bucket(t, home[t]).size();
    if (other[t] != home[t]) expected += index->Bucket(t, other[t]).size();
  }
  ASSERT_GT(expected, 0u);  // dataset point 0 sits in its own buckets

  auto scratch = index->MakeScratchSketch();
  const auto estimate = index->EstimateProbe(keys, &scratch);
  EXPECT_EQ(estimate.collisions, expected);

  util::VisitedSet visited(dataset_.size());
  EXPECT_EQ(index->CollectCandidates(keys, &visited), expected);
}

TEST_F(L2IndexTest, EstimateProbeCandSizeIsAccurate) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  auto scratch = index->MakeScratchSketch();
  util::VisitedSet visited(dataset_.size());
  std::vector<uint64_t> keys;
  double total_rel_err = 0;
  size_t measured = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    index->QueryKeys(queries_.point(q), &keys);
    const auto estimate = index->EstimateProbe(keys, &scratch);
    visited.Reset();
    index->CollectCandidates(keys, &visited);
    const double actual = static_cast<double>(visited.size());
    if (actual < 20) continue;  // relative error meaningless on tiny counts
    total_rel_err += std::abs(estimate.cand_estimate - actual) / actual;
    ++measured;
  }
  ASSERT_GT(measured, 0u);
  // Paper Table 1 observes ~6-7% at m = 128; be generous but meaningful.
  EXPECT_LT(total_rel_err / static_cast<double>(measured), 0.15);
}

TEST_F(L2IndexTest, OnDemandSmallBucketsMatchMaterializedSketches) {
  // Estimates must agree (exactly, register-wise) whether sketches are
  // materialized for all buckets or folded on demand for all buckets.
  auto options_all = AutoOptions();
  options_all.small_bucket_threshold = 0;  // sketch everything
  auto options_none = AutoOptions();
  // NOTE: SIZE_MAX is the kThresholdAuto sentinel; "never sketch" is any
  // threshold above the largest possible bucket.
  options_none.small_bucket_threshold = dataset_.size() + 1;

  auto index_all =
      LshIndex<PStableFamily>::Build(Family(), dataset_, options_all);
  auto index_none =
      LshIndex<PStableFamily>::Build(Family(), dataset_, options_none);
  ASSERT_TRUE(index_all.ok() && index_none.ok());
  EXPECT_GT(index_all->stats().total_sketches, 0u);
  EXPECT_EQ(index_none->stats().total_sketches, 0u);
  EXPECT_GT(index_all->stats().sketch_bytes, index_none->stats().sketch_bytes);

  auto scratch_all = index_all->MakeScratchSketch();
  auto scratch_none = index_none->MakeScratchSketch();
  std::vector<uint64_t> keys_all, keys_none;
  for (size_t q = 0; q < queries_.size(); ++q) {
    index_all->QueryKeys(queries_.point(q), &keys_all);
    index_none->QueryKeys(queries_.point(q), &keys_none);
    ASSERT_EQ(keys_all, keys_none);  // same seed, same functions
    const auto est_all = index_all->EstimateProbe(keys_all, &scratch_all);
    const auto est_none = index_none->EstimateProbe(keys_none, &scratch_none);
    EXPECT_EQ(est_all.collisions, est_none.collisions);
    EXPECT_DOUBLE_EQ(est_all.cand_estimate, est_none.cand_estimate);
  }
}

TEST_F(L2IndexTest, MultiProbeGrowsCandidates) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  util::VisitedSet visited(dataset_.size());
  std::vector<uint64_t> keys1, keys4;
  size_t cand1 = 0, cand4 = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    index->QueryKeys(queries_.point(q), &keys1);
    ASSERT_TRUE(index->QueryKeysMultiProbe(queries_.point(q), 4, &keys4).ok());
    EXPECT_EQ(keys4.size(), 4 * keys1.size());
    // Home buckets are the first key of each group.
    for (size_t t = 0; t < keys1.size(); ++t) {
      EXPECT_EQ(keys4[4 * t], keys1[t]);
    }
    visited.Reset();
    index->CollectCandidates(keys1, &visited);
    cand1 += visited.size();
    visited.Reset();
    index->CollectCandidates(keys4, &visited);
    cand4 += visited.size();
  }
  EXPECT_GT(cand4, cand1);  // probing strictly widens the candidate pool
}

TEST_F(L2IndexTest, MultiProbeRejectsZeroProbes) {
  auto index = LshIndex<PStableFamily>::Build(Family(), dataset_, AutoOptions());
  ASSERT_TRUE(index.ok());
  std::vector<uint64_t> keys;
  EXPECT_FALSE(index->QueryKeysMultiProbe(queries_.point(0), 0, &keys).ok());
}

// --- Cross-family recall sweep ----------------------------------------------

struct FamilyCase {
  std::string name;
};

// SimHash on cosine distance.
TEST(SimHashIndexTest, RecallOnPlantedNeighbors) {
  const size_t dim = 32;
  const double radius = 0.15;
  DenseDataset dataset = data::MakeWebspamLike({.n = 3000, .dim = dim, .seed = 5});
  util::Rng rng(7);
  DenseDataset queries(0, dim);
  for (int q = 0; q < 15; ++q) {
    std::vector<float> query(dim);
    for (size_t j = 0; j < dim; ++j) {
      query[j] = dataset.point(static_cast<size_t>(q) * 100)[j];
    }
    data::PlantNeighborsCosine(&dataset, query.data(), radius, 6, &rng);
    queries.Append(query);
  }

  LshIndex<SimHashFamily>::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 3;
  options.num_build_threads = 4;
  auto index = LshIndex<SimHashFamily>::Build(SimHashFamily(dim), dataset,
                                              options);
  ASSERT_TRUE(index.ok());

  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  size_t found = 0, total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset, queries.point(q), radius,
                                            data::Metric::kCosine);
    visited.Reset();
    index->QueryKeys(queries.point(q), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) found += visited.Contains(id);
    total += truth.size();
  }
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.85);
}

// L1 with Cauchy projections.
TEST(L1IndexTest, RecallOnPlantedNeighbors) {
  const size_t dim = 16;
  const double radius = 50.0;
  DenseDataset dataset = data::MakeCovtypeLike(3000, dim, 2);
  util::Rng rng(8);
  DenseDataset queries(0, dim);
  for (int q = 0; q < 15; ++q) {
    std::vector<float> query(dim);
    for (size_t j = 0; j < dim; ++j) {
      query[j] = dataset.point(static_cast<size_t>(q) * 150)[j];
    }
    data::PlantNeighborsL1(&dataset, query.data(), radius, 6, &rng);
    queries.Append(query);
  }

  LshIndex<PStableFamily>::Options options;
  options.num_tables = 50;
  options.k = 0;  // auto from (radius, delta), paper's rule
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 4;
  options.num_build_threads = 4;
  auto index = LshIndex<PStableFamily>::Build(
      PStableFamily::L1(dim, 4 * radius), dataset, options);
  ASSERT_TRUE(index.ok());

  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  size_t found = 0, total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanDense(dataset, queries.point(q), radius,
                                            data::Metric::kL1);
    visited.Reset();
    index->QueryKeys(queries.point(q), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) found += visited.Contains(id);
    total += truth.size();
  }
  // CovType-like truth includes many quantized grid points right at the
  // radius boundary, where the ceil in the k rule leaves per-point recall
  // around 0.86 rather than 0.9 (see RecallLowerBoundTest.CeiledKIsClose).
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.80);
}

// Bit sampling on Hamming codes.
TEST(HammingIndexTest, RecallOnPlantedNeighbors) {
  const size_t width = 64;
  const uint32_t radius = 8;
  BinaryDataset dataset = data::MakeRandomCodes(4000, width, 3);
  util::Rng rng(9);
  BinaryDataset queries(0, width);
  for (int q = 0; q < 15; ++q) {
    std::vector<uint64_t> query(dataset.words_per_code());
    for (size_t w = 0; w < query.size(); ++w) {
      query[w] = dataset.point(static_cast<size_t>(q) * 250)[w];
    }
    data::PlantNeighborsHamming(&dataset, query.data(), radius, 6, &rng);
    queries.Append(query.data());
  }

  LshIndex<BitSamplingFamily>::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 5;
  options.num_build_threads = 4;
  auto index = LshIndex<BitSamplingFamily>::Build(BitSamplingFamily(width),
                                                  dataset, options);
  ASSERT_TRUE(index.ok());

  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  size_t found = 0, total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanBinary(dataset, queries.point(q), radius);
    visited.Reset();
    index->QueryKeys(queries.point(q), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) found += visited.Contains(id);
    total += truth.size();
  }
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.85);
}

// MinHash on Jaccard sets.
TEST(MinHashIndexTest, RecallOnSimilarSets) {
  const uint32_t universe = 2000;
  const double radius = 0.3;
  data::SparseDataset dataset = data::MakeRandomSparse(2000, universe, 40, 6);
  // Queries are dataset points; their neighbors are near-duplicates we add.
  std::vector<size_t> query_ids;
  util::Rng rng(10);
  for (int q = 0; q < 10; ++q) {
    const size_t qid = static_cast<size_t>(q) * 180;
    query_ids.push_back(qid);
    // Plant 4 near-duplicates: drop ~10% of elements.
    for (int c = 0; c < 4; ++c) {
      std::vector<uint32_t> copy;
      for (uint32_t e : dataset.point(qid)) {
        if (!rng.Bernoulli(0.1)) copy.push_back(e);
      }
      if (copy.empty()) copy.push_back(dataset.point(qid)[0]);
      ASSERT_TRUE(dataset.Append(copy).ok());
    }
  }

  LshIndex<MinHashFamily>::Options options;
  options.num_tables = 50;
  options.delta = 0.1;
  options.radius = radius;
  options.seed = 6;
  options.num_build_threads = 4;
  auto index =
      LshIndex<MinHashFamily>::Build(MinHashFamily(), dataset, options);
  ASSERT_TRUE(index.ok());

  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  size_t found = 0, total = 0;
  for (size_t qid : query_ids) {
    const auto truth = data::RangeScanSparse(dataset, dataset.point(qid), radius);
    ASSERT_GE(truth.size(), 5u);  // itself + planted near-duplicates
    visited.Reset();
    index->QueryKeys(dataset.point(qid), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) found += visited.Contains(id);
    total += truth.size();
  }
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.85);
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
