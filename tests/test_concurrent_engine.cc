// Stress tests for the concurrent serving core (engine/sharded_engine.h +
// engine/segmented_index.h): reader threads run QueryConcurrent on their own
// QueryScratch while a writer thread inserts, removes, and compacts, with
// background seal/compaction enabled. The suite checks the two guarantees
// the lock-free path makes:
//
//   1. Soundness — every reported id is within the radius and was live at
//      some point during the query. In particular a Remove whose completion
//      happened-before the query started (proved by a release/acquire
//      epoch handshake) is never reported: the remove's tombstone store is
//      release-ordered before the epoch publication the reader acquires.
//   2. Visibility — under kAlwaysLinear (the exact path), every
//      never-removed id whose Insert happened-before the query start is
//      reported when in radius: the insert's count store is release-ordered
//      before the epoch publication, so the reader's snapshot covers it.
//
// The tests are also the TSan workload for the engine (.github/workflows):
// they exercise epoch publication, tombstone bits, the packed live/dead
// counter, concurrent stats() polling, and the background maintenance
// rate limit all at once.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybridlsh.h"
#include "engine/sharded_engine.h"

namespace hybridlsh {
namespace engine {
namespace {

using Engine = ShardedEngine<lsh::PStableFamily>;

std::vector<uint32_t> Sorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr double kRadius = 0.4;

  void SetUp() override {
    const data::DenseDataset full = data::MakeCorelLike(1201, kDim, 61);
    const data::DenseSplit split = data::SplitQueries(full, 16, 62);
    base_ = split.base;
    queries_ = split.queries;
    incoming_ = data::MakeCorelLike(1500, kDim, 63);

    index_options_.num_tables = 15;
    index_options_.k = 7;
    index_options_.seed = 64;
    searcher_options_.cost_model = core::CostModel::FromRatio(6.0);
  }

  Engine MakeEngine(data::DenseDataset* dataset, size_t num_shards,
                    core::ForcedStrategy forced) {
    Engine::Options options;
    options.num_shards = num_shards;
    options.index = index_options_;
    // Small thresholds so the churn below drives many background seals and
    // watermark compactions while queries are in flight.
    options.active_seal_threshold = 64;
    options.max_sealed_segments = 2;
    options.searcher = searcher_options_;
    options.searcher.forced = forced;
    auto engine = Engine::Build(Family(), dataset, options);
    HLSH_CHECK(engine.ok());
    return std::move(*engine);
  }

  static lsh::PStableFamily Family() {
    return lsh::PStableFamily::L2(kDim, 2 * kRadius);
  }

  data::DenseDataset base_;
  data::DenseDataset queries_;
  data::DenseDataset incoming_;
  L2Index::Options index_options_;
  core::SearcherOptions searcher_options_;
};

// The epoch handshake: the writer publishes a monotone counter AFTER each
// completed mutation (release); a reader loads it BEFORE starting a query
// (acquire). Any mutation whose epoch the reader observed happened-before
// the query, so its effect must be visible to the query's snapshot.
struct MutationClock {
  explicit MutationClock(size_t max_ids)
      : removed_at(max_ids), inserted_at(max_ids) {
    for (auto& e : removed_at) e.store(0, std::memory_order_relaxed);
    for (auto& e : inserted_at) e.store(0, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> epoch{0};
  // Epoch at which id's Remove/Insert completed; 0 = never.
  std::vector<std::atomic<uint64_t>> removed_at;
  std::vector<std::atomic<uint64_t>> inserted_at;

  void RecordRemove(uint32_t id) {
    const uint64_t e = epoch.load(std::memory_order_relaxed) + 1;
    removed_at[id].store(e, std::memory_order_release);
    epoch.store(e, std::memory_order_release);
  }
  void RecordInsert(uint32_t id) {
    const uint64_t e = epoch.load(std::memory_order_relaxed) + 1;
    inserted_at[id].store(e, std::memory_order_release);
    epoch.store(e, std::memory_order_release);
  }
};

TEST_F(ConcurrentEngineTest, ChurnStressSoundUnderConcurrentReaders) {
  data::DenseDataset dataset = base_;  // grows with inserts
  Engine engine = MakeEngine(&dataset, 2, core::ForcedStrategy::kAuto);

  const size_t kInserts = 1200;
  const size_t max_ids = base_.size() + kInserts;
  MutationClock clock(max_ids);
  for (size_t id = 0; id < base_.size(); ++id) {
    clock.inserted_at[id].store(1, std::memory_order_relaxed);
  }
  clock.epoch.store(1, std::memory_order_relaxed);

  std::atomic<bool> done{false};
  std::atomic<size_t> violations{0};
  std::atomic<size_t> reader_queries{0};

  const size_t kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Engine::QueryScratch scratch = engine.MakeQueryScratch();
      std::vector<uint32_t> out;
      size_t q = r;
      do {  // do-while: every reader completes at least one query
        const auto query = queries_.point(q % queries_.size());
        ++q;
        const uint64_t start_epoch =
            clock.epoch.load(std::memory_order_acquire);
        out.clear();
        ShardedQueryStats stats;
        engine.QueryConcurrent(query, kRadius, &out, &scratch, &stats);
        reader_queries.fetch_add(1, std::memory_order_relaxed);
        if (stats.output_size != out.size()) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        for (const uint32_t id : out) {
          // Sound id: in range, within radius (same float kernel family,
          // so allow a hair of rounding), and not removed before start.
          if (id >= max_ids) {
            violations.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const double dist =
              engine.shard_index(0).Distance(dataset.point(id), query);
          if (dist > kRadius * (1.0 + 1e-4)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          const uint64_t removed =
              clock.removed_at[id].load(std::memory_order_acquire);
          if (removed != 0 && removed <= start_epoch) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }

  // A stats poller: satellite guarantee that size()/stats() are safe to
  // read while writers and maintenance run.
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      // Live count first: num_points (the dataset size) only grows, so a
      // later stats() read can never be smaller than an earlier size().
      const size_t live = engine.size();
      const EngineStats stats = engine.stats();
      if (stats.memory_bytes == 0 || live > stats.num_points) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  // Writer: interleaved inserts, removes, and periodic full compactions.
  util::Rng rng(65);
  size_t removed_count = 0;
  for (size_t i = 0; i < kInserts; ++i) {
    auto id = engine.Insert(incoming_.point(i % incoming_.size()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    clock.RecordInsert(*id);
    if (i % 3 == 0) {
      const uint32_t victim = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(dataset.size() - 1)));
      if (clock.removed_at[victim].load(std::memory_order_relaxed) == 0) {
        ASSERT_TRUE(engine.Remove(victim).ok());
        clock.RecordRemove(victim);
        ++removed_count;
      }
    }
    if (i == kInserts / 2) engine.CompactAll();
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  poller.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reader_queries.load(), 0u);

  // Quiesced accounting: the packed counters agree with the mutation log.
  engine.DrainMaintenance();
  EXPECT_EQ(engine.size(), base_.size() + kInserts - removed_count);

  // Quiesced equivalence: the lock-free path and the legacy fan-out see
  // the same index.
  Engine::QueryScratch scratch = engine.MakeQueryScratch();
  for (size_t q = 0; q < queries_.size(); ++q) {
    std::vector<uint32_t> concurrent_out;
    std::vector<uint32_t> legacy_out;
    engine.QueryConcurrent(queries_.point(q), kRadius, &concurrent_out,
                           &scratch);
    engine.Query(queries_.point(q), kRadius, &legacy_out);
    EXPECT_EQ(Sorted(concurrent_out), Sorted(legacy_out)) << "query " << q;
  }
}

TEST_F(ConcurrentEngineTest, LinearPathSeesEveryInsertThatHappenedBefore) {
  data::DenseDataset dataset = base_;
  Engine engine =
      MakeEngine(&dataset, 2, core::ForcedStrategy::kAlwaysLinear);

  const size_t kInserts = 900;
  const size_t max_ids = base_.size() + kInserts;
  MutationClock clock(max_ids);
  for (size_t id = 0; id < base_.size(); ++id) {
    clock.inserted_at[id].store(1, std::memory_order_relaxed);
  }
  clock.epoch.store(1, std::memory_order_relaxed);

  std::atomic<bool> done{false};
  std::atomic<size_t> violations{0};

  const size_t kReaders = 2;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Engine::QueryScratch scratch = engine.MakeQueryScratch();
      std::vector<uint32_t> out;
      std::vector<char> reported;
      size_t q = r;
      while (!done.load(std::memory_order_acquire)) {
        const auto query = queries_.point(q % queries_.size());
        ++q;
        const uint64_t start_epoch =
            clock.epoch.load(std::memory_order_acquire);
        out.clear();
        engine.QueryConcurrent(query, kRadius, &out, &scratch);
        reported.assign(max_ids, 0);
        for (const uint32_t id : out) {
          if (id >= max_ids) {
            violations.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          reported[id] = 1;
        }
        // Completeness: ids published before the query started (no removes
        // in this test) must be reported when strictly inside the radius —
        // the margin keeps float rounding between the scalar check here
        // and the batched verify kernel from flaking the test.
        for (uint32_t id = 0; id < max_ids; ++id) {
          if (reported[id]) continue;
          const uint64_t inserted =
              clock.inserted_at[id].load(std::memory_order_acquire);
          if (inserted == 0 || inserted > start_epoch) continue;
          const double dist =
              engine.shard_index(0).Distance(dataset.point(id), query);
          if (dist <= kRadius * (1.0 - 1e-4)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (size_t i = 0; i < kInserts; ++i) {
    auto id = engine.Insert(incoming_.point(i % incoming_.size()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    clock.RecordInsert(*id);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0u);
  engine.DrainMaintenance();
  EXPECT_EQ(engine.size(), base_.size() + kInserts);
}

TEST_F(ConcurrentEngineTest, InlineModeKeepsDeterministicLifecycle) {
  data::DenseDataset dataset = base_;
  Engine::Options options;
  options.num_shards = 2;
  options.index = index_options_;
  options.active_seal_threshold = 8;
  options.max_sealed_segments = 4;
  options.background_maintenance = false;  // standalone inline behavior
  options.searcher = searcher_options_;
  auto built = Engine::Build(Family(), &dataset, options);
  ASSERT_TRUE(built.ok());
  Engine engine = std::move(*built);

  // 40 inserts round-robin over 2 shards = 20 each; with inline sealing at
  // threshold 8 every shard has exactly 20 % 8 = 4 active points and two
  // freshly sealed ingest segments, observable immediately — no drain, no
  // scheduling race.
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Insert(incoming_.point(i)).ok());
  }
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const auto lifecycle = engine.shard_index(s).lifecycle();
    EXPECT_EQ(lifecycle.active_points, 4u) << "shard " << s;
    EXPECT_EQ(lifecycle.pending_seal_logs, 0u) << "shard " << s;
    EXPECT_EQ(lifecycle.sealed_segments, 3u) << "shard " << s;  // initial + 2
  }
  engine.DrainMaintenance();  // no-op without a maintenance thread
}

// Background maintenance must also drain cleanly when the engine is
// destroyed mid-churn (tasks capture shard pointers; the group waits
// before any shard dies).
TEST_F(ConcurrentEngineTest, DestructionDrainsPendingMaintenance) {
  data::DenseDataset dataset = base_;
  {
    Engine engine = MakeEngine(&dataset, 2, core::ForcedStrategy::kAuto);
    for (size_t i = 0; i < 400; ++i) {
      ASSERT_TRUE(engine.Insert(incoming_.point(i)).ok());
    }
    // Engine goes out of scope with seal tasks likely still queued.
  }
  SUCCEED();
}

}  // namespace
}  // namespace engine
}  // namespace hybridlsh
