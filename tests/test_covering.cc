// Tests for lsh/covering.h, most importantly the scheme's defining
// property: ZERO false negatives for Hamming distance <= r. Unlike the
// probabilistic recall of classic LSH, this holds deterministically for
// every query, which makes it an exact (not statistical) test.

#include "lsh/covering.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/workload.h"

namespace hybridlsh {
namespace lsh {
namespace {

using data::BinaryDataset;

CoveringLshIndex::Options MakeOptions(uint32_t radius) {
  CoveringLshIndex::Options options;
  options.radius = radius;
  options.seed = 11;
  options.num_build_threads = 4;
  return options;
}

TEST(CoveringLshTest, BuildValidatesOptions) {
  const BinaryDataset dataset = data::MakeRandomCodes(100, 64, 1);
  EXPECT_FALSE(CoveringLshIndex::Build(dataset, MakeOptions(0)).ok());
  EXPECT_FALSE(CoveringLshIndex::Build(dataset, MakeOptions(13)).ok());
  const BinaryDataset empty(0, 64);
  EXPECT_FALSE(CoveringLshIndex::Build(empty, MakeOptions(2)).ok());
  auto bad_precision = MakeOptions(2);
  bad_precision.hll_precision = 30;
  EXPECT_FALSE(CoveringLshIndex::Build(dataset, bad_precision).ok());
}

TEST(CoveringLshTest, TableCountIsExponential) {
  const BinaryDataset dataset = data::MakeRandomCodes(100, 64, 1);
  for (uint32_t r : {1u, 2u, 3u, 4u}) {
    auto index = CoveringLshIndex::Build(dataset, MakeOptions(r));
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(index->num_tables(), (1 << (r + 1)) - 1) << "r=" << r;
    EXPECT_EQ(index->radius(), r);
  }
}

class CoveringNoFalseNegatives : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoveringNoFalseNegatives, EveryNeighborWithinRadiusIsFound) {
  const uint32_t radius = GetParam();
  BinaryDataset dataset = data::MakeRandomCodes(800, 64, radius);
  util::Rng rng(radius * 7 + 1);

  // Queries with planted neighbors at distance in [1, radius].
  BinaryDataset queries(0, 64);
  for (int q = 0; q < 10; ++q) {
    const uint64_t query = dataset.point(static_cast<size_t>(q) * 70)[0];
    data::PlantNeighborsHamming(&dataset, &query, radius, 5, &rng);
    queries.Append(&query);
  }

  auto index = CoveringLshIndex::Build(dataset, MakeOptions(radius));
  ASSERT_TRUE(index.ok());

  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto truth = data::RangeScanBinary(dataset, queries.point(q), radius);
    ASSERT_GE(truth.size(), 5u);
    visited.Reset();
    index->QueryKeys(queries.point(q), &keys);
    index->CollectCandidates(keys, &visited);
    for (uint32_t id : truth) {
      EXPECT_TRUE(visited.Contains(id))
          << "false negative at radius " << radius << ": id " << id
          << " at distance "
          << data::HammingDistance(dataset.point(id), queries.point(q), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RadiusSweep, CoveringNoFalseNegatives,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(CoveringLshTest, WiderCodesAlsoCovered) {
  const uint32_t radius = 3;
  BinaryDataset dataset = data::MakeRandomCodes(400, 256, 5);
  util::Rng rng(99);
  std::vector<uint64_t> query(dataset.words_per_code());
  for (size_t w = 0; w < query.size(); ++w) query[w] = dataset.point(10)[w];
  data::PlantNeighborsHamming(&dataset, query.data(), radius, 8, &rng);

  auto index = CoveringLshIndex::Build(dataset, MakeOptions(radius));
  ASSERT_TRUE(index.ok());
  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  index->QueryKeys(query.data(), &keys);
  index->CollectCandidates(keys, &visited);
  const auto truth = data::RangeScanBinary(dataset, query.data(), radius);
  for (uint32_t id : truth) EXPECT_TRUE(visited.Contains(id));
}

TEST(CoveringLshTest, EstimateProbeCollisionsMatchCollect) {
  const BinaryDataset dataset = data::MakeRandomCodes(1000, 64, 2);
  auto index = CoveringLshIndex::Build(dataset, MakeOptions(3));
  ASSERT_TRUE(index.ok());
  auto scratch = index->MakeScratchSketch();
  util::VisitedSet visited(dataset.size());
  std::vector<uint64_t> keys;
  for (size_t q = 0; q < 10; ++q) {
    index->QueryKeys(dataset.point(q * 100), &keys);
    const auto estimate = index->EstimateProbe(keys, &scratch);
    visited.Reset();
    EXPECT_EQ(index->CollectCandidates(keys, &visited), estimate.collisions);
    EXPECT_GE(estimate.cand_estimate, 0.0);
  }
}

TEST(CoveringLshTest, DistanceIsHamming) {
  const BinaryDataset dataset = data::MakeRandomCodes(10, 64, 2);
  auto index = CoveringLshIndex::Build(dataset, MakeOptions(2));
  ASSERT_TRUE(index.ok());
  const uint64_t a = 0, b = 0xf;
  EXPECT_DOUBLE_EQ(index->Distance(&a, &b), 4.0);
}

TEST(CoveringLshTest, MemoryAccounted) {
  const BinaryDataset dataset = data::MakeRandomCodes(500, 64, 2);
  auto index = CoveringLshIndex::Build(dataset, MakeOptions(2));
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->MemoryBytes(), 500u * 3u * sizeof(uint32_t));
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
