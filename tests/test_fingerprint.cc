// Tests for lsh/fingerprint.h: the SimHash fingerprint pipeline used by
// the paper's MNIST experiment (dense vectors -> 64-bit Hamming codes).

#include "lsh/fingerprint.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>

#include "data/metric.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace hybridlsh {
namespace lsh {
namespace {

TEST(FingerprinterTest, ShapeAndDeterminism) {
  Fingerprinter fp(20, 64, 1);
  EXPECT_EQ(fp.dim(), 20u);
  EXPECT_EQ(fp.width_bits(), 64u);
  EXPECT_EQ(fp.words_per_code(), 1u);

  const data::DenseDataset dataset = data::MakeUniformCube(50, 20, 2);
  auto a = fp.Transform(dataset);
  auto b = fp.Transform(dataset);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(std::ranges::equal(a->words(), b->words()));
  EXPECT_EQ(a->size(), 50u);
  EXPECT_EQ(a->width_bits(), 64u);
}

TEST(FingerprinterTest, DifferentSeedsGiveDifferentCodes) {
  const data::DenseDataset dataset = data::MakeUniformCube(10, 20, 2);
  auto a = Fingerprinter(20, 64, 1).Transform(dataset);
  auto b = Fingerprinter(20, 64, 2).Transform(dataset);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(std::ranges::equal(a->words(), b->words()));
}

TEST(FingerprinterTest, RejectsDimensionMismatch) {
  Fingerprinter fp(20, 64, 1);
  const data::DenseDataset wrong = data::MakeUniformCube(5, 8, 1);
  EXPECT_EQ(fp.Transform(wrong).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FingerprinterTest, IdenticalPointsHaveIdenticalCodes) {
  Fingerprinter fp(16, 64, 3);
  const std::vector<float> x{1, -2, 3, 0.5f, 1, -2, 3, 0.5f,
                             1, -2, 3, 0.5f, 1, -2, 3, 0.5f};
  uint64_t code_a, code_b;
  fp.TransformPoint(x.data(), &code_a);
  fp.TransformPoint(x.data(), &code_b);
  EXPECT_EQ(code_a, code_b);
}

TEST(FingerprinterTest, OppositePointsHaveComplementaryCodes) {
  Fingerprinter fp(16, 64, 3);
  std::vector<float> x(16), neg(16);
  util::Rng rng(5);
  for (int j = 0; j < 16; ++j) {
    x[j] = static_cast<float>(rng.Gaussian());
    neg[j] = -x[j];
  }
  uint64_t code_x, code_neg;
  fp.TransformPoint(x.data(), &code_x);
  fp.TransformPoint(neg.data(), &code_neg);
  // sign(<a,-x>) = -sign(<a,x>) except exactly-zero projections: distance
  // should be 64 (or extremely close).
  EXPECT_GE(data::HammingDistance(&code_x, &code_neg, 1), 63u);
}

TEST(FingerprinterTest, ExpectedHammingMatchesAngle) {
  // E[Hamming] = width * angle / pi (the SimHash property). Check pairs at
  // planted angles, averaged over many hyperplane draws (seeds).
  const size_t dim = 12;
  const size_t width = 256;  // more bits -> tighter concentration
  for (double angle : {0.3, 0.8, 1.5}) {
    std::vector<float> a(dim, 0.0f), b(dim, 0.0f);
    a[0] = 1.0f;
    b[0] = static_cast<float>(std::cos(angle));
    b[1] = static_cast<float>(std::sin(angle));
    double total = 0;
    const int reps = 12;
    for (int seed = 0; seed < reps; ++seed) {
      Fingerprinter fp(dim, width, seed + 100);
      std::vector<uint64_t> code_a(fp.words_per_code()), code_b(fp.words_per_code());
      fp.TransformPoint(a.data(), code_a.data());
      fp.TransformPoint(b.data(), code_b.data());
      total += data::HammingDistance(code_a.data(), code_b.data(),
                                     fp.words_per_code());
    }
    const double mean_dist = total / reps;
    const double expected = width * angle / std::numbers::pi;
    EXPECT_NEAR(mean_dist, expected, 0.12 * width) << "angle=" << angle;
  }
}

TEST(FingerprinterTest, TailBitsBeyondWidthStayZero) {
  Fingerprinter fp(8, 70, 9);  // 70 bits -> 2 words, 58 unused tail bits
  const data::DenseDataset dataset = data::MakeUniformCube(20, 8, 3);
  auto codes = fp.Transform(dataset);
  ASSERT_TRUE(codes.ok());
  for (size_t i = 0; i < codes->size(); ++i) {
    EXPECT_EQ(codes->point(i)[1] >> 6, 0u);
  }
}

}  // namespace
}  // namespace lsh
}  // namespace hybridlsh
